"""Packaging for the CALU reproduction.

Classic ``setup.py`` metadata (no ``pyproject.toml``) so that
``pip install -e .`` works in offline environments whose setuptools lacks
PEP 660 editable-wheel support.  The ``repro`` console script is the same
entry point as ``python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-calu",
    version="0.3.0",
    description=(
        "Reproduction of 'Communication-avoiding Gaussian elimination' "
        "(SC 2008): CALU, TSLU, simulated ScaLAPACK baselines, analytic "
        "models, and a registry-driven experiment harness."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro=repro.harness.cli:main",
        ]
    },
)
