#!/usr/bin/env python
"""Walk through the paper's Figure 1: TSLU on a 16 x 2 matrix over 4 processes.

Replays the tournament round by round on the exact matrix printed in Section 3
of the paper, shows which candidate rows survive each round, and confirms that
the final pivots coincide with those of Gaussian elimination with partial
pivoting.  Then it runs the *distributed* TSLU on the virtual-MPI simulator
and reports how many messages each rank sent (log2 P = 2).

Run with::

    python examples/tslu_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure1
from repro.machines import unit_machine
from repro.parallel import ptslu
from repro.randmat import figure1_matrix


def main() -> None:
    result = figure1.run()
    print(figure1.describe(result))

    print("\nDistributed TSLU on the virtual MPI (4 ranks, block-cyclic rows):")
    A = figure1_matrix()
    run = ptslu(A, nprocs=4, layout="block_cyclic", block_size=2, machine=unit_machine())
    print(f"  winners (0-based global rows)   : {run.winners.tolist()}")
    print(f"  messages sent per rank          : "
          f"{[t.messages_sent for t in run.trace.ranks]}  (log2 P = 2)")
    print(f"  words sent per rank             : {[t.words_sent for t in run.trace.ranks]}")
    err = np.max(np.abs(A[run.perm, :] - run.L @ run.U))
    print(f"  ||PA - LU||_max                 : {err:.2e}")


if __name__ == "__main__":
    main()
