#!/usr/bin/env python
"""Performance-model sweep: regenerate the shapes of Tables 3-7.

Evaluates the paper's analytic runtime models (Equations 1-3) under the
calibrated IBM POWER5 and Cray XT4 machine models through the experiment
registry (the same specs ``python -m repro run table3 ... table7`` uses) and
prints:

* Tables 3-4: the PDGETF2 / TSLU panel-factorization time ratio,
* Tables 5-6: the PDGETRF / CALU time ratio and CALU GFLOP/s,
* Table 7: the best-CALU vs best-PDGETRF speedup per matrix size,
* a latency/bandwidth/flops breakdown for one configuration, showing where
  CALU's advantage comes from,
* a simulator cross-check at the paper's process counts: measured TSLU
  message counts at P = 64..888 on the deterministic event engine, which is
  what makes those process counts tractable in pure Python.

Run with::

    python examples/machine_sweep.py
"""

from __future__ import annotations

from repro.experiments import format_table, panel_tables
from repro.experiments.validation import measure_panel_scaling
from repro.harness import get_spec
from repro.machines import ibm_power5
from repro.models import calu_cost, pdgetrf_cost


def main() -> None:
    print("== Table 3 (model): PDGETF2 / TSLU ratio, IBM POWER5 ==")
    rows = get_spec("table3").run({"heights": (10_000, 100_000, 1_000_000)})
    print(format_table(rows, columns=["m", "n=b", "P", "ratio_rec", "ratio_cl"]))
    print("best:", panel_tables.best_improvement(rows))

    print("\n== Table 4 (model): PDGETF2 / TSLU ratio, Cray XT4 ==")
    rows = get_spec("table4").run({"heights": (10_000, 100_000, 1_000_000)})
    print(format_table(rows, columns=["m", "n=b", "P", "ratio_rec", "ratio_cl"]))

    print("\n== Table 5 (model): PDGETRF / CALU, IBM POWER5 ==")
    print(format_table(get_spec("table5").run(), columns=get_spec("table5").columns))

    print("\n== Table 6 (model): PDGETRF / CALU, Cray XT4 ==")
    print(format_table(get_spec("table6").run(), columns=get_spec("table6").columns))

    print("\n== Table 7 (model): best CALU vs best PDGETRF ==")
    rows = get_spec("table7").run()
    print(format_table(rows, columns=["machine", "m", "speedup", "calu_gflops",
                                      "calu_P", "calu_b", "calu_percent_peak"]))

    print("\n== Where the win comes from (m = 1000, b = 50, 8x8 grid, POWER5) ==")
    machine = ibm_power5()
    for name, ledger in (
        ("CALU", calu_cost(1000, 1000, 50, 8, 8)),
        ("PDGETRF", pdgetrf_cost(1000, 1000, 50, 8, 8)),
    ):
        bd = ledger.breakdown(machine)
        print(f"  {name:8s}: arithmetic={bd['arithmetic']:.4e}s  "
              f"latency={bd['latency']:.4e}s  bandwidth={bd['bandwidth']:.4e}s  "
              f"total={bd['total']:.4e}s")

    print("\n== Simulator cross-check: TSLU messages at paper-scale P "
          "(deterministic event engine) ==")
    rows = measure_panel_scaling(Ps=(64, 128, 256, 888), b=4, rows_per_rank=8)
    print(format_table(
        rows, columns=["P", "m", "b", "max_messages_per_rank", "expected_log2P"]
    ))


if __name__ == "__main__":
    main()
