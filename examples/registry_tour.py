#!/usr/bin/env python
"""Tour of the experiment registry: list, run (cached), sweep — from Python.

Everything ``python -m repro`` does is a thin layer over this API:

1. list the registered specs and their parameters;
2. run one spec through the content-addressed result store (the second call
   is a cache hit served from ``results/`` — or ``$REPRO_RESULTS_DIR``);
3. sweep a parameter grid concurrently through the event engine.

Run with::

    python examples/registry_tour.py
"""

from __future__ import annotations

import tempfile

from repro.experiments import format_table
from repro.harness import ResultStore, all_specs, get_spec, run_sweep


def main() -> None:
    print("== Registered experiment specs ==")
    for spec in all_specs():
        ref = spec.paper_ref or "scenario"
        print(f"  {spec.name:14s} [{ref}] params: {', '.join(sorted(spec.params))}")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(root=tmp)

        print("\n== Run table1 (quick) through the store ==")
        first = store.fetch_or_run(get_spec("table1"), quick=True)
        again = store.fetch_or_run(get_spec("table1"), quick=True)
        print(f"  first call : cached={first.cached} "
              f"({first.artifact['elapsed_s']:.3f}s, key={first.artifact['key'][:12]})")
        print(f"  second call: cached={again.cached} (bit-identical rows: "
              f"{again.rows == first.rows})")

        print("\n== Sweep: measured TSLU panel messages over (P, b), event engine ==")
        result = run_sweep(
            get_spec("panel_counts"),
            grid={"P": (2, 4, 8), "b": (4, 8)},
            base={"m": 64},
            store=store,
            jobs=4,
        )
        print(format_table(result.rows(),
                           columns=["P", "b", "m", "max_messages_per_rank",
                                    "expected_log2P"]))
        print(f"  {len(result.jobs)} jobs, peak parallelism {result.max_in_flight}, "
              f"{result.elapsed_s:.2f}s; re-sweeping now hits the cache for all "
              f"{len(result.jobs)} points.")


if __name__ == "__main__":
    main()
