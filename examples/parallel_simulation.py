#!/usr/bin/env python
"""Run distributed CALU and ScaLAPACK PDGETRF side by side on the simulator.

Both algorithms factor the same matrix on the same virtual process grid; the
script reports, per algorithm, the backward error, the per-rank message and
word counts, and the simulated critical-path time under the IBM POWER5 and
Cray XT4 machine models — i.e. a miniature, executable version of the paper's
comparison, small enough to run in seconds in pure Python.

The runs use the deterministic event-driven engine, so repeated invocations
produce bit-identical traces; set ``REPRO_VMPI_ENGINE=threaded`` (or edit
``ENGINE`` below) to cross-check the threaded backend.

Run with::

    python examples/parallel_simulation.py [n] [block_size] [Pr] [Pc]
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.layouts import ProcessGrid
from repro.machines import cray_xt4, ibm_power5, unit_machine
from repro.parallel import pcalu
from repro.randmat import randn
from repro.scalapack import pdgetrf

#: Virtual-MPI execution engine used for the example runs (overridable via
#: the REPRO_VMPI_ENGINE environment variable).
ENGINE = os.environ.get("REPRO_VMPI_ENGINE") or "event"


def run_once(A, grid, b, machine, label):
    rows = []
    for name, fn in (("CALU", pcalu), ("PDGETRF", pdgetrf)):
        res = fn(A, grid, block_size=b, machine=machine, engine=ENGINE)
        err = float(np.max(np.abs(A[res.perm, :] - res.L @ res.U)))
        rows.append(
            {
                "algorithm": name,
                "max msgs/rank": res.trace.max_messages,
                "total words": int(res.trace.total_words),
                "crit. path": res.trace.critical_path_time,
                "backward err": err,
            }
        )
    print(f"\n-- {label} --")
    for r in rows:
        print(
            f"  {r['algorithm']:8s} msgs/rank={r['max msgs/rank']:<6} "
            f"words={r['total words']:<8} time={r['crit. path']:.6g} "
            f"err={r['backward err']:.2e}"
        )
    speedup = rows[1]["crit. path"] / rows[0]["crit. path"]
    print(f"  PDGETRF / CALU time ratio: {speedup:.2f}")


def main(n: int = 96, b: int = 8, pr: int = 2, pc: int = 4) -> None:
    print(f"Distributed LU comparison: n={n}, b={b}, grid={pr}x{pc}")
    A = randn(n, seed=7)
    grid = ProcessGrid(pr, pc)
    run_once(A, grid, b, unit_machine(), "unit-latency machine (counts message steps)")
    run_once(A, grid, b, ibm_power5(), "IBM POWER5 model")
    run_once(A, grid, b, cray_xt4(), "Cray XT4 model")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:5]]
    main(*args)
