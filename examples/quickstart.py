#!/usr/bin/env python
"""Quickstart: factor a dense matrix with CALU and solve a linear system.

This is the 30-second tour of the public API:

1. generate a random system ``A x = b``;
2. factor ``A`` with CALU (ca-pivoting / tournament pivoting);
3. verify the factorization (``P A = L U``) and the pivot-threshold bound;
4. solve the system with two steps of iterative refinement and check the HPL
   accuracy criteria the paper uses.

Run with::

    python examples/quickstart.py [n] [block_size] [nblocks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import calu, factorization_error, solve_with_refinement
from repro.randmat import linear_system
from repro.stability import hpl_residuals, threshold_stats


def main(n: int = 512, block_size: int = 32, nblocks: int = 8) -> None:
    print(f"CALU quickstart: n={n}, b={block_size}, P(row blocks)={nblocks}")
    A, b, x_true = linear_system(n, seed=42)

    # Factor with communication-avoiding LU.
    result = calu(
        A,
        block_size=block_size,
        nblocks=nblocks,
        track_growth=True,
        compute_thresholds=True,
    )
    err = factorization_error(A, result)
    stats = threshold_stats(result.threshold_history)
    print(f"  backward factorization error       : {err:.2e}")
    print(f"  pivot threshold (min / average)    : {stats.minimum:.3f} / {stats.average:.3f}")
    print(f"  max |L| (bounded by 1/tau_min)     : {np.max(np.abs(result.L)):.3f}")
    print(f"  arithmetic performed (muladds)     : {result.flops.muladds:.3e}")

    # Solve A x = b with iterative refinement.
    solution = solve_with_refinement(A, b, result, max_iterations=2)
    res = hpl_residuals(A, solution.x, b)
    print(f"  forward error ||x - x_true||_inf   : {np.max(np.abs(solution.x - x_true)):.2e}")
    print(f"  componentwise backward error w_b   : {solution.backward_errors[0]:.2e}")
    print(f"  HPL residuals (must be < 16)       : "
          f"{res.hpl1:.3e}, {res.hpl2:.3e}, {res.hpl3:.3e}  -> passed={res.passed}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
