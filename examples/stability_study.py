#!/usr/bin/env python
"""Stability study: regenerate (scaled-down) versions of Tables 1-2 and Figure 2.

For random normal matrices this script reports, for ca-pivoting (CALU) and
partial pivoting (GEPP):

* the Trefethen-Schreiber growth factor ``g_T`` and the ``n^(2/3)`` trend,
* the minimum / average pivot thresholds of ca-pivoting,
* the componentwise backward error ``w_b``,
* the three HPL accuracy residuals (all must be below 16).

The rows come from the experiment registry — the same specs the
``python -m repro`` CLI runs (and caches); this script shows the library-side
override API.  Defaults run in under a minute; pass larger sizes to approach
the paper's 2^10..2^13 sweep.

Run with::

    python examples/stability_study.py [sizes ...]
"""

from __future__ import annotations

import sys

from repro.experiments import format_table
from repro.harness import get_spec


def main(sizes=(128, 256, 512)) -> None:
    sizes = tuple(int(s) for s in sizes)

    print("== Table 1 (scaled): HPL accuracy tests for ca-pivoting ==")
    sweep = tuple((n, ((4, max(8, n // 32)), (8, max(8, n // 64)))) for n in sizes)
    rows1 = get_spec("table1").run({"sweep": sweep})
    print(format_table(rows1, columns=["n", "P", "b", "gT", "tau_ave", "tau_min", "wb",
                                       "HPL1", "HPL2", "HPL3", "hpl_passed"]))

    print("\n== Table 2 (scaled): HPL accuracy tests for partial pivoting ==")
    rows2 = get_spec("table2").run({"sizes": sizes, "samples": 2})
    print(format_table(rows2, columns=["n", "S", "gT", "wb", "HPL1", "HPL2", "HPL3",
                                       "hpl_passed"]))

    print("\n== Figure 2 (scaled): growth factor and minimum threshold ==")
    rows3 = get_spec("figure2").run(
        {"sizes": sizes, "configs": ((4, 16), (8, 16)), "samples": 1}
    )
    print(format_table(rows3, columns=["n", "P", "b", "method", "gT", "n_two_thirds",
                                       "tau_min", "tau_ave"]))
    print("\nExpected shape: gT tracks ~1-2x n^(2/3); tau_min stays well above 0.33"
          " for ca-pivoting; every HPL test passes.")


if __name__ == "__main__":
    main(sys.argv[1:] or (128, 256, 512))
