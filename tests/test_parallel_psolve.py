"""Tests for the end-to-end distributed solve (pdtrsv + pdgesv).

The contract: ``pdgesv`` must reproduce the sequential ``calu_solve``
solution to tight tolerance on both execution engines — including
non-power-of-two process grids and ragged ``n % b`` — batched multi-RHS
solves must match looped single-RHS solves, refinement must converge the way
``solve_with_refinement`` does, and the solve phase's message counts must
match the analytic solve model exactly on the unit-latency machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu, calu_solve, solve_with_refinement
from repro.layouts import ProcessGrid
from repro.machines import unit_machine
from repro.models import solve_cost, solve_message_counts, validate_solve
from repro.parallel import pdgesv
from repro.randmat import randn

ENGINES = ("event", "threaded")


def _system(n: int, nrhs: int, seed: int):
    """A random system with a known O(1) solution."""
    A = randn(n, seed=seed + n)
    x_true = randn(n, nrhs, seed=seed + 7919)
    return A, x_true, A @ x_true


# ------------------------------------------------------------------ accuracy
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "n,b,pr,pc,nrhs",
    [
        (32, 8, 2, 2, 1),     # even split, power-of-two grid
        (48, 8, 2, 4, 2),     # rectangular grid, multiple RHS
        (30, 7, 2, 3, 2),     # ragged n % b, non-power-of-two P = 6
        (33, 5, 3, 2, 1),     # ragged, non-power-of-two P, Pr > Pc
        (24, 8, 1, 2, 1),     # single process row
        (40, 16, 2, 1, 3),    # single process column
    ],
)
def test_pdgesv_matches_sequential_calu_solve(n, b, pr, pc, nrhs, engine):
    """The acceptance bar: distributed and sequential solutions agree to 1e-12."""
    A, x_true, rhs = _system(n, nrhs, seed=pr * 10 + pc)
    res = pdgesv(
        A, rhs, ProcessGrid(pr, pc), block_size=b,
        machine=unit_machine(), engine=engine,
    )
    seq = calu_solve(A, rhs, block_size=b, nblocks=pr)
    assert np.max(np.abs(res.x - seq.x)) < 1e-12
    assert np.max(np.abs(res.x - x_true)) < 1e-12
    assert res.backward_errors[-1] < 1e-14


@pytest.mark.parametrize("pivoting", ["ca", "pp", "ca_prrp"])
def test_pdgesv_honors_pivoting_knob(pivoting):
    A, x_true, rhs = _system(36, 2, seed=3)
    res = pdgesv(
        A, rhs, ProcessGrid(2, 2), block_size=8, pivoting=pivoting
    )
    seq = calu_solve(A, rhs, block_size=8, nblocks=2, pivoting=pivoting)
    assert np.max(np.abs(res.x - seq.x)) < 1e-12
    assert np.max(np.abs(res.x - x_true)) < 1e-12
    assert res.factorization.trace.nprocs == 4


def test_pdgesv_kernel_tier_bit_identical():
    """The fast kernel tier must not change the simulated solution at all."""
    A, _, rhs = _system(36, 2, seed=4)
    grid = ProcessGrid(2, 2)
    ref = pdgesv(A, rhs, grid, block_size=8, kernel_tier="reference")
    fast = pdgesv(A, rhs, grid, block_size=8, kernel_tier="lapack")
    assert np.array_equal(ref.x, fast.x)


def test_pdgesv_cross_engine_parity():
    """Both engines must produce identical solutions and identical traces."""
    A, _, rhs = _system(30, 2, seed=5)
    grid = ProcessGrid(2, 3)
    runs = {
        engine: pdgesv(
            A, rhs, grid, block_size=7, machine=unit_machine(), engine=engine
        )
        for engine in ENGINES
    }
    ev, th = runs["event"], runs["threaded"]
    assert np.array_equal(ev.x, th.x)
    assert ev.iterations == th.iterations
    assert ev.residual_norms == th.residual_norms
    assert ev.per_rhs_residuals == th.per_rhs_residuals
    assert ev.trace.total_messages == th.trace.total_messages
    assert ev.trace.total_words == th.trace.total_words
    assert ev.trace.critical_path_time == th.trace.critical_path_time


def test_pdgesv_multi_rhs_matches_looped_single_rhs():
    """Batched RHS blocks must solve each system exactly like a solo run.

    ``tolerance=0`` pins the refinement count so the joint stopping test
    cannot diverge from the per-column one.
    """
    A, _, rhs = _system(40, 3, seed=6)
    grid = ProcessGrid(2, 2)
    multi = pdgesv(A, rhs, grid, block_size=8, refine=1, tolerance=0.0)
    singles = [
        pdgesv(A, rhs[:, j], grid, block_size=8, refine=1, tolerance=0.0)
        for j in range(rhs.shape[1])
    ]
    assert np.max(np.abs(multi.x - np.column_stack([s.x for s in singles]))) < 1e-12
    # The message count must not grow with the number of right-hand sides.
    assert multi.trace.total_messages == singles[0].trace.total_messages
    # Per-RHS residual histories line up with the solo runs' (batched and
    # per-column BLAS calls round differently, so only to roundoff scale).
    for j, solo in enumerate(singles):
        for step in range(len(multi.per_rhs_residuals)):
            assert multi.per_rhs_residuals[step][j] == pytest.approx(
                solo.per_rhs_residuals[step][0], abs=1e-13
            )


def test_pdgesv_vector_rhs_round_trip():
    """A 1-D right-hand side must come back as a 1-D solution."""
    A, x_true, rhs = _system(32, 1, seed=7)
    res = pdgesv(A, rhs[:, 0], ProcessGrid(2, 2), block_size=8)
    assert res.x.ndim == 1
    assert np.max(np.abs(res.x - x_true[:, 0])) < 1e-12
    assert len(res.per_rhs_residuals[0]) == 1


def test_pdgesv_single_process_grid_sends_nothing():
    A, x_true, rhs = _system(24, 1, seed=8)
    res = pdgesv(A, rhs, ProcessGrid(1, 1), block_size=8)
    assert res.trace.total_messages == 0
    assert np.max(np.abs(res.x - x_true)) < 1e-12


def test_pdgesv_input_validation():
    with pytest.raises(ValueError, match="square"):
        pdgesv(np.zeros((4, 3)), np.zeros(4), ProcessGrid(1, 1), block_size=2)
    with pytest.raises(ValueError, match="rows"):
        pdgesv(np.eye(4), np.zeros(5), ProcessGrid(1, 1), block_size=2)


# ------------------------------------------------- refinement convergence
@pytest.mark.parametrize("n,b,pr,pc,seed", [(48, 8, 2, 2, 0), (33, 5, 3, 2, 3)])
def test_pdgesv_refinement_matches_sequential_regression(n, b, pr, pc, seed):
    """Same seed, same refinement trajectory as ``solve_with_refinement``."""
    A, _, rhs = _system(n, 1, seed=seed)
    par = pdgesv(A, rhs, ProcessGrid(pr, pc), block_size=b)
    seq = solve_with_refinement(A, rhs, calu(A, block_size=b, nblocks=pr))
    assert par.iterations == seq.iterations
    assert len(par.residual_norms) == len(seq.residual_norms)
    assert len(par.backward_errors) == len(seq.backward_errors)
    # Refinement must actually improve the residual and converge to the
    # same order as the sequential path ("order of 1e-16", Section 6.1).
    assert par.residual_norms[-1] <= par.residual_norms[0]
    assert par.backward_errors[-1] < 1e-15
    assert seq.backward_errors[-1] < 1e-15
    for p, s in zip(par.residual_norms, seq.residual_norms):
        assert p == pytest.approx(s, rel=10.0, abs=1e-18)
    # The recorded per-step maxima are consistent with the per-RHS split.
    for step, per_rhs in enumerate(par.per_rhs_residuals):
        assert par.residual_norms[step] == pytest.approx(max(per_rhs))


def test_sequential_per_rhs_residuals_recorded():
    """``solve_with_refinement`` records the per-RHS split alongside the max."""
    A, _, rhs = _system(50, 3, seed=11)
    res = solve_with_refinement(A, rhs, calu(A, block_size=8, nblocks=2))
    assert len(res.per_rhs_residuals) == len(res.residual_norms)
    for step, per_rhs in enumerate(res.per_rhs_residuals):
        assert len(per_rhs) == 3
        assert res.residual_norms[step] == pytest.approx(max(per_rhs))


# ------------------------------------------------------- model validation
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "n,b,pr,pc,nrhs",
    [(32, 8, 2, 2, 1), (30, 7, 2, 3, 2), (33, 5, 3, 2, 1), (48, 8, 2, 4, 3)],
)
def test_solve_message_counts_match_model(n, b, pr, pc, nrhs, engine):
    """On the unit-latency machine the measured solve messages are exactly
    the solve model's prediction — per channel and in total."""
    A, _, rhs = _system(n, nrhs, seed=13)
    res = pdgesv(
        A, rhs, ProcessGrid(pr, pc), block_size=b,
        machine=unit_machine(), engine=engine,
    )
    check = validate_solve(
        res.trace, n, b, pr, pc, unit_machine(),
        nrhs=nrhs, refinements=res.iterations,
    )
    assert check.messages_match, (check.measured, check.predicted)
    for key in ("words_col", "words_row", "words_any", "total_words"):
        assert check.measured[key] == pytest.approx(check.predicted[key])


def test_solve_message_count_independent_of_nrhs():
    counts1 = solve_message_counts(64, 8, 2, 2, nrhs=1, refinements=2)
    counts8 = solve_message_counts(64, 8, 2, 2, nrhs=8, refinements=2)
    assert counts1["total_messages"] == counts8["total_messages"]
    assert counts8["total_words"] > counts1["total_words"]


def test_solve_cost_prices_under_machine_models():
    from repro.machines import ibm_power5

    ledger = solve_cost(1024, 32, 4, 8, nrhs=1, refinements=2)
    assert ledger.time(unit_machine()) > 0
    assert ledger.time(ibm_power5()) > 0
    bd = ledger.breakdown(ibm_power5())
    assert bd["total"] == pytest.approx(ledger.time(ibm_power5()))
    # The solve phase is asymptotically cheaper than the factorization.
    from repro.models import calu_cost

    fact = calu_cost(1024, 1024, 32, 4, 8)
    assert ledger.time(ibm_power5()) < fact.time(ibm_power5())


def test_pdtrsv_reduce_messages_include_accumulation_time():
    """Regression: the partial-sum reduce must be timestamped *after* the
    local accumulation that produced its payload, or receivers proceed
    before the sender's arithmetic has happened on machines with γ > 0."""
    from repro.distsim import run_spmd
    from repro.layouts.block_cyclic import BlockCyclic2D
    from repro.machines import MachineModel
    from repro.scalapack import pdtrsv_lower_unit

    n, bsz = 16, 8
    grid = ProcessGrid(1, 2)
    dist = BlockCyclic2D(n, n, bsz, grid)
    L = np.tril(randn(n, seed=21), -1) + np.eye(n)
    locs = dist.scatter(L)
    rhs_blocks = {0: {0: randn(bsz, 1, seed=22)}, 1: {1: randn(bsz, 1, seed=23)}}
    gamma_only = MachineModel(
        name="gamma-only", gamma=1.0, gamma_d=1.0, alpha=0.0, beta=0.0
    )

    def prog(comm):
        pdtrsv_lower_unit(comm, dist, locs[comm.rank], rhs_blocks[comm.rank], 1)
        return comm.trace.clock

    trace = run_spmd(2, prog, machine=gamma_only)
    # Rank 0 performs the block-0 diagonal solve *and* the off-diagonal
    # accumulation feeding the block-1 reduce; rank 1's clock must therefore
    # dominate the whole of rank 0's arithmetic, not just the diagonal solve.
    assert trace.results[1] >= trace.ranks[0].flops.total


def test_solve_simulated_time_within_model_envelope():
    """The analytic critical path is a serial bound: the simulated (pipelined)
    time lands below it but within a small constant factor."""
    A, _, rhs = _system(48, 1, seed=17)
    res = pdgesv(A, rhs, ProcessGrid(2, 2), block_size=8, machine=unit_machine())
    check = validate_solve(
        res.trace, 48, 8, 2, 2, unit_machine(), nrhs=1, refinements=res.iterations
    )
    assert 0.25 < check.time_ratio <= 1.0


# --------------------------------------------------- factor reuse (pdgesv_solve)
@pytest.mark.parametrize("engine", ("coroutine",) + ENGINES)
@pytest.mark.parametrize(
    "n,b,pr,pc,nrhs",
    [
        (32, 8, 2, 2, 1),     # even split, power-of-two grid
        (30, 7, 2, 3, 2),     # ragged n % b, non-power-of-two P = 6
        (33, 5, 3, 2, 3),     # ragged, non-power-of-two P, Pr > Pc
    ],
)
def test_pdgesv_solve_bit_identical_to_cold_pdgesv(n, b, pr, pc, nrhs, engine):
    """The factor-cache acceptance bar: reusing a ``FactoredMatrix`` is
    bit-for-bit the solve phase of a cold ``pdgesv`` — solution, residual
    history, backward errors, and the solve-phase trace."""
    from repro.parallel import pcalu_factor, pdgesv_solve

    A, _, rhs = _system(n, nrhs, seed=pr * 10 + pc)
    grid = ProcessGrid(pr, pc)
    cold = pdgesv(
        A, rhs, grid, block_size=b, machine=unit_machine(), engine=engine
    )
    factor = pcalu_factor(
        A, grid, b, machine=unit_machine(), engine=engine
    )
    for _ in range(2):  # reuse is idempotent
        warm = pdgesv_solve(
            factor, rhs, machine=unit_machine(), engine=engine
        )
        assert np.array_equal(cold.x, warm.x)
        assert cold.residual_norms == warm.residual_norms
        assert cold.per_rhs_residuals == warm.per_rhs_residuals
        assert cold.backward_errors == warm.backward_errors
        assert cold.iterations == warm.iterations
        # Solve-phase traces price identically: same messages, words, time.
        assert cold.trace.total_messages == warm.trace.total_messages
        assert cold.trace.total_words == warm.trace.total_words
        assert cold.trace.critical_path_time == warm.trace.critical_path_time
    # A cold pdgesv carries its factor artifact; the reused factor packs
    # the same bits.
    assert cold.factor is not None
    assert np.array_equal(cold.factor.packed, factor.packed)
    assert np.array_equal(cold.factor.perm, factor.perm)


def test_pdgesv_solve_validates_rhs_rows():
    from repro.parallel import pcalu_factor, pdgesv_solve

    A, _, _ = _system(32, 1, seed=5)
    factor = pcalu_factor(A, ProcessGrid(2, 2), 8, machine=unit_machine())
    with pytest.raises(ValueError, match="rows"):
        pdgesv_solve(factor, np.zeros(31), machine=unit_machine())


@pytest.mark.parametrize("engine", ENGINES)
def test_pdgesv_solve_rhs_slo_drives_extra_refinement(engine):
    """A finite per-RHS SLO keeps refining past the backward-error stop;
    ``rhs_slo=None`` preserves the legacy stopping rule bit-for-bit."""
    from repro.parallel import pcalu_factor, pdgesv_solve

    A, _, rhs = _system(48, 2, seed=9)
    factor = pcalu_factor(
        A, ProcessGrid(2, 2), 8, machine=unit_machine(), engine=engine
    )
    legacy = pdgesv_solve(factor, rhs, machine=unit_machine(), engine=engine)
    none_slo = pdgesv_solve(
        factor, rhs, machine=unit_machine(), engine=engine, rhs_slo=None
    )
    assert np.array_equal(legacy.x, none_slo.x)
    assert legacy.residual_norms == none_slo.residual_norms

    # An infinite SLO changes nothing either (converged() degenerates to
    # the legacy tolerance check).
    inf_slo = pdgesv_solve(
        factor, rhs, machine=unit_machine(), engine=engine,
        rhs_slo=np.full(2, np.inf),
    )
    assert np.array_equal(legacy.x, inf_slo.x)
    assert legacy.iterations == inf_slo.iterations

    # An unreachable SLO exhausts the refinement budget.
    hard = pdgesv_solve(
        factor, rhs, machine=unit_machine(), engine=engine,
        refine=3, tolerance=0.0, rhs_slo=np.full(2, 1e-300),
    )
    assert hard.iterations == 3
    assert hard.iterations > legacy.iterations


# ------------------------------------------------------------------ empty RHS
@pytest.mark.parametrize("engine", ENGINES)
def test_pdgesv_zero_rhs_columns(engine):
    """nrhs = 0 is served cleanly: empty solution, no refinement, and the
    triangular sweeps still run structurally (messages flow, nothing solves)."""
    A, _, _ = _system(32, 1, seed=3)
    res = pdgesv(
        A, np.zeros((32, 0)), ProcessGrid(2, 2), block_size=8,
        machine=unit_machine(), engine=engine,
    )
    assert res.x.shape == (32, 0)
    assert res.iterations == 0
    assert all(r == 0.0 for r in res.residual_norms)
    assert all(len(step) == 0 for step in res.per_rhs_residuals)


@pytest.mark.parametrize("engine", ENGINES)
def test_pdgesv_solve_zero_rhs_columns_from_factor(engine):
    from repro.parallel import pcalu_factor, pdgesv_solve

    A, _, _ = _system(30, 1, seed=4)  # ragged n % b
    factor = pcalu_factor(
        A, ProcessGrid(2, 2), 7, machine=unit_machine(), engine=engine
    )
    res = pdgesv_solve(
        factor, np.zeros((30, 0)), machine=unit_machine(), engine=engine
    )
    assert res.x.shape == (30, 0)
    assert res.iterations == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_pdtrsv_zero_rhs_columns(engine):
    """Both triangular sweeps accept a zero-column RHS block."""
    from repro.distsim import run_spmd
    from repro.layouts.block_cyclic import BlockCyclic2D
    from repro.scalapack import pdtrsv_lower_unit, pdtrsv_upper
    from repro.scalapack.pdtrsv import diag_owner

    n, bsz = 16, 8
    grid = ProcessGrid(2, 2)
    dist = BlockCyclic2D(n, n, bsz, grid)
    T = np.tril(randn(n, seed=31), -1) + np.eye(n) + np.triu(randn(n, seed=32))
    locs = dist.scatter(T)
    nblocks = dist.num_block_rows()

    def prog(comm):
        rhs = {
            k: np.zeros((bsz, 0))
            for k in range(nblocks)
            if diag_owner(dist, k) == comm.rank
        }
        _, lower = pdtrsv_lower_unit(comm, dist, locs[comm.rank], dict(rhs), 0)
        _, upper = pdtrsv_upper(comm, dist, locs[comm.rank], dict(rhs), 0)
        return (
            {k: v.shape for k, v in lower.items()},
            {k: v.shape for k, v in upper.items()},
        )

    trace = run_spmd(grid.size, prog, machine=unit_machine(), engine=engine)
    for lower, upper in trace.results:
        for shape in list(lower.values()) + list(upper.values()):
            assert shape == (bsz, 0)
