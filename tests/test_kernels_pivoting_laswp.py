"""Unit tests for permutation utilities, LASWP, TRSM and GEMM wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    FlopCounter,
    apply_ipiv,
    compose_perms,
    extend_perm,
    gemm,
    gemm_update,
    getf2,
    invert_perm,
    ipiv_to_perm,
    is_permutation,
    laswp,
    perm_to_matrix,
    trsm_lower_unit,
    trsm_right_upper,
    trsm_upper,
)
from repro.randmat import randn


# --------------------------------------------------------------- permutations
def test_ipiv_to_perm_matches_explicit_swaps():
    A = randn(8, 3, seed=1)
    res = getf2(A)
    B = A.copy()
    apply_ipiv(B, res.ipiv)
    assert np.allclose(B, A[res.perm, :])


def test_perm_matrix_action():
    perm = np.array([2, 0, 1])
    A = randn(3, 3, seed=2)
    assert np.allclose(perm_to_matrix(perm) @ A, A[perm, :])


def test_invert_perm_roundtrip():
    rng = np.random.default_rng(5)
    perm = rng.permutation(20)
    inv = invert_perm(perm)
    assert np.array_equal(perm[inv], np.arange(20))
    assert np.array_equal(inv[perm], np.arange(20))


def test_compose_perms_is_sequential_application():
    rng = np.random.default_rng(7)
    p1 = rng.permutation(10)
    p2 = rng.permutation(10)
    A = randn(10, 4, seed=3)
    assert np.allclose(A[compose_perms(p2, p1), :], A[p1, :][p2, :])


def test_extend_perm_embeds_identity():
    perm = np.array([1, 0])
    full = extend_perm(perm, 5, offset=2)
    assert np.array_equal(full, [0, 1, 3, 2, 4])


@pytest.mark.parametrize(
    "candidate,expected",
    [([0, 1, 2], True), ([1, 1, 2], False), ([2, 1, 0], True), ([[0, 1]], False)],
)
def test_is_permutation(candidate, expected):
    assert is_permutation(np.array(candidate)) is expected


def test_apply_ipiv_backward_undoes_forward():
    A = randn(9, 4, seed=11)
    res = getf2(A)
    B = A.copy()
    apply_ipiv(B, res.ipiv, forward=True)
    apply_ipiv(B, res.ipiv, forward=False)
    assert np.allclose(B, A)


# ----------------------------------------------------------------------- laswp
def test_laswp_with_offset_matches_panel_semantics():
    A = randn(12, 5, seed=4)
    panel = A[4:, :2]
    res = getf2(panel)
    ref = A.copy()
    ref[4:, :] = ref[4:, :][res.perm, :]
    swapped = A.copy()
    laswp(swapped, res.ipiv, offset=4)
    # laswp applies swaps sequentially; the result must equal applying the
    # full permutation to the trailing rows.
    assert np.allclose(swapped[4:, 2:], ref[4:, 2:])


def test_laswp_forward_backward_roundtrip():
    A = randn(10, 3, seed=6)
    ipiv = np.array([4, 3, 2])
    B = A.copy()
    laswp(B, ipiv)
    laswp(B, ipiv, forward=False)
    assert np.allclose(B, A)


# ------------------------------------------------------------------ trsm/gemm
def test_trsm_lower_unit_solves():
    L = np.tril(randn(6, 6, seed=8), -1) + np.eye(6)
    X = randn(6, 4, seed=9)
    B = L @ X
    assert np.allclose(trsm_lower_unit(L, B), X, atol=1e-12)


def test_trsm_upper_solves():
    U = np.triu(randn(6, 6, seed=10)) + 5 * np.eye(6)
    X = randn(6, 3, seed=11)
    assert np.allclose(trsm_upper(U, U @ X), X, atol=1e-10)


def test_trsm_right_upper_solves():
    U = np.triu(randn(5, 5, seed=12)) + 5 * np.eye(5)
    X = randn(8, 5, seed=13)
    B = X @ U
    assert np.allclose(trsm_right_upper(U, B), X, atol=1e-10)


def test_gemm_and_update_count_flops():
    f = FlopCounter()
    A = randn(4, 6, seed=1)
    B = randn(6, 5, seed=2)
    C = randn(4, 5, seed=3)
    out = gemm(A, B, flops=f)
    assert np.allclose(out, A @ B)
    assert f.muladds == pytest.approx(2 * 4 * 5 * 6)
    before = C.copy()
    gemm_update(C, A, B, flops=f)
    assert np.allclose(C, before - A @ B)


def test_gemm_update_alpha_plus_one():
    A = randn(3, 3, seed=4)
    B = randn(3, 3, seed=5)
    C = np.zeros((3, 3))
    gemm_update(C, A, B, alpha=1.0)
    assert np.allclose(C, A @ B)


def test_flop_counter_merge_and_total():
    a = FlopCounter(muladds=10, divides=2, comparisons=1)
    b = FlopCounter(muladds=5, divides=1)
    a.merge(b)
    assert a.muladds == 15 and a.divides == 3
    assert a.total == 18
    c = a + b
    assert c.muladds == 20
    a.reset()
    assert a.total == 0
