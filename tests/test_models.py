"""Tests for the analytic performance models (Equations 1-3) and comparisons."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.costs import CostLedger
from repro.machines import MachineModel, cray_xt4, generic_cluster, ibm_power5, unit_machine
from repro.models import (
    PAPER_GRIDS,
    best_vs_best,
    calu_cost,
    calu_flops,
    compare_factorization,
    compare_panel,
    pdgetf2_cost,
    pdgetrf_cost,
    recursive_speedup,
    tslu_cost,
)


# ------------------------------------------------------------------ CostLedger
def test_cost_ledger_addition_and_scaling():
    a = CostLedger(muladds=10, messages_col=2, words_row=5)
    b = CostLedger(muladds=5, messages_col=1, messages_row=4)
    c = a + b
    assert c.muladds == 15 and c.messages_col == 3 and c.messages_row == 4
    d = a.scaled(2.0)
    assert d.muladds == 20 and d.words_row == 10


def test_cost_ledger_time_and_breakdown():
    machine = MachineModel(name="m", gamma=1.0, gamma_d=2.0, alpha=10.0, beta=0.1)
    ledger = CostLedger(muladds=5, divides=1, messages_col=2, words_col=100)
    assert ledger.time(machine) == pytest.approx(5 + 2 + 20 + 10)
    bd = ledger.breakdown(machine)
    assert bd["total"] == pytest.approx(ledger.time(machine))
    assert bd["latency"] == pytest.approx(20)


def test_cost_ledger_channel_pricing():
    machine = MachineModel(
        name="m", gamma=0, gamma_d=0, alpha=1.0, beta=0.0, alpha_row=5.0, alpha_col=2.0
    )
    ledger = CostLedger(messages_row=1, messages_col=1, messages_any=1)
    assert ledger.time(machine) == pytest.approx(5 + 2 + 1)


# -------------------------------------------------------------------- machines
def test_machine_models_have_paper_parameters():
    p5 = ibm_power5()
    assert p5.peak_flops_per_proc == pytest.approx(7.6e9)
    assert p5.alpha == pytest.approx(4.5e-6)
    xt4 = cray_xt4()
    assert xt4.peak_flops_per_proc == pytest.approx(5.2e9)


def test_machine_message_and_compute_time():
    m = generic_cluster(flop_rate=1e9, efficiency=1.0, latency=1e-6, bandwidth=8e9)
    assert m.message_time(1000) == pytest.approx(1e-6 + 1000 * 1e-9)
    assert m.compute_time(1e6) == pytest.approx(1e-3)


def test_machine_percent_of_peak():
    m = ibm_power5()
    pct = m.percent_of_peak(7.6e9, 1.0, 1)
    assert pct == pytest.approx(100.0)


def test_unit_machine_counts_messages():
    m = unit_machine()
    assert m.message_time(10_000) == 1.0
    assert m.compute_time(1e9) == 0.0


def test_machine_rejects_negative_parameters():
    with pytest.raises(ValueError):
        MachineModel(name="bad", gamma=-1, gamma_d=0, alpha=0, beta=0)


# ------------------------------------------------------------------- Equation 1
def test_tslu_message_count_is_log2P():
    c = tslu_cost(m=1e5, b=100, P=16)
    assert c.messages_col == math.log2(16)
    assert c.words_col == pytest.approx(100 * 100 * 4)


def test_pdgetf2_message_count_is_2b_log2P():
    c = pdgetf2_cost(m=1e5, b=100, P=16)
    assert c.messages_col == pytest.approx(2 * 100 * 4)


def test_tslu_latency_advantage_factor_b():
    t = tslu_cost(1e5, 100, 16)
    s = pdgetf2_cost(1e5, 100, 16)
    assert s.messages_col / t.messages_col == pytest.approx(2 * 100)


def test_tslu_flops_roughly_double_pdgetf2():
    """TSLU factors the panel twice (paper, Section 3)."""
    t = tslu_cost(1e6, 100, 16)
    s = pdgetf2_cost(1e6, 100, 16)
    assert 1.5 < t.muladds / s.muladds < 2.5


def test_tslu_cost_invalid():
    with pytest.raises(ValueError):
        tslu_cost(0, 10, 4)


# ---------------------------------------------------------------- Equations 2-3
def test_calu_latency_lower_than_pdgetrf_by_factor_b():
    n, b, Pr, Pc = 10_000, 100, 8, 8
    c = calu_cost(n, n, b, Pr, Pc)
    s = pdgetrf_cost(n, n, b, Pr, Pc)
    ratio = s.messages_col / c.messages_col
    # The paper: lower by a factor b(1 + 1/log2 Pr) ~ 2n log2 Pr / (3n/b log2 Pr).
    assert ratio == pytest.approx(2 * b / 3, rel=0.3)


def test_calu_and_pdgetrf_same_bandwidth_and_leading_flops():
    n, b, Pr, Pc = 5_000, 50, 4, 8
    c = calu_cost(n, n, b, Pr, Pc)
    s = pdgetrf_cost(n, n, b, Pr, Pc)
    assert c.words_col == pytest.approx(s.words_col)
    assert c.words_row == pytest.approx(s.words_row)
    # CALU adds only a lower-order flop term (the redundant panel work),
    # so the totals agree to within ~10 % at this size.
    assert c.muladds == pytest.approx(s.muladds, rel=0.10)


def test_calu_extra_flops_term_is_small_fraction():
    n, b, Pr, Pc = 10_000, 50, 8, 8
    c = calu_cost(n, n, b, Pr, Pc)
    dominant = (n**3 * 2 / 3) / (Pr * Pc)
    assert (c.muladds - dominant) / dominant < 0.2


def test_calu_swap_scheme_ablation():
    n, b, Pr, Pc = 10_000, 100, 8, 8
    good = calu_cost(n, n, b, Pr, Pc, swap_scheme="reduce_broadcast")
    bad = calu_cost(n, n, b, Pr, Pc, swap_scheme="pdlaswp")
    assert bad.messages_col > good.messages_col
    with pytest.raises(ValueError):
        calu_cost(n, n, b, Pr, Pc, swap_scheme="nope")


def test_calu_flops_formula():
    assert calu_flops(1000, 1000) == pytest.approx(1000**3 * 2 / 3, rel=1e-6)


# ------------------------------------------------------------------ comparisons
def test_compare_panel_ratio_greater_than_one_when_latency_dominates():
    cmp_ = compare_panel(m=10_000, b=50, P=64, machine=ibm_power5())
    assert cmp_.ratio > 1.0


def test_compare_panel_classic_vs_recursive():
    rec = compare_panel(1_000_000, 150, 16, ibm_power5(), local_kernel="rgetf2")
    cla = compare_panel(1_000_000, 150, 16, ibm_power5(), local_kernel="getf2")
    assert rec.ratio > cla.ratio  # recursion helps on huge panels


def test_recursive_speedup_monotone():
    assert recursive_speedup(1e3) <= recursive_speedup(1e5) <= recursive_speedup(1e6)
    assert recursive_speedup(1e2) == 1.0


def test_compare_factorization_calu_wins_on_small_matrix_many_procs():
    """The paper's headline regime: small matrix, many processors."""
    cmp_ = compare_factorization(1_000, 50, 4, 8, ibm_power5())
    assert cmp_.ratio > 1.2


def test_compare_factorization_converges_at_scale():
    """For large matrices on few processors the two algorithms converge."""
    cmp_ = compare_factorization(10_000, 50, 2, 2, ibm_power5())
    assert 0.9 < cmp_.ratio < 1.2


def test_best_vs_best_speedup_at_least_one():
    grids = [PAPER_GRIDS[p] for p in (8, 16, 32, 64)]
    row = best_vs_best(5_000, ibm_power5(), grids, (50, 100, 150))
    assert row["speedup"] >= 1.0
    assert row["calu_gflops"] > 0


@pytest.mark.parametrize("machine_factory", [ibm_power5, cray_xt4])
def test_speedup_decreases_with_matrix_size(machine_factory):
    """Latency matters less as the matrix grows (paper, Tables 5-7)."""
    machine = machine_factory()
    grids = [PAPER_GRIDS[p] for p in (8, 16, 32, 64)]
    speedups = [
        best_vs_best(m, machine, grids, (50, 100, 150))["speedup"]
        for m in (1_000, 5_000, 10_000)
    ]
    assert speedups[0] >= speedups[1] >= speedups[2]
