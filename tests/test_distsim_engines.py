"""Cross-backend tests for the pluggable virtual-MPI execution engines.

The contract: the threaded and event-driven backends must produce
**identical** simulated quantities — message counts, word counts, flop
counts (muladds / divides / comparisons) and per-rank clocks, hence
critical-path times — for the same rank program, because all accounting lives
in the shared Communicator base.  The event engine additionally guarantees
bit-for-bit reproducible runs and structural (instant) deadlock detection.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.distsim import (
    DeadlockError,
    RankFailedError,
    allgather,
    allreduce,
    available_engines,
    broadcast,
    get_engine,
    resolve_engine,
    run_spmd,
)
from repro.distsim.engine import EventEngine, ExecutionEngine, ThreadedEngine
from repro.layouts import ProcessGrid
from repro.machines import MachineModel, ibm_power5, unit_machine
from repro.parallel import pcalu, ptslu
from repro.randmat import randn, tall_skinny
from repro.scalapack import pdgetrf

ENGINES = ["threaded", "event"]


def assert_traces_identical(t1, t2):
    """Every simulated quantity must match rank for rank, bit for bit."""
    assert t1.nprocs == t2.nprocs
    for a, b in zip(t1.ranks, t2.ranks):
        assert a.messages_sent == b.messages_sent, a.rank
        assert a.messages_received == b.messages_received, a.rank
        assert a.words_sent == b.words_sent, a.rank
        assert a.words_received == b.words_received, a.rank
        assert a.messages_by_channel == b.messages_by_channel, a.rank
        assert a.words_by_channel == b.words_by_channel, a.rank
        assert a.flops.muladds == b.flops.muladds, a.rank
        assert a.flops.divides == b.flops.divides, a.rank
        assert a.flops.comparisons == b.flops.comparisons, a.rank
        assert a.clock == b.clock, a.rank
    assert t1.critical_path_time == t2.critical_path_time


# ------------------------------------------------------------ registry seam
def test_engine_registry_lists_both_backends():
    assert available_engines() == ["event", "threaded"]
    assert isinstance(get_engine("threaded"), ThreadedEngine)
    assert isinstance(get_engine("event"), EventEngine)
    # Aliases and instances resolve too.
    assert isinstance(resolve_engine("deterministic"), EventEngine)
    eng = EventEngine()
    assert resolve_engine(eng) is eng


def test_engine_registry_rejects_unknown():
    with pytest.raises(ValueError, match="unknown execution engine"):
        get_engine("quantum")
    with pytest.raises(TypeError):
        resolve_engine(3.14)


def test_engine_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_ENGINE", "event")
    trace = run_spmd(2, lambda comm: comm.rank)
    assert trace.engine == "event"
    monkeypatch.delenv("REPRO_VMPI_ENGINE")
    assert run_spmd(1, lambda comm: comm.rank).engine == "threaded"


def test_timeout_env_var_configures_default(monkeypatch):
    from repro.distsim import default_timeout

    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "0.25")
    assert default_timeout() == 0.25
    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "not-a-number")
    assert default_timeout() == 120.0
    monkeypatch.delenv("REPRO_VMPI_TIMEOUT")
    assert default_timeout() == 120.0


def test_timeout_env_var_bounds_threaded_deadlock(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "0.2")

    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")

    start = time.perf_counter()
    with pytest.raises(RankFailedError):
        run_spmd(2, prog, engine="threaded")
    assert time.perf_counter() - start < 5.0


# ------------------------------------------------- cross-backend parity
@pytest.mark.parametrize("p", [2, 3, 5, 8])
def test_collective_program_parity(p):
    machine = MachineModel(
        name="t", gamma=1e-9, gamma_d=4e-9, alpha=1e-6, beta=1e-8,
        alpha_row=2e-6, beta_col=3e-8,
    )

    def prog(comm):
        comm.charge_flops(muladds=10 * (comm.rank + 1), divides=comm.rank,
                          comparisons=3)
        v = allreduce(comm, comm.rank + 1, lambda a, b: a + b, channel="col")
        w = broadcast(comm, np.arange(6.0) if comm.rank == 0 else None,
                      root=0, channel="row")
        g = allgather(comm, comm.rank * 2)
        return (v, float(np.sum(w)), g)

    t_threaded = run_spmd(p, prog, machine=machine, engine="threaded")
    t_event = run_spmd(p, prog, machine=machine, engine="event")
    assert_traces_identical(t_threaded, t_event)
    assert t_threaded.results == t_event.results


@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
def test_ptslu_parity(nprocs):
    A = tall_skinny(64, 8, seed=nprocs)
    res_t = ptslu(A, nprocs=nprocs, machine=ibm_power5(), engine="threaded")
    res_e = ptslu(A, nprocs=nprocs, machine=ibm_power5(), engine="event")
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.winners, res_e.winners)
    assert np.allclose(res_t.L, res_e.L)
    assert np.allclose(res_t.U, res_e.U)


@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(16, 4, 2, 2), (32, 8, 2, 2), (36, 6, 2, 3)],
)
def test_pcalu_parity(n, b, pr, pc):
    A = randn(n, seed=n + b)
    grid = ProcessGrid(pr, pc)
    res_t = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="threaded")
    res_e = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="event")
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.perm, res_e.perm)
    assert np.allclose(res_t.L, res_e.L)
    assert np.allclose(res_t.U, res_e.U)


def test_pdgetrf_parity():
    A = randn(32, seed=3)
    grid = ProcessGrid(2, 2)
    res_t = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine="threaded")
    res_e = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.perm, res_e.perm)


# ------------------------------------------- ragged panels + pivoting knob
@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(22, 8, 2, 2), (21, 8, 2, 2), (26, 8, 2, 3)],
)
def test_pcalu_ragged_edge_parity(n, b, pr, pc):
    """n % block_size != 0: the fringe panel must behave identically on both
    engines and still factor correctly."""
    A = randn(n, seed=100 + n)
    grid = ProcessGrid(pr, pc)
    res_t = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="threaded")
    res_e = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="event")
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.perm, res_e.perm)
    assert np.array_equal(res_t.L, res_e.L)  # same code path: bitwise
    assert np.array_equal(res_t.U, res_e.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
def test_pcalu_pivoting_knob_parity_across_engines(strategy):
    """Every pivoting strategy must run identically on both engines, on a
    ragged (n=22, b=8) 2x2 problem."""
    A = randn(22, seed=7)
    grid = ProcessGrid(2, 2)
    res_t = pcalu(A, grid, block_size=8, machine=ibm_power5(),
                  engine="threaded", pivoting=strategy)
    res_e = pcalu(A, grid, block_size=8, machine=ibm_power5(),
                  engine="event", pivoting=strategy)
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.perm, res_e.perm)
    assert np.array_equal(res_t.L, res_e.L)
    assert np.array_equal(res_t.U, res_e.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
def test_ptslu_pivoting_knob_parity_across_engines(strategy):
    A = tall_skinny(52, 8, seed=3)  # 52 rows over 4 ranks: uneven blocks
    res_t = ptslu(A, nprocs=4, machine=ibm_power5(), engine="threaded",
                  pivoting=strategy)
    res_e = ptslu(A, nprocs=4, machine=ibm_power5(), engine="event",
                  pivoting=strategy)
    assert_traces_identical(res_t.trace, res_e.trace)
    assert np.array_equal(res_t.winners, res_e.winners)
    assert np.array_equal(res_t.L, res_e.L)
    assert np.array_equal(res_t.U, res_e.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


def test_ptslu_pp_costs_per_column_messages():
    """The paper's latency argument, measured: column-by-column partial
    pivoting sends ~2 b log2 P messages per panel, the tournament log2 P."""
    P, b = 8, 8
    A = tall_skinny(16 * b, b, seed=5)
    res_ca = ptslu(A, nprocs=P, engine="event", pivoting="ca")
    res_pp = ptslu(A, nprocs=P, engine="event", pivoting="pp")
    assert res_ca.trace.max_messages == np.log2(P)  # one butterfly
    # pp: per column one all-reduce + one broadcast over log2(P) levels.
    assert res_pp.trace.max_messages >= 2 * b * np.log2(P) / 2
    assert res_pp.trace.max_messages > b * res_ca.trace.max_messages


def test_pcalu_pp_is_exactly_pdgetrf():
    """pivoting="pp" routes the panel to PDGETF2: bit-for-bit the baseline."""
    A = randn(32, seed=3)
    grid = ProcessGrid(2, 2)
    res_pp = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event",
                   pivoting="pp")
    ref = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    assert np.array_equal(res_pp.perm, ref.perm)
    assert np.array_equal(res_pp.L, ref.L)
    assert np.array_equal(res_pp.U, ref.U)
    assert_traces_identical(res_pp.trace, ref.trace)


# ---------------------------------------------------------- event: determinism
def test_event_engine_bitwise_reproducible():
    A = randn(32, seed=17)
    grid = ProcessGrid(2, 2)
    first = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    second = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    assert_traces_identical(first.trace, second.trace)
    assert first.trace.ranks[0].zero_copy_sends == second.trace.ranks[0].zero_copy_sends
    assert np.array_equal(first.L, second.L)
    assert np.array_equal(first.U, second.U)  # bitwise, not just allclose


def test_event_engine_trace_tagged():
    assert run_spmd(2, lambda c: c.rank, engine="event").engine == "event"
    assert run_spmd(2, lambda c: c.rank, engine="threaded").engine == "threaded"


# --------------------------------------------------- event: deadlock handling
def test_event_engine_structural_deadlock_is_instant():
    """No timeout involved: an unmatched receive fails as soon as the
    scheduler observes that no rank is runnable."""

    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event", timeout=3600.0)
    assert time.perf_counter() - start < 1.0
    assert isinstance(exc.value.__cause__, DeadlockError)
    assert "structural deadlock" in str(exc.value.__cause__)


def test_event_engine_detects_cyclic_deadlock():
    def prog(comm):
        other = 1 - comm.rank
        return comm.recv(other, tag="cycle")  # both wait, nobody sends

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event")
    assert time.perf_counter() - start < 1.0
    assert isinstance(exc.value.__cause__, DeadlockError)


def test_event_engine_rank_exception_propagates():
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RankFailedError) as exc:
        run_spmd(3, prog, engine="event")
    assert isinstance(exc.value.__cause__, ValueError)


def test_event_engine_peer_failure_fails_blocked_ranks_fast():
    """A rank waiting on a crashed peer gets a structural DeadlockError
    instead of hanging until a timeout."""

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("crashed before sending")
        return comm.recv(0, tag="x")

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event", timeout=3600.0)
    assert time.perf_counter() - start < 1.0
    assert isinstance(exc.value.failures[0], RuntimeError)
    assert isinstance(exc.value.failures[1], DeadlockError)
    # The chained cause is the root failure (the crash), not the secondary
    # deadlock it induced in the waiting rank.
    assert isinstance(exc.value.__cause__, RuntimeError)


# ------------------------------------------------------- event: zero-copy
def test_event_engine_elides_copy_for_fresh_temporaries():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(8.0) * 2.0, tag=0)  # pure temporary
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="event")
    assert trace.ranks[0].zero_copy_sends == 1
    assert trace.ranks[0].words_sent == 8.0  # accounting unchanged
    assert np.allclose(trace.results[1], np.arange(8.0) * 2.0)


def test_event_engine_still_copies_aliased_payloads():
    """A payload the sender can still reach is defensively copied, so
    post-send mutation never leaks to the receiver."""

    def prog(comm):
        if comm.rank == 0:
            data = np.ones(3)
            comm.send(1, data, tag=0)
            data[:] = -1.0
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="event")
    assert trace.ranks[0].zero_copy_sends == 0
    assert np.allclose(trace.results[1], 1.0)


def test_threaded_engine_never_elides():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4.0) + 1.0, tag=0)
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="threaded")
    assert trace.ranks[0].zero_copy_sends == 0


# ----------------------------------------------------------- event: scale
def test_event_engine_runs_paper_scale_tslu():
    """P = 256 distributed TSLU — impractical on the threaded backend, fast
    on the event engine."""
    P, b = 256, 4
    A = tall_skinny(4 * P, b, seed=1)
    start = time.perf_counter()
    res = ptslu(A, nprocs=P, machine=unit_machine(), engine="event")
    elapsed = time.perf_counter() - start
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    assert res.trace.max_messages == 8  # log2(256)
    assert elapsed < 30.0


def test_custom_engine_can_be_registered():
    from repro.distsim.engine import EventEngine, register_engine, _REGISTRY

    class TaggedEngine(EventEngine):
        name = "tagged"

    register_engine("tagged", TaggedEngine)
    try:
        trace = run_spmd(2, lambda c: c.rank, engine="tagged")
        assert trace.engine == "tagged"
    finally:
        _REGISTRY.pop("tagged", None)


def test_registering_over_an_alias_name_wins():
    """An exact registry entry beats the built-in alias table."""
    from repro.distsim.engine import EventEngine, register_engine, _REGISTRY

    class Custom(EventEngine):
        name = "custom-deterministic"

    register_engine("deterministic", Custom)
    try:
        assert isinstance(get_engine("deterministic"), Custom)
    finally:
        _REGISTRY.pop("deterministic", None)
    # With the override gone the alias resolves to the builtin again.
    assert isinstance(get_engine("deterministic"), EventEngine)
