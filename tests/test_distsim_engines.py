"""Cross-backend tests for the pluggable virtual-MPI execution engines.

The contract: the threaded, event-driven and coroutine backends must produce
**identical** simulated quantities — message counts, word counts, flop
counts (muladds / divides / comparisons) and per-rank clocks, hence
critical-path times — for the same rank program, because all accounting lives
in the shared Communicator base (and the coroutine engine's group-level
collective evaluation mirrors the point-to-point trees bit for bit).  The
event and coroutine engines additionally guarantee bit-for-bit reproducible
runs and structural (instant) deadlock detection.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.distsim import (
    DeadlockError,
    RankFailedError,
    UnknownEngineError,
    allgather,
    allreduce,
    available_engines,
    broadcast,
    get_engine,
    resolve_engine,
    run_spmd,
)
from repro.distsim.engine import (
    CoroutineEngine,
    EventEngine,
    ExecutionEngine,
    ThreadedEngine,
    spmd_program,
)
from repro.layouts import ProcessGrid
from repro.machines import MachineModel, ibm_power5, unit_machine
from repro.parallel import pcalu, ptslu
from repro.parallel.psolve import pdgesv
from repro.randmat import randn, tall_skinny
from repro.scalapack import pdgetrf

ENGINES = ["threaded", "event", "coroutine"]

#: Backends other than the event engine, whose traces must match it.
OTHERS = ["threaded", "coroutine"]


def assert_traces_identical(t1, t2):
    """Every simulated quantity must match rank for rank, bit for bit."""
    assert t1.nprocs == t2.nprocs
    for a, b in zip(t1.ranks, t2.ranks):
        assert a.messages_sent == b.messages_sent, a.rank
        assert a.messages_received == b.messages_received, a.rank
        assert a.words_sent == b.words_sent, a.rank
        assert a.words_received == b.words_received, a.rank
        assert a.messages_by_channel == b.messages_by_channel, a.rank
        assert a.words_by_channel == b.words_by_channel, a.rank
        assert a.flops.muladds == b.flops.muladds, a.rank
        assert a.flops.divides == b.flops.divides, a.rank
        assert a.flops.comparisons == b.flops.comparisons, a.rank
        assert a.clock == b.clock, a.rank
    assert t1.critical_path_time == t2.critical_path_time


# ------------------------------------------------------------ registry seam
def test_engine_registry_lists_all_backends():
    assert available_engines() == ["coroutine", "event", "threaded"]
    assert isinstance(get_engine("threaded"), ThreadedEngine)
    assert isinstance(get_engine("event"), EventEngine)
    assert isinstance(get_engine("coroutine"), CoroutineEngine)
    # Aliases and instances resolve too.
    assert isinstance(resolve_engine("deterministic"), EventEngine)
    assert isinstance(resolve_engine("coro"), CoroutineEngine)
    assert isinstance(resolve_engine("generator"), CoroutineEngine)
    eng = EventEngine()
    assert resolve_engine(eng) is eng


def test_engine_registry_rejects_unknown():
    with pytest.raises(ValueError, match="unknown execution engine"):
        get_engine("quantum")
    with pytest.raises(TypeError):
        resolve_engine(3.14)


def test_unknown_engine_error_names_offender_and_lists_registered():
    """Satellite: the lookup failure is a named error carrying the bad name
    and every registered engine name, and the message lists them."""
    with pytest.raises(UnknownEngineError) as exc:
        get_engine("quantum")
    assert exc.value.name == "quantum"
    assert exc.value.available == ["coroutine", "event", "threaded"]
    for name in ("quantum", "coroutine", "event", "threaded"):
        assert name in str(exc.value)
    # It is both a SimulationError and a ValueError, so old handlers work.
    assert isinstance(exc.value, ValueError)


def test_unknown_engine_env_var_raises_named_error(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_ENGINE", "warp-drive")
    with pytest.raises(UnknownEngineError) as exc:
        run_spmd(2, lambda comm: comm.rank)
    assert exc.value.name == "warp-drive"
    assert "coroutine" in str(exc.value)


def test_engine_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_ENGINE", "event")
    trace = run_spmd(2, lambda comm: comm.rank)
    assert trace.engine == "event"
    monkeypatch.delenv("REPRO_VMPI_ENGINE")
    assert run_spmd(1, lambda comm: comm.rank).engine == "threaded"


def test_timeout_env_var_configures_default(monkeypatch):
    from repro.distsim import default_timeout

    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "0.25")
    assert default_timeout() == 0.25
    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "not-a-number")
    assert default_timeout() == 120.0
    monkeypatch.delenv("REPRO_VMPI_TIMEOUT")
    assert default_timeout() == 120.0


def test_timeout_env_var_bounds_threaded_deadlock(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "0.2")

    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")

    start = time.perf_counter()
    with pytest.raises(RankFailedError):
        run_spmd(2, prog, engine="threaded")
    assert time.perf_counter() - start < 5.0


# ------------------------------------------------- cross-backend parity
@pytest.mark.parametrize("p", [2, 3, 5, 8])
def test_collective_program_parity(p):
    machine = MachineModel(
        name="t", gamma=1e-9, gamma_d=4e-9, alpha=1e-6, beta=1e-8,
        alpha_row=2e-6, beta_col=3e-8,
    )

    @spmd_program
    def prog(comm):
        comm.charge_flops(muladds=10 * (comm.rank + 1), divides=comm.rank,
                          comparisons=3)
        v = yield from allreduce.co(comm, comm.rank + 1, lambda a, b: a + b,
                                    channel="col")
        w = yield from broadcast.co(comm, np.arange(6.0) if comm.rank == 0 else None,
                                    root=0, channel="row")
        g = yield from allgather.co(comm, comm.rank * 2)
        return (v, float(np.sum(w)), g)

    traces = {e: run_spmd(p, prog, machine=machine, engine=e) for e in ENGINES}
    for other in OTHERS:
        assert_traces_identical(traces["event"], traces[other])
        assert traces["event"].results == traces[other].results
    # The coroutine engine delivered the collectives as group events.
    assert traces["coroutine"].total_group_collectives > 0
    assert traces["event"].total_group_collectives == 0


@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
@pytest.mark.parametrize("other", OTHERS)
def test_ptslu_parity(nprocs, other):
    A = tall_skinny(64, 8, seed=nprocs)
    res_e = ptslu(A, nprocs=nprocs, machine=ibm_power5(), engine="event")
    res_o = ptslu(A, nprocs=nprocs, machine=ibm_power5(), engine=other)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.winners, res_o.winners)
    assert np.allclose(res_e.L, res_o.L)
    assert np.allclose(res_e.U, res_o.U)


@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(16, 4, 2, 2), (32, 8, 2, 2), (36, 6, 2, 3)],
)
@pytest.mark.parametrize("other", OTHERS)
def test_pcalu_parity(n, b, pr, pc, other):
    A = randn(n, seed=n + b)
    grid = ProcessGrid(pr, pc)
    res_e = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="event")
    res_o = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine=other)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.perm, res_o.perm)
    assert np.allclose(res_e.L, res_o.L)
    assert np.allclose(res_e.U, res_o.U)


@pytest.mark.parametrize("other", OTHERS)
def test_pdgetrf_parity(other):
    A = randn(32, seed=3)
    grid = ProcessGrid(2, 2)
    res_e = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    res_o = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine=other)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.perm, res_o.perm)


@pytest.mark.parametrize("other", OTHERS)
def test_pdgesv_parity(other):
    """End-to-end solve: factorization + triangular solves + refinement must
    be bit-identical (traces and solutions) across all three backends."""
    n = 24
    A = randn(n, seed=41)
    b = randn(n, 2, seed=42)
    grid = ProcessGrid(2, 2)
    res_e = pdgesv(A, b, grid, block_size=8, machine=ibm_power5(), engine="event")
    res_o = pdgesv(A, b, grid, block_size=8, machine=ibm_power5(), engine=other)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert_traces_identical(res_e.factorization.trace, res_o.factorization.trace)
    assert np.array_equal(res_e.x, res_o.x)
    assert res_e.residual_norms == res_o.residual_norms
    assert res_e.backward_errors == res_o.backward_errors


# ------------------------------------------- ragged panels + pivoting knob
@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(22, 8, 2, 2), (21, 8, 2, 2), (26, 8, 2, 3), (23, 8, 3, 2)],
)
@pytest.mark.parametrize("other", OTHERS)
def test_pcalu_ragged_edge_parity(n, b, pr, pc, other):
    """n % block_size != 0 (and non-power-of-two grids): the fringe panel
    must behave identically on every engine and still factor correctly."""
    A = randn(n, seed=100 + n)
    grid = ProcessGrid(pr, pc)
    res_e = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine="event")
    res_o = pcalu(A, grid, block_size=b, machine=ibm_power5(), engine=other)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.perm, res_o.perm)
    assert np.array_equal(res_e.L, res_o.L)  # same code path: bitwise
    assert np.array_equal(res_e.U, res_o.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


def test_pdgesv_ragged_nonpow2_three_way():
    """Satellite: pdgesv at non-power-of-two P (3x2 grid) with n % b != 0 runs
    bit-identically on all three backends."""
    n = 26
    A = randn(n, seed=55)
    b = randn(n, 1, seed=56)[:, 0]
    grid = ProcessGrid(3, 2)
    results = {
        e: pdgesv(A, b, grid, block_size=8, machine=ibm_power5(), engine=e)
        for e in ENGINES
    }
    for other in OTHERS:
        assert_traces_identical(results["event"].trace, results[other].trace)
        assert_traces_identical(
            results["event"].factorization.trace,
            results[other].factorization.trace,
        )
        assert np.array_equal(results["event"].x, results[other].x)
    assert np.allclose(A @ results["coroutine"].x, b, atol=1e-9)


@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
@pytest.mark.parametrize("other", OTHERS)
def test_pcalu_pivoting_knob_parity_across_engines(strategy, other):
    """Every pivoting strategy must run identically on every engine, on a
    ragged (n=22, b=8) 2x2 problem."""
    A = randn(22, seed=7)
    grid = ProcessGrid(2, 2)
    res_e = pcalu(A, grid, block_size=8, machine=ibm_power5(),
                  engine="event", pivoting=strategy)
    res_o = pcalu(A, grid, block_size=8, machine=ibm_power5(),
                  engine=other, pivoting=strategy)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.perm, res_o.perm)
    assert np.array_equal(res_e.L, res_o.L)
    assert np.array_equal(res_e.U, res_o.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
@pytest.mark.parametrize("other", OTHERS)
def test_ptslu_pivoting_knob_parity_across_engines(strategy, other):
    A = tall_skinny(52, 8, seed=3)  # 52 rows over 4 ranks: uneven blocks
    res_e = ptslu(A, nprocs=4, machine=ibm_power5(), engine="event",
                  pivoting=strategy)
    res_o = ptslu(A, nprocs=4, machine=ibm_power5(), engine=other,
                  pivoting=strategy)
    assert_traces_identical(res_e.trace, res_o.trace)
    assert np.array_equal(res_e.winners, res_o.winners)
    assert np.array_equal(res_e.L, res_o.L)
    assert np.array_equal(res_e.U, res_o.U)
    assert np.allclose(A[res_e.perm, :], res_e.L @ res_e.U, atol=1e-11)


@pytest.mark.parametrize("nprocs", [3, 5, 6, 7])
def test_ptslu_nonpow2_three_way_parity(nprocs):
    """Satellite: non-power-of-two P exercises the allreduce fold/unfold edge
    on all three backends at once."""
    A = tall_skinny(8 * nprocs + 3, 8, seed=nprocs)
    results = {
        e: ptslu(A, nprocs=nprocs, machine=ibm_power5(), engine=e)
        for e in ENGINES
    }
    for other in OTHERS:
        assert_traces_identical(results["event"].trace, results[other].trace)
        assert np.array_equal(results["event"].winners, results[other].winners)
        assert np.array_equal(results["event"].L, results[other].L)
        assert np.array_equal(results["event"].U, results[other].U)


def test_ptslu_pp_costs_per_column_messages():
    """The paper's latency argument, measured: column-by-column partial
    pivoting sends ~2 b log2 P messages per panel, the tournament log2 P."""
    P, b = 8, 8
    A = tall_skinny(16 * b, b, seed=5)
    res_ca = ptslu(A, nprocs=P, engine="event", pivoting="ca")
    res_pp = ptslu(A, nprocs=P, engine="event", pivoting="pp")
    assert res_ca.trace.max_messages == np.log2(P)  # one butterfly
    # pp: per column one all-reduce + one broadcast over log2(P) levels.
    assert res_pp.trace.max_messages >= 2 * b * np.log2(P) / 2
    assert res_pp.trace.max_messages > b * res_ca.trace.max_messages


def test_pcalu_pp_is_exactly_pdgetrf():
    """pivoting="pp" routes the panel to PDGETF2: bit-for-bit the baseline."""
    A = randn(32, seed=3)
    grid = ProcessGrid(2, 2)
    res_pp = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event",
                   pivoting="pp")
    ref = pdgetrf(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    assert np.array_equal(res_pp.perm, ref.perm)
    assert np.array_equal(res_pp.L, ref.L)
    assert np.array_equal(res_pp.U, ref.U)
    assert_traces_identical(res_pp.trace, ref.trace)


# ---------------------------------------------------------- event: determinism
def test_event_engine_bitwise_reproducible():
    A = randn(32, seed=17)
    grid = ProcessGrid(2, 2)
    first = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    second = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="event")
    assert_traces_identical(first.trace, second.trace)
    assert first.trace.ranks[0].zero_copy_sends == second.trace.ranks[0].zero_copy_sends
    assert np.array_equal(first.L, second.L)
    assert np.array_equal(first.U, second.U)  # bitwise, not just allclose


def test_event_engine_trace_tagged():
    assert run_spmd(2, lambda c: c.rank, engine="event").engine == "event"
    assert run_spmd(2, lambda c: c.rank, engine="threaded").engine == "threaded"


# --------------------------------------------------- event: deadlock handling
def test_event_engine_structural_deadlock_is_instant():
    """No timeout involved: an unmatched receive fails as soon as the
    scheduler observes that no rank is runnable."""

    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event", timeout=3600.0)
    assert time.perf_counter() - start < 1.0
    cause = exc.value.__cause__
    assert isinstance(cause, DeadlockError)
    assert "structural deadlock" in str(cause)
    # Satellite: the error reports, per blocked rank, the (source, tag) it
    # was waiting on — both in the message and as structured data.
    assert cause.blocked == {1: {"source": 0, "tag": "never"}}
    assert "rank 1 waiting for (source=0, tag='never')" in str(cause)


def test_event_engine_detects_cyclic_deadlock():
    def prog(comm):
        other = 1 - comm.rank
        return comm.recv(other, tag="cycle")  # both wait, nobody sends

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event")
    assert time.perf_counter() - start < 1.0
    cause = exc.value.__cause__
    assert isinstance(cause, DeadlockError)
    # Both ranks are reported with the peer/tag they each wait on.
    assert cause.blocked == {
        0: {"source": 1, "tag": "cycle"},
        1: {"source": 0, "tag": "cycle"},
    }


def test_threaded_engine_timeout_deadlock_reports_source_and_tag(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_TIMEOUT", "0.2")

    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag=("panel", 3))

    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="threaded")
    cause = exc.value.__cause__
    assert isinstance(cause, DeadlockError)
    assert cause.blocked == {1: {"source": 0, "tag": ("panel", 3)}}


def test_event_engine_rank_exception_propagates():
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RankFailedError) as exc:
        run_spmd(3, prog, engine="event")
    assert isinstance(exc.value.__cause__, ValueError)


def test_event_engine_peer_failure_fails_blocked_ranks_fast():
    """A rank waiting on a crashed peer gets a structural DeadlockError
    instead of hanging until a timeout."""

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("crashed before sending")
        return comm.recv(0, tag="x")

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="event", timeout=3600.0)
    assert time.perf_counter() - start < 1.0
    assert isinstance(exc.value.failures[0], RuntimeError)
    assert isinstance(exc.value.failures[1], DeadlockError)
    # The chained cause is the root failure (the crash), not the secondary
    # deadlock it induced in the waiting rank.
    assert isinstance(exc.value.__cause__, RuntimeError)


# ------------------------------------------------------- event: zero-copy
def test_event_engine_elides_copy_for_fresh_temporaries():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(8.0) * 2.0, tag=0)  # pure temporary
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="event")
    assert trace.ranks[0].zero_copy_sends == 1
    assert trace.ranks[0].words_sent == 8.0  # accounting unchanged
    assert np.allclose(trace.results[1], np.arange(8.0) * 2.0)


def test_event_engine_still_copies_aliased_payloads():
    """A payload the sender can still reach is defensively copied, so
    post-send mutation never leaks to the receiver."""

    def prog(comm):
        if comm.rank == 0:
            data = np.ones(3)
            comm.send(1, data, tag=0)
            data[:] = -1.0
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="event")
    assert trace.ranks[0].zero_copy_sends == 0
    assert np.allclose(trace.results[1], 1.0)


def test_threaded_engine_never_elides():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4.0) + 1.0, tag=0)
        else:
            return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="threaded")
    assert trace.ranks[0].zero_copy_sends == 0


# ----------------------------------------------------------- event: scale
def test_event_engine_runs_paper_scale_tslu():
    """P = 256 distributed TSLU — impractical on the threaded backend, fast
    on the event engine."""
    P, b = 256, 4
    A = tall_skinny(4 * P, b, seed=1)
    start = time.perf_counter()
    res = ptslu(A, nprocs=P, machine=unit_machine(), engine="event")
    elapsed = time.perf_counter() - start
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    assert res.trace.max_messages == 8  # log2(256)
    assert elapsed < 30.0


def test_custom_engine_can_be_registered():
    from repro.distsim.engine import EventEngine, register_engine, _REGISTRY

    class TaggedEngine(EventEngine):
        name = "tagged"

    register_engine("tagged", TaggedEngine)
    try:
        trace = run_spmd(2, lambda c: c.rank, engine="tagged")
        assert trace.engine == "tagged"
    finally:
        _REGISTRY.pop("tagged", None)


def test_registering_over_an_alias_name_wins():
    """An exact registry entry beats the built-in alias table."""
    from repro.distsim.engine import EventEngine, register_engine, _REGISTRY

    class Custom(EventEngine):
        name = "custom-deterministic"

    register_engine("deterministic", Custom)
    try:
        assert isinstance(get_engine("deterministic"), Custom)
    finally:
        _REGISTRY.pop("deterministic", None)
    # With the override gone the alias resolves to the builtin again.
    assert isinstance(get_engine("deterministic"), EventEngine)


# --------------------------------------------------------- coroutine engine
def test_coroutine_engine_bitwise_reproducible():
    A = randn(32, seed=17)
    grid = ProcessGrid(2, 2)
    first = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="coroutine")
    second = pcalu(A, grid, block_size=8, machine=ibm_power5(), engine="coroutine")
    assert_traces_identical(first.trace, second.trace)
    assert np.array_equal(first.L, second.L)
    assert np.array_equal(first.U, second.U)  # bitwise, not just allclose


def test_coroutine_engine_counts_group_collectives():
    """Collectives over a rank group complete as ONE group-level event
    (diagnostic counter), while the charged messages/words/clocks stay
    bit-identical to the point-to-point evaluation."""
    A = tall_skinny(64, 8, seed=2)
    res_c = ptslu(A, nprocs=8, machine=unit_machine(), engine="coroutine")
    res_e = ptslu(A, nprocs=8, machine=unit_machine(), engine="event")
    assert res_c.trace.total_group_collectives == 8  # one butterfly per rank
    assert res_e.trace.total_group_collectives == 0
    assert_traces_identical(res_c.trace, res_e.trace)


def test_coroutine_engine_falls_back_for_plain_rank_functions():
    """A non-generator rank program runs through the compatibility shim (the
    event engine's machinery) but the trace is still tagged "coroutine"."""

    def prog(comm):  # plain blocking body, no yields
        if comm.rank == 0:
            comm.send(1, np.arange(4.0), tag=0)
            return None
        return comm.recv(0, tag=0)

    trace = run_spmd(2, prog, engine="coroutine")
    assert trace.engine == "coroutine"
    assert np.allclose(trace.results[1], np.arange(4.0))


def test_coroutine_engine_runs_generator_rank_functions_natively():
    @spmd_program
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4.0) * 3.0, tag="x")
            return "sent"
        got = yield from comm.co_recv(0, tag="x")
        return float(np.sum(got))

    trace = run_spmd(2, prog, engine="coroutine")
    assert trace.engine == "coroutine"
    assert trace.results == ["sent", 18.0]


def test_coroutine_engine_structural_deadlock_reports_p2p_and_collective():
    """Satellite: the coroutine deadlock error reports, per blocked rank, the
    (source, tag) or the collective it is stuck in."""

    @spmd_program
    def prog(comm):
        if comm.rank == 0:
            # Joins a collective nobody else ever joins.
            return (yield from allreduce.co(comm, 1, lambda a, b: a + b,
                                            group=[0, 1], tag="lonely"))
        if comm.rank == 1:
            return (yield from comm.co_recv(2, tag="ghost"))
        return None

    start = time.perf_counter()
    with pytest.raises(RankFailedError) as exc:
        run_spmd(3, prog, engine="coroutine", timeout=3600.0)
    assert time.perf_counter() - start < 1.0
    cause = exc.value.__cause__
    assert isinstance(cause, DeadlockError)
    assert cause.blocked[0]["collective"] == "allreduce"
    assert cause.blocked[0]["tag"] == "lonely"
    assert cause.blocked[0]["group"] == (0, 1)
    assert cause.blocked[1] == {"source": 2, "tag": "ghost"}
    assert "waiting in collective" in str(cause)
    assert "rank 1 waiting for (source=2, tag='ghost')" in str(cause)


def test_coroutine_engine_rank_exception_propagates():
    @spmd_program
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        return (yield from comm.co_recv(0, tag="never-sent"))

    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="coroutine")
    # Root cause is the crash, not the deadlock it induced in rank 1.
    assert isinstance(exc.value.__cause__, ValueError)
    assert isinstance(exc.value.failures[1], DeadlockError)


def test_coroutine_engine_blocking_recv_inside_generator_raises():
    """A generator rank calling the *blocking* recv with no matched message
    gets a descriptive error instead of wedging the single host thread."""
    from repro.distsim import SimulationError

    @spmd_program
    def prog(comm):
        yield from ()  # make it a generator
        return comm.recv(1 - comm.rank, tag="nope")

    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, engine="coroutine")
    assert isinstance(exc.value.__cause__, SimulationError)
    assert "co_recv" in str(exc.value.__cause__)


def test_coroutine_engine_back_to_back_same_tag_collectives():
    """Repeated collectives with identical (kind, group, tag, channel) keys
    must rendezvous in FIFO order, not collapse into one event."""

    @spmd_program
    def prog(comm):
        total = 0
        for _ in range(3):
            total = yield from allreduce.co(comm, total + comm.rank + 1,
                                            lambda a, b: a + b, tag="same")
        return total

    t_c = run_spmd(4, prog, engine="coroutine")
    t_e = run_spmd(4, prog, engine="event")
    assert t_c.results == t_e.results
    assert_traces_identical(t_c, t_e)
    assert t_c.total_group_collectives == 12  # 3 rounds x 4 ranks


def test_coroutine_engine_runs_large_p_tslu():
    """The tentpole: P = 2048 TSLU on one host thread in seconds — far past
    where per-rank OS threads are practical."""
    P, b = 2048, 2
    A = tall_skinny(2 * P, b, seed=1)
    start = time.perf_counter()
    res = ptslu(A, nprocs=P, machine=unit_machine(), engine="coroutine")
    elapsed = time.perf_counter() - start
    assert res.trace.max_messages == 11  # log2(2048)
    assert res.trace.total_group_collectives == P
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    assert elapsed < 60.0
