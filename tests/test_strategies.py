"""Tests for the pluggable pivoting-strategy layer (pp / ca / ca_prrp).

Covers the strategy registry and its knobs (``pivoting=`` argument,
process-wide override, ``REPRO_PIVOTING``), the strong rank-revealing QR
kernel behind CALU_PRRP, the three strategies through ``tslu``/``calu``, and
the paper-grid acceptance comparison: at (n=1024, P=32, b=32) every strategy
factors to ``max|A[perm] - L U| < 1e-12`` and CALU_PRRP's growth factor does
not exceed CALU's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu, tslu
from repro.core.calu import factorization_error
from repro.core.strategies import (
    DEFAULT_STRATEGY,
    available_strategies,
    get_strategy,
    resolve_pivoting,
    set_pivoting,
)
from repro.kernels.getf2 import getf2
from repro.kernels.rrqr import (
    DEFAULT_TAU,
    prrp_panel,
    rrqr,
    select_rows_rrqr,
)
from repro.randmat import randn, tall_skinny
from repro.stability.growth import trefethen_schreiber_growth
from repro.stability.report import stability_row_calu


# ------------------------------------------------------------------ registry
def test_registry_lists_all_three_strategies():
    assert available_strategies() == ["ca", "ca_prrp", "pp"]
    assert DEFAULT_STRATEGY == "ca"
    assert get_strategy("ca").tournament and get_strategy("ca").selector == "getf2"
    assert get_strategy("ca_prrp").selector == "rrqr"
    assert not get_strategy("pp").tournament


# The precedence rule (explicit > ambient > REPRO_PIVOTING > default) and
# the context-manager nesting are covered for every knob at once by the
# parametrized suite in tests/test_options.py.
def test_unknown_strategy_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown pivoting strategy"):
        resolve_pivoting("rook")
    with pytest.raises(ValueError, match="unknown pivoting strategy"):
        set_pivoting("rook")
    with pytest.raises(ValueError, match="unknown pivoting strategy"):
        calu(randn(16, seed=0), block_size=4, nblocks=2, pivoting="rook")


def test_env_var_drives_calu(monkeypatch):
    A = randn(48, seed=9)
    monkeypatch.setenv("REPRO_PIVOTING", "ca_prrp")
    res = calu(A, block_size=8, nblocks=2)
    assert res.pivoting == "ca_prrp"
    assert factorization_error(A, res) < 1e-12


# ------------------------------------------------------------------ rrqr kernel
def test_rrqr_reconstructs_and_is_orthonormal():
    rng = np.random.default_rng(0)
    for m, n in [(8, 16), (6, 6), (3, 10)]:
        A = rng.standard_normal((m, n))
        res = rrqr(A)
        assert np.allclose(A[:, res.perm], res.Q @ res.R, atol=1e-12)
        assert np.allclose(res.Q.T @ res.Q, np.eye(res.k), atol=1e-12)
        assert np.array_equal(np.sort(res.perm), np.arange(n))


def test_rrqr_interaction_within_threshold():
    rng = np.random.default_rng(1)
    A = rng.standard_normal((8, 32))
    res = rrqr(A, tau=DEFAULT_TAU)
    assert res.interaction is not None
    assert np.max(np.abs(res.interaction)) <= DEFAULT_TAU


def test_rrqr_rejects_sub_one_tau():
    with pytest.raises(ValueError, match="tau"):
        rrqr(np.eye(3), tau=0.5)


def test_select_rows_rrqr_returns_distinct_rows():
    block = randn(40, seed=3)[:, :8]
    sel = select_rows_rrqr(block, 8)
    assert sel.shape == (8,)
    assert len(set(sel.tolist())) == 8
    # Short block: selects everything there is.
    assert select_rows_rrqr(block[:3], 8).shape == (3,)


def test_prrp_panel_l21_bounded_and_reconstructs():
    W = randn(64, seed=4)[:, :8]
    panel = prrp_panel(W, tau=2.0)
    assert np.max(np.abs(panel.L21)) <= 2.0
    assert np.allclose(W[panel.perm], panel.reconstruct(), atol=1e-12)


def test_prrp_panel_rank_deficient_block():
    """Exactly dependent rows still reconstruct (least-squares L21 fallback)."""
    W = np.ones((10, 4))
    W[5:, :] = 2.0
    panel = prrp_panel(W)
    assert np.allclose(W[panel.perm], panel.reconstruct(), atol=1e-12)


# ------------------------------------------------------- tslu per strategy
@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
def test_tslu_factors_panel_for_every_strategy(strategy):
    A = tall_skinny(64, 8, seed=11)
    res = tslu(A, nblocks=4, pivoting=strategy)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-12)
    assert np.array_equal(np.sort(res.perm), np.arange(64))
    assert np.array_equal(res.winners, res.perm[:8])


def test_tslu_pp_matches_partial_pivoting_reference():
    from repro.core.tslu import tslu_partial_pivoting_reference

    A = tall_skinny(48, 6, seed=12)
    res = tslu(A, nblocks=4, pivoting="pp")
    assert np.array_equal(res.winners, tslu_partial_pivoting_reference(A))


def test_tslu_default_is_bit_identical_to_ca():
    A = tall_skinny(64, 8, seed=13)
    set_pivoting(None)
    base = tslu(A, nblocks=4)
    explicit = tslu(A, nblocks=4, pivoting="ca")
    assert np.array_equal(base.perm, explicit.perm)
    assert np.array_equal(base.L, explicit.L)
    assert np.array_equal(base.U, explicit.U)


def test_tslu_prrp_thresholds_recorded():
    A = tall_skinny(64, 8, seed=14)
    res = tslu(A, nblocks=4, pivoting="ca_prrp", compute_thresholds=True)
    assert res.threshold_history.shape == (8,)
    assert np.all(res.threshold_history > 0.0)
    assert np.all(res.threshold_history <= 1.0)


# ------------------------------------------------------- calu per strategy
@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
@pytest.mark.parametrize("n,b,P", [(64, 8, 4), (50, 8, 4), (22, 8, 2)])
def test_calu_factors_for_every_strategy_and_ragged_sizes(strategy, n, b, P):
    A = randn(n, seed=n + b)
    res = calu(A, block_size=b, nblocks=P, pivoting=strategy)
    assert factorization_error(A, res) < 1e-12
    assert res.pivoting == strategy


@pytest.mark.parametrize("strategy", ["pp", "ca", "ca_prrp"])
def test_calu_tall_matrix_per_strategy(strategy):
    A = randn(60, seed=5)[:, :40]
    res = calu(A, block_size=8, nblocks=4, pivoting=strategy)
    assert np.max(np.abs(A[res.perm, :] - res.L @ res.U)) < 1e-12


def test_calu_pp_pivot_sequence_matches_gepp():
    """Partial-pivoting panels reproduce the classic GEPP pivot sequence."""
    A = randn(48, seed=6)
    res = calu(A, block_size=8, nblocks=4, pivoting="pp")
    ref = getf2(A)
    assert np.array_equal(res.perm, ref.perm)


def test_stability_row_labels_non_default_strategy():
    A = randn(64, seed=7)
    row_ca = stability_row_calu(A, P=2, b=8)
    row_prrp = stability_row_calu(A, P=2, b=8, pivoting="ca_prrp")
    assert row_ca.method == "calu"
    assert row_prrp.method == "calu[ca_prrp]"
    assert row_prrp.growth > 0.0
    assert 0.0 < row_prrp.tau_min <= 1.0


# ------------------------------------------------ acceptance: the paper grid
def test_acceptance_paper_grid_all_strategies_factor_and_prrp_growth_wins():
    """At (n=1024, P=32, b=32): every strategy factors to < 1e-12 and the
    CALU_PRRP (block-form) growth factor does not exceed CALU's."""
    n, P, b = 1024, 32, 32
    A = randn(n, seed=n)
    growth = {}
    for strategy in available_strategies():
        res = calu(A, block_size=b, nblocks=P, pivoting=strategy, track_growth=True)
        err = np.max(np.abs(A[res.perm, :] - res.L @ res.U))
        assert err < 1e-12, (strategy, err)
        growth[strategy] = trefethen_schreiber_growth(A, res.growth_history)
    assert growth["ca_prrp"] <= growth["ca"], growth
    # Growth factors stay in the empirical ~1.5 n^(2/3) regime for all three.
    for strategy, g in growth.items():
        assert g < 3.0 * float(n) ** (2.0 / 3.0), (strategy, g)


def test_prrp_growth_beats_ca_across_seeds():
    """The block-form PRRP growth advantage is not a one-seed accident."""
    n, P, b = 256, 8, 16
    wins = 0
    trials = 4
    for s in range(trials):
        A = randn(n, seed=1000 * s + n)
        g = {}
        for strategy in ("ca", "ca_prrp"):
            res = calu(A, block_size=b, nblocks=P, pivoting=strategy,
                       track_growth=True)
            g[strategy] = trefethen_schreiber_growth(A, res.growth_history)
        wins += g["ca_prrp"] <= g["ca"]
    assert wins >= trials - 1


def test_rrqr_partial_k_selected_columns_exact():
    """With k < min(m, n) the selected columns still factor exactly; the
    trailing columns are only projections (documented partial semantics)."""
    rng = np.random.default_rng(5)
    A = rng.standard_normal((6, 8))
    res = rrqr(A, k=3)
    assert res.k == 3
    assert np.allclose(A[:, res.perm[:3]], res.Q @ res.R[:, :3], atol=1e-12)


def test_prrp_panel_rejects_sub_width_selection():
    W = randn(12, seed=15)[:, :6]
    with pytest.raises(ValueError, match="at least min"):
        prrp_panel(W, b=4)


def test_calu_pp_flop_ledger_matches_blocked_gepp():
    """The pp strategy must not double-charge the panel work: its ledger
    equals the blocked-GEPP reference (panel getf2 + trsm + gemm), with the
    multipliers reused rather than re-solved."""
    from repro.kernels import FlopCounter
    from repro.kernels.getrf import getrf_blocked

    A = randn(96, seed=16)
    res = calu(A, block_size=16, nblocks=4, pivoting="pp", kernel_tier="reference")
    ref = FlopCounter()
    getrf_blocked(A, block_size=16, flops=ref, kernel_tier="reference")
    assert res.flops.muladds == ref.muladds
    assert res.flops.divides == ref.divides
