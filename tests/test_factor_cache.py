"""Tests for the content-addressed distributed factor cache.

The contract under test:

* :func:`repro.harness.factor_key` is injective over every knob that
  changes the factorization's bits (kind, n, seed, grid shape, block size,
  pivoting, kernel tier, engine);
* a miss factors and persists, a hit round-trips the arrays bit-for-bit
  and never re-factors;
* ``REPRO_FACTOR_CACHE_DIR`` relocates the store and
  ``REPRO_FACTOR_CACHE_MAX_BYTES`` / ``max_bytes`` drives LRU eviction
  where hits refresh recency;
* :meth:`FactorCache.fetch_or_factor` is single-flight: concurrent
  requests for one key factor exactly once;
* a cached factor solves bit-identically to a cold ``pdgesv``.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np
import pytest

from repro.harness import FactorCache, factor_key, generate_matrix
from repro.harness.factor_cache import ENV_MAX_BYTES, ENV_VAR
from repro.layouts import ProcessGrid
from repro.machines import unit_machine
from repro.parallel import pdgesv, pdgesv_solve


def _cache(tmp_path, **kw):
    return FactorCache(root=tmp_path / "factors", **kw)


# --------------------------------------------------------------------- keying
def test_factor_key_distinct_across_every_knob():
    base = dict(
        kind="randn", n=64, seed=0, nprow=2, npcol=2, block_size=8,
        pivoting="ca", kernel_tier="lapack", engine="threaded",
    )
    variants = [
        {"kind": "uniform"}, {"n": 96}, {"seed": 1}, {"nprow": 4},
        {"npcol": 1}, {"block_size": 16}, {"pivoting": "pp"},
        {"pivoting": "ca_prrp"}, {"kernel_tier": "reference"},
        {"engine": "coroutine"},
    ]
    keys = [factor_key(**base)] + [factor_key(**{**base, **v}) for v in variants]
    assert len(set(keys)) == len(keys)
    # Stable across calls (pure content address).
    assert factor_key(**base) == keys[0]


def test_generate_matrix_kinds_and_unknown_kind():
    for kind in ("randn", "uniform", "toeplitz", "diagonally_dominant"):
        A = generate_matrix(kind, 16, seed=3)
        assert A.shape == (16, 16) and A.dtype == np.float64
        assert np.array_equal(A, generate_matrix(kind, 16, seed=3))
    with pytest.raises(ValueError, match="unknown matrix kind"):
        generate_matrix("hilbert", 16)


# --------------------------------------------------------------- miss-then-hit
def test_fetch_or_factor_miss_then_hit_round_trips_bits(tmp_path):
    cache = _cache(tmp_path)
    kw = dict(kind="randn", n=48, seed=7, grid=4, block_size=8,
              engine="threaded", machine=unit_machine())
    miss = cache.fetch_or_factor(**kw)
    assert not miss.cached
    assert miss.path.is_file()
    assert miss.factor.key == miss.key

    hit = cache.fetch_or_factor(**kw)
    assert hit.cached
    assert hit.key == miss.key
    assert np.array_equal(hit.factor.packed, miss.factor.packed)
    assert np.array_equal(hit.factor.permuted, miss.factor.permuted)
    assert np.array_equal(hit.factor.perm, miss.factor.perm)
    for attr in ("n", "block_size", "nprow", "npcol", "pivoting",
                 "kernel_tier", "engine"):
        assert getattr(hit.factor, attr) == getattr(miss.factor, attr)
    # The cached artifact carries no in-process factorization trace.
    assert hit.factor.source is None and miss.factor.source is not None


def test_cached_factor_solves_bit_identical_to_cold_pdgesv(tmp_path):
    cache = _cache(tmp_path)
    kw = dict(kind="randn", n=48, seed=7, grid=4, block_size=8,
              engine="threaded", machine=unit_machine())
    cache.fetch_or_factor(**kw)          # populate
    hit = cache.fetch_or_factor(**kw)    # disk round-trip
    assert hit.cached

    A = generate_matrix("randn", 48, seed=7)
    rng = np.random.default_rng(0)
    b = A @ rng.standard_normal(48)
    grid = ProcessGrid.default_for(4)
    cold = pdgesv(A, b, grid, block_size=8, machine=unit_machine(),
                  engine="threaded")
    warm = pdgesv_solve(hit.factor, b, machine=unit_machine(),
                        engine="threaded")
    assert np.array_equal(cold.x, warm.x)
    assert cold.residual_norms == warm.residual_norms
    assert cold.backward_errors == warm.backward_errors


def test_force_recomputes_and_use_cache_false_bypasses_store(tmp_path):
    cache = _cache(tmp_path)
    kw = dict(kind="randn", n=32, seed=1, grid=4, block_size=8,
              engine="threaded", machine=unit_machine())
    first = cache.fetch_or_factor(**kw)
    forced = cache.fetch_or_factor(force=True, **kw)
    assert not forced.cached
    assert np.array_equal(first.factor.packed, forced.factor.packed)

    bypass_root = tmp_path / "empty"
    bypass = FactorCache(root=bypass_root)
    res = bypass.fetch_or_factor(use_cache=False, **kw)
    assert not res.cached
    assert not bypass_root.exists()


def test_env_var_relocates_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "relocated"))
    cache = FactorCache()
    assert cache.root == tmp_path / "relocated"
    cache.fetch_or_factor(kind="randn", n=32, seed=0, grid=4, block_size=8,
                          engine="threaded", machine=unit_machine())
    assert cache.count() == 1
    assert (tmp_path / "relocated").is_dir()


# ----------------------------------------------------------------- LRU capping
def test_lru_cap_evicts_least_recently_used(tmp_path, monkeypatch):
    cache = _cache(tmp_path)
    kws = [
        dict(kind="randn", n=32, seed=s, grid=4, block_size=8,
             engine="threaded", machine=unit_machine())
        for s in (0, 1, 2)
    ]
    fetches = [cache.fetch_or_factor(**kw) for kw in kws]
    sizes = [f.path.stat().st_size for f in fetches]
    assert cache.count() == 3

    # Refresh seed 0's recency (hit), then cap to ~2 artifacts: the LRU
    # artifact (seed 1) must be evicted, seeds 0 and 2 survive.
    # Artifacts share one (n, b) so sizes are near-identical.
    now = [1000.0, 2000.0, 3000.0]
    import os
    for f, t in zip(fetches, now):
        os.utime(f.path, (t, t))
    os.utime(fetches[0].path, (4000.0, 4000.0))  # seed 0 now MRU
    capped = FactorCache(root=cache.root, max_bytes=sum(sizes[:2]))
    capped._enforce_cap()
    keys = {e["seed"] for e in capped.entries()}
    assert keys == {0, 2}


def test_save_never_evicts_the_just_written_artifact(tmp_path):
    cache = _cache(tmp_path)
    fetch = cache.fetch_or_factor(kind="randn", n=32, seed=0, grid=4,
                                  block_size=8, engine="threaded",
                                  machine=unit_machine())
    tiny = FactorCache(root=cache.root, max_bytes=1)  # below any artifact
    tiny.save(fetch.factor, fetch.key, kind="randn", seed=0)
    assert tiny.count() == 1  # the write survives; the cap holds for others


def test_max_bytes_env_var(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_MAX_BYTES, "12345")
    cache = _cache(tmp_path)
    assert cache.max_bytes == 12345
    monkeypatch.delenv(ENV_MAX_BYTES)
    assert _cache(tmp_path).max_bytes is None


# ------------------------------------------------------------------ reporting
def test_entries_count_bytes_purge(tmp_path):
    cache = _cache(tmp_path)
    for s in (0, 1):
        cache.fetch_or_factor(kind="randn", n=32, seed=s, grid=4,
                              block_size=8, engine="threaded",
                              machine=unit_machine())
    entries = cache.entries()
    assert len(entries) == cache.count() == 2
    assert cache.total_bytes() == sum(int(e["bytes"]) for e in entries)
    assert all(e["kind"] == "randn" and e["n"] == 32 for e in entries)
    # MRU first.
    assert entries[0]["mtime"] >= entries[1]["mtime"]
    assert cache.purge() == 2
    assert cache.count() == 0 and cache.total_bytes() == 0


def test_corrupt_artifact_is_a_miss(tmp_path):
    cache = _cache(tmp_path)
    fetch = cache.fetch_or_factor(kind="randn", n=32, seed=0, grid=4,
                                  block_size=8, engine="threaded",
                                  machine=unit_machine())
    fetch.path.write_bytes(b"not an npz")
    assert cache.load(fetch.key) is None
    again = cache.fetch_or_factor(kind="randn", n=32, seed=0, grid=4,
                                  block_size=8, engine="threaded",
                                  machine=unit_machine())
    assert not again.cached  # recomputed, not served corrupt bits
    assert np.array_equal(again.factor.packed, fetch.factor.packed)


# --------------------------------------------------------------- single-flight
def test_fetch_or_factor_is_single_flight(tmp_path, monkeypatch):
    import repro.harness.factor_cache as fc

    cache = _cache(tmp_path)
    calls = itertools.count()
    real = fc.pcalu_factor

    barrier = threading.Barrier(4, timeout=30)

    def counting(*args, **kwargs):
        next(calls)
        return real(*args, **kwargs)

    monkeypatch.setattr(fc, "pcalu_factor", counting)

    results = [None] * 4
    def worker(i):
        barrier.wait()
        results[i] = cache.fetch_or_factor(
            kind="randn", n=32, seed=0, grid=4, block_size=8,
            engine="threaded", machine=unit_machine(),
        )

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert next(calls) == 1  # exactly one factorization ran
    keys = {r.key for r in results}
    assert len(keys) == 1
    assert sum(1 for r in results if not r.cached) == 1
    assert sum(1 for r in results if r.cached) == 3
    first = results[0].factor
    for r in results[1:]:
        assert np.array_equal(r.factor.packed, first.packed)
