"""Tests for the experiment harness (one per table/figure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    factorization_tables,
    figure1,
    figure2,
    format_table,
    panel_tables,
    rows_to_csv,
    table1,
    table2,
    validation,
)


# -------------------------------------------------------------------- Figure 1
def test_figure1_reproduces_paper_narrative():
    res = figure1.run()
    assert res["pivots_match_gepp"]
    assert sorted(res["tslu_pivots"]) == [5, 10]
    assert res["factorization_residual"] < 1e-12
    text = figure1.describe(res)
    assert "TSLU" in text and "GEPP" in text


def test_figure1_rounds_shrink_to_single_winner_set():
    res = figure1.run()
    assert len(res["rounds"][0]) == 4
    assert len(res["rounds"][-1]) == 1


# -------------------------------------------------------------------- Figure 2
def test_figure2_small_run_trends():
    rows = figure2.run(sizes=(64, 128), configs=((2, 8), (4, 8)), samples=1)
    calu_rows = [r for r in rows if r["method"] == "calu"]
    assert calu_rows, "no CALU rows produced"
    for r in calu_rows:
        assert r["tau_min"] > 0.05
        assert r["gT"] > 0
    # Growth increases with n on average.
    g64 = np.mean([r["gT"] for r in calu_rows if r["n"] == 64])
    g128 = np.mean([r["gT"] for r in calu_rows if r["n"] == 128])
    assert g128 > 0.5 * g64


# ------------------------------------------------------------------ Tables 1-2
def test_table1_rows_pass_hpl():
    rows = table1.run(sweep=((64, ((2, 8), (4, 8))), (128, ((4, 16),))))
    assert len(rows) == 3
    assert all(r["hpl_passed"] for r in rows)
    assert all(r["tau_min"] > 0 for r in rows)


def test_table2_rows_pass_hpl():
    rows = table2.run(sizes=(64, 128), samples=2)
    assert len(rows) == 2
    assert all(r["hpl_passed"] for r in rows)
    assert all(r["method"] == "gepp" for r in rows)


# ------------------------------------------------------------------ Tables 3-4
@pytest.mark.parametrize("runner", [panel_tables.run_table3, panel_tables.run_table4])
def test_panel_tables_structure(runner):
    rows = runner(heights=(10_000, 100_000), widths=(50, 150), procs=(4, 16, 64))
    assert rows
    for r in rows:
        assert r["ratio_rec"] > 0 and r["ratio_cl"] > 0
        assert r["m"] >= r["P"] * r["n=b"]


def test_panel_tables_skip_too_small_configurations():
    rows = panel_tables.run_table3(heights=(1_000,), widths=(50,), procs=(4, 64))
    assert all(r["P"] != 64 for r in rows)  # 1000 < 64*50 -> skipped


def test_panel_tables_best_improvement_reasonable():
    rows = panel_tables.run_table3()
    best = panel_tables.best_improvement(rows)
    assert best["best_ratio"] > 1.5  # TSLU clearly wins somewhere


def test_tslu_beats_pdgetf2_on_large_latency_bound_panels():
    """The shape claim of Tables 3-4: the ratio is > 1 in the latency regime."""
    for runner in (panel_tables.run_table3, panel_tables.run_table4):
        rows = runner(heights=(10_000,), widths=(50,), procs=(32, 64))
        assert all(r["ratio_rec"] > 1.0 for r in rows)


# ------------------------------------------------------------------ Tables 5-7
@pytest.mark.parametrize("runner", [factorization_tables.run_table5, factorization_tables.run_table6])
def test_factorization_tables_structure(runner):
    rows = runner(orders=(1_000, 10_000), blocks=(50,), proc_counts=(4, 64))
    assert rows
    for r in rows:
        assert r["improvement"] > 0
        assert r["calu_gflops"] > 0
        assert 0 < r["percent_peak"] <= 100


def test_table5_improvement_grows_with_process_count():
    rows = factorization_tables.run_table5(orders=(1_000,), blocks=(50,), proc_counts=(4, 16, 64))
    imps = [r["improvement"] for r in rows]
    assert imps == sorted(imps)


def test_table7_speedups_and_shape():
    rows = factorization_tables.run_table7(orders=(1_000, 10_000), proc_counts=(16, 64), blocks=(50, 100))
    assert len(rows) == 4
    for r in rows:
        assert r["speedup"] >= 1.0
    # Small matrices benefit more (latency-bound), as in the paper.
    by_machine = {}
    for r in rows:
        by_machine.setdefault(r["machine"], {})[r["m"]] = r["speedup"]
    for mach, d in by_machine.items():
        assert d[1_000] >= d[10_000]


# ------------------------------------------------------------------- validation
def test_validation_panel_counts_match_log2P():
    row = validation.measure_panel_counts(m=64, b=4, P=4)
    assert row["max_messages_per_rank"] == row["expected_log2P"]


def test_validation_factorization_counts_calu_fewer_messages():
    rows = validation.measure_factorization_counts(n=32, b=8, Pr=2, Pc=2)
    by_alg = {r["algorithm"]: r for r in rows}
    assert by_alg["calu"]["max_messages_per_rank"] < by_alg["pdgetrf"]["max_messages_per_rank"]
    assert by_alg["calu"]["factorization_error"] < 1e-10
    assert by_alg["pdgetrf"]["factorization_error"] < 1e-10


# -------------------------------------------------------------------- reporting
def test_format_table_and_csv():
    rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
    text = format_table(rows, title="demo")
    assert "demo" in text and "2.346" in text
    csv = rows_to_csv(rows)
    assert csv.splitlines()[0] == "a,b"
    assert format_table([], title="x").startswith("x")
    assert rows_to_csv([]) == ""


def test_format_table_right_aligns_numeric_columns():
    rows = [{"name": "x", "n": 7}, {"name": "longer", "n": 1024}]
    lines = format_table(rows).splitlines()
    # Header 'n' and both values end-aligned at the right edge of the column.
    assert lines[0] == "name       n"
    assert lines[2] == "x          7"
    assert lines[3] == "longer  1024"


def test_format_table_markdown_mode():
    rows = [{"name": "a|b", "n": 7}, {"name": "c", "n": 1024}]
    text = format_table(rows, title="demo", markdown=True)
    lines = text.splitlines()
    assert lines[0] == "**demo**"
    assert lines[2].startswith("| name") and lines[2].endswith("n |")
    # Numeric column gets a right-alignment marker; pipes in cells escaped.
    assert lines[3].rstrip(" |").endswith(":")
    assert "a\\|b" in text
