"""Unit tests for the sequential-semantics TSLU panel factorization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tslu
from repro.core.tslu import tslu_partial_pivoting_reference
from repro.randmat import figure1_matrix, randn, tall_skinny


@pytest.mark.parametrize("nblocks", [1, 2, 4, 8])
@pytest.mark.parametrize("m,b", [(32, 4), (64, 8), (16, 16), (40, 5)])
def test_tslu_factorization_is_exact(nblocks, m, b):
    A = tall_skinny(m, b, seed=m + b + nblocks)
    res = tslu(A, nblocks=nblocks)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)


def test_tslu_L_unit_lower_and_U_upper():
    A = tall_skinny(48, 6, seed=3)
    res = tslu(A, nblocks=4)
    k = 6
    assert np.allclose(np.diag(res.L[:k, :k]), 1.0)
    assert np.allclose(np.triu(res.L[:k, :k], 1), 0.0)
    assert np.allclose(res.U, np.triu(res.U))


def test_tslu_perm_is_permutation():
    A = tall_skinny(30, 5, seed=4)
    res = tslu(A, nblocks=3)
    assert np.array_equal(np.sort(res.perm), np.arange(30))
    assert np.array_equal(res.perm[:5], res.winners)


def test_tslu_single_block_matches_partial_pivoting():
    """P = 1 => ca-pivoting is exactly partial pivoting (paper, Section 2)."""
    A = tall_skinny(25, 4, seed=6)
    res = tslu(A, nblocks=1)
    assert np.array_equal(res.winners, tslu_partial_pivoting_reference(A))


def test_tslu_width_one_matches_partial_pivoting():
    """b = 1 => the tournament is a max-magnitude reduction = partial pivoting."""
    A = tall_skinny(32, 1, seed=7)
    res = tslu(A, nblocks=4)
    assert res.winners[0] == int(np.argmax(np.abs(A[:, 0])))


def test_tslu_figure1_example_matches_gepp():
    A = figure1_matrix()
    res = tslu(A, nblocks=4, partition="block_cyclic", block_size=2)
    assert sorted(res.winners.tolist()) == sorted(
        tslu_partial_pivoting_reference(A).tolist()
    )
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-12)


@pytest.mark.parametrize("schedule", ["flat", "binary", "butterfly"])
def test_tslu_all_schedules_produce_valid_factorizations(schedule):
    A = tall_skinny(64, 8, seed=8)
    res = tslu(A, nblocks=8, schedule=schedule)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)


@pytest.mark.parametrize("local_kernel", ["getf2", "rgetf2"])
def test_tslu_local_kernels_equivalent(local_kernel):
    """Classic and recursive local kernels choose the same pivots."""
    A = tall_skinny(64, 8, seed=9)
    res = tslu(A, nblocks=4, local_kernel=local_kernel)
    ref = tslu(A, nblocks=4, local_kernel="getf2")
    assert np.array_equal(res.winners, ref.winners)


def test_tslu_threshold_history_in_unit_interval():
    A = tall_skinny(64, 8, seed=10)
    res = tslu(A, nblocks=4, compute_thresholds=True)
    t = res.threshold_history
    assert t.shape == (8,)
    assert np.all(t > 0.0) and np.all(t <= 1.0 + 1e-12)


def test_tslu_row_indices_relabels_output():
    A = tall_skinny(20, 4, seed=11)
    labels = np.arange(100, 120)
    res = tslu(A, nblocks=2, row_indices=labels)
    assert set(res.winners).issubset(set(labels))


def test_tslu_L_entries_bounded_by_inverse_threshold():
    """|L| <= 1/tau_min — the threshold-pivoting interpretation of the paper."""
    A = tall_skinny(128, 8, seed=12)
    res = tslu(A, nblocks=8, compute_thresholds=True)
    tau_min = res.threshold_history.min()
    assert np.max(np.abs(res.L)) <= 1.0 / tau_min + 1e-8


def test_tslu_invalid_inputs():
    with pytest.raises(ValueError):
        tslu(np.zeros((0, 2)), nblocks=2)
    with pytest.raises(ValueError):
        tslu(randn(4, 2, seed=1), nblocks=0)
    with pytest.raises(ValueError):
        tslu(np.ones(5), nblocks=2)
