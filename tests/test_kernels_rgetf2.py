"""Unit tests for the recursive LU kernel (RGETF2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import FlopCounter, getf2, lu_reconstruct, rgetf2
from repro.randmat import randn


@pytest.mark.parametrize("m,n", [(4, 4), (16, 16), (33, 17), (64, 10), (40, 40)])
def test_rgetf2_reconstructs_input(m, n):
    A = randn(m, n, seed=m + n)
    res = rgetf2(A)
    assert np.allclose(lu_reconstruct(res), A, atol=1e-11)


@pytest.mark.parametrize("n", [3, 8, 21, 48])
def test_rgetf2_same_pivots_as_classic(n):
    """The recursive kernel applies partial pivoting, so pivot choices match."""
    A = randn(n, seed=n * 7)
    assert np.array_equal(rgetf2(A).perm, getf2(A).perm)


@pytest.mark.parametrize("threshold", [1, 2, 4, 16])
def test_rgetf2_threshold_does_not_change_result(threshold):
    A = randn(24, 12, seed=5)
    base = rgetf2(A, threshold=8)
    other = rgetf2(A, threshold=threshold)
    assert np.allclose(base.lu, other.lu, atol=1e-12)
    assert np.array_equal(base.perm, other.perm)


def test_rgetf2_rejects_wide_matrix():
    with pytest.raises(ValueError):
        rgetf2(randn(4, 8, seed=1))


def test_rgetf2_flops_close_to_classic():
    """Same arithmetic to leading order (recursion only reorganises it)."""
    A = randn(48, 24, seed=9)
    f1, f2 = FlopCounter(), FlopCounter()
    getf2(A, flops=f1)
    rgetf2(A, flops=f2)
    assert f2.muladds == pytest.approx(f1.muladds, rel=0.05)


def test_rgetf2_single_column():
    A = randn(10, 1, seed=2)
    res = rgetf2(A)
    assert np.allclose(lu_reconstruct(res), A, atol=1e-13)
