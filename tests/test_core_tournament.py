"""Unit tests for the ca-pivoting tournament."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import local_candidates, merge_candidates, partition_rows, tournament_pivoting
from repro.core.tournament import CandidateSet
from repro.kernels import getf2
from repro.randmat import randn


def _blocks(A, nblocks, scheme="contiguous", block=2):
    groups = partition_rows(A.shape[0], nblocks, scheme=scheme, block=block)
    return [(g, A[g, :]) for g in groups]


# ------------------------------------------------------------- partition_rows
@pytest.mark.parametrize("scheme", ["contiguous", "block_cyclic"])
@pytest.mark.parametrize("m,p", [(16, 4), (17, 4), (8, 16), (30, 3)])
def test_partition_rows_covers_exactly_once(scheme, m, p):
    groups = partition_rows(m, p, scheme=scheme, block=2)
    allrows = np.concatenate([g for g in groups if g.size])
    assert np.array_equal(np.sort(allrows), np.arange(m))


def test_partition_rows_unknown_scheme():
    with pytest.raises(ValueError):
        partition_rows(10, 2, scheme="nope")


# ----------------------------------------------------------- local candidates
def test_local_candidates_picks_partial_pivot_rows():
    A = randn(12, 3, seed=1)
    cand = local_candidates(np.arange(12), A, 3)
    ref = getf2(A).perm[:3]
    assert np.array_equal(cand.rows, ref)
    assert np.allclose(cand.block, A[ref, :])


def test_local_candidates_short_block_returns_all_rows():
    A = randn(2, 4, seed=2)
    cand = local_candidates(np.arange(2), A, 4)
    assert cand.rows.shape[0] == 2


def test_local_candidates_empty_block():
    cand = local_candidates(np.arange(0), np.zeros((0, 3)), 3)
    assert cand.rows.shape[0] == 0


def test_candidate_set_validates_shapes():
    with pytest.raises(ValueError):
        CandidateSet(rows=np.arange(3), block=np.zeros((2, 2)))


# ----------------------------------------------------------- merge candidates
def test_merge_candidates_selects_strongest_rows():
    """A block with huge entries must win over a block with tiny entries."""
    big = CandidateSet(rows=np.array([0, 1]), block=np.array([[10.0, 0.0], [0.0, 10.0]]))
    small = CandidateSet(rows=np.array([2, 3]), block=np.array([[0.1, 0.0], [0.0, 0.1]]))
    merged, U = merge_candidates(small, big, 2)
    assert set(merged.rows.tolist()) == {0, 1}
    assert U.shape == (2, 2)


def test_merge_candidates_u_is_upper_triangular():
    a = CandidateSet(rows=np.array([0, 1]), block=randn(2, 2, seed=3))
    b = CandidateSet(rows=np.array([2, 3]), block=randn(2, 2, seed=4))
    _, U = merge_candidates(a, b, 2)
    assert np.allclose(U, np.triu(U))


# -------------------------------------------------------------- full tournament
@pytest.mark.parametrize("schedule", ["flat", "binary", "butterfly"])
@pytest.mark.parametrize("nblocks", [1, 2, 3, 4, 8])
def test_tournament_winners_are_valid_rows(schedule, nblocks):
    A = randn(32, 4, seed=nblocks)
    res = tournament_pivoting(_blocks(A, nblocks), 4, schedule=schedule)
    assert len(set(res.winners.tolist())) == 4
    assert all(0 <= w < 32 for w in res.winners)
    # The winner block must be nonsingular (it is the panel's U11 source).
    assert abs(np.linalg.det(A[res.winners, :])) > 1e-10


@pytest.mark.parametrize("schedule", ["flat", "binary", "butterfly"])
def test_tournament_single_block_equals_partial_pivoting(schedule):
    A = randn(20, 3, seed=9)
    res = tournament_pivoting(_blocks(A, 1), 3, schedule=schedule)
    ref = getf2(A).perm[:3]
    assert np.array_equal(res.winners, ref)


def test_tournament_u_consistent_with_winners():
    """U must be the upper factor of the no-pivot LU of the winner rows."""
    A = randn(24, 4, seed=13)
    res = tournament_pivoting(_blocks(A, 4), 4)
    W = A[res.winners, :]
    # No-pivot elimination of W.
    from repro.kernels.getf2 import getf2_nopivot

    U_ref = np.triu(getf2_nopivot(W))
    assert np.allclose(res.U, U_ref, atol=1e-10)


def test_tournament_rounds_depth():
    A = randn(32, 2, seed=5)
    res_bin = tournament_pivoting(_blocks(A, 8), 2, schedule="binary")
    res_flat = tournament_pivoting(_blocks(A, 8), 2, schedule="flat")
    assert res_bin.rounds == 3
    assert res_flat.rounds == 7


def test_tournament_winners_never_include_zero_rows():
    """Rows that are identically zero cannot win while nonzero rows exist."""
    A = np.zeros((16, 2))
    A[3] = [1.0, 2.0]
    A[11] = [3.0, -1.0]
    res = tournament_pivoting(_blocks(A, 4), 2)
    assert set(res.winners.tolist()) == {3, 11}


def test_tournament_invalid_inputs():
    A = randn(8, 2, seed=1)
    with pytest.raises(ValueError):
        tournament_pivoting(_blocks(A, 2), 0)
    with pytest.raises(ValueError):
        tournament_pivoting([], 2)
    with pytest.raises(ValueError):
        tournament_pivoting(_blocks(A, 2), 2, schedule="unknown")


def test_tournament_block_cyclic_vs_contiguous_same_winner_set_quality():
    """Different partitions may pick different winners, but both winner blocks
    must be well conditioned relative to the best possible pivots."""
    A = randn(40, 4, seed=21)
    w1 = tournament_pivoting(_blocks(A, 4, "contiguous"), 4).winners
    w2 = tournament_pivoting(_blocks(A, 4, "block_cyclic", block=4), 4).winners
    d1 = abs(np.linalg.det(A[w1, :]))
    d2 = abs(np.linalg.det(A[w2, :]))
    assert d1 > 1e-8 and d2 > 1e-8
