"""Unit tests for the unblocked LU kernel (DGETF2 analogue)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.kernels import FlopCounter, FlopFormulas, getf2, lu_reconstruct, split_lu
from repro.kernels.getf2 import getf2_nopivot
from repro.randmat import randn


@pytest.mark.parametrize("m,n", [(1, 1), (4, 4), (8, 5), (5, 8), (16, 16), (40, 7)])
def test_getf2_reconstructs_input(m, n):
    A = randn(m, n, seed=m * 100 + n)
    res = getf2(A)
    assert np.allclose(lu_reconstruct(res), A, atol=1e-12)


@pytest.mark.parametrize("n", [2, 5, 16, 33])
def test_getf2_matches_scipy_pivots(n):
    A = randn(n, seed=n)
    res = getf2(A)
    _, piv = sla.lu_factor(A)
    # scipy returns LAPACK-style ipiv (0-based already via lu_factor).
    assert np.array_equal(res.ipiv, piv)


def test_getf2_partial_pivoting_bounds_L():
    A = randn(50, seed=3)
    res = getf2(A)
    L, _ = split_lu(res.lu)
    assert np.max(np.abs(L)) <= 1.0 + 1e-14


def test_getf2_singular_matrix_flagged():
    A = np.zeros((4, 4))
    res = getf2(A)
    assert res.singular


def test_getf2_exactly_singular_integer_matrix_is_flagged():
    # Row 1 = 2 * row 0 with power-of-two entries: the elimination hits an
    # exact zero pivot (no rounding noise), so the singular flag must be set.
    A = np.array([[2.0, 1.0], [4.0, 2.0]])
    res = getf2(A)
    assert res.singular


def test_getf2_does_not_modify_input_by_default():
    A = randn(6, seed=9)
    A0 = A.copy()
    getf2(A)
    assert np.array_equal(A, A0)


def test_getf2_overwrite_modifies_input():
    A = randn(6, seed=9)
    res = getf2(A, overwrite=True)
    assert res.lu is A


def test_getf2_flop_count_matches_formula():
    m, n = 30, 20
    A = randn(m, n, seed=5)
    flops = FlopCounter()
    getf2(A, flops=flops)
    expected = FlopFormulas.getf2(m, n)
    # The formula is the leading-order count; the exact per-step sum differs
    # by lower-order (m*n, n^2) terms.
    assert flops.muladds == pytest.approx(expected, rel=0.10)
    assert flops.divides == pytest.approx(FlopFormulas.getf2_divides(m, n), rel=1e-12)


def test_getf2_growth_tracking():
    A = randn(16, seed=7)
    history = []
    getf2(A, track_growth=history)
    assert len(history) == 16
    assert all(h > 0 for h in history)


def test_getf2_rejects_1d_input():
    with pytest.raises(ValueError):
        getf2(np.ones(4))


def test_getf2_identity_has_no_pivoting_and_unit_growth():
    A = np.eye(8)
    res = getf2(A)
    assert np.array_equal(res.perm, np.arange(8))
    assert np.allclose(res.lu, np.eye(8))


@pytest.mark.parametrize("m,n", [(6, 6), (10, 4)])
def test_getf2_nopivot_reconstructs_diagonally_dominant(m, n):
    from repro.randmat import diagonally_dominant

    A = diagonally_dominant(max(m, n), seed=2)[:m, :n]
    lu = getf2_nopivot(A)
    L = np.tril(lu[:, : min(m, n)], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(lu[: min(m, n), :])
    assert np.allclose(L @ U, A, atol=1e-10)


def test_getf2_nopivot_counts_flops():
    flops = FlopCounter()
    from repro.randmat import diagonally_dominant

    getf2_nopivot(diagonally_dominant(10, seed=4), flops=flops)
    assert flops.muladds > 0
    assert flops.divides > 0
