"""Direct tests for the local trailing update (``pdgemm_trailing_update``).

The update has two code paths: a fast in-place path when this rank's
trailing rows/columns form contiguous local ranges, and a gather/scatter
path over ``np.ix_`` when they do not (interior panels on grids with more
block-columns than process columns).  These tests exercise the ``np.ix_``
branch directly — scattered indices, parity with the dense update, the
pluggable ``multiply=`` kernel — and through a real factorization whose
layout forces non-contiguous trailing sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim.vmpi import run_spmd
from repro.kernels.flops import FlopFormulas
from repro.layouts.grid import ProcessGrid
from repro.matmul.caps import strassen_multiply
from repro.randmat.generators import randn
from repro.scalapack.indexing import is_contiguous_range
from repro.scalapack.pdgemm import pdgemm_trailing_update


def _run_update(Aloc, L21, U12, rows, cols, multiply=None):
    """Drive one trailing update on a single simulated rank."""
    out = np.array(Aloc, dtype=np.float64)

    def prog(comm):
        pdgemm_trailing_update(
            comm, out, L21, U12, rows, cols, multiply=multiply
        )
        return comm.trace.flops.total

    trace = run_spmd(1, prog)
    return out, trace.results[0]


def test_scattered_indices_hit_the_ix_branch_and_match_dense():
    rng = np.random.default_rng(0)
    Aloc = rng.standard_normal((8, 9))
    rows = np.array([0, 2, 5, 7])
    cols = np.array([1, 3, 4, 8])
    assert not is_contiguous_range(rows) and not is_contiguous_range(cols)
    L21 = rng.standard_normal((rows.size, 3))
    U12 = rng.standard_normal((3, cols.size))

    expected = Aloc.copy()
    expected[np.ix_(rows, cols)] -= L21 @ U12
    out, flops = _run_update(Aloc, L21, U12, rows, cols)
    assert np.array_equal(out, expected)
    assert flops == FlopFormulas.gemm(rows.size, cols.size, 3)
    # Untouched entries are bit-identical.
    mask = np.ones_like(Aloc, dtype=bool)
    mask[np.ix_(rows, cols)] = False
    assert np.array_equal(out[mask], Aloc[mask])


def test_mixed_contiguous_rows_scattered_cols():
    rng = np.random.default_rng(1)
    Aloc = rng.standard_normal((6, 7))
    rows = np.array([2, 3, 4])  # contiguous
    cols = np.array([0, 2, 6])  # scattered -> still the ix_ branch
    L21 = rng.standard_normal((3, 2))
    U12 = rng.standard_normal((2, 3))
    expected = Aloc.copy()
    expected[np.ix_(rows, cols)] -= L21 @ U12
    out, _ = _run_update(Aloc, L21, U12, rows, cols)
    assert np.array_equal(out, expected)


def test_ix_branch_agrees_with_contiguous_branch():
    """Same sub-block through both branches gives bit-identical results."""
    rng = np.random.default_rng(2)
    Aloc = rng.standard_normal((6, 6))
    L21 = rng.standard_normal((3, 2))
    U12 = rng.standard_normal((2, 3))
    rows = np.array([1, 2, 3])
    cols = np.array([2, 3, 4])

    contiguous, _ = _run_update(Aloc, L21, U12, rows, cols)
    # Force the gather/scatter path by appending then dropping a far index.
    perm_rows = np.array([1, 2, 3, 5])
    perm_cols = np.array([0, 2, 3, 4])
    L21_wide = np.vstack([L21, np.zeros((1, 2))])
    U12_wide = np.hstack([np.zeros((2, 1)), U12])
    scattered, _ = _run_update(Aloc, L21_wide, U12_wide, perm_rows, perm_cols)
    assert np.array_equal(contiguous, scattered)


def test_empty_index_sets_are_noops():
    rng = np.random.default_rng(3)
    Aloc = rng.standard_normal((4, 4))
    out, flops = _run_update(
        Aloc, np.zeros((0, 2)), np.zeros((2, 3)), np.array([], dtype=np.int64),
        np.array([0, 1, 3]),
    )
    assert np.array_equal(out, Aloc)
    assert flops == 0


@pytest.mark.parametrize("contiguous", [True, False])
def test_multiply_kernel_plugs_into_both_branches(contiguous):
    rng = np.random.default_rng(4)
    Aloc = rng.standard_normal((18, 18))
    if contiguous:
        rows = np.arange(2, 18)
        cols = np.arange(1, 17)
    else:
        rows = np.array(sorted(rng.choice(18, size=16, replace=False)))
        cols = np.array(sorted(rng.choice(18, size=16, replace=False)))
        if is_contiguous_range(rows):
            rows[0] = (rows[0] + 1) % 18  # extremely unlikely; keep scattered
            rows = np.array(sorted(set(rows)))
    L21 = rng.standard_normal((rows.size, 16))
    U12 = rng.standard_normal((16, cols.size))

    expected = Aloc.copy()
    expected[np.ix_(rows, cols)] -= L21 @ U12
    out, flops = _run_update(Aloc, L21, U12, rows, cols,
                             multiply=strassen_multiply)
    assert np.max(np.abs(out - expected)) < 1e-12
    assert flops > 0


def test_real_factorization_exercises_noncontiguous_trailing_sets():
    """b=4 on a 2x2 grid gives each rank interleaved block-columns, so the
    interior panels update scattered local column sets — the ix_ branch —
    and the factorization must still be exact."""
    from repro.parallel.pcalu import pcalu

    n = 48
    A = randn(n, seed=21)
    res = pcalu(A, ProcessGrid(2, 2), 4)
    err = np.max(np.abs(A[res.perm, :] - res.L @ res.U))
    assert err < 1e-12
