"""Tests for the stability metrics (growth, thresholds, HPL residuals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu
from repro.kernels import getrf_partial_pivoting
from repro.randmat import linear_system, randn
from repro.stability import (
    HPL_PASS_THRESHOLD,
    expected_partial_pivoting_growth,
    hpl_residuals,
    l_infinity_norm_of_L,
    normwise_backward_error,
    stability_row_calu,
    stability_row_gepp,
    threshold_stats,
    trefethen_schreiber_growth,
    wilkinson_growth,
)


# ---------------------------------------------------------------------- growth
def test_growth_factor_identity_is_one_over_sigma():
    A = np.eye(8)
    g = trefethen_schreiber_growth(A, [1.0], sigma=1.0)
    assert g == pytest.approx(1.0)


def test_growth_factor_uses_history_peak():
    A = np.ones((4, 4))
    assert trefethen_schreiber_growth(A, [3.0, 7.0, 2.0], sigma=1.0) == pytest.approx(7.0)


def test_wilkinson_growth_no_growth_is_one():
    A = randn(16, seed=1)
    assert wilkinson_growth(A, []) == pytest.approx(1.0)


def test_calu_growth_comparable_to_gepp():
    """ca-pivoting grows like partial pivoting (Figure 2 left)."""
    n = 256
    A = randn(n, seed=2)
    calu_row = stability_row_calu(A, P=4, b=32)
    gepp_row = stability_row_gepp(A)
    assert calu_row.growth < 8.0 * gepp_row.growth
    # Both stay within a small multiple of the n^(2/3) trend.
    trend = expected_partial_pivoting_growth(n)
    assert calu_row.growth < 10.0 * trend


# ------------------------------------------------------------------ thresholds
def test_threshold_stats_basic():
    stats = threshold_stats(np.array([1.0, 0.5, 0.8]))
    assert stats.minimum == pytest.approx(0.5)
    assert stats.average == pytest.approx((1.0 + 0.5 + 0.8) / 3)
    assert stats.l_bound == pytest.approx(2.0)
    assert stats.count == 3


def test_threshold_stats_empty():
    stats = threshold_stats(np.array([]))
    assert stats.minimum == 1.0 and stats.count == 0


def test_calu_thresholds_match_paper_bounds():
    """τ_min comfortably above zero, τ_ave high — the Table 1 observation.

    The paper reports τ_min >= 0.33 and τ_ave >= 0.84 over its (much larger)
    sample; at these small sizes we check the same qualitative bounds with a
    margin."""
    A = randn(256, seed=3)
    row = stability_row_calu(A, P=8, b=32)
    assert row.tau_min > 0.15
    assert row.tau_ave > 0.7


def test_gepp_l_norm_is_one_calu_bounded():
    A = randn(128, seed=4)
    gepp = getrf_partial_pivoting(A)
    assert l_infinity_norm_of_L(gepp.L) <= 1.0 + 1e-12
    c = calu(A, block_size=16, nblocks=4, compute_thresholds=True)
    assert l_infinity_norm_of_L(c.L) <= 1.0 / c.threshold_history.min() + 1e-6


# ------------------------------------------------------------------- residuals
def test_hpl_residuals_pass_for_good_solution():
    A, b, x = linear_system(64, seed=5)
    x_computed = np.linalg.solve(A, b)
    r = hpl_residuals(A, x_computed, b)
    assert r.passed
    assert max(r.hpl1, r.hpl2, r.hpl3) < HPL_PASS_THRESHOLD


def test_hpl_residuals_fail_for_garbage_solution():
    A, b, _ = linear_system(64, seed=6)
    r = hpl_residuals(A, np.zeros(64), b)
    assert not r.passed


def test_hpl_residuals_as_dict_keys():
    A, b, _ = linear_system(16, seed=7)
    r = hpl_residuals(A, np.linalg.solve(A, b), b)
    assert set(r.as_dict()) == {"HPL1", "HPL2", "HPL3"}


def test_normwise_backward_error_small_for_direct_solve():
    A, b, _ = linear_system(64, seed=8)
    x = np.linalg.solve(A, b)
    assert normwise_backward_error(A, x, b) < 1e-13


# -------------------------------------------------------------- full table rows
@pytest.mark.parametrize("P,b", [(4, 16), (8, 16), (4, 32)])
def test_stability_row_calu_passes_hpl(P, b):
    A = randn(128, seed=P * b)
    row = stability_row_calu(A, P=P, b=b)
    assert row.residuals.passed
    assert row.wb < 1e-12
    assert row.method == "calu"


def test_stability_row_gepp_passes_hpl():
    A = randn(128, seed=9)
    row = stability_row_gepp(A)
    assert row.residuals.passed
    assert row.tau_min == 1.0


def test_calu_and_gepp_same_order_of_magnitude_backward_error():
    """The paper's conclusion: CALU is as stable as GEPP in practice."""
    A = randn(256, seed=10)
    c = stability_row_calu(A, P=8, b=32)
    g = stability_row_gepp(A)
    assert c.wb < 100 * g.wb + 1e-15
