"""The shared configuration subsystem: Option precedence and SolveConfig.

One parametrized suite covers every registered knob (pivoting, engine,
kernel_tier, matmul) at every level of the shared precedence rule —

    explicit per-call argument > ambient context > ``REPRO_*`` env > default

— plus nested context managers, multi-knob ``option_overrides``, and the
shared :class:`UnknownOptionError` naming the offending value and the
available choices.  This replaces the per-knob ad-hoc precedence tests the
four subsystems used to carry.

The :class:`SolveConfig` half covers resolution, field normalization
(grid/engine instances), ``replace`` validation, the machine-model lookup,
and the ambient context manager.
"""

from __future__ import annotations

import pytest

from repro.core.options import (
    KNOBS,
    OPTIONS,
    SolveConfig,
    UnknownOptionError,
    get_option,
    normalize_grid,
    option_overrides,
)

#: (knob, env var, default, two distinct non-default-ish valid values, bad).
#: ``value_a != value_b`` so layered overrides are observable; both differ
#: from whatever the level below would resolve to in each test.
KNOB_CASES = [
    ("pivoting", "REPRO_PIVOTING", "ca", "pp", "ca_prrp", "rook"),
    ("engine", "REPRO_VMPI_ENGINE", "threaded", "event", "coroutine", "warp"),
    ("kernel_tier", "REPRO_KERNEL_TIER", "auto", "reference", "lapack", "nope"),
    ("matmul", "REPRO_MATMUL", "summa", "caps", "summa", "cannon"),
]

KNOB_IDS = [case[0] for case in KNOB_CASES]


@pytest.fixture(autouse=True)
def clean_knobs(monkeypatch):
    """Every test starts from defaults: no env vars, no ambient overrides."""
    for name, env_var, *_ in KNOB_CASES:
        monkeypatch.delenv(env_var, raising=False)
        option = get_option(name)
        monkeypatch.setattr(option, "_ambient", None)
    yield


# ------------------------------------------------------------------ registry
def test_all_four_knobs_are_registered():
    assert set(KNOBS) <= set(OPTIONS)
    for name, env_var, default, *_ in KNOB_CASES:
        option = get_option(name)
        assert option.name == name
        assert option.env_var == env_var
        assert option.default == default


def test_get_option_unknown_knob_names_offender():
    with pytest.raises(UnknownOptionError) as excinfo:
        get_option("blocksize")
    assert excinfo.value.name == "blocksize"
    assert "blocksize" in str(excinfo.value)
    assert set(KNOBS) <= set(excinfo.value.available)


# ------------------------------------------------ the four precedence levels
@pytest.mark.parametrize(
    "name,env_var,default,value_a,value_b,bad", KNOB_CASES, ids=KNOB_IDS
)
class TestPrecedence:
    def test_default_when_nothing_is_set(
        self, name, env_var, default, value_a, value_b, bad
    ):
        option = get_option(name)
        assert option.get() == default
        assert option.resolve() == default
        assert option.resolve(None) == default

    def test_env_beats_default(
        self, name, env_var, default, value_a, value_b, bad, monkeypatch
    ):
        monkeypatch.setenv(env_var, value_a)
        assert get_option(name).resolve() == value_a

    def test_empty_env_is_ignored(
        self, name, env_var, default, value_a, value_b, bad, monkeypatch
    ):
        monkeypatch.setenv(env_var, "")
        assert get_option(name).resolve() == default

    def test_ambient_beats_env(
        self, name, env_var, default, value_a, value_b, bad, monkeypatch
    ):
        monkeypatch.setenv(env_var, value_a)
        option = get_option(name)
        option.set(value_b)
        assert option.resolve() == value_b
        option.set(None)  # clearing re-exposes the environment
        assert option.resolve() == value_a

    def test_explicit_beats_ambient_and_env(
        self, name, env_var, default, value_a, value_b, bad, monkeypatch
    ):
        monkeypatch.setenv(env_var, default)
        option = get_option(name)
        option.set(value_b)
        assert option.resolve(value_a) == value_a

    def test_context_manager_nests_and_restores(
        self, name, env_var, default, value_a, value_b, bad
    ):
        option = get_option(name)
        with option.context(value_a):
            assert option.get() == value_a
            with option.context(value_b):
                assert option.get() == value_b
            assert option.get() == value_a
        assert option.get() == default

    def test_invalid_explicit_value_names_offender(
        self, name, env_var, default, value_a, value_b, bad
    ):
        option = get_option(name)
        with pytest.raises(UnknownOptionError) as excinfo:
            option.resolve(bad)
        assert excinfo.value.name == bad
        assert repr(bad) in str(excinfo.value)

    def test_invalid_ambient_value_rejected_without_sticking(
        self, name, env_var, default, value_a, value_b, bad
    ):
        option = get_option(name)
        with pytest.raises(UnknownOptionError):
            option.set(bad)
        assert option.get() == default

    def test_invalid_env_value_raises_on_resolution(
        self, name, env_var, default, value_a, value_b, bad, monkeypatch
    ):
        monkeypatch.setenv(env_var, bad)
        with pytest.raises(UnknownOptionError):
            get_option(name).resolve()


# ----------------------------------------------------------- multi-knob scope
def test_option_overrides_scopes_several_knobs():
    with option_overrides(pivoting="pp", matmul="caps", engine=None):
        assert get_option("pivoting").get() == "pp"
        assert get_option("matmul").get() == "caps"
        assert get_option("engine").get() == "threaded"  # None skipped
    assert get_option("pivoting").get() == "ca"
    assert get_option("matmul").get() == "summa"


def test_option_overrides_invalid_value_applies_nothing():
    with pytest.raises(UnknownOptionError):
        with option_overrides(pivoting="pp", engine="warp"):
            pass  # pragma: no cover - never entered
    assert get_option("pivoting").get() == "ca"


def test_engine_aliases_canonicalize_through_the_shared_resolver():
    engine = get_option("engine")
    assert engine.resolve("thread") == "threaded"
    assert engine.resolve("deterministic") == "event"
    assert engine.resolve("coro") == "coroutine"
    engine.set("threads")
    assert engine.get() == "threaded"
    engine.set(None)


# ---------------------------------------------------------------- SolveConfig
def test_solveconfig_resolve_uses_shared_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_PIVOTING", "ca_prrp")
    with option_overrides(matmul="caps"):
        config = SolveConfig.resolve(engine="event", grid=4, b=8, nrhs=3)
    assert config.pivoting == "ca_prrp"  # from env
    assert config.matmul == "caps"  # from ambient
    assert config.engine == "event"  # explicit
    assert config.kernel_tier == "auto"  # default
    assert config.grid == (2, 2) and config.P == 4
    assert config.b == 8 and config.nrhs == 3


def test_solveconfig_resolve_accepts_engine_instances():
    from repro.distsim.engine import get_engine

    config = SolveConfig.resolve(engine=get_engine("coroutine"))
    assert config.engine == "coroutine"


def test_solveconfig_replace_validates_knobs_and_normalizes_grid():
    config = SolveConfig.resolve()
    tuned = config.replace(matmul="caps", grid=8, b=32)
    assert tuned.matmul == "caps" and tuned.grid == (2, 4) and tuned.b == 32
    assert config.matmul == "summa"  # frozen original untouched
    with pytest.raises(UnknownOptionError):
        config.replace(pivoting="rook")


def test_solveconfig_machine_model_lookup():
    assert SolveConfig.resolve().machine_model() is None
    model = SolveConfig.resolve(machine="ibm_power5").machine_model()
    assert model is not None and model.gamma > 0.0
    with pytest.raises(UnknownOptionError) as excinfo:
        SolveConfig.resolve(machine="cray_t3e").machine_model()
    assert excinfo.value.name == "cray_t3e"
    assert "ibm_power5" in excinfo.value.available


def test_solveconfig_ambient_applies_all_four_knobs():
    config = SolveConfig.resolve(
        pivoting="pp", engine="event", kernel_tier="reference", matmul="caps"
    )
    with config.ambient():
        assert SolveConfig.resolve() == config.replace(grid=None)
    assert SolveConfig.resolve().pivoting == "ca"


def test_normalize_grid_forms():
    from repro.layouts.grid import ProcessGrid

    assert normalize_grid(None) is None
    assert normalize_grid(6) == (2, 3)
    assert normalize_grid((4, 2)) == (4, 2)
    assert normalize_grid([3, 5]) == (3, 5)
    assert normalize_grid(ProcessGrid(2, 8)) == (2, 8)


def test_solveconfig_describe_and_as_dict_round_trip():
    config = SolveConfig.resolve(grid=(2, 4), b=16, nrhs=2, machine="cray_xt4")
    text = config.describe()
    assert "grid=2x4" in text and "b=16" in text and "machine=cray_xt4" in text
    as_dict = config.as_dict()
    assert as_dict["grid"] == [2, 4]
    assert SolveConfig(**{**as_dict, "grid": tuple(as_dict["grid"])}) == config
