"""Unit tests for process grids and block / block-cyclic layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import Block1D, BlockCyclic1D, BlockCyclic2D, ProcessGrid
from repro.randmat import randn


# ------------------------------------------------------------------ ProcessGrid
def test_grid_rank_coords_roundtrip():
    grid = ProcessGrid(3, 4)
    for r in range(grid.size):
        gr, gc = grid.coords(r)
        assert grid.rank(gr, gc) == r


def test_grid_row_and_column_ranks_partition_all_ranks():
    grid = ProcessGrid(2, 4)
    all_from_rows = sorted(r for i in range(grid.nprow) for r in grid.row_ranks(i))
    all_from_cols = sorted(r for j in range(grid.npcol) for r in grid.column_ranks(j))
    assert all_from_rows == list(range(8))
    assert all_from_cols == list(range(8))


@pytest.mark.parametrize("p,expected", [(4, (2, 2)), (8, (2, 4)), (16, (4, 4)), (6, (2, 3)), (7, (1, 7))])
def test_grid_default_shapes(p, expected):
    grid = ProcessGrid.default_for(p)
    assert (grid.nprow, grid.npcol) == expected
    assert grid.size == p


def test_grid_invalid_inputs():
    with pytest.raises(ValueError):
        ProcessGrid(0, 2)
    grid = ProcessGrid(2, 2)
    with pytest.raises(ValueError):
        grid.coords(4)
    with pytest.raises(ValueError):
        grid.rank(2, 0)


# ---------------------------------------------------------------------- Block1D
@pytest.mark.parametrize("m,p", [(16, 4), (17, 4), (5, 8), (1, 1), (100, 7)])
def test_block1d_partition_covers_all_rows(m, p):
    dist = Block1D(m, p)
    rows = np.concatenate([dist.rows_of(i) for i in range(p)])
    assert np.array_equal(np.sort(rows), np.arange(m))


def test_block1d_owner_consistent_with_rows_of():
    dist = Block1D(23, 5)
    for i in range(23):
        assert i in dist.rows_of(dist.owner(i))


def test_block1d_local_global_roundtrip():
    dist = Block1D(20, 3)
    for p in range(3):
        for li in range(dist.local_count(p)):
            g = dist.to_global(p, li)
            assert dist.owner(g) == p
            assert dist.to_local(g) == li


# ---------------------------------------------------------------- BlockCyclic1D
@pytest.mark.parametrize("m,b,p", [(16, 2, 4), (30, 4, 3), (10, 3, 4), (64, 8, 8)])
def test_block_cyclic1d_partition_covers_all_rows(m, b, p):
    dist = BlockCyclic1D(m, b, p)
    rows = np.concatenate([dist.rows_of(i) for i in range(p)])
    assert np.array_equal(np.sort(rows), np.arange(m))


def test_block_cyclic1d_figure1_layout():
    """Process 0 owns rows 0,1,8,9 (the paper's 1st, 2nd, 9th, 10th rows)."""
    dist = BlockCyclic1D(16, 2, 4)
    assert np.array_equal(dist.rows_of(0), [0, 1, 8, 9])
    assert np.array_equal(dist.rows_of(3), [6, 7, 14, 15])


def test_block_cyclic1d_local_global_roundtrip():
    dist = BlockCyclic1D(30, 4, 3)
    for p in range(3):
        for li in range(dist.local_count(p)):
            g = dist.to_global(p, li)
            assert dist.owner(g) == p
            assert dist.to_local(g) == li


def test_block_cyclic1d_out_of_range_errors():
    dist = BlockCyclic1D(10, 2, 2)
    with pytest.raises(ValueError):
        dist.owner(10)
    with pytest.raises(ValueError):
        dist.to_global(0, 99)


# ---------------------------------------------------------------- BlockCyclic2D
@pytest.mark.parametrize("m,n,b,pr,pc", [(16, 16, 4, 2, 2), (20, 12, 3, 2, 3), (9, 9, 2, 2, 2), (32, 32, 8, 4, 2)])
def test_block_cyclic2d_scatter_gather_roundtrip(m, n, b, pr, pc):
    dist = BlockCyclic2D(m, n, b, ProcessGrid(pr, pc))
    A = randn(m, n, seed=m * n)
    locals_ = dist.scatter(A)
    assert np.allclose(dist.gather(locals_), A)


def test_block_cyclic2d_local_shapes_sum_to_total():
    dist = BlockCyclic2D(20, 14, 3, ProcessGrid(2, 3))
    total = sum(np.prod(dist.local_shape(r)) for r in range(dist.grid.size))
    assert total == 20 * 14


def test_block_cyclic2d_owner_and_index_maps_agree():
    dist = BlockCyclic2D(18, 18, 4, ProcessGrid(2, 2))
    for i in range(18):
        for j in range(0, 18, 5):
            pr, pc = dist.owner_of_entry(i, j)
            assert i in dist.local_rows(pr)
            assert j in dist.local_cols(pc)
            li = dist.global_to_local_row(i)
            assert dist.local_to_global_row(pr, li) == i
            lj = dist.global_to_local_col(j)
            assert dist.local_to_global_col(pc, lj) == j


def test_block_cyclic2d_gather_shape_mismatch_raises():
    dist = BlockCyclic2D(8, 8, 2, ProcessGrid(2, 2))
    locals_ = dist.scatter(randn(8, seed=1))
    locals_[0] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        dist.gather(locals_)


def test_block_cyclic2d_block_counts():
    dist = BlockCyclic2D(10, 7, 3, ProcessGrid(2, 2))
    assert dist.num_block_rows() == 4
    assert dist.num_block_cols() == 3
