"""Additional tests for machine models, cost ledgers and run traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costs import CostLedger
from repro.distsim import RankTrace, RunTrace, run_spmd
from repro.kernels import FlopCounter
from repro.machines import MachineModel, cray_xt4, generic_cluster, ibm_power5, unit_machine


# ------------------------------------------------------------------ RankTrace
def test_rank_trace_records_sends_and_receives():
    t = RankTrace(rank=0)
    t.record_send(10.0, "col")
    t.record_send(5.0, "row")
    t.record_recv(7.0)
    assert t.messages_sent == 2
    assert t.words_sent == 15.0
    assert t.messages_by_channel == {"col": 1, "row": 1}
    assert t.messages_received == 1
    assert t.words_received == 7.0


def test_run_trace_aggregates():
    a = RankTrace(rank=0, clock=3.0)
    a.record_send(10.0, "col")
    a.flops = FlopCounter(muladds=100)
    b = RankTrace(rank=1, clock=5.0)
    b.record_send(2.0, "row")
    b.record_send(2.0, "row")
    trace = RunTrace(ranks=[a, b])
    assert trace.nprocs == 2
    assert trace.total_messages == 3
    assert trace.max_messages == 2
    assert trace.total_words == 14.0
    assert trace.max_words == 10.0
    assert trace.critical_path_time == 5.0
    assert trace.total_flops == 100
    assert trace.messages_by_channel("row") == 2
    assert trace.words_by_channel("col") == 10.0
    summary = trace.summary()
    assert summary["nprocs"] == 2 and summary["critical_path_time"] == 5.0


def test_empty_run_trace_defaults():
    trace = RunTrace(ranks=[])
    assert trace.max_messages == 0
    assert trace.critical_path_time == 0.0


# -------------------------------------------------------------- machine models
def test_machine_channel_fallbacks():
    m = MachineModel(name="m", gamma=1, gamma_d=1, alpha=3.0, beta=0.5)
    assert m.latency("row") == 3.0
    assert m.inv_bandwidth("col") == 0.5
    m2 = m.with_overrides(alpha_row=7.0, beta_col=0.25)
    assert m2.latency("row") == 7.0
    assert m2.inv_bandwidth("col") == 0.25
    assert m2.latency("col") == 3.0


def test_machine_flops_to_gflops_and_zero_time():
    m = generic_cluster()
    assert m.flops_to_gflops(2e9, 1.0) == pytest.approx(2.0)
    assert m.flops_to_gflops(2e9, 0.0) == 0.0
    assert m.percent_of_peak(1e9, 0.0, 4) == 0.0


def test_power5_faster_network_than_xt4():
    """The POWER5's federation switch has lower latency and higher bandwidth."""
    p5, xt4 = ibm_power5(), cray_xt4()
    assert p5.alpha < xt4.alpha
    assert p5.beta < xt4.beta


def test_unit_machine_and_cluster_clock_behaviour():
    def prog(comm):
        comm.charge_flops(muladds=1000)
        return comm.clock

    unit_clock = run_spmd(1, prog, machine=unit_machine()).results[0]
    cluster_clock = run_spmd(1, prog, machine=generic_cluster()).results[0]
    assert unit_clock == 0.0
    assert cluster_clock > 0.0


# ----------------------------------------------------------------- CostLedger
def test_cost_ledger_totals_and_labels():
    ledger = CostLedger(muladds=4, divides=1, messages_col=2, messages_row=3,
                        messages_any=1, words_col=10, words_row=20, words_any=5,
                        label="phase")
    assert ledger.total_messages == 6
    assert ledger.total_words == 35
    assert ledger.total_flops == 5
    combined = ledger + CostLedger(label="")
    assert combined.label == "phase"


def test_cost_ledger_comparisons_field():
    """The γ_cmp term must flow through arithmetic, time and breakdown —
    while total_flops stays in FlopCounter.total's currency (no comparisons)."""
    ledger = CostLedger(muladds=4, divides=1, comparisons=10)
    assert ledger.total_flops == 5
    summed = ledger + CostLedger(comparisons=5)
    assert summed.comparisons == 15
    assert ledger.scaled(2.0).comparisons == 20
    machine = unit_machine().with_overrides(gamma=1.0, gamma_d=1.0, gamma_cmp=0.5,
                                            alpha=0.0)
    assert ledger.time(machine) == pytest.approx(4 + 1 + 10 * 0.5)
    bd = ledger.breakdown(machine)
    assert bd["arithmetic"] == pytest.approx(10.0)
    # With gamma_cmp unset, comparisons are priced at γ (the default).
    plain = machine.with_overrides(gamma_cmp=None)
    assert ledger.time(plain) == pytest.approx(4 + 1 + 10)


def test_panel_models_charge_comparisons():
    """The simulator charges pivot-search comparisons, so the analytic panel
    models must too — or validation drifts whenever gamma_cmp is set."""
    from repro.models import pdgetf2_cost, tslu_cost

    tslu = tslu_cost(m=1024, b=16, P=16)
    ref = pdgetf2_cost(m=1024, b=16, P=16)
    assert tslu.comparisons > 0
    assert ref.comparisons > 0
    free_cmp = unit_machine().with_overrides(gamma=1e-9, gamma_cmp=0.0, alpha=0.0)
    costly_cmp = free_cmp.with_overrides(gamma_cmp=1e-6)
    assert tslu.time(costly_cmp) > tslu.time(free_cmp)
    assert ref.time(costly_cmp) > ref.time(free_cmp)


def test_machine_rejects_negative_channel_overrides():
    """Hierarchical-machine overrides must be validated like the defaults."""
    base = dict(name="m", gamma=1e-9, gamma_d=1e-9, alpha=1e-6, beta=1e-9)
    for field_name in ("alpha_row", "beta_row", "alpha_col", "beta_col"):
        with pytest.raises(ValueError, match=field_name):
            MachineModel(**base, **{field_name: -1.0})
    # Valid overrides still construct.
    model = MachineModel(**base, alpha_row=2e-6, beta_col=0.0)
    assert model.latency("row") == pytest.approx(2e-6)
    assert model.inv_bandwidth("col") == 0.0


def test_cost_ledger_zero_is_neutral_element():
    zero = CostLedger()
    ledger = CostLedger(muladds=7, messages_col=2)
    combined = ledger + zero
    assert combined.muladds == 7 and combined.messages_col == 2
    assert zero.time(ibm_power5()) == 0.0


def test_advance_clock_rejects_negative():
    def prog(comm):
        comm.advance_clock(-1.0)

    from repro.distsim import RankFailedError

    with pytest.raises(RankFailedError):
        run_spmd(1, prog)


def test_charge_counter_resets_scratch():
    def prog(comm):
        scratch = FlopCounter(muladds=50, divides=2)
        comm.charge_counter(scratch)
        return scratch.total, comm.trace.flops.total

    trace = run_spmd(1, prog)
    scratch_total, charged = trace.results[0]
    assert scratch_total == 0
    assert charged == 52
