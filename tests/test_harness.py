"""Tests for the declarative experiment harness (registry, store, sweep, CLI).

The contract under test:

* every registered paper spec produces rows *bit-identical* to the direct
  pre-registry ``experiments/<module>.run()`` call;
* the content-addressed store serves repeated runs from the cache with
  bit-identical rows, recomputes under ``--force``, and honours
  ``REPRO_RESULTS_DIR``;
* the sweep executor expands grids, runs jobs genuinely concurrently
  (including through the event engine), and caches every grid point;
* CSV/JSON serialization round-trips row sets exactly;
* the ``python -m repro`` CLI wires all of the above together.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments import (
    factorization_tables,
    figure1,
    figure2,
    panel_tables,
    rows_from_json,
    rows_to_csv,
    rows_to_json,
    table1,
    table2,
    validation,
)
from repro.experiments.validation import measure_panel_counts
from repro.harness import (
    ExperimentSpec,
    ResultStore,
    all_specs,
    context_key,
    expand_grid,
    get_spec,
    jsonify_rows,
    run_sweep,
    spec_names,
)
from repro.harness import spec as spec_module
from repro.harness.cli import main as cli_main

#: The ten paper specs the registry must expose.
PAPER_SPECS = (
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "figure1", "figure2", "validation",
)

#: Direct (pre-registry) module calls at the specs' --quick sizes.
DIRECT_QUICK_CALLS = {
    "table1": lambda: table1.run(sweep=table1.QUICK_SWEEP),
    "table2": lambda: table2.run(sizes=(64, 128), samples=1),
    "table3": lambda: panel_tables.run_table3(
        heights=(10_000, 100_000), widths=(50,), procs=(4, 16)),
    "table4": lambda: panel_tables.run_table4(
        heights=(10_000, 100_000), widths=(50,), procs=(4, 16)),
    "table5": lambda: factorization_tables.run_table5(
        orders=(1_000,), blocks=(50,), proc_counts=(4, 16)),
    "table6": lambda: factorization_tables.run_table6(
        orders=(1_000,), blocks=(50,), proc_counts=(4, 16)),
    "table7": lambda: factorization_tables.run_table7(
        orders=(1_000,), proc_counts=(16, 64), blocks=(50, 100)),
    "figure1": lambda: figure1.to_rows(figure1.run()),
    "figure2": lambda: figure2.run(sizes=(64, 128), configs=((2, 8), (4, 8)), samples=1),
    "validation": lambda: validation.run(panel_m=64, panel_b=4, fact_n=32),
}


# ------------------------------------------------------------------- registry
def test_registry_exposes_all_paper_specs():
    names = spec_names()
    for name in PAPER_SPECS:
        assert name in names
    # Scenario specs for sweeps beyond the paper's grids.
    for name in ("stability", "panel", "factorization", "panel_counts", "solve"):
        assert name in names


def test_specs_have_paper_references_and_columns():
    for name in PAPER_SPECS:
        spec = get_spec(name)
        assert spec.paper_ref
        assert spec.columns
        assert spec.title


@pytest.mark.parametrize("name", PAPER_SPECS)
def test_registry_rows_bit_identical_to_direct_module_call(name):
    """spec.run(quick) must reproduce the pre-registry module output exactly."""
    spec_rows = get_spec(name).run(quick=True)
    direct_rows = jsonify_rows(DIRECT_QUICK_CALLS[name]())
    assert spec_rows == direct_rows
    # Bit-exact, not just approximately equal: serialize both sides.
    assert json.dumps(spec_rows, sort_keys=True) == json.dumps(direct_rows, sort_keys=True)


def test_unknown_spec_and_unknown_param_raise():
    with pytest.raises(KeyError):
        get_spec("table99")
    with pytest.raises(KeyError):
        get_spec("table2").resolve_params({"not_a_param": 1})


# ---------------------------------------------------------------------- store
def test_cache_miss_then_hit_bit_identical(tmp_path):
    store = ResultStore(root=tmp_path)
    spec = get_spec("table2")
    first = store.fetch_or_run(spec, quick=True)
    assert not first.cached
    assert first.path.is_file()
    second = store.fetch_or_run(spec, quick=True)
    assert second.cached
    assert second.rows == first.rows
    assert json.dumps(second.rows) == json.dumps(first.rows)
    # Metadata captured alongside the rows.
    assert second.artifact["spec"] == "table2"
    assert second.artifact["kernel_tier"] in ("reference", "lapack")
    assert second.artifact["engine"]
    assert second.artifact["n_rows"] == len(first.rows)


def test_force_recomputes_and_no_cache_bypasses(tmp_path):
    store = ResultStore(root=tmp_path)
    spec = get_spec("figure1")
    store.fetch_or_run(spec)
    forced = store.fetch_or_run(spec, force=True)
    assert not forced.cached
    # use_cache=False must not read or write anything.
    bypass_store = ResultStore(root=tmp_path / "empty")
    result = bypass_store.fetch_or_run(spec, use_cache=False)
    assert not result.cached
    assert not (tmp_path / "empty").exists()


def test_results_dir_env_var_relocates_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "relocated"))
    store = ResultStore()
    store.fetch_or_run(get_spec("figure1"))
    assert (tmp_path / "relocated" / "figure1").is_dir()
    assert store.count("figure1") == 1


def test_engine_param_specs_record_the_engine_actually_used(tmp_path):
    """Specs with an ``engine`` parameter key/record that value, not the env."""
    store = ResultStore(root=tmp_path)
    spec = get_spec("panel_counts")
    default = store.fetch_or_run(spec, quick=True)
    assert default.artifact["engine"] == "coroutine"  # the spec's param default
    threaded = store.fetch_or_run(spec, {"engine": "threaded"}, quick=True)
    assert threaded.artifact["engine"] == "threaded"
    assert threaded.artifact["key"] != default.artifact["key"]
    # Message counts are engine-independent (same simulated program).
    assert threaded.rows == default.rows


def test_context_key_depends_on_params_tier_and_engine():
    base = context_key("table1", {"seed": 0}, "lapack", "event")
    assert base == context_key("table1", {"seed": 0}, "lapack", "event")
    assert base != context_key("table1", {"seed": 1}, "lapack", "event")
    assert base != context_key("table1", {"seed": 0}, "reference", "event")
    assert base != context_key("table1", {"seed": 0}, "lapack", "threaded")
    assert base != context_key("table2", {"seed": 0}, "lapack", "event")


def test_artifacts_listing_and_report_surface(tmp_path):
    store = ResultStore(root=tmp_path)
    store.fetch_or_run(get_spec("figure1"))
    store.fetch_or_run(get_spec("table2"), quick=True)
    everything = store.artifacts()
    assert {a["spec"] for a in everything} == {"figure1", "table2"}
    assert [a["spec"] for a in store.artifacts("figure1")] == ["figure1"]


# ---------------------------------------------------------------------- sweep
def test_expand_grid_cartesian_product_in_order():
    combos = expand_grid({"P": (2, 4), "b": (8, 16, 32)})
    assert len(combos) == 6
    assert combos[0] == {"P": 2, "b": 8}
    assert combos[-1] == {"P": 4, "b": 32}
    assert expand_grid({}) == [{}]


def test_sweep_concurrent_jobs_through_event_engine(tmp_path):
    """≥4 grid points, genuinely concurrent, each running the event engine.

    Every job first waits on a barrier — the sweep cannot finish unless all
    four jobs are in flight simultaneously — and then measures a TSLU panel
    on the deterministic event engine.
    """
    barrier = threading.Barrier(4, timeout=30)

    def concurrent_panel_counts(m, b, P):
        barrier.wait()
        return [measure_panel_counts(m=m, b=b, P=P, engine="event")]

    spec = ExperimentSpec(
        name="_test_concurrent_panel",
        title="test-only concurrent panel counts",
        runner=concurrent_panel_counts,
        params={"m": 64, "b": 4, "P": 2},
    )
    spec_module.register(spec)
    try:
        result = run_sweep(
            spec,
            grid={"P": (2, 4), "b": (2, 4)},
            store=ResultStore(root=tmp_path),
            jobs=4,
        )
    finally:
        spec_module._REGISTRY.pop("_test_concurrent_panel", None)

    assert not result.errors
    assert len(result.jobs) == 4
    assert result.max_in_flight == 4
    assert result.misses == 4
    rows = result.rows()
    assert len(rows) == 4
    for row in rows:
        assert row["max_messages_per_rank"] == row["expected_log2P"]


def test_sweep_results_cached_per_grid_point(tmp_path):
    store = ResultStore(root=tmp_path)
    spec = get_spec("panel_counts")
    grid = {"P": (2, 4), "b": (4, 8)}
    first = run_sweep(spec, grid, base={"m": 64}, store=store, jobs=2)
    assert not first.errors
    assert first.misses == 4 and first.hits == 0
    again = run_sweep(spec, grid, base={"m": 64}, store=store, jobs=2)
    assert again.hits == 4 and again.misses == 0
    assert again.rows() == first.rows()
    # Disjoint refinement only computes the new points.
    refined = run_sweep(spec, {"P": (2, 4, 8), "b": (4, 8)},
                        base={"m": 64}, store=store, jobs=2)
    assert refined.hits == 4 and refined.misses == 2


def test_sweep_rows_tag_grid_params():
    spec = get_spec("table2")
    result = run_sweep(spec, {"samples": (1, 2)}, base={"sizes": (64,)},
                       jobs=1, use_cache=False)
    rows = result.rows()
    # 'samples' appears as the table2 column 'S', so it is tagged explicitly.
    assert [r["param:samples"] for r in rows] == [1, 2]
    assert [r["S"] for r in rows] == [1, 2]


# -------------------------------------------------------------- serialization
def test_rows_json_round_trip_is_bit_exact():
    rows = [
        {"a": 1, "b": 1.0 / 3.0, "c": "x,y", "d": [1, [2, 3]], "e": True},
        {"a": 2, "b": 1e-300, "c": "", "d": [], "e": False},
    ]
    text = rows_to_json(rows, metadata={"spec": "demo", "engine": "event"})
    back, meta = rows_from_json(text)
    assert back == rows
    assert back[0]["b"] == rows[0]["b"]  # exact float equality, not approx
    assert meta == {"spec": "demo", "engine": "event"}
    # Bare row lists are accepted too.
    bare, meta2 = rows_from_json(json.dumps(rows))
    assert bare == rows and meta2 == {}


def test_rows_csv_quotes_commas_and_carries_metadata():
    rows = [{"name": "a,b", "vals": [1, 2], "x": 3}]
    text = rows_to_csv(rows, metadata={"spec": "demo"})
    lines = text.splitlines()
    assert lines[0] == "# spec: demo"
    assert lines[1] == "name,vals,x"
    assert lines[2] == '"a,b","[1, 2]",3'


# ------------------------------------------------------------------------ CLI
def run_cli(args, tmp_path):
    return cli_main(list(args) + ["--results-dir", str(tmp_path)])


def test_cli_list(tmp_path, capsys):
    assert run_cli(["list"], tmp_path) == 0
    out = capsys.readouterr().out
    for name in PAPER_SPECS:
        assert name in out


def test_cli_run_quick_caches_and_matches_spec(tmp_path, capsys):
    assert run_cli(["run", "table1", "figure1", "--quick", "--format", "json"],
                   tmp_path) == 0
    captured = capsys.readouterr()
    assert "ran in" in captured.err
    # Run again for a single spec: served from the cache, bit-identical rows.
    assert run_cli(["run", "table1", "--quick", "--format", "json"], tmp_path) == 0
    captured = capsys.readouterr()
    assert "cache hit" in captured.err
    rows, meta = rows_from_json(captured.out)
    assert rows == get_spec("table1").run(quick=True)
    assert meta["spec"] == "table1"
    assert meta["kernel_tier"] in ("reference", "lapack")
    # --force recomputes.
    assert run_cli(["run", "table1", "--quick", "--force"], tmp_path) == 0
    assert "ran in" in capsys.readouterr().err


def test_cli_run_unknown_spec_fails(tmp_path, capsys):
    assert run_cli(["run", "definitely_not_a_spec"], tmp_path) == 1
    assert "FAILED" in capsys.readouterr().err


def test_cli_set_override(tmp_path, capsys):
    assert run_cli(["run", "table2", "--quick", "--set", "sizes=(32,)",
                    "--format", "json"], tmp_path) == 0
    rows, meta = rows_from_json(capsys.readouterr().out)
    assert [r["n"] for r in rows] == [32]
    assert meta["params"]["sizes"] == [32]


def test_cli_engine_flag_takes_precedence_for_engine_param_specs(tmp_path, capsys):
    assert run_cli(["run", "panel_counts", "--quick", "--engine", "threaded",
                    "--format", "json"], tmp_path) == 0
    rows, meta = rows_from_json(capsys.readouterr().out)
    assert meta["engine"] == "threaded"
    assert meta["params"]["engine"] == "threaded"
    assert rows


def test_cli_sweep_and_report(tmp_path, capsys):
    assert run_cli(["sweep", "panel_counts", "--param", "P=2,4",
                    "--param", "b=4,8", "--set", "m=64", "--jobs", "4"],
                   tmp_path) == 0
    captured = capsys.readouterr()
    assert "4 jobs" in captured.err
    assert "max_messages_per_rank" in captured.out
    # All four grid points are now cached artifacts, visible to report.
    assert run_cli(["report", "panel_counts"], tmp_path) == 0
    out = capsys.readouterr().out
    assert out.count("panel_counts (") == 4
    # Markdown report pastes into docs.
    assert run_cli(["report", "panel_counts", "--format", "markdown"], tmp_path) == 0
    assert "| --" in capsys.readouterr().out


def test_cli_report_empty_store_errors(tmp_path, capsys):
    assert run_cli(["report"], tmp_path) == 1
    assert "no cached artifacts" in capsys.readouterr().err


# ------------------------------------------------------- pivoting in the key
def test_context_key_changes_when_only_pivoting_changes():
    base = context_key("stability", {"seed": 0}, "lapack", "event", "ca")
    assert base == context_key("stability", {"seed": 0}, "lapack", "event", "ca")
    assert base != context_key("stability", {"seed": 0}, "lapack", "event", "ca_prrp")
    assert base != context_key("stability", {"seed": 0}, "lapack", "event", "pp")


def test_ambient_pivoting_is_keyed_and_recorded(tmp_path):
    """The process-wide strategy knob must produce distinct artifacts."""
    from repro.core.strategies import pivoting as pivoting_ctx

    store = ResultStore(root=tmp_path)
    spec = get_spec("figure1")  # no 'pivoting' param: ambient applies
    default = store.fetch_or_run(spec)
    assert default.artifact["pivoting"] == "ca"
    with pivoting_ctx("ca_prrp"):
        prrp = store.fetch_or_run(spec)
    assert prrp.artifact["pivoting"] == "ca_prrp"
    assert prrp.artifact["key"] != default.artifact["key"]
    assert not prrp.cached


def test_pivoting_param_specs_record_the_strategy_actually_used(tmp_path):
    """Specs with a ``pivoting`` parameter key/record that value, not the env."""
    store = ResultStore(root=tmp_path)
    spec = get_spec("stability")
    default = store.fetch_or_run(spec, quick=True)
    assert default.artifact["pivoting"] == "ca"
    prrp = store.fetch_or_run(spec, {"pivoting": "ca_prrp"}, quick=True)
    assert prrp.artifact["pivoting"] == "ca_prrp"
    assert prrp.artifact["key"] != default.artifact["key"]
    assert prrp.rows[0]["method"] == "calu[ca_prrp]"


def test_stability_prrp_spec_runs_and_is_keyed_distinctly(tmp_path):
    """The three-way comparison spec: one row per strategy, cache miss then
    hit, artifact keyed apart from the plain stability spec."""
    store = ResultStore(root=tmp_path)
    spec = get_spec("stability_prrp")
    first = store.fetch_or_run(spec, quick=True)
    assert not first.cached
    assert [r["pivoting"] for r in first.rows] == ["ca", "ca_prrp", "pp"]
    for row in first.rows:
        assert row["max_error"] < 1e-12
    second = store.fetch_or_run(spec, quick=True)
    assert second.cached and second.rows == first.rows
    plain = store.fetch_or_run(get_spec("stability"), quick=True)
    assert plain.artifact["key"] != first.artifact["key"]


def test_solve_spec_runs_caches_and_keys_its_axes(tmp_path):
    """The end-to-end solve scenario: accurate row, model-validated message
    counts, miss-then-hit caching, and distinct keys per (pivoting, nrhs)."""
    store = ResultStore(root=tmp_path)
    spec = get_spec("solve")
    first = store.fetch_or_run(spec, quick=True)
    assert not first.cached
    (row,) = first.rows
    assert row["max_abs_error"] < 1e-12
    assert row["vs_sequential"] < 1e-12
    assert row["messages_match"] is True
    assert row["solve_messages"] == row["model_messages"]
    second = store.fetch_or_run(spec, quick=True)
    assert second.cached and second.rows == first.rows
    pp = store.fetch_or_run(spec, {"pivoting": "pp"}, quick=True)
    assert pp.artifact["key"] != first.artifact["key"]
    assert pp.artifact["pivoting"] == "pp"
    multi = store.fetch_or_run(spec, {"nrhs": 3}, quick=True)
    assert multi.artifact["key"] != first.artifact["key"]
    # Batched RHS: still matching the model (the per-phase message count is
    # nrhs-independent; the totals differ only through the data-dependent
    # refinement count).
    assert multi.rows[0]["messages_match"] is True


# ------------------------------------------------------ harness bugfix locks
def test_artifacts_listing_survives_concurrent_deletion(tmp_path, monkeypatch):
    """Regression: a path that vanishes between load and stat must be
    skipped, not crash the `repro report` listing."""
    from pathlib import Path

    store = ResultStore(root=tmp_path)
    store.fetch_or_run(get_spec("figure1"))
    real_stat = Path.stat

    def racing_stat(self, **kwargs):
        if self.suffix == ".json" and tmp_path in self.parents:
            raise FileNotFoundError(f"{self} vanished mid-listing")
        return real_stat(self, **kwargs)

    monkeypatch.setattr(Path, "stat", racing_stat)
    assert store.artifacts() == []
    monkeypatch.setattr(Path, "stat", real_stat)
    assert [a["spec"] for a in store.artifacts()] == ["figure1"]


def test_sweep_rows_tag_fixed_base_params():
    """Regression: fixed ``base`` overrides must appear in sweep rows under
    the ``param:`` prefix (without clobbering row columns), so the CSV/JSON
    output stays self-describing."""
    spec = get_spec("panel_counts")
    result = run_sweep(spec, {"P": (2, 4)}, base={"m": 64, "b": 4},
                       jobs=1, use_cache=False)
    rows = result.rows()
    assert len(rows) == 2
    for row in rows:
        # 'm' and 'b' are row columns already — never clobbered, not tagged.
        assert row["m"] == 64 and row["b"] == 4
        assert "param:m" not in row and "param:b" not in row
    assert [r["param:P"] if "param:P" in r else r["P"] for r in rows] == [2, 4]
    # base is carried on the result itself for reporting.
    assert result.base == {"m": 64, "b": 4}
    assert [j.grid_point for j in result.jobs] == [{"P": 2}, {"P": 4}]


def test_sweep_rows_tag_base_even_for_externally_built_jobs():
    """rows() must consult SweepResult.base, so jobs constructed without the
    merged base still report it."""
    from repro.harness.sweep import SweepJob, SweepResult
    from repro.harness.store import FetchResult
    from pathlib import Path

    job = SweepJob(index=0, total=1, overrides={"P": 2}, grid_point={"P": 2})
    job.result = FetchResult(
        artifact={"rows": [{"value": 42}]}, cached=False, path=Path("x")
    )
    result = SweepResult(spec=get_spec("panel_counts"), jobs=[job],
                         base={"m": 64})
    rows = result.rows()
    assert rows == [{"param:m": 64, "param:P": 2, "value": 42}]


def test_ambient_invariant_spec_ignores_pivoting_env(tmp_path):
    """stability_prrp factors with every strategy explicitly, so the ambient
    knob must neither re-key nor relabel its artifact."""
    from repro.core.strategies import pivoting as pivoting_ctx

    store = ResultStore(root=tmp_path)
    spec = get_spec("stability_prrp")
    assert spec.ambient_invariant == ("pivoting",)
    default = store.fetch_or_run(spec, quick=True)
    with pivoting_ctx("pp"):
        same = store.fetch_or_run(spec, quick=True)
    assert same.cached  # no spurious recompute
    assert same.artifact["key"] == default.artifact["key"]
    assert same.artifact["pivoting"] == "ca"  # labeled with the default


def test_fetch_or_run_is_single_flight_per_key(tmp_path):
    """Concurrent fetches of one context key compute exactly once: the
    first thread runs and stores, the rest wait on the per-key lock and are
    then served the stored artifact as cache hits."""
    n_threads = 4
    barrier = threading.Barrier(n_threads, timeout=30)
    runs = []

    def counting_runner(m, b, P):
        runs.append(threading.get_ident())
        return [{"m": m, "b": b, "P": P}]

    spec = ExperimentSpec(
        name="_test_single_flight",
        title="test-only single-flight runner",
        runner=counting_runner,
        params={"m": 64, "b": 4, "P": 2},
    )
    spec_module.register(spec)
    store = ResultStore(root=tmp_path)
    results = [None] * n_threads

    def fetch(i):
        barrier.wait()
        results[i] = store.fetch_or_run(spec)

    try:
        threads = [
            threading.Thread(target=fetch, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        spec_module._REGISTRY.pop("_test_single_flight", None)

    assert len(runs) == 1  # the runner executed exactly once
    assert sum(1 for r in results if not r.cached) == 1
    assert sum(1 for r in results if r.cached) == n_threads - 1
    first = results[0].artifact
    for r in results[1:]:
        assert r.artifact["key"] == first["key"]
        assert r.rows == first["rows"]


def test_single_flight_lock_is_per_key_and_per_root(tmp_path):
    from repro.harness import key_lock

    a = key_lock((str(tmp_path / "s1"), "k"))
    assert a is key_lock((str(tmp_path / "s1"), "k"))
    assert a is not key_lock((str(tmp_path / "s1"), "other"))
    assert a is not key_lock((str(tmp_path / "s2"), "k"))


# -------------------------------------------------------- solve-as-a-service
def test_cli_serve_miss_then_hit_and_slo_rows(tmp_path, capsys):
    serve_args = [
        "serve", "--kind", "randn", "--n", "32", "--seed", "0", "--P", "4",
        "--b", "8", "--requests", "6", "--window", "4", "--slo", "1e-9",
        "--engine", "threaded",
        "--factor-cache-dir", str(tmp_path / "factors"),
    ]
    assert run_cli(serve_args, tmp_path) == 0
    captured = capsys.readouterr()
    assert "factor cache miss" in captured.err
    assert "req/s" in captured.err and "p95" in captured.err
    assert "slo_misses=0" in captured.err
    # Six request rows, all meeting their SLO.
    assert "met_slo" in captured.out
    assert captured.out.count("True") == 6
    # Second run: the factorization is served from the cache.
    assert run_cli(serve_args, tmp_path) == 0
    assert "factor cache hit" in capsys.readouterr().err


def test_cli_bench_serve_reports_speedup(tmp_path, capsys):
    assert run_cli(
        ["bench-serve", "--kind", "randn", "--n", "32", "--P", "4",
         "--b", "8", "--requests", "8", "--windows", "1,4",
         "--baseline-requests", "2", "--engine", "threaded",
         "--factor-cache-dir", str(tmp_path / "factors")],
        tmp_path,
    ) == 0
    out = capsys.readouterr().out
    assert "pdgesv-per-request" in out
    assert out.count("service") == 2  # one row per window
    assert "speedup_vs_pdgesv" in out


def test_cli_cache_list_and_purge(tmp_path, capsys):
    factors = str(tmp_path / "factors")
    # Populate both stores: one experiment artifact, one factor.
    assert run_cli(["run", "figure1"], tmp_path) == 0
    assert run_cli(
        ["serve", "--n", "32", "--P", "4", "--b", "8", "--requests", "1",
         "--engine", "threaded", "--factor-cache-dir", factors],
        tmp_path,
    ) == 0
    capsys.readouterr()

    assert run_cli(["cache", "list", "--factor-cache-dir", factors], tmp_path) == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "figure1" in out          # result-store breakdown
    assert "randn n=32" in out       # factor entry
    assert "bytes total" in captured.err

    assert run_cli(["cache", "purge", "--factor-cache-dir", factors], tmp_path) == 0
    assert "purged" in capsys.readouterr().err
    assert run_cli(["cache", "list", "--factor-cache-dir", factors], tmp_path) == 0
    out = capsys.readouterr().out
    assert "randn n=32" not in out
