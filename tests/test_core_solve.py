"""Unit tests for the CALU-based linear solver and iterative refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu, calu_solve, lu_solve, solve_with_refinement
from repro.core.solve import componentwise_backward_error
from repro.randmat import ill_conditioned, linear_system, randn


def test_lu_solve_vector_and_matrix_rhs():
    A, b, x_true = linear_system(32, seed=1)
    res = calu(A, block_size=8, nblocks=4)
    x = lu_solve(res.L, res.U, res.perm, b)
    assert np.allclose(x, x_true, atol=1e-8)
    B = np.column_stack([b, 2 * b])
    X = lu_solve(res.L, res.U, res.perm, B)
    assert X.shape == (32, 2)
    assert np.allclose(X[:, 1], 2 * x_true, atol=1e-7)


def test_solve_with_refinement_improves_backward_error():
    A, b, _ = linear_system(64, seed=2)
    fact = calu(A, block_size=16, nblocks=4)
    res = solve_with_refinement(A, b, fact, max_iterations=2)
    assert res.backward_errors[-1] <= res.backward_errors[0] + 1e-16
    assert res.backward_errors[-1] < 1e-13


def test_refinement_stops_early_when_converged():
    A, b, _ = linear_system(32, seed=3, kind="diagonally_dominant")
    fact = calu(A, block_size=8, nblocks=2)
    res = solve_with_refinement(A, b, fact, max_iterations=5, tolerance=1e-12)
    assert res.iterations <= 2


def test_calu_solve_end_to_end():
    A, b, x_true = linear_system(48, seed=4)
    res = calu_solve(A, b, block_size=8, nblocks=4)
    assert np.allclose(res.x, x_true, atol=1e-7)


def test_componentwise_backward_error_zero_for_exact_solution():
    A = np.eye(5)
    x = np.ones(5)
    assert componentwise_backward_error(A, x, x) == 0.0


def test_solver_on_ill_conditioned_system_small_backward_error():
    """Forward error may be large, but the backward error must stay tiny."""
    A = ill_conditioned(40, cond=1e10, seed=5)
    x_true = np.ones(40)
    b = A @ x_true
    res = calu_solve(A, b, block_size=8, nblocks=4)
    assert componentwise_backward_error(A, res.x, b) < 1e-10


def test_solver_hpl_criterion_satisfied():
    from repro.stability import hpl_residuals

    A, b, _ = linear_system(96, seed=6)
    res = calu_solve(A, b, block_size=16, nblocks=4, refine=0)
    r = hpl_residuals(A, res.x, b)
    assert r.passed


def test_multi_rhs_residual_records_max_abs_entry():
    """Regression: with a matrix of right-hand sides the recorded residual
    must be the largest residual entry, not the matrix infinity norm (which
    sums |residuals| across RHS columns and overstates the error)."""
    rng = np.random.default_rng(8)
    A = randn(50, seed=8)
    B = rng.standard_normal((50, 3))
    fact = calu(A, block_size=8, nblocks=4)
    res = solve_with_refinement(A, B, fact, max_iterations=0)
    R = B - A @ res.x
    assert res.x.shape == (50, 3)
    assert res.residual_norms[0] == float(np.max(np.abs(R)))
    # The old matrix-norm recording sums |residuals| across the three RHS
    # columns — strictly larger here, which is exactly the reported bug.
    assert res.residual_norms[0] < float(np.linalg.norm(R, np.inf))


def test_single_rhs_residual_recording_unchanged():
    """For a vector RHS the max-abs entry IS the infinity norm — bit-equal."""
    A, b, _ = linear_system(32, seed=9)
    fact = calu(A, block_size=8, nblocks=2)
    res = solve_with_refinement(A, b, fact, max_iterations=1)
    r0 = b - A @ res.x
    assert res.residual_norms[-1] == float(np.linalg.norm(r0, np.inf))


def test_calu_solve_accepts_pivoting_strategy():
    A, b, x_true = linear_system(48, seed=10)
    res = calu_solve(A, b, block_size=8, nblocks=4, pivoting="ca_prrp")
    assert np.allclose(res.x, x_true, atol=1e-7)
