"""Tests for the distributed TSLU (SPMD on the virtual MPI)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import tslu
from repro.machines import ibm_power5, unit_machine
from repro.parallel import ptslu
from repro.randmat import figure1_matrix, tall_skinny


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
@pytest.mark.parametrize("layout", ["block", "block_cyclic"])
def test_ptslu_factorization_correct(nprocs, layout):
    A = tall_skinny(64, 8, seed=nprocs)
    res = ptslu(A, nprocs=nprocs, layout=layout)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    assert np.array_equal(np.sort(res.perm), np.arange(64))


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_ptslu_message_count_is_log2P_per_rank(nprocs):
    """The headline claim: TSLU needs only log2(P) messages per process."""
    A = tall_skinny(64, 4, seed=3)
    res = ptslu(A, nprocs=nprocs, machine=unit_machine())
    assert res.trace.max_messages == math.log2(nprocs)


def test_ptslu_matches_sequential_tslu_winners():
    A = tall_skinny(64, 8, seed=5)
    par = ptslu(A, nprocs=4, layout="block")
    seq = tslu(A, nblocks=4, partition="contiguous")
    assert np.array_equal(np.sort(par.winners), np.sort(seq.winners))


def test_ptslu_figure1_example():
    A = figure1_matrix()
    res = ptslu(A, nprocs=4, layout="block_cyclic", block_size=2)
    assert sorted(res.winners.tolist()) == [5, 10]


@pytest.mark.parametrize("local_kernel", ["getf2", "rgetf2"])
def test_ptslu_local_kernels_agree(local_kernel):
    A = tall_skinny(48, 6, seed=7)
    res = ptslu(A, nprocs=4, local_kernel=local_kernel)
    ref = ptslu(A, nprocs=4, local_kernel="getf2")
    assert np.array_equal(res.winners, ref.winners)


def test_ptslu_words_per_rank_scale_with_b_squared():
    b = 8
    A = tall_skinny(128, b, seed=9)
    res = ptslu(A, nprocs=4, machine=unit_machine())
    # log2(4) = 2 messages of ~ (b^2 + b) words each.
    expected = 2 * (b * b + b)
    assert res.trace.max_words == pytest.approx(expected, rel=0.2)


def test_ptslu_simulated_time_under_real_machine_is_positive():
    A = tall_skinny(256, 16, seed=11)
    res = ptslu(A, nprocs=8, machine=ibm_power5())
    assert res.trace.critical_path_time > 0.0
    assert res.trace.total_flops > 0.0
