"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_square(rng) -> np.ndarray:
    """A well-conditioned 32 x 32 random matrix."""
    return rng.standard_normal((32, 32))


@pytest.fixture
def tall_panel(rng) -> np.ndarray:
    """A 48 x 6 tall-skinny panel."""
    return rng.standard_normal((48, 6))
