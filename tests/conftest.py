"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Genuine deadlocks on the threaded engine should fail in seconds, not the
# production default of 120 s.  ``default_timeout()`` reads this per call, so
# setting it here covers every run_spmd in the suite; tests that need a
# different value still pass ``timeout=`` explicitly.
os.environ.setdefault("REPRO_VMPI_TIMEOUT", "5")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_square(rng) -> np.ndarray:
    """A well-conditioned 32 x 32 random matrix."""
    return rng.standard_normal((32, 32))


@pytest.fixture
def tall_panel(rng) -> np.ndarray:
    """A 48 x 6 tall-skinny panel."""
    return rng.standard_normal((48, 6))
