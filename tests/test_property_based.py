"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import calu, factorization_error, tournament_pivoting, tslu
from repro.core.tournament import partition_rows
from repro.kernels import getf2, ipiv_to_perm, invert_perm, is_permutation, lu_reconstruct
from repro.layouts import Block1D, BlockCyclic1D, BlockCyclic2D, ProcessGrid
from repro.scalapack import apply_swaps_to_permutation, winners_to_swaps

COMMON_SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- kernels
@given(
    m=st.integers(2, 24),
    n=st.integers(1, 24),
    seed=st.integers(0, 1000),
)
@settings(**COMMON_SETTINGS)
def test_getf2_always_reconstructs(m, n, seed):
    A = np.random.default_rng(seed).standard_normal((m, n))
    res = getf2(A)
    assert np.allclose(lu_reconstruct(res), A, atol=1e-9)
    assert is_permutation(res.perm)


@given(m=st.integers(1, 40), seed=st.integers(0, 1000))
@settings(**COMMON_SETTINGS)
def test_ipiv_perm_inverse_roundtrip(m, seed):
    rng = np.random.default_rng(seed)
    ipiv = np.array([rng.integers(k, m) for k in range(m)])
    perm = ipiv_to_perm(ipiv, m)
    assert is_permutation(perm)
    assert np.array_equal(perm[invert_perm(perm)], np.arange(m))


# --------------------------------------------------------------------- layouts
@given(m=st.integers(1, 200), p=st.integers(1, 16))
@settings(**COMMON_SETTINGS)
def test_block1d_partition_property(m, p):
    dist = Block1D(m, p)
    rows = np.concatenate([dist.rows_of(i) for i in range(p)]) if m else np.array([])
    assert np.array_equal(np.sort(rows), np.arange(m))
    for i in range(m):
        assert i in dist.rows_of(dist.owner(i))


@given(m=st.integers(1, 200), b=st.integers(1, 16), p=st.integers(1, 8))
@settings(**COMMON_SETTINGS)
def test_block_cyclic1d_partition_property(m, b, p):
    dist = BlockCyclic1D(m, b, p)
    rows = np.concatenate([dist.rows_of(i) for i in range(p)])
    assert np.array_equal(np.sort(rows), np.arange(m))


@given(
    m=st.integers(1, 40),
    n=st.integers(1, 40),
    b=st.integers(1, 8),
    pr=st.integers(1, 4),
    pc=st.integers(1, 4),
    seed=st.integers(0, 100),
)
@settings(**COMMON_SETTINGS)
def test_block_cyclic2d_scatter_gather_property(m, n, b, pr, pc, seed):
    dist = BlockCyclic2D(m, n, b, ProcessGrid(pr, pc))
    A = np.random.default_rng(seed).standard_normal((m, n))
    assert np.allclose(dist.gather(dist.scatter(A)), A)


# ------------------------------------------------------------------ tournament
@given(
    m=st.integers(4, 48),
    b=st.integers(1, 6),
    p=st.integers(1, 6),
    seed=st.integers(0, 500),
    schedule=st.sampled_from(["flat", "binary", "butterfly"]),
)
@settings(**COMMON_SETTINGS)
def test_tournament_winner_block_nonsingular(m, b, p, seed, schedule):
    b = min(b, m)
    A = np.random.default_rng(seed).standard_normal((m, b))
    groups = partition_rows(m, p)
    res = tournament_pivoting([(g, A[g, :]) for g in groups], b, schedule=schedule)
    assert len(set(res.winners.tolist())) == min(b, m)
    # Winner block is nonsingular with overwhelming probability for Gaussian data.
    W = A[res.winners, :]
    assert abs(np.linalg.det(W)) > 1e-12


@given(
    m=st.integers(6, 60),
    b=st.integers(1, 8),
    p=st.integers(1, 6),
    seed=st.integers(0, 500),
)
@settings(**COMMON_SETTINGS)
def test_tslu_factorization_property(m, b, p, seed):
    b = min(b, m)
    A = np.random.default_rng(seed).standard_normal((m, b))
    res = tslu(A, nblocks=p)
    assert is_permutation(res.perm)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-8)


# ------------------------------------------------------------------------ CALU
@given(
    n=st.integers(4, 40),
    b=st.integers(1, 12),
    p=st.integers(1, 4),
    seed=st.integers(0, 300),
)
@settings(**COMMON_SETTINGS)
def test_calu_backward_error_property(n, b, p, seed):
    A = np.random.default_rng(seed).standard_normal((n, n))
    res = calu(A, block_size=b, nblocks=p)
    assert is_permutation(res.perm)
    assert factorization_error(A, res) < 1e-8


@given(
    n=st.integers(4, 32),
    b=st.integers(1, 8),
    p=st.integers(1, 4),
    seed=st.integers(0, 300),
)
@settings(**COMMON_SETTINGS)
def test_calu_threshold_bounds_L_property(n, b, p, seed):
    """|L| <= 1 / tau_min — the threshold-pivoting invariant."""
    A = np.random.default_rng(seed).standard_normal((n, n))
    res = calu(A, block_size=b, nblocks=p, compute_thresholds=True)
    tau_min = res.threshold_history.min()
    if tau_min > 0:
        assert np.max(np.abs(res.L)) <= 1.0 / tau_min + 1e-6


# ----------------------------------------------------------------------- swaps
@given(
    m=st.integers(4, 64),
    j0=st.integers(0, 10),
    k=st.integers(1, 8),
    seed=st.integers(0, 500),
)
@settings(**COMMON_SETTINGS)
def test_winners_to_swaps_property(m, j0, k, seed):
    rng = np.random.default_rng(seed)
    j0 = min(j0, m - 1)
    k = min(k, m - j0)
    winners = rng.choice(np.arange(j0, m), size=k, replace=False).tolist()
    swaps = winners_to_swaps(j0, winners)
    perm = apply_swaps_to_permutation(np.arange(m), swaps)
    assert is_permutation(perm)
    assert list(perm[j0 : j0 + k]) == winners
