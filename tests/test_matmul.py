"""Tests for the pluggable distributed-matmul layer (summa / caps).

Covers the backend registry and its knobs (``matmul=`` argument,
process-wide override, ``REPRO_MATMUL``), the local Strassen kernel, the
standalone ``pdgemm`` entry point for both backends, exact agreement of the
measured per-channel message/word totals with the analytic ledgers of
:mod:`repro.models.matmul_model` on multiple engines, the Strassen bandwidth
lower bound as a floor, the CAPS-beats-SUMMA words-moved acceptance point,
bit-identity of the default backend through the LU driver, and the
re-keying of the result store and the factor cache on the new knob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import UnknownOptionError
from repro.kernels.flops import FlopCounter
from repro.layouts.grid import ProcessGrid
from repro.matmul import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    matmul,
    pdgemm,
    resolve_matmul,
    set_matmul,
)
from repro.matmul.caps import (
    caps_count_ledger,
    node_kind,
    owned_intervals,
    strassen_multiply,
)
from repro.models.compare import validate_matmul
from repro.models.matmul_model import (
    caps_message_counts,
    classical_lower_bound_words,
    strassen_lower_bound_words,
    summa_message_counts,
)
from repro.randmat.generators import randn


# ------------------------------------------------------------------ registry
def test_registry_lists_both_backends():
    assert available_backends() == ["caps", "summa"]
    assert DEFAULT_BACKEND == "summa"
    assert get_backend("summa").name == "summa"
    assert get_backend("caps").name == "caps"


def test_unknown_backend_raises_unknown_option_error():
    with pytest.raises(UnknownOptionError, match="unknown matmul backend"):
        get_backend("cannon")
    with pytest.raises(ValueError, match="'cannon'"):
        set_matmul("cannon")
    err = None
    try:
        resolve_matmul("cannon")
    except UnknownOptionError as exc:
        err = exc
    assert err is not None
    assert err.kind == "matmul backend"
    assert err.name == "cannon"
    assert err.available == ["caps", "summa"]


# The precedence rule (explicit > ambient > REPRO_MATMUL > default) and the
# context-manager nesting are covered for every knob at once by the
# parametrized suite in tests/test_options.py.


# ------------------------------------------------------------- local Strassen
def test_strassen_multiply_matches_dense_and_saves_muladds():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((24, 40))
    B = rng.standard_normal((40, 32))
    flops = FlopCounter()
    C = strassen_multiply(A, B, flops=flops)
    assert np.max(np.abs(C - A @ B)) < 1e-12
    classical = 2 * 24 * 40 * 32
    assert 0 < flops.muladds < classical


def test_strassen_multiply_odd_and_tiny_fall_back_to_classical():
    rng = np.random.default_rng(1)
    for shape in ((7, 9, 5), (4, 4, 4), (1, 3, 2)):
        m, k, n = shape
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        assert np.allclose(strassen_multiply(A, B), A @ B)


# --------------------------------------------------------------- caps layout
def test_caps_owned_intervals_partition_every_level():
    for r in (16, 28, 56):
        for g in (1, 7, 10, 49):
            ivals = [owned_intervals(r, g, p) for p in range(g)]
            covered = sorted(
                (s, e) for per in ivals for (s, e) in per
            )
            total = sum(e - s for s, e in covered)
            assert total == r
            # Disjoint and covering [0, r).
            pos = 0
            for s, e in covered:
                assert s == pos and e > s
                pos = e
            assert pos == r


def test_caps_node_kind_dispatch():
    assert node_kind(1, 8, 8, 8) == "local"
    assert node_kind(7, 16, 16, 16) == "bfs"
    assert node_kind(49, 32, 32, 32) == "bfs"
    assert node_kind(10, 32, 32, 32) == "dfs"  # g % 7 != 0, dims large+even
    assert node_kind(7, 9, 9, 9) == "bcast"  # odd dims
    assert node_kind(10, 4, 4, 4) == "bcast"  # even but below DFS_MIN


# ------------------------------------------------------- standalone pdgemm
@pytest.mark.parametrize("backend", ["summa", "caps"])
def test_pdgemm_matches_dense_product(backend):
    rng = np.random.default_rng(2)
    A = rng.standard_normal((20, 18))
    B = rng.standard_normal((18, 26))
    C0 = rng.standard_normal((20, 26))
    grid = ProcessGrid(2, 3) if backend == "summa" else ProcessGrid.default_for(7)
    result = pdgemm(A, B, C=C0, grid=grid, block_size=8, matmul=backend)
    assert np.max(np.abs(result.C - (C0 + A @ B))) < 1e-12


def test_pdgemm_dispatches_on_ambient_knob(monkeypatch):
    monkeypatch.delenv("REPRO_MATMUL", raising=False)
    A = randn(16, seed=3)
    B = randn(16, seed=4)
    grid = ProcessGrid.default_for(7)
    with matmul("caps"):
        res = pdgemm(A, B, grid=grid, block_size=4)
    # All CAPS traffic is point-to-point / group-wide: "any" channel only.
    assert res.trace.messages_by_channel("row") == 0
    assert res.trace.messages_by_channel("col") == 0
    assert res.trace.messages_by_channel("any") > 0
    assert np.max(np.abs(res.C - A @ B)) < 1e-12


def test_pdgemm_shape_validation():
    with pytest.raises(ValueError):
        pdgemm(np.zeros((4, 5)), np.zeros((4, 5)))
    with pytest.raises(ValueError):
        pdgemm(np.zeros((4, 4)), np.zeros((4, 4)), C=np.zeros((3, 4)))


# ------------------------------------------------- ledgers: measured == model
@pytest.mark.parametrize("engine", ["coroutine", "event"])
@pytest.mark.parametrize(
    "backend,n,P,b",
    [
        ("summa", 24, 6, 8),
        ("summa", 18, 4, 8),  # ragged: b does not divide n
        ("caps", 16, 7, 4),
        ("caps", 28, 49, 4),
        ("caps", 16, 10, 4),  # non-power-of-two, non-multiple-of-7 P
        ("caps", 18, 7, 4),  # odd dims -> bcast leaf
    ],
)
def test_measured_counts_match_model_exactly(backend, n, P, b, engine):
    A = randn(n, seed=5 + n)
    B = randn(n, seed=6 + n)
    grid = ProcessGrid.default_for(P)
    res = pdgemm(A, B, grid=grid, block_size=b, matmul=backend, engine=engine)
    check = validate_matmul(res.trace, backend, n, n, n, grid, block_size=b)
    assert check.messages_match, (check.measured, check.predicted)
    assert check.words_match, (check.measured, check.predicted)
    assert check.above_lower_bound
    assert np.max(np.abs(res.C - A @ B)) < 1e-11


def test_caps_ledger_matches_model_wrapper():
    assert caps_message_counts(56, 56, 56, 343) == caps_count_ledger(56, 56, 56, 343)


def test_summa_closed_form_sanity():
    counts = summa_message_counts(20, 18, 26, 2, 3, 8)
    assert counts["messages_row"] == 3 * 2 * (3 - 1)
    assert counts["words_row"] == (3 - 1) * 20 * 18
    assert counts["messages_col"] == 3 * 3 * (2 - 1)
    assert counts["words_col"] == (2 - 1) * 18 * 26
    assert counts["messages_any"] == 0.0 and counts["words_any"] == 0.0


# ------------------------------------------- the communication-cost headline
def test_caps_beats_summa_on_words_moved_at_scale():
    """The tentpole acceptance point: CAPS moves asymptotically fewer words."""
    n, P = 56, 343
    grid = ProcessGrid.default_for(P)
    summa_words = summa_message_counts(n, n, n, grid.nprow, grid.npcol, 8)[
        "total_words"
    ]
    caps_words = caps_message_counts(n, n, n, P)["total_words"]
    assert caps_words < summa_words
    assert summa_words / caps_words > 1.5


def test_strassen_lower_bound_is_a_floor_for_caps():
    n, P = 56, 343
    bound = strassen_lower_bound_words(n, n, n, P)
    measured_per_proc = caps_message_counts(n, n, n, P)["total_words"] / P
    assert bound <= measured_per_proc
    # And the classical bound sits strictly above the Strassen one.
    assert strassen_lower_bound_words(n, n, n, P) < classical_lower_bound_words(
        n, n, n, P
    )


# ------------------------------------------------ LU driver integration
def test_default_backend_is_bit_identical_through_pcalu():
    from repro.parallel.pcalu import pcalu

    A = randn(48, seed=11)
    grid = ProcessGrid(2, 2)
    base = pcalu(A, grid, 8)
    explicit = pcalu(A, grid, 8, matmul="summa")
    assert base.L.tobytes() == explicit.L.tobytes()
    assert base.U.tobytes() == explicit.U.tobytes()
    assert np.array_equal(base.perm, explicit.perm)


def test_caps_backend_through_pcalu_factors_correctly():
    from repro.parallel.pcalu import pcalu

    A = randn(48, seed=12)
    grid = ProcessGrid(2, 2)
    res = pcalu(A, grid, 8, matmul="caps")
    err = np.max(np.abs(A[res.perm, :] - res.L @ res.U))
    assert err < 1e-11
    ref = pcalu(A, grid, 8, matmul="summa")
    # Same pivots (pivoting is decided before the trailing update), and the
    # factors agree to roundoff — Strassen reassociates the arithmetic.
    assert np.array_equal(res.perm, ref.perm)
    assert np.max(np.abs(res.L - ref.L)) < 1e-11


def test_pdgesv_solves_with_caps_backend():
    from repro.parallel.psolve import pdgesv

    n = 48
    A = randn(n, seed=13)
    x_true = randn(n, 2, seed=14)
    res = pdgesv(A, A @ x_true, ProcessGrid(2, 2), block_size=8, matmul="caps")
    assert np.max(np.abs(res.x - x_true)) < 1e-9


# ------------------------------------------------------------- cache re-keying
def test_context_key_depends_on_matmul(tmp_path):
    from repro.harness.store import context_key

    k1 = context_key("solve", {"n": 48}, "lapack", "event", "ca", "summa")
    k2 = context_key("solve", {"n": 48}, "lapack", "event", "ca", "caps")
    assert k1 != k2
    # Default keeps historical five-argument call sites working.
    assert context_key("solve", {"n": 48}, "lapack", "event", "ca") == k1


def test_factor_cache_keys_and_roundtrips_matmul(tmp_path):
    from repro.harness.factor_cache import FactorCache, factor_key

    k1 = factor_key("randn", 48, 0, 2, 2, 8, "ca", "lapack", "event")
    k2 = factor_key("randn", 48, 0, 2, 2, 8, "ca", "lapack", "event",
                    matmul="caps")
    assert k1 != k2

    cache = FactorCache(root=tmp_path)
    first = cache.fetch_or_factor(n=48, grid=ProcessGrid(2, 2), block_size=8,
                                  matmul="caps")
    assert not first.cached
    again = cache.fetch_or_factor(n=48, grid=ProcessGrid(2, 2), block_size=8,
                                  matmul="caps")
    assert again.cached
    assert again.factor.matmul == "caps"
    other = cache.fetch_or_factor(n=48, grid=ProcessGrid(2, 2), block_size=8,
                                  matmul="summa")
    assert not other.cached  # distinct artifact per backend
    assert other.factor.matmul == "summa"


def test_result_store_keys_matmul_param_runs_distinctly(tmp_path):
    from repro.harness import get_spec
    from repro.harness.store import ResultStore

    store = ResultStore(root=tmp_path)
    spec = get_spec("matmul_tradeoff")
    a = store.fetch_or_run(spec, {"matmul": "summa"}, quick=True)
    b = store.fetch_or_run(spec, {"matmul": "caps"}, quick=True)
    assert a.artifact["key"] != b.artifact["key"]
    assert a.artifact["matmul"] == "summa"
    assert b.artifact["matmul"] == "caps"
    assert a.rows[0]["words_match"] and b.rows[0]["words_match"]
