"""Unit tests for the sequential-semantics CALU factorization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu, factorization_error, reconstruct
from repro.kernels import getrf_partial_pivoting
from repro.randmat import (
    diagonally_dominant,
    ill_conditioned,
    randn,
    toeplitz_random,
    uniform,
)


@pytest.mark.parametrize("n,b,P", [(32, 8, 4), (48, 16, 2), (64, 8, 8), (33, 7, 3), (16, 16, 1)])
def test_calu_factorization_is_accurate(n, b, P):
    A = randn(n, seed=n + b + P)
    res = calu(A, block_size=b, nblocks=P)
    assert factorization_error(A, res) < 1e-12


def test_calu_reconstruct_roundtrip():
    A = randn(40, seed=1)
    res = calu(A, block_size=8, nblocks=4)
    assert np.allclose(reconstruct(res), A, atol=1e-10)


def test_calu_L_unit_lower_triangular():
    A = randn(32, seed=2)
    res = calu(A, block_size=8, nblocks=4)
    assert np.allclose(np.diag(res.L), 1.0)
    assert np.allclose(np.triu(res.L, 1), 0.0)
    assert np.allclose(res.U, np.triu(res.U))


def test_calu_perm_is_permutation():
    A = randn(30, seed=3)
    res = calu(A, block_size=6, nblocks=3)
    assert np.array_equal(np.sort(res.perm), np.arange(30))


def test_calu_equals_partial_pivoting_when_single_block_row():
    """P = 1: every panel tournament degenerates to partial pivoting."""
    A = randn(32, seed=4)
    res = calu(A, block_size=8, nblocks=1)
    ref = getrf_partial_pivoting(A)
    assert np.array_equal(res.perm, ref.perm)
    assert np.allclose(res.L, ref.L, atol=1e-12)
    assert np.allclose(res.U, ref.U, atol=1e-12)


def test_calu_block_width_one_equals_partial_pivoting():
    """b = 1: the tournament selects the max-magnitude entry per column."""
    A = randn(24, seed=5)
    res = calu(A, block_size=1, nblocks=4, partition="contiguous")
    ref = getrf_partial_pivoting(A)
    # Same pivot magnitudes on the diagonal of U.
    assert np.allclose(np.abs(np.diag(res.U)), np.abs(np.diag(ref.U)), atol=1e-10)


@pytest.mark.parametrize(
    "generator", [randn, uniform, toeplitz_random, diagonally_dominant]
)
def test_calu_on_different_matrix_families(generator):
    A = generator(48, seed=6)
    res = calu(A, block_size=8, nblocks=4)
    assert factorization_error(A, res) < 1e-11


def test_calu_on_ill_conditioned_matrix_backward_stable():
    A = ill_conditioned(48, cond=1e12, seed=7)
    res = calu(A, block_size=8, nblocks=4)
    # Backward error stays small even though the matrix is nearly singular.
    assert factorization_error(A, res) < 1e-10


def test_calu_block_size_larger_than_matrix():
    A = randn(16, seed=8)
    res = calu(A, block_size=64, nblocks=2)
    assert factorization_error(A, res) < 1e-12


def test_calu_rectangular_tall():
    A = randn(40, seed=9)[:, :24]
    res = calu(A, block_size=8, nblocks=4)
    assert res.L.shape == (40, 24)
    assert res.U.shape == (24, 24)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-11)


def test_calu_growth_and_threshold_histories():
    A = randn(64, seed=10)
    res = calu(A, block_size=16, nblocks=4, track_growth=True, compute_thresholds=True)
    assert len(res.growth_history) == 4
    assert res.threshold_history.shape == (64,)
    assert np.all(res.threshold_history > 0.0)
    assert np.all(res.threshold_history <= 1.0 + 1e-12)


def test_calu_threshold_bounds_L():
    A = randn(96, seed=11)
    res = calu(A, block_size=16, nblocks=4, compute_thresholds=True)
    tau_min = res.threshold_history.min()
    assert np.max(np.abs(res.L)) <= 1.0 / tau_min + 1e-6


def test_calu_flops_close_to_lu_count():
    """CALU's arithmetic is (2/3)n^3 plus the redundant panel work."""
    n, b, P = 64, 16, 4
    A = randn(n, seed=12)
    res = calu(A, block_size=b, nblocks=P)
    lu_flops = 2.0 * n**3 / 3.0
    assert res.flops.muladds > 0.9 * lu_flops
    # Redundant work is a small multiple, not a blow-up.
    assert res.flops.muladds < 3.0 * lu_flops


def test_calu_invalid_inputs():
    with pytest.raises(ValueError):
        calu(randn(8, 12, seed=1), block_size=2, nblocks=2)  # wide matrix
    with pytest.raises(ValueError):
        calu(randn(8, seed=1), block_size=0, nblocks=2)
    with pytest.raises(ValueError):
        calu(randn(8, seed=1), block_size=2, nblocks=0)
    with pytest.raises(ValueError):
        calu(np.ones(3), block_size=1, nblocks=1)


@pytest.mark.parametrize("schedule", ["flat", "binary", "butterfly"])
def test_calu_schedules_all_stable(schedule):
    A = randn(48, seed=13)
    res = calu(A, block_size=8, nblocks=4, schedule=schedule)
    assert factorization_error(A, res) < 1e-12
