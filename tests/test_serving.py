"""Tests for the solve-as-a-service dispatcher (``SolveService``).

The contract under test:

* N threaded submitters against one service coalesce into at most
  ``ceil(N / window)`` batches (and as many multi-RHS sweep pairs), every
  per-request residual meets its SLO, and the answers match serial
  ``pdgesv`` calls — bitwise against the identically-shaped coalesced
  ``pdgesv_solve`` batch, and to the repo's batched-vs-per-column BLAS
  tolerance (1e-13) against one-at-a-time solves;
* ``drain()`` on a ``start=False`` service is deterministic: submission
  order, batches of exactly ``window``;
* multi-column and zero-column requests, SLO-driven refinement, stats
  accounting, and close/context-manager semantics.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.harness import SolveService
from repro.layouts import ProcessGrid
from repro.machines import unit_machine
from repro.parallel import pcalu_factor, pdgesv, pdgesv_solve
from repro.randmat import randn

N, B = 48, 8
GRID = ProcessGrid.default_for(4)
ENGINE = "threaded"


@pytest.fixture(scope="module")
def setup():
    A = randn(N, seed=11)
    factor = pcalu_factor(A, GRID, B, machine=unit_machine(), engine=ENGINE)
    rng = np.random.default_rng(42)
    rhs = [A @ rng.standard_normal(N) for _ in range(12)]
    return A, factor, rhs


def _service(factor, **kw):
    kw.setdefault("machine", unit_machine())
    kw.setdefault("engine", ENGINE)
    return SolveService(factor, **kw)


# ------------------------------------------------------- concurrent coalescing
def test_threaded_submitters_coalesce_and_match_serial_pdgesv(setup):
    A, factor, rhs = setup
    n_requests, window = 12, 4
    slo = 1e-10
    barrier = threading.Barrier(n_requests, timeout=30)
    outcomes = [None] * n_requests

    with _service(factor, window=window, linger_s=0.05) as service:
        def submitter(i):
            barrier.wait()
            outcomes[i] = service.solve(rhs[i], slo=slo, timeout=120)

        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(n_requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

    # Coalescing happened: at most ceil(N/window) batches, and the sweep
    # count is 2*(1+iterations) per batch — independent of nrhs.
    stats = service.stats
    max_batches = -(-n_requests // window)
    assert stats.requests == n_requests
    assert stats.batches <= max_batches
    assert stats.batched_rhs == n_requests
    assert stats.max_batch <= window
    assert stats.sweeps <= 2 * max_batches * (1 + service.refine)
    assert stats.slo_misses == 0

    # Every request met its SLO and reports its batch.
    for o in outcomes:
        assert o.met_slo and o.residual <= slo
        assert o.slo == slo
        assert 1 <= o.batch_id <= stats.batches
        assert 1 <= o.batch_size <= window
        assert o.latency_s > 0
        assert o.x.shape == (N,)

    # Answers match one-at-a-time serial pdgesv to the repo's
    # batched-vs-per-column BLAS tolerance.
    for i, o in enumerate(outcomes):
        serial = pdgesv(A, rhs[i], GRID, block_size=B,
                        machine=unit_machine(), engine=ENGINE)
        assert o.x == pytest.approx(serial.x, abs=1e-13)


def test_batches_are_bit_identical_to_coalesced_pdgesv_solve(setup):
    _, factor, rhs = setup
    with _service(factor, window=4, start=False) as service:
        futures = [service.submit(b) for b in rhs[:8]]
        assert service.drain() == 2
    outcomes = [f.result(timeout=0) for f in futures]

    # Each drained batch stacked 4 columns; the service's answer must be
    # bitwise the same-shape pdgesv_solve batch.
    for lo in (0, 4):
        batch = np.column_stack(rhs[lo : lo + 4])
        direct = pdgesv_solve(factor, batch, machine=unit_machine(),
                              engine=ENGINE)
        for j, o in enumerate(outcomes[lo : lo + 4]):
            assert np.array_equal(o.x, direct.x[:, j])
            assert o.iterations == direct.iterations
            history = [float(row[j]) for row in direct.per_rhs_residuals]
            assert o.residual_history == pytest.approx(history, abs=0)


# ------------------------------------------------------------- drain semantics
def test_drain_is_deterministic_in_submission_order(setup):
    _, factor, rhs = setup
    service = _service(factor, window=3, start=False)
    futures = [service.submit(b) for b in rhs[:7]]
    assert service.drain() == 3  # ceil(7/3): batches of 3, 3, 1
    batch_ids = [f.result(timeout=0).batch_id for f in futures]
    assert batch_ids == [1, 1, 1, 2, 2, 2, 3]
    sizes = [f.result(timeout=0).batch_size for f in futures]
    assert sizes == [3, 3, 3, 3, 3, 3, 1]
    assert service.drain() == 0  # idempotent when empty
    service.close()


def test_drain_requires_stopped_dispatcher(setup):
    _, factor, _ = setup
    with _service(factor) as service:
        with pytest.raises(RuntimeError, match="start=False"):
            service.drain()


def test_multi_column_request_stays_whole_and_bounds_by_columns(setup):
    _, factor, rhs = setup
    service = _service(factor, window=4, start=False)
    wide = np.column_stack(rhs[:3])  # 3 columns
    f_wide = service.submit(wide)
    f_one = service.submit(rhs[3])
    f_next = service.submit(np.column_stack(rhs[4:6]))  # 2 cols: next batch
    assert service.drain() == 2
    o_wide, o_one, o_next = (
        f.result(timeout=0) for f in (f_wide, f_one, f_next)
    )
    assert o_wide.x.shape == (N, 3)
    assert o_wide.batch_id == o_one.batch_id == 1
    assert o_wide.batch_size == 4  # 3 + 1 columns coalesced
    assert o_next.batch_id == 2 and o_next.batch_size == 2
    service.close()


def test_zero_column_request_is_fulfilled_immediately(setup):
    _, factor, _ = setup
    with _service(factor, start=False) as service:
        outcome = service.submit(np.zeros((N, 0))).result(timeout=0)
    assert outcome.x.shape == (N, 0)
    assert outcome.met_slo and outcome.residual == 0.0
    assert outcome.batch_size == 0
    assert service.stats.requests == 0  # never joined a sweep


# ----------------------------------------------------------------- SLO + stats
def test_slo_drives_refinement_and_miss_is_reported(setup):
    _, factor, rhs = setup
    # Absurdly tight SLO: refinement runs to its budget, miss is recorded.
    with _service(factor, window=2, refine=2, start=False,
                  tolerance=0.0) as service:
        fut = service.submit(rhs[0], slo=1e-30)
        service.drain()
    o = fut.result(timeout=0)
    assert o.iterations == 2  # budget exhausted chasing the SLO
    assert not o.met_slo
    assert service.stats.slo_misses == 1

    # A loose SLO is met without extra refinement.
    with _service(factor, window=2, refine=2, start=False) as service:
        fut = service.submit(rhs[0], slo=1e-8)
        service.drain()
    o = fut.result(timeout=0)
    assert o.met_slo and o.residual <= 1e-8


def test_mixed_slos_refine_until_strictest_member_is_met(setup):
    _, factor, rhs = setup
    with _service(factor, window=4, refine=3, start=False,
                  tolerance=0.0) as service:
        loose = service.submit(rhs[0], slo=1e-6)
        tight = service.submit(rhs[1], slo=1e-13)
        service.drain()
    o_loose, o_tight = loose.result(timeout=0), tight.result(timeout=0)
    assert o_loose.batch_id == o_tight.batch_id  # one sweep served both
    assert o_loose.met_slo and o_tight.met_slo
    # The whole batch refined as far as the strictest member needed.
    assert o_loose.iterations == o_tight.iterations


def test_default_slo_applies_when_request_has_none(setup):
    _, factor, rhs = setup
    with _service(factor, window=2, start=False,
                  default_slo=1e-9) as service:
        fut = service.submit(rhs[0])
        service.drain()
    o = fut.result(timeout=0)
    assert o.slo == 1e-9 and o.met_slo


def test_stats_snapshot_and_sweep_accounting(setup):
    _, factor, rhs = setup
    with _service(factor, window=4, start=False) as service:
        futures = [service.submit(b) for b in rhs[:8]]
        service.drain()
        [f.result(timeout=0) for f in futures]
    snap = service.stats.snapshot()
    assert snap["requests"] == 8
    assert snap["batches"] == 2
    assert snap["batched_rhs"] == 8
    per_batch_iters = {
        o.batch_id: o.iterations
        for o in (f.result(timeout=0) for f in futures)
    }
    assert snap["sweeps"] == sum(
        2 * (1 + it) for it in per_batch_iters.values()
    )
    assert snap["refinements"] == sum(per_batch_iters.values())
    assert snap["max_batch"] == 4


# ------------------------------------------------------------------- lifecycle
def test_close_serves_queued_requests_then_rejects_new_ones(setup):
    _, factor, rhs = setup
    service = _service(factor, window=4)
    futures = [service.submit(b) for b in rhs[:4]]
    service.close()
    for f in futures:
        assert f.result(timeout=30).met_slo is not None
    with pytest.raises(RuntimeError, match="closed"):
        service.submit(rhs[0])
    service.close()  # idempotent


def test_submit_validates_shape_and_window(setup):
    _, factor, _ = setup
    with _service(factor, start=False) as service:
        with pytest.raises(ValueError, match="right-hand side"):
            service.submit(np.zeros(N + 1))
        with pytest.raises(ValueError, match="right-hand side"):
            service.submit(np.zeros((N, 2, 2)))
    with pytest.raises(ValueError, match="window"):
        _service(factor, window=0)
