"""Unit tests for the blocked LU driver and the GEPP reference."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.kernels import getrf_blocked, getrf_partial_pivoting
from repro.randmat import randn


@pytest.mark.parametrize("n,b", [(16, 4), (32, 8), (32, 5), (48, 48), (48, 64), (21, 4)])
def test_blocked_lu_reconstructs(n, b):
    A = randn(n, seed=n + b)
    res = getrf_blocked(A, block_size=b)
    assert np.allclose(res.L @ res.U, A[res.perm, :], atol=1e-11)


@pytest.mark.parametrize("b", [4, 8, 16])
def test_blocked_lu_matches_partial_pivoting(b):
    """Blocked and unblocked GEPP must produce identical factors."""
    A = randn(32, seed=77)
    blocked = getrf_blocked(A, block_size=b)
    plain = getrf_partial_pivoting(A)
    assert np.array_equal(blocked.perm, plain.perm)
    assert np.allclose(blocked.L, plain.L, atol=1e-12)
    assert np.allclose(blocked.U, plain.U, atol=1e-12)


@pytest.mark.parametrize("panel_kernel", ["getf2", "rgetf2"])
def test_blocked_lu_panel_kernels_agree(panel_kernel):
    A = randn(40, seed=3)
    res = getrf_blocked(A, block_size=8, panel_kernel=panel_kernel)
    assert np.allclose(res.L @ res.U, A[res.perm, :], atol=1e-11)


def test_blocked_lu_matches_scipy():
    A = randn(30, seed=11)
    res = getrf_blocked(A, block_size=7)
    P, L, U = sla.lu(A)
    assert np.allclose(res.L @ res.U, A[res.perm, :], atol=1e-11)
    assert np.allclose(np.abs(np.diag(res.U)), np.abs(np.diag(U)), atol=1e-10)


def test_blocked_lu_rectangular_tall():
    A = randn(40, 24, seed=5)
    res = getrf_blocked(A, block_size=8)
    assert res.L.shape == (40, 24)
    assert res.U.shape == (24, 24)
    assert np.allclose(res.L @ res.U, A[res.perm, :], atol=1e-11)


def test_partial_pivoting_L_bounded_by_one():
    A = randn(64, seed=21)
    res = getrf_partial_pivoting(A)
    assert np.max(np.abs(res.L)) <= 1.0 + 1e-14


def test_growth_history_recorded():
    A = randn(32, seed=2)
    res = getrf_blocked(A, block_size=8, track_growth=True)
    assert len(res.growth_history) == 4
    res2 = getrf_partial_pivoting(A, track_growth=True)
    assert len(res2.growth_history) == 32
