"""The model-driven configuration search (``repro tune``).

Covers the search building blocks (candidate enumeration, the closed-form
Strassen flop count against the CAPS kernel's own accounting, predicted
ledgers), the ``tune`` spec's contract — exactly one chosen row, the chosen
simulated time never worse than the default's, the reported gap equal to
``|predicted - simulated| / simulated`` — the content-addressed artifact
round trip (miss then hit), and the tuned-defaults loading consumed by
``repro serve --tuned`` and ``SolveService(tuned=...)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import SolveConfig
from repro.harness.store import ResultStore
from repro.harness.tuning import (
    SPEC_TUNE,
    caps_flop_ratio,
    default_config,
    enumerate_candidates,
    feasible,
    grid_shapes,
    load_tune_artifact,
    load_tuned_config,
    predicted_ledger,
    predicted_time,
    strassen_flop_count,
    tune_point,
    tuned_config,
)

QUICK = dict(kind="randn", n=32, nrhs=1, P=4, seed=0, top_k=2, refine=1)


# ------------------------------------------------------------------ building blocks
def test_grid_shapes_enumerates_both_orientations():
    assert grid_shapes(4) == [(1, 4), (2, 2), (4, 1)]
    assert grid_shapes(7) == [(1, 7), (7, 1)]
    assert grid_shapes(1) == [(1, 1)]
    with pytest.raises(ValueError):
        grid_shapes(0)


def test_feasible_requires_a_block_per_grid_row_and_column():
    assert feasible(64, 16, 2, 2)
    assert not feasible(64, 64, 2, 2)  # b >= n
    assert not feasible(32, 16, 4, 1)  # only 2 block rows for 4 grid rows
    assert feasible(32, 8, 4, 1)


@pytest.mark.parametrize("m,k,n", [(24, 40, 32), (7, 9, 5), (4, 4, 4),
                                   (16, 16, 16), (32, 16, 48)])
def test_strassen_flop_count_matches_the_kernels_accounting(m, k, n):
    from repro.kernels.flops import FlopCounter
    from repro.matmul.caps import strassen_multiply

    rng = np.random.default_rng(m * 7 + n)
    flops = FlopCounter()
    strassen_multiply(
        rng.standard_normal((m, k)), rng.standard_normal((k, n)), flops=flops
    )
    assert flops.muladds == strassen_flop_count(m, k, n)


def test_caps_flop_ratio_is_one_when_recursion_cannot_fire():
    # k = b = 8 is at the cutoff: classical all the way down.
    assert caps_flop_ratio(64, 8, 2, 2) == 1.0
    # Large even local blocks with k = 16 > cutoff: Strassen saves flops.
    assert caps_flop_ratio(256, 16, 1, 1) < 1.0


def test_enumerate_candidates_covers_the_space_and_orders_tiers():
    candidates = enumerate_candidates(64, 4, machine="ibm_power5", nrhs=1)
    assert candidates, "n=64 P=4 must have feasible candidates"
    seen_grids = {c.grid for c in candidates}
    assert (2, 2) in seen_grids and (1, 4) in seen_grids and (4, 1) in seen_grids
    assert {c.pivoting for c in candidates} == {"pp", "ca", "ca_prrp"}
    assert {c.matmul for c in candidates} == {"summa", "caps"}
    assert all(feasible(64, c.b, *c.grid) for c in candidates)
    # "auto" leads each tier group so it wins exact predicted-time ties.
    tiers = [c.kernel_tier for c in candidates]
    assert tiers[0] == "auto"
    # The matmul workload pins the pivoting axis.
    mm = enumerate_candidates(64, 4, workload="matmul")
    assert {c.pivoting for c in mm} == {"ca"}


def test_default_config_degrades_block_size_when_infeasible():
    assert default_config(96, 4).b == 16
    # n=32 on the 7x7 grid of P=49: b=16 gives 2 block rows < 7.
    assert default_config(32, 49).b == 4


# ------------------------------------------------------------------ prediction
def test_predicted_ledger_distinguishes_pivoting_and_matmul():
    base = dict(engine="coroutine", kernel_tier="auto", grid=(2, 2), b=8,
                machine="ibm_power5")
    ca = SolveConfig(pivoting="ca", matmul="summa", **base)
    pp = SolveConfig(pivoting="pp", matmul="summa", **base)
    caps = SolveConfig(pivoting="ca", matmul="caps", **base)
    n = 64
    # PDGETRF sends more messages along columns than CALU (factor ~b).
    assert predicted_ledger(pp, n).messages_col > predicted_ledger(ca, n).messages_col
    # At b=8 the Strassen recursion cannot fire: caps == summa on flops.
    assert predicted_ledger(caps, n).muladds == predicted_ledger(ca, n).muladds
    for config in (ca, pp, caps):
        assert predicted_time(config, n) > 0.0


def test_predicted_ledger_matmul_workload_prices_both_backends():
    base = dict(pivoting="ca", engine="coroutine", kernel_tier="auto",
                grid=(2, 2), b=8, machine="ibm_power5")
    summa = SolveConfig(matmul="summa", **base)
    caps = SolveConfig(matmul="caps", **base)
    lsum = predicted_ledger(summa, 64, workload="matmul")
    lcaps = predicted_ledger(caps, 64, workload="matmul")
    # SUMMA moves words on the row/col channels; CAPS on the any channel.
    assert lsum.words_row > 0 and lsum.words_any == 0
    assert lcaps.words_any > 0 and lcaps.words_row == 0
    assert predicted_time(summa, 64, workload="matmul") > 0.0


def test_predicted_ledger_requires_grid_and_block():
    config = SolveConfig.resolve()
    with pytest.raises(ValueError, match="grid and block size"):
        predicted_ledger(config, 64)


# ------------------------------------------------------------------ the search
@pytest.fixture(scope="module")
def tune_rows():
    return tune_point(**QUICK)


def test_tune_point_contract(tune_rows):
    assert [r["candidate"] for r in tune_rows][0] == "default"
    assert sum(r["chosen"] for r in tune_rows) == 1
    chosen = next(r for r in tune_rows if r["chosen"])
    default = next(r for r in tune_rows if r["candidate"] == "default")
    # The default is always simulated, so the winner can never lose to it.
    assert chosen["simulated_s"] <= default["simulated_s"]
    for row in tune_rows:
        assert row["predicted_s"] > 0.0 and row["simulated_s"] > 0.0
        assert row["gap"] == pytest.approx(
            abs(row["predicted_s"] - row["simulated_s"]) / row["simulated_s"]
        )
        assert row["enumerated"] == tune_rows[0]["enumerated"] > 0
        assert feasible(row["n"], row["b"], *map(int, row["grid"].split("x")))


def test_tune_point_simulated_candidates_have_distinct_configs(tune_rows):
    signatures = [
        (r["b"], r["grid"], r["pivoting"], r["matmul"]) for r in tune_rows
    ]
    # The default may coincide with a top-k candidate's signature, but the
    # top-k entries themselves are deduplicated (tier twins simulate once).
    top = signatures[1:]
    assert len(top) == len(set(top))


def test_tune_point_is_deterministic():
    again = tune_point(**QUICK)
    assert again == tune_point(**QUICK)


def test_tune_point_rejects_unknown_workload_and_machine():
    with pytest.raises(ValueError, match="workload"):
        tune_point(workload="sort", **QUICK)
    with pytest.raises(ValueError, match="cray"):
        tune_point(machine="cray_t3e", **QUICK)


# --------------------------------------------------------------- the artifact
def test_tune_spec_round_trips_through_the_store(tmp_path, tune_rows):
    store = ResultStore(root=tmp_path / "results")
    first = store.fetch_or_run(SPEC_TUNE, overrides=QUICK)
    assert not first.cached
    second = store.fetch_or_run(SPEC_TUNE, overrides=QUICK)
    assert second.cached
    assert second.rows == first.rows
    # Stored rows are bit-identical to the runner's (JSON float round trip).
    assert first.rows == tune_rows

    # Tuned-defaults loading: by "latest", by key prefix, and by path.
    for ref in ("latest", first.artifact["key"][:12], str(first.path)):
        config = load_tuned_config(ref, store=store)
        chosen = next(r for r in first.rows if r["chosen"])
        assert config.b == chosen["b"]
        assert config.pivoting == chosen["pivoting"]
        assert config.matmul == chosen["matmul"]
        assert f"{config.nprow}x{config.npcol}" == chosen["grid"]
    assert tuned_config(load_tune_artifact("latest", store=store)).machine == \
        QUICK.get("machine", "ibm_power5")


def test_load_tune_artifact_errors_name_the_problem(tmp_path):
    store = ResultStore(root=tmp_path / "empty")
    with pytest.raises(ValueError, match="no tune artifacts"):
        load_tune_artifact("latest", store=store)
    with pytest.raises(ValueError, match="no tune artifacts"):
        load_tune_artifact("deadbeef", store=store)


def test_solve_service_accepts_tuned_reference(tmp_path, monkeypatch):
    from repro.harness.factor_cache import generate_matrix
    from repro.harness.serving import SolveService
    from repro.parallel.factor import pcalu_factor

    store = ResultStore(root=tmp_path / "results")
    fetch = store.fetch_or_run(SPEC_TUNE, overrides=QUICK)
    config = tuned_config(fetch.artifact)
    A = generate_matrix("randn", QUICK["n"], seed=0)
    factor = pcalu_factor(A, config.process_grid(), config.b,
                          pivoting=config.pivoting, matmul=config.matmul)
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    service = SolveService(factor, start=False, tuned="latest")
    assert service.engine == config.engine
    rhs = A @ np.ones(QUICK["n"])
    future = service.submit(rhs)
    service.drain()
    outcome = future.result(timeout=60)
    assert np.max(np.abs(outcome.x - np.ones(QUICK["n"]))) < 1e-8
    service.close()
