"""Tests for the matrix generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randmat import (
    diagonally_dominant,
    figure1_matrix,
    ill_conditioned,
    linear_system,
    randn,
    rank_deficient,
    tall_skinny,
    toeplitz_random,
    uniform,
)


def test_randn_reproducible_and_shape():
    assert np.array_equal(randn(8, seed=1), randn(8, seed=1))
    assert randn(4, 6, seed=2).shape == (4, 6)


def test_uniform_range():
    A = uniform(32, seed=3)
    assert A.min() >= -1.0 and A.max() <= 1.0


def test_toeplitz_structure():
    A = toeplitz_random(16, seed=4)
    for k in range(-15, 16):
        assert np.allclose(np.diag(A, k), np.diag(A, k)[0])


def test_diagonally_dominant_property():
    A = diagonally_dominant(24, seed=5)
    off = np.sum(np.abs(A), axis=1) - np.abs(np.diag(A))
    assert np.all(np.abs(np.diag(A)) > off)


def test_ill_conditioned_condition_number():
    A = ill_conditioned(32, cond=1e8, seed=6)
    assert np.linalg.cond(A) == pytest.approx(1e8, rel=0.1)


def test_rank_deficient_rank():
    A = rank_deficient(20, rank=7, seed=7)
    assert np.linalg.matrix_rank(A) == 7
    with pytest.raises(ValueError):
        rank_deficient(5, rank=9)


def test_tall_skinny_shape():
    assert tall_skinny(100, 8, seed=8).shape == (100, 8)


def test_figure1_matrix_matches_paper():
    A = figure1_matrix()
    assert A.shape == (16, 2)
    assert A[0, 0] == 2 and A[0, 1] == 4
    assert A[10, 0] == 4 and A[10, 1] == 1
    assert A[15, 0] == 4 and A[15, 1] == 2


def test_linear_system_consistency():
    A, b, x = linear_system(16, seed=9)
    assert np.allclose(A @ x, b)
    with pytest.raises(ValueError):
        linear_system(8, kind="unknown")


@pytest.mark.parametrize("kind", ["randn", "uniform", "toeplitz", "diagonally_dominant"])
def test_linear_system_kinds(kind):
    A, b, x = linear_system(12, seed=10, kind=kind)
    assert A.shape == (12, 12)
    assert np.allclose(A @ x, b)
