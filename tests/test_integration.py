"""Integration tests: cross-module consistency and model-vs-simulator checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import calu, calu_solve
from repro.layouts import ProcessGrid
from repro.machines import ibm_power5, unit_machine
from repro.models import calu_cost, pdgetf2_cost, pdgetrf_cost, tslu_cost
from repro.parallel import pcalu, ptslu
from repro.randmat import linear_system, randn, tall_skinny
from repro.scalapack import pdgetrf
from repro.stability import hpl_residuals


def test_end_to_end_factor_solve_verify():
    """Quickstart path: generate, factor with CALU, solve, check HPL residuals."""
    A, b, x_true = linear_system(96, seed=1)
    res = calu_solve(A, b, block_size=16, nblocks=4)
    assert np.allclose(res.x, x_true, atol=1e-6)
    assert hpl_residuals(A, res.x, b).passed


def test_sequential_and_distributed_calu_agree_numerically():
    """Both versions produce valid, well-pivoted factorizations of the same matrix.

    The two implementations may partition the active rows of later panels
    slightly differently (swap semantics vs winners-first reordering), so the
    pivot *sequences* can differ; what must agree is the backward error and
    the boundedness of L (the threshold-pivoting property).
    """
    A = randn(48, seed=2)
    seq = calu(A, block_size=8, nblocks=2, partition="block_cyclic")
    par = pcalu(A, ProcessGrid(2, 2), block_size=8)
    assert np.allclose(A[par.perm, :], par.L @ par.U, atol=1e-10)
    assert np.allclose(A[seq.perm, :], seq.L @ seq.U, atol=1e-10)
    assert np.max(np.abs(seq.L)) < 10.0
    assert np.max(np.abs(par.L)) < 10.0


# -------------------------------------------------- model vs simulator: panel
@pytest.mark.parametrize("P", [2, 4, 8])
def test_tslu_model_latency_term_matches_simulator(P):
    b = 4
    A = tall_skinny(16 * P, b, seed=P)
    run = ptslu(A, nprocs=P, machine=unit_machine())
    model = tslu_cost(16 * P, b, P)
    assert run.trace.max_messages == model.messages_col == math.log2(P)


@pytest.mark.parametrize("P", [2, 4])
def test_pdgetf2_vs_tslu_message_ratio_matches_model(P):
    """Measured per-panel message ratio is of order b, as the models predict."""
    n, b = 16 * P, 4
    A = randn(n, seed=P)
    grid = ProcessGrid(P, 1)
    calu_run = pcalu(A, grid, block_size=b, machine=unit_machine())
    ref_run = pdgetrf(A, grid, block_size=b, machine=unit_machine())
    measured_ratio = ref_run.trace.max_messages / calu_run.trace.max_messages
    model_ratio = (
        pdgetf2_cost(n, b, P).messages_col / tslu_cost(n, b, P).messages_col
    )
    # The full drivers add identical non-panel messages to both algorithms, so
    # the measured ratio is smaller than the panel-only model ratio, but the
    # direction and a sizeable gap must be there.
    assert measured_ratio > 1.5
    assert model_ratio > measured_ratio


def test_full_factorization_message_counts_within_model_factor():
    """Simulator message counts agree with Eq. 2/3 latency terms up to the
    implementation constants (swap scheme, extra winner broadcast)."""
    n, b, Pr, Pc = 48, 8, 2, 2
    A = randn(n, seed=5)
    grid = ProcessGrid(Pr, Pc)
    calu_run = pcalu(A, grid, block_size=b, machine=unit_machine())
    model = calu_cost(n, n, b, Pr, Pc, swap_scheme="pdlaswp")
    measured = calu_run.trace.max_messages
    predicted = model.messages_col + model.messages_row
    assert 0.2 * predicted < measured < 5.0 * predicted


def test_simulated_times_order_algorithms_like_models():
    """Under the POWER5 model, the simulator and Eq. 2/3 agree on who wins."""
    n, b, Pr, Pc = 64, 8, 2, 2
    A = randn(n, seed=6)
    grid = ProcessGrid(Pr, Pc)
    machine = ibm_power5()
    t_calu_sim = pcalu(A, grid, block_size=b, machine=machine).trace.critical_path_time
    t_ref_sim = pdgetrf(A, grid, block_size=b, machine=machine).trace.critical_path_time
    t_calu_model = calu_cost(n, n, b, Pr, Pc).time(machine)
    t_ref_model = pdgetrf_cost(n, n, b, Pr, Pc).time(machine)
    assert (t_calu_sim < t_ref_sim) == (t_calu_model < t_ref_model)


def test_flop_conservation_between_sequential_and_parallel():
    """Total arithmetic in the simulator is close to the sequential CALU count."""
    n, b = 32, 8
    A = randn(n, seed=7)
    seq = calu(A, block_size=b, nblocks=2, partition="block_cyclic")
    par = pcalu(A, ProcessGrid(2, 2), block_size=b, machine=unit_machine())
    assert par.trace.total_flops == pytest.approx(seq.flops.total, rel=0.5)
