"""Edge-case tests for the distributed block-LU driver shared by CALU and PDGETRF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import ProcessGrid
from repro.machines import unit_machine
from repro.parallel import pcalu
from repro.randmat import diagonally_dominant, randn
from repro.scalapack import pdgetrf


@pytest.mark.parametrize("fn", [pcalu, pdgetrf])
def test_matrix_smaller_than_one_block(fn):
    """The whole matrix fits in a single panel: no trailing update at all."""
    A = randn(6, seed=1)
    res = fn(A, ProcessGrid(2, 2), block_size=8)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-12)


@pytest.mark.parametrize("fn", [pcalu, pdgetrf])
def test_tall_rectangular_matrix(fn):
    A = randn(40, seed=2)[:, :16]
    res = fn(A, ProcessGrid(2, 2), block_size=4)
    assert res.L.shape == (40, 16)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-11)


@pytest.mark.parametrize("fn", [pcalu, pdgetrf])
def test_grid_larger_than_block_rows(fn):
    """More process rows than block rows: some ranks own nothing at times."""
    A = randn(16, seed=3)
    res = fn(A, ProcessGrid(4, 2), block_size=4)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-11)


@pytest.mark.parametrize("fn", [pcalu, pdgetrf])
def test_no_pivoting_needed_matrix(fn):
    """Diagonally dominant input: the factorization should barely permute."""
    A = diagonally_dominant(24, seed=4)
    res = fn(A, ProcessGrid(2, 2), block_size=6)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-11)
    # Diagonal dominance keeps every diagonal entry the column winner.
    assert np.array_equal(res.perm, np.arange(24))


def test_wide_grid_and_tall_grid_agree_numerically():
    A = randn(36, seed=5)
    r1 = pcalu(A, ProcessGrid(1, 4), block_size=6, machine=unit_machine())
    r2 = pcalu(A, ProcessGrid(4, 1), block_size=6, machine=unit_machine())
    assert np.allclose(A[r1.perm, :], r1.L @ r1.U, atol=1e-11)
    assert np.allclose(A[r2.perm, :], r2.L @ r2.U, atol=1e-11)
    # A single process row means no column-network traffic for the panel.
    assert r1.trace.messages_by_channel("col") <= r2.trace.messages_by_channel("col")


def test_swaps_recorded_match_permutation():
    from repro.scalapack import apply_swaps_to_permutation

    A = randn(32, seed=6)
    res = pdgetrf(A, ProcessGrid(2, 2), block_size=8)
    perm = apply_swaps_to_permutation(np.arange(32), res.swaps)
    assert np.array_equal(perm, res.perm)


def test_all_ranks_return_identical_swap_lists():
    A = randn(24, seed=7)
    res = pcalu(A, ProcessGrid(2, 2), block_size=8)
    swaps = [r["swaps"] for r in res.trace.results]
    assert all(s == swaps[0] for s in swaps)
