"""Property tests for the kernel tiers and the batched tournament.

The contract under test:

* the batched kernel (:func:`repro.kernels.getf2_batched`) is **bit-identical**
  per slab to the reference ``getf2`` loop — factors, pivots, permutations,
  singularity flags and flop counts;
* the LAPACK tier picks **identical pivots** (and therefore permutations and
  tournament winners) and charges **exactly** the reference flop counts; its
  factor entries agree to rounding (LAPACK scales by a reciprocal and vendor
  BLAS uses FMA, so factor bits legitimately differ — every call site where
  bits matter pins the reference tier instead);
* the batched tournament (``kernel_tier="auto"``) returns bit-identical
  winners, permutations and ``U`` factors to the sequential reference
  schedule, across non-power-of-two ``P``, panel sizes that do not divide
  ``m``, and singular blocks;
* stability recording (growth, thresholds) forces the reference tier, so the
  recorded histories are unchanged by the knob.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import calu, tslu, tournament_pivoting, partition_rows
from repro.kernels import (
    FlopCounter,
    getf2,
    getf2_batched,
    getrf_partial_pivoting,
    kernel_tier,
    permute_rows_inplace,
    rgetf2,
    resolve_tier,
    set_kernel_tier,
    slab_flop_counters,
)
from repro.kernels.tiers import HAVE_LAPACK
from repro.parallel import ptslu
from repro.randmat import randn, tall_skinny

pytestmark = pytest.mark.skipif(not HAVE_LAPACK, reason="scipy LAPACK unavailable")


def _counts(f: FlopCounter):
    return (f.muladds, f.divides, f.comparisons)


# ------------------------------------------------------------ tier selection
def test_tier_resolution_and_overrides(monkeypatch):
    # The generic precedence levels (ambient/env/default) are covered for
    # every knob by tests/test_options.py; this covers what is specific to
    # the tier knob: the "auto" degradation and force_reference.
    monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
    set_kernel_tier(None)
    assert resolve_tier(None) == "lapack"  # auto default with scipy present
    assert resolve_tier("auto") == "lapack"
    assert resolve_tier("reference") == "reference"
    assert resolve_tier(None, force_reference=True) == "reference"
    assert resolve_tier("lapack", force_reference=True) == "reference"
    with kernel_tier("reference"):
        assert resolve_tier(None) == "reference"
    assert resolve_tier(None) == "lapack"
    with pytest.raises(ValueError):
        resolve_tier("nope")


# ------------------------------------------------------------- LAPACK tier
@pytest.mark.parametrize("m,n", [(1, 1), (8, 4), (33, 17), (64, 32), (40, 7), (7, 9), (12, 12)])
def test_lapack_tier_identical_pivots_and_exact_flops(m, n):
    A = randn(m, n, seed=m * 31 + n)
    fr, fl = FlopCounter(), FlopCounter()
    ref = getf2(A, flops=fr, kernel_tier="reference")
    fast = getf2(A, flops=fl, kernel_tier="lapack")
    assert np.array_equal(ref.ipiv, fast.ipiv)
    assert np.array_equal(ref.perm, fast.perm)
    assert ref.singular == fast.singular
    assert _counts(fr) == _counts(fl)
    assert np.allclose(ref.lu, fast.lu, atol=1e-11)


@pytest.mark.parametrize("zero_cols", [(0,), (2,), (0, 3), (2, 4)])
def test_lapack_tier_singular_columns_exact_flops(zero_cols):
    A = randn(12, 6, seed=5)
    for c in zero_cols:
        A[:, c] = 0.0
    fr, fl = FlopCounter(), FlopCounter()
    ref = getf2(A, flops=fr, kernel_tier="reference")
    fast = getf2(A, flops=fl, kernel_tier="lapack")
    assert ref.singular and fast.singular
    assert np.array_equal(ref.ipiv, fast.ipiv)
    assert np.array_equal(ref.perm, fast.perm)
    assert _counts(fr) == _counts(fl)


def test_lapack_tier_overwrite_contract():
    A = randn(8, 8, seed=1)
    res = getf2(A, overwrite=True, kernel_tier="lapack")
    assert res.lu is A


def test_rgetf2_lapack_tier_matches_reference():
    A = randn(48, 24, seed=9)
    fr, fl = FlopCounter(), FlopCounter()
    ref = rgetf2(A, flops=fr, kernel_tier="reference")
    fast = rgetf2(A, flops=fl, kernel_tier="lapack")
    assert np.array_equal(ref.perm, fast.perm)
    assert _counts(fr) == _counts(fl)
    assert np.allclose(ref.lu, fast.lu, atol=1e-10)


# ------------------------------------------------------------- batched kernel
@pytest.mark.parametrize("nb,m,n", [(1, 4, 4), (8, 16, 8), (5, 7, 7), (3, 4, 8), (6, 64, 32), (4, 2, 2)])
def test_batched_getf2_bit_identical_to_reference(nb, m, n):
    rng = np.random.default_rng(nb * 100 + m + n)
    stack = rng.standard_normal((nb, m, n))
    stack[0, :, min(n - 1, 2)] = 0.0  # an exactly singular slab
    if m > 3:
        stack[-1, 3] = stack[-1, 0]  # a duplicated-row slab
    fb = FlopCounter()
    res = getf2_batched(stack, flops=fb)
    fs = FlopCounter()
    per_slab = slab_flop_counters(m, n, res.zero_columns)
    for i in range(nb):
        fi = FlopCounter()
        ref = getf2(stack[i], flops=fi, kernel_tier="reference")
        assert np.array_equal(res.lu[i], ref.lu)  # bitwise, not allclose
        assert np.array_equal(res.ipiv[i], ref.ipiv)
        assert np.array_equal(res.perm[i], ref.perm)
        assert bool(res.singular[i]) == ref.singular
        assert _counts(per_slab[i]) == _counts(fi)
        fs.merge(fi)
    assert _counts(fb) == _counts(fs)


@settings(max_examples=25, deadline=None)
@given(
    nb=st.integers(1, 6),
    m=st.integers(1, 12),
    n=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
def test_batched_getf2_bit_identical_property(nb, m, n, seed):
    stack = np.random.default_rng(seed).standard_normal((nb, m, n))
    res = getf2_batched(stack)
    for i in range(nb):
        ref = getf2(stack[i], kernel_tier="reference")
        assert np.array_equal(res.lu[i], ref.lu)
        assert np.array_equal(res.perm[i], ref.perm)


# --------------------------------------------------------- batched tournament
@pytest.mark.parametrize("schedule", ["binary", "butterfly", "flat"])
@pytest.mark.parametrize("P,b", [(1, 4), (2, 3), (3, 4), (5, 2), (8, 8), (13, 3)])
def test_tournament_auto_bit_identical_to_reference(schedule, P, b):
    m = P * b * 2 + 3  # m not a multiple of P*b
    A = randn(m, b, seed=P * 1000 + b)
    A[m // 2] = 0.0  # a singular (zero) row in some block
    blocks = [(g, A[g, :]) for g in partition_rows(m, P)]
    fa, fr = FlopCounter(), FlopCounter()
    auto = tournament_pivoting(blocks, b, flops=fa, schedule=schedule, kernel_tier="auto")
    ref = tournament_pivoting(blocks, b, flops=fr, schedule=schedule, kernel_tier="reference")
    assert np.array_equal(auto.winners, ref.winners)
    assert np.array_equal(auto.U, ref.U)  # bitwise
    assert auto.rounds == ref.rounds
    assert _counts(fa) == _counts(fr)


def test_tournament_all_zero_panel_auto_matches_reference():
    A = np.zeros((16, 2))
    A[3] = [1.0, 2.0]
    A[11] = [3.0, -1.0]
    blocks = [(g, A[g, :]) for g in partition_rows(16, 4)]
    auto = tournament_pivoting(blocks, 2, kernel_tier="auto")
    ref = tournament_pivoting(blocks, 2, kernel_tier="reference")
    assert np.array_equal(auto.winners, ref.winners)
    assert np.array_equal(auto.U, ref.U)


@pytest.mark.parametrize("m,b,P", [(30, 5, 4), (67, 5, 6), (64, 8, 8)])
def test_tslu_auto_bit_identical(m, b, P):
    A = tall_skinny(m, b, seed=m + b + P)
    auto = tslu(A, nblocks=P, kernel_tier="auto")
    ref = tslu(A, nblocks=P, kernel_tier="reference")
    assert np.array_equal(auto.perm, ref.perm)
    assert np.array_equal(auto.winners, ref.winners)
    assert np.array_equal(auto.L, ref.L)
    assert np.array_equal(auto.U, ref.U)


@pytest.mark.parametrize("n,b,P", [(48, 8, 4), (50, 7, 3), (64, 16, 8)])
def test_calu_auto_bit_identical(n, b, P):
    A = randn(n, seed=n + b)
    auto = calu(A, block_size=b, nblocks=P, kernel_tier="auto")
    ref = calu(A, block_size=b, nblocks=P, kernel_tier="reference")
    assert np.array_equal(auto.perm, ref.perm)
    assert np.array_equal(auto.L, ref.L)
    assert np.array_equal(auto.U, ref.U)
    assert _counts(auto.flops) == _counts(ref.flops)


def test_ptslu_auto_bit_identical_and_same_trace():
    A = tall_skinny(67, 5, seed=11)  # m not a multiple of P*b
    auto = ptslu(A, nprocs=6, engine="event", kernel_tier="auto")
    ref = ptslu(A, nprocs=6, engine="event", kernel_tier="reference")
    assert np.array_equal(auto.winners, ref.winners)
    assert np.array_equal(auto.perm, ref.perm)
    assert np.array_equal(auto.L, ref.L)
    assert np.array_equal(auto.U, ref.U)
    assert auto.trace.summary() == ref.trace.summary()


# ------------------------------------------------- stability forces reference
def test_growth_recording_is_tier_independent():
    A = randn(48, seed=21)
    auto = calu(A, block_size=8, nblocks=4, track_growth=True,
                compute_thresholds=True, kernel_tier="auto")
    ref = calu(A, block_size=8, nblocks=4, track_growth=True,
               compute_thresholds=True, kernel_tier="reference")
    assert auto.growth_history == ref.growth_history
    assert np.array_equal(auto.threshold_history, ref.threshold_history)


def test_getf2_incremental_growth_matches_full_matrix_scan():
    """The incremental frozen-max + trailing-scan recording must reproduce the
    full |A| scan exactly, including skipped singular columns."""
    for seed, singular_col in [(3, None), (4, 2), (5, 0)]:
        A = randn(14, 9, seed=seed)
        if singular_col is not None:
            A[:, singular_col] = 0.0
        history: list = []
        getf2(A, track_growth=history)
        # Naive reference: replay the elimination, scanning all of |A|.
        B = np.array(A)
        m, n = B.shape
        expected = []
        for j in range(min(m, n)):
            p = int(np.argmax(np.abs(B[j:, j]))) + j
            if B[p, j] == 0.0:
                continue
            if p != j:
                B[[j, p], :] = B[[p, j], :]
            if j < m - 1:
                B[j + 1 :, j] /= B[j, j]
                if j < n - 1:
                    B[j + 1 :, j + 1 :] -= np.outer(B[j + 1 :, j], B[j, j + 1 :])
            expected.append(float(np.max(np.abs(B))))
        assert history == expected


def test_gepp_growth_unchanged_under_auto_tier():
    A = randn(32, seed=8)
    g_auto = getrf_partial_pivoting(A, track_growth=True, kernel_tier="auto")
    g_ref = getrf_partial_pivoting(A, track_growth=True, kernel_tier="reference")
    assert g_auto.growth_history == g_ref.growth_history
    assert np.array_equal(g_auto.U, g_ref.U)


# --------------------------------------------------------------- permutation
def test_permute_rows_inplace_matches_gather():
    rng = np.random.default_rng(0)
    for m in [1, 2, 7, 32]:
        A = rng.standard_normal((m, 5))
        perm = rng.permutation(m)
        expected = A[perm, :]
        permute_rows_inplace(A, perm)
        assert np.array_equal(A, expected)
    v = np.arange(10)
    perm = np.random.default_rng(1).permutation(10)
    expected = v[perm]
    permute_rows_inplace(v, perm)
    assert np.array_equal(v, expected)
