"""Unit tests for the virtual MPI runtime and its collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import (
    DeadlockError,
    RankFailedError,
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    payload_words,
    reduce,
    run_spmd,
    scatter,
)
from repro.machines import MachineModel, unit_machine


# ----------------------------------------------------------------- basic p2p
def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(5.0), tag="x")
            return None
        return comm.recv(0, tag="x")

    trace = run_spmd(2, prog)
    assert np.allclose(trace.results[1], np.arange(5.0))
    assert trace.ranks[0].messages_sent == 1
    assert trace.ranks[1].messages_received == 1


def test_send_copies_numpy_payload():
    def prog(comm):
        if comm.rank == 0:
            data = np.ones(3)
            comm.send(1, data, tag=0)
            data[:] = -1  # mutate after send; receiver must not see it
            return None
        return comm.recv(0, tag=0)

    trace = run_spmd(2, prog)
    assert np.allclose(trace.results[1], 1.0)


def test_out_of_order_tags_are_matched():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, "first", tag="a")
            comm.send(1, "second", tag="b")
            return None
        second = comm.recv(0, tag="b")
        first = comm.recv(0, tag="a")
        return (first, second)

    trace = run_spmd(2, prog)
    assert trace.results[1] == ("first", "second")


def test_deadlock_detection():
    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")
        return None

    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, timeout=0.2)
    assert isinstance(exc.value.__cause__, DeadlockError)


def test_rank_exception_propagates():
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RankFailedError):
        run_spmd(2, prog, timeout=0.2)


def test_self_send_rejected():
    def prog(comm):
        comm.send(comm.rank, 1)

    with pytest.raises(RankFailedError):
        run_spmd(1, prog)


def test_single_rank_run():
    trace = run_spmd(1, lambda comm: comm.rank * 10)
    assert trace.results == [0]


# ----------------------------------------------------------------- accounting
def test_clock_advances_with_latency_and_flops():
    machine = MachineModel(name="t", gamma=1.0, gamma_d=2.0, alpha=10.0, beta=0.5)

    def prog(comm):
        comm.charge_flops(muladds=3, divides=1)
        if comm.rank == 0:
            comm.send(1, np.zeros(4), tag=0)
        else:
            comm.recv(0, tag=0)
        return comm.clock

    trace = run_spmd(2, prog, machine=machine)
    # Rank 0: 3*1 + 1*2 compute, + alpha + 4*beta send = 5 + 12 = 17.
    assert trace.results[0] == pytest.approx(17.0)
    # Rank 1 clock >= message availability time.
    assert trace.results[1] >= 17.0


def test_payload_words_estimates():
    assert payload_words(np.zeros(10)) == 10
    assert payload_words(3) == 1
    assert payload_words((np.zeros(4), np.zeros(2))) == 6
    assert payload_words({"a": np.zeros(3)}) == 3
    assert payload_words(None) == 1


def test_channel_split_is_recorded():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, 1.0, tag=0, channel="row")
            comm.send(1, 1.0, tag=1, channel="col")
        else:
            comm.recv(0, tag=0)
            comm.recv(0, tag=1)

    trace = run_spmd(2, prog)
    assert trace.messages_by_channel("row") == 1
    assert trace.messages_by_channel("col") == 1


# ---------------------------------------------------------------- collectives
@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
def test_broadcast_delivers_to_all(p):
    def prog(comm):
        value = {"data": 42} if comm.rank == 0 else None
        return broadcast(comm, value, root=0)

    trace = run_spmd(p, prog)
    assert all(r == {"data": 42} for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 7])
def test_broadcast_from_nonzero_root(p):
    root = p - 1

    def prog(comm):
        value = "hello" if comm.rank == root else None
        return broadcast(comm, value, root=root)

    trace = run_spmd(p, prog)
    assert all(r == "hello" for r in trace.results)


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_reduce_sum(p):
    def prog(comm):
        return reduce(comm, comm.rank + 1, lambda a, b: a + b, root=0)

    trace = run_spmd(p, prog)
    assert trace.results[0] == p * (p + 1) // 2
    assert all(r is None for r in trace.results[1:])


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_allreduce_sum_everyone_gets_result(p):
    def prog(comm):
        return allreduce(comm, comm.rank + 1, lambda a, b: a + b)

    trace = run_spmd(p, prog)
    assert all(r == p * (p + 1) // 2 for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 8])
def test_allreduce_message_count_is_logarithmic(p):
    """Power-of-two all-reduce: each rank sends exactly log2(P) messages."""
    import math

    def prog(comm):
        allreduce(comm, 1.0, lambda a, b: a + b)

    trace = run_spmd(p, prog, machine=unit_machine())
    assert trace.max_messages == math.log2(p)


@pytest.mark.parametrize("p", [2, 3, 5])
def test_gather_and_allgather(p):
    def prog(comm):
        return (
            gather(comm, comm.rank * 2, root=0),
            allgather(comm, comm.rank * 2),
        )

    trace = run_spmd(p, prog)
    expected = [2 * i for i in range(p)]
    assert trace.results[0][0] == expected
    assert all(r[1] == expected for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 5])
def test_scatter(p):
    def prog(comm):
        values = [f"item{i}" for i in range(p)] if comm.rank == 0 else None
        return scatter(comm, values, root=0)

    trace = run_spmd(p, prog)
    assert trace.results == [f"item{i}" for i in range(p)]


def test_barrier_completes():
    def prog(comm):
        barrier(comm)
        return True

    assert all(run_spmd(4, prog).results)


def test_collective_over_subgroup():
    """Only the group's ranks participate; others are untouched."""

    def prog(comm):
        group = [1, 3]
        if comm.rank in group:
            return allreduce(comm, comm.rank, lambda a, b: a + b, group=group, tag="sub")
        return None

    trace = run_spmd(4, prog)
    assert trace.results[1] == 4 and trace.results[3] == 4
    assert trace.results[0] is None and trace.results[2] is None


def test_collective_wrong_group_raises():
    def prog(comm):
        return broadcast(comm, 1, root=0, group=[0])

    with pytest.raises(RankFailedError):
        run_spmd(2, prog, timeout=0.5)


def test_nonassociative_order_is_deterministic():
    """allreduce applies the operator in group order (checked via string concat)."""

    def prog(comm):
        return allreduce(comm, str(comm.rank), lambda a, b: a + b)

    trace = run_spmd(4, prog)
    assert all(r == "0123" for r in trace.results)
