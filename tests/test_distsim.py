"""Unit tests for the virtual MPI runtime and its collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import (
    DeadlockError,
    RankFailedError,
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    payload_words,
    reduce,
    run_spmd,
    scatter,
)
from repro.machines import MachineModel, unit_machine


# ----------------------------------------------------------------- basic p2p
def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(5.0), tag="x")
            return None
        return comm.recv(0, tag="x")

    trace = run_spmd(2, prog)
    assert np.allclose(trace.results[1], np.arange(5.0))
    assert trace.ranks[0].messages_sent == 1
    assert trace.ranks[1].messages_received == 1


def test_send_copies_numpy_payload():
    def prog(comm):
        if comm.rank == 0:
            data = np.ones(3)
            comm.send(1, data, tag=0)
            data[:] = -1  # mutate after send; receiver must not see it
            return None
        return comm.recv(0, tag=0)

    trace = run_spmd(2, prog)
    assert np.allclose(trace.results[1], 1.0)


def test_out_of_order_tags_are_matched():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, "first", tag="a")
            comm.send(1, "second", tag="b")
            return None
        second = comm.recv(0, tag="b")
        first = comm.recv(0, tag="a")
        return (first, second)

    trace = run_spmd(2, prog)
    assert trace.results[1] == ("first", "second")


def test_deadlock_detection():
    def prog(comm):
        if comm.rank == 1:
            return comm.recv(0, tag="never")
        return None

    with pytest.raises(RankFailedError) as exc:
        run_spmd(2, prog, timeout=0.2)
    assert isinstance(exc.value.__cause__, DeadlockError)


def test_rank_exception_propagates():
    def prog(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RankFailedError):
        run_spmd(2, prog, timeout=0.2)


def test_self_send_rejected():
    def prog(comm):
        comm.send(comm.rank, 1)

    with pytest.raises(RankFailedError):
        run_spmd(1, prog)


def test_single_rank_run():
    trace = run_spmd(1, lambda comm: comm.rank * 10)
    assert trace.results == [0]


# ----------------------------------------------------------------- accounting
def test_clock_advances_with_latency_and_flops():
    machine = MachineModel(name="t", gamma=1.0, gamma_d=2.0, alpha=10.0, beta=0.5)

    def prog(comm):
        comm.charge_flops(muladds=3, divides=1)
        if comm.rank == 0:
            comm.send(1, np.zeros(4), tag=0)
        else:
            comm.recv(0, tag=0)
        return comm.clock

    trace = run_spmd(2, prog, machine=machine)
    # Rank 0: 3*1 + 1*2 compute, + alpha + 4*beta send = 5 + 12 = 17.
    assert trace.results[0] == pytest.approx(17.0)
    # Rank 1 clock >= message availability time.
    assert trace.results[1] >= 17.0


def test_payload_words_estimates():
    assert payload_words(np.zeros(10)) == 10
    assert payload_words(3) == 1
    assert payload_words((np.zeros(4), np.zeros(2))) == 6
    assert payload_words({"a": np.zeros(3)}) == 3
    assert payload_words(None) == 1


def test_payload_words_empty_arrays_and_dtypes():
    assert payload_words(np.zeros(0)) == 0.0
    assert payload_words(np.zeros((0, 5))) == 0.0
    # Non-8-byte dtypes count their actual storage.
    assert payload_words(np.zeros(10, dtype=np.float32)) == 5.0
    assert payload_words(np.zeros(4, dtype=np.int64)) == 4.0


def test_payload_words_empty_containers_count_control_overhead():
    # An empty container still costs one control word on the wire.
    assert payload_words(()) == 1.0
    assert payload_words([]) == 1.0
    assert payload_words({}) == 1.0


def test_payload_words_nested_containers():
    nested = {"swaps": [(1, 2), (3, 4)], "panel": np.zeros((2, 3))}
    # Each (int, int) tuple = 2 words; the 2x3 array = 6 words.
    assert payload_words(nested) == 2 + 2 + 6
    assert payload_words([[np.zeros(2)], {"x": 1.0}]) == 3.0


def test_payload_words_strings():
    assert payload_words("") == 1.0
    assert payload_words("short") == 1.0  # less than one word, rounded up
    assert payload_words("x" * 8) == 1.0
    assert payload_words("x" * 20) == 2.5


def test_comparisons_priced_into_simulated_clock():
    """charge_flops(comparisons=...) advances time at γ_cmp (default γ)."""
    machine = MachineModel(name="t", gamma=2.0, gamma_d=5.0, alpha=0.0, beta=0.0)

    def prog(comm):
        comm.charge_flops(comparisons=7)
        return comm.clock

    assert run_spmd(1, prog, machine=machine).results[0] == pytest.approx(14.0)

    explicit = machine.with_overrides(gamma_cmp=0.5)

    def prog2(comm):
        comm.charge_flops(muladds=1, comparisons=4)
        return comm.clock

    assert run_spmd(1, prog2, machine=explicit).results[0] == pytest.approx(4.0)


def test_machine_compute_time_comparison_term():
    m = MachineModel(name="t", gamma=3.0, gamma_d=10.0, alpha=1.0, beta=0.0)
    assert m.comparison_time() == 3.0
    assert m.compute_time(2.0, 1.0) == pytest.approx(16.0)  # 2-arg form unchanged
    assert m.compute_time(0.0, 0.0, comparisons=5.0) == pytest.approx(15.0)
    m2 = m.with_overrides(gamma_cmp=0.25)
    assert m2.comparison_time() == 0.25
    assert m2.compute_time(1.0, 0.0, 4.0) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        MachineModel(name="bad", gamma=1.0, gamma_d=1.0, alpha=1.0, beta=1.0,
                     gamma_cmp=-1.0)


def test_channel_split_is_recorded():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, 1.0, tag=0, channel="row")
            comm.send(1, 1.0, tag=1, channel="col")
        else:
            comm.recv(0, tag=0)
            comm.recv(0, tag=1)

    trace = run_spmd(2, prog)
    assert trace.messages_by_channel("row") == 1
    assert trace.messages_by_channel("col") == 1


# ---------------------------------------------------------------- collectives
@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
def test_broadcast_delivers_to_all(p):
    def prog(comm):
        value = {"data": 42} if comm.rank == 0 else None
        return broadcast(comm, value, root=0)

    trace = run_spmd(p, prog)
    assert all(r == {"data": 42} for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 7])
def test_broadcast_from_nonzero_root(p):
    root = p - 1

    def prog(comm):
        value = "hello" if comm.rank == root else None
        return broadcast(comm, value, root=root)

    trace = run_spmd(p, prog)
    assert all(r == "hello" for r in trace.results)


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_reduce_sum(p):
    def prog(comm):
        return reduce(comm, comm.rank + 1, lambda a, b: a + b, root=0)

    trace = run_spmd(p, prog)
    assert trace.results[0] == p * (p + 1) // 2
    assert all(r is None for r in trace.results[1:])


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_allreduce_sum_everyone_gets_result(p):
    def prog(comm):
        return allreduce(comm, comm.rank + 1, lambda a, b: a + b)

    trace = run_spmd(p, prog)
    assert all(r == p * (p + 1) // 2 for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 8])
def test_allreduce_message_count_is_logarithmic(p):
    """Power-of-two all-reduce: each rank sends exactly log2(P) messages."""
    import math

    def prog(comm):
        allreduce(comm, 1.0, lambda a, b: a + b)

    trace = run_spmd(p, prog, machine=unit_machine())
    assert trace.max_messages == math.log2(p)


@pytest.mark.parametrize("p", [2, 3, 5])
def test_gather_and_allgather(p):
    def prog(comm):
        return (
            gather(comm, comm.rank * 2, root=0),
            allgather(comm, comm.rank * 2),
        )

    trace = run_spmd(p, prog)
    expected = [2 * i for i in range(p)]
    assert trace.results[0][0] == expected
    assert all(r[1] == expected for r in trace.results)


@pytest.mark.parametrize("p", [2, 4, 5])
def test_scatter(p):
    def prog(comm):
        values = [f"item{i}" for i in range(p)] if comm.rank == 0 else None
        return scatter(comm, values, root=0)

    trace = run_spmd(p, prog)
    assert trace.results == [f"item{i}" for i in range(p)]


def test_barrier_completes():
    def prog(comm):
        barrier(comm)
        return True

    assert all(run_spmd(4, prog).results)


def test_collective_over_subgroup():
    """Only the group's ranks participate; others are untouched."""

    def prog(comm):
        group = [1, 3]
        if comm.rank in group:
            return allreduce(comm, comm.rank, lambda a, b: a + b, group=group, tag="sub")
        return None

    trace = run_spmd(4, prog)
    assert trace.results[1] == 4 and trace.results[3] == 4
    assert trace.results[0] is None and trace.results[2] is None


def test_collective_wrong_group_raises():
    def prog(comm):
        return broadcast(comm, 1, root=0, group=[0])

    with pytest.raises(RankFailedError):
        run_spmd(2, prog, timeout=0.5)


@pytest.mark.parametrize("name", ["broadcast", "reduce", "scatter"])
def test_rooted_collective_rejects_root_outside_group(name):
    """A root outside the group must fail up front with a diagnosable message
    naming the collective, the root and the group — not a bare list.index
    ValueError from the middle of the tree."""
    from repro.distsim.collectives import reduce as reduce_, scatter

    def prog(comm):
        group = [0, 1]
        if name == "broadcast":
            return broadcast(comm, 1, root=3, group=group)
        if name == "reduce":
            return reduce_(comm, 1, lambda a, b: a + b, root=3, group=group)
        return scatter(comm, [1, 2], root=3, group=group)

    with pytest.raises(RankFailedError) as excinfo:
        run_spmd(2, prog, timeout=0.5)
    cause = excinfo.value.__cause__
    assert isinstance(cause, ValueError)
    assert f"{name}: root rank 3 is not a member of group [0, 1]" in str(cause)


def test_broadcast_singleton_group_still_validates_root():
    """The p == 1 early return must not skip the root-membership check."""
    def prog(comm):
        return broadcast(comm, 1, root=1, group=[0])

    with pytest.raises(RankFailedError):
        run_spmd(1, prog, timeout=0.5)


def test_nonassociative_order_is_deterministic():
    """allreduce applies the operator in group order (checked via string concat)."""

    def prog(comm):
        return allreduce(comm, str(comm.rank), lambda a, b: a + b)

    trace = run_spmd(4, prog)
    assert all(r == "0123" for r in trace.results)


# ------------------------------------------- non-power-of-two group coverage
@pytest.mark.parametrize("p", [3, 5, 6, 7])
def test_all_collectives_non_power_of_two(p):
    """Every collective delivers correct values on P = 3, 5, 6, 7."""
    root = p - 1

    def prog(comm):
        bcast = broadcast(comm, "payload" if comm.rank == root else None, root=root)
        red = reduce(comm, comm.rank + 1, lambda a, b: a + b, root=root, tag="r")
        allred = allreduce(comm, comm.rank + 1, lambda a, b: a + b, tag="ar")
        gathered = gather(comm, comm.rank ** 2, root=root, tag="g")
        allgathered = allgather(comm, comm.rank ** 2, tag="ag")
        values = [10 * i for i in range(p)] if comm.rank == root else None
        scattered = scatter(comm, values, root=root, tag="s")
        barrier(comm, tag="b")
        return (bcast, red, allred, gathered, allgathered, scattered)

    trace = run_spmd(p, prog)
    total = p * (p + 1) // 2
    squares = [i ** 2 for i in range(p)]
    for rank, (bcast, red, allred, gathered, allgathered, scattered) in enumerate(
        trace.results
    ):
        assert bcast == "payload"
        assert red == (total if rank == root else None)
        assert allred == total
        assert gathered == (squares if rank == root else None)
        assert allgathered == squares
        assert scattered == 10 * rank


@pytest.mark.parametrize("p", [3, 5, 6, 7])
def test_allreduce_non_power_of_two_message_depth(p):
    """Fold + butterfly + unfold: at most ceil(log2 p) + 1 sends per rank."""
    import math

    def prog(comm):
        allreduce(comm, 1.0, lambda a, b: a + b)

    trace = run_spmd(p, prog, machine=unit_machine())
    assert trace.max_messages <= math.ceil(math.log2(p)) + 1


@pytest.mark.parametrize("p", [3, 5, 6, 7])
def test_allreduce_consistent_non_power_of_two(p):
    """With a non-commutative operator every rank still agrees on one result
    containing each contribution exactly once (fold order is fixed, so the
    value is also stable across runs)."""

    def prog(comm):
        return allreduce(comm, str(comm.rank), lambda a, b: a + b)

    first = run_spmd(p, prog)
    second = run_spmd(p, prog)
    value = first.results[0]
    assert all(r == value for r in first.results)
    assert all(r == value for r in second.results)
    assert sorted(value) == [str(i) for i in range(p)]
