"""Tests for the distributed CALU and the simulated ScaLAPACK PDGETRF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calu
from repro.kernels import getrf_partial_pivoting
from repro.layouts import ProcessGrid
from repro.machines import ibm_power5, unit_machine
from repro.parallel import pcalu
from repro.randmat import randn
from repro.scalapack import pdgetrf


@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(16, 4, 2, 2), (32, 8, 2, 2), (32, 4, 2, 4), (48, 8, 4, 2), (24, 8, 1, 2), (36, 6, 2, 3)],
)
def test_pcalu_factorization_correct(n, b, pr, pc):
    A = randn(n, seed=n + b + pr)
    res = pcalu(A, ProcessGrid(pr, pc), block_size=b)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    assert np.array_equal(np.sort(res.perm), np.arange(n))


@pytest.mark.parametrize(
    "n,b,pr,pc",
    [(16, 4, 2, 2), (32, 8, 2, 2), (32, 4, 4, 2), (24, 8, 2, 1)],
)
def test_pdgetrf_factorization_correct(n, b, pr, pc):
    A = randn(n, seed=n * b + pr)
    res = pdgetrf(A, ProcessGrid(pr, pc), block_size=b)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)


def test_pdgetrf_matches_sequential_partial_pivoting():
    """The simulated ScaLAPACK baseline is exact partial pivoting."""
    A = randn(32, seed=3)
    res = pdgetrf(A, ProcessGrid(2, 2), block_size=8)
    ref = getrf_partial_pivoting(A)
    assert np.array_equal(res.perm, ref.perm)
    assert np.allclose(res.L, ref.L, atol=1e-11)
    assert np.allclose(res.U, ref.U, atol=1e-11)


def test_pcalu_matches_sequential_calu_pivot_quality():
    """Distributed and sequential CALU use the same tournament, so the pivot
    growth is comparable (the exact permutation may differ in ordering of the
    non-pivot rows)."""
    A = randn(32, seed=5)
    par = pcalu(A, ProcessGrid(2, 2), block_size=8)
    seq = calu(A, block_size=8, nblocks=2)
    assert np.max(np.abs(par.L)) < 10.0
    assert np.max(np.abs(seq.L)) < 10.0
    # The first panel sees exactly the same row blocks in both versions, so
    # its pivots (the leading b diagonal entries of U) must coincide.
    assert np.allclose(
        np.sort(np.abs(np.diag(par.U)[:8])), np.sort(np.abs(np.diag(seq.U)[:8])), rtol=1e-9
    )


def test_calu_sends_fewer_messages_than_pdgetrf():
    """The latency claim on the full factorization."""
    A = randn(64, seed=7)
    grid = ProcessGrid(2, 2)
    c = pcalu(A, grid, block_size=8, machine=unit_machine())
    s = pdgetrf(A, grid, block_size=8, machine=unit_machine())
    assert c.trace.max_messages < s.trace.max_messages
    assert c.trace.critical_path_time < s.trace.critical_path_time


def test_calu_word_volume_comparable_to_pdgetrf():
    """Bandwidth: both algorithms move a comparable number of words."""
    A = randn(64, seed=9)
    grid = ProcessGrid(2, 2)
    c = pcalu(A, grid, block_size=8, machine=unit_machine())
    s = pdgetrf(A, grid, block_size=8, machine=unit_machine())
    assert c.trace.total_words < 2.5 * s.trace.total_words


def test_pcalu_single_process_grid():
    A = randn(24, seed=11)
    res = pcalu(A, ProcessGrid(1, 1), block_size=8)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-11)
    assert res.trace.total_messages == 0


def test_pcalu_under_power5_machine_produces_time_and_channels():
    A = randn(48, seed=13)
    res = pcalu(A, ProcessGrid(2, 2), block_size=8, machine=ibm_power5())
    assert res.trace.critical_path_time > 0
    # Both row and column channels must have been exercised.
    assert res.trace.messages_by_channel("col") > 0
    assert res.trace.messages_by_channel("row") > 0


def test_block_size_not_dividing_matrix():
    A = randn(30, seed=15)
    res = pcalu(A, ProcessGrid(2, 2), block_size=7)
    assert np.allclose(A[res.perm, :], res.L @ res.U, atol=1e-10)
    res2 = pdgetrf(A, ProcessGrid(2, 2), block_size=7)
    assert np.allclose(A[res2.perm, :], res2.L @ res2.U, atol=1e-10)
