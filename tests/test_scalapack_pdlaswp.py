"""Tests for the distributed row-swap helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import run_spmd
from repro.layouts import BlockCyclic2D, ProcessGrid
from repro.randmat import randn
from repro.scalapack import apply_swaps_to_permutation, winners_to_swaps
from repro.scalapack.pdlaswp import pdlaswp


@pytest.mark.parametrize(
    "j0,winners",
    [
        (0, [5, 3, 9]),
        (2, [2, 3, 4]),          # already in place: no swaps needed
        (0, [1, 0]),             # winners displace each other
        (4, [10, 4, 6, 11]),     # mix of in-place and moves
    ],
)
def test_winners_to_swaps_places_winners_at_target(j0, winners):
    m = 16
    perm = apply_swaps_to_permutation(np.arange(m), winners_to_swaps(j0, winners))
    assert list(perm[j0 : j0 + len(winners)]) == winners


def test_winners_to_swaps_empty():
    assert winners_to_swaps(0, []) == []


def test_winners_already_at_top_produce_no_swaps():
    assert winners_to_swaps(3, [3, 4, 5]) == []


@pytest.mark.parametrize("pr,pc,b", [(2, 2, 2), (4, 2, 3), (2, 3, 4)])
def test_pdlaswp_matches_sequential_swaps(pr, pc, b):
    m, n = 24, 20
    A = randn(m, n, seed=pr * 10 + pc)
    grid = ProcessGrid(pr, pc)
    dist = BlockCyclic2D(m, n, b, grid)
    swaps = winners_to_swaps(0, [7, 13, 2, 9])
    locals_ = dist.scatter(A)

    def prog(comm):
        Aloc = locals_[comm.rank].copy()
        myrow, mycol = grid.coords(comm.rank)
        cols = np.arange(dist.local_cols(mycol).shape[0])
        pdlaswp(comm, dist, Aloc, swaps, cols, tag="t")
        return Aloc

    trace = run_spmd(grid.size, prog)
    gathered = dist.gather({r: res for r, res in enumerate(trace.results)})

    expected = A.copy()
    for r1, r2 in swaps:
        expected[[r1, r2], :] = expected[[r2, r1], :]
    assert np.allclose(gathered, expected)


def test_pdlaswp_subset_of_columns_only():
    m, n, b = 12, 8, 2
    grid = ProcessGrid(2, 1)
    dist = BlockCyclic2D(m, n, b, grid)
    A = randn(m, n, seed=3)
    locals_ = dist.scatter(A)
    swaps = [(0, 5)]

    def prog(comm):
        Aloc = locals_[comm.rank].copy()
        # Swap only the first two local columns.
        pdlaswp(comm, dist, Aloc, swaps, np.array([0, 1]), tag="t")
        return Aloc

    trace = run_spmd(grid.size, prog)
    gathered = dist.gather({r: res for r, res in enumerate(trace.results)})
    expected = A.copy()
    expected[[0, 5], :2] = expected[[5, 0], :2]
    assert np.allclose(gathered, expected)
