"""Exceptions raised by the virtual message-passing runtime."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for errors raised by the virtual MPI runtime."""


class DeadlockError(SimulationError):
    """A rank waited longer than the configured timeout for a message.

    In a correct SPMD program running under the simulator every receive is
    eventually matched by a send; a timeout therefore indicates a communication
    mismatch (wrong tag, wrong peer, or a rank that exited early).
    """


class RankFailedError(SimulationError):
    """One or more ranks raised an exception during an SPMD run.

    The original exception of the lowest failing rank is chained as the
    ``__cause__`` of this error.
    """

    def __init__(self, failures):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        super().__init__(f"SPMD ranks failed: {ranks}")
