"""Exceptions raised by the virtual message-passing runtime."""

from __future__ import annotations

from ..core.options import UnknownOptionError


class SimulationError(RuntimeError):
    """Base class for errors raised by the virtual MPI runtime."""


class UnknownEngineError(SimulationError, UnknownOptionError):
    """An ``engine=`` / ``REPRO_VMPI_ENGINE`` value names no registered engine.

    Subclasses :class:`~repro.core.options.UnknownOptionError` (itself a
    :class:`ValueError`) so the message shape and the ``name`` / ``available``
    attributes are shared with the pivoting/tier/matmul knobs, and callers
    that caught the old bare :class:`ValueError` keep working.
    """

    def __init__(self, name, available):
        UnknownOptionError.__init__(self, "execution engine", name, available)


class DeadlockError(SimulationError):
    """A rank waited longer than the configured timeout for a message.

    In a correct SPMD program running under the simulator every receive is
    eventually matched by a send; a timeout therefore indicates a communication
    mismatch (wrong tag, wrong peer, or a rank that exited early).

    Attributes
    ----------
    blocked:
        Structured description of what each blocked rank was waiting on:
        a mapping ``rank -> {"source": int, "tag": ...}`` for point-to-point
        waits, or ``rank -> {"collective": kind, "tag": ..., "group": (...)}``
        for ranks parked inside an unmatched group collective.  Engines that
        detect deadlock structurally fill it for every blocked rank; the
        threaded engine's timeout fills it for the timed-out rank only.
    """

    def __init__(self, message, blocked=None):
        super().__init__(message)
        self.blocked = dict(blocked or {})


class RankFailedError(SimulationError):
    """One or more ranks raised an exception during an SPMD run.

    The original exception of the lowest failing rank is chained as the
    ``__cause__`` of this error.
    """

    def __init__(self, failures):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        super().__init__(f"SPMD ranks failed: {ranks}")
