"""A virtual MPI: SPMD ranks with α-β-γ cost accounting, pluggable engines.

The paper's experiments ran on MPI over 64-888 processors.  This module
provides an in-process substitute: :func:`run_spmd` executes ``P`` copies of
the same rank function, each bound to a :class:`Communicator` for its rank.
Point-to-point messages travel through the engine's transport; collectives
(:mod:`repro.distsim.collectives`) are built from point-to-point messages, so
every message a real MPI implementation would send is visible to the cost
ledger.

Execution engines
-----------------
*How* the rank programs are interleaved on the host is delegated to a
pluggable :class:`~repro.distsim.engine.base.ExecutionEngine`
(:mod:`repro.distsim.engine`):

* ``"threaded"`` (default) — one OS thread per rank, timeout-guarded
  receives; the original backend.
* ``"event"`` — a deterministic single-runner discrete-event scheduler that
  resumes the runnable rank with the smallest simulated clock, detects
  deadlock structurally, and scales to the paper's process counts (P ≥ 888).
* ``"coroutine"`` — a deterministic single-threaded scheduler that steps the
  rank programs as generator coroutines (no threads at all) and evaluates
  collectives as single group-level events; process counts in the thousands
  (P ≈ 10⁴) run in seconds.

All engines charge costs through the same shared
:class:`~repro.distsim.engine.base.Communicator`, so the simulated message /
word / flop counts and critical-path times are **identical** across engines
for the same program; only host wall-clock behavior differs.

Cost accounting
---------------
Each rank owns a :class:`~repro.distsim.tracing.RankTrace` with a *simulated
clock*.  The clock advances by

* ``muladds·γ + divides·γ_d + comparisons·γ_cmp`` whenever the rank charges
  arithmetic,
* ``α + w·β`` whenever the rank sends a message of ``w`` words,

and a receive synchronises the receiver's clock with the message's
availability time (``max(receiver clock, sender clock when the message
became available)``), which yields the standard critical-path time of the
α-β-γ model.  The latency/bandwidth parameters can differ per *channel*
("col" = within a process column, "row" = within a process row), matching the
``α_c/β_c`` vs ``α_r/β_r`` distinction of Section 4.

Fidelity note: real networks overlap computation with communication and
contend for links; this simulator does neither.  That is the documented
substitution — the quantities the paper argues about (message counts, word
counts, flops, and their weighted sum) are reproduced exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from ..machines.model import MachineModel, unit_machine
from .engine import (
    DEFAULT_TIMEOUT,
    Communicator,
    ExecutionEngine,
    default_timeout,
    payload_words,
    resolve_engine,
)
from .engine.base import Envelope as _Envelope  # backwards-compatible alias
from .errors import DeadlockError, RankFailedError  # noqa: F401 - re-export
from .tracing import RunTrace

__all__ = [
    "Communicator",
    "run_spmd",
    "payload_words",
    "DEFAULT_TIMEOUT",
    "default_timeout",
]


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: Optional[MachineModel] = None,
    timeout: Optional[float] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    **kwargs: Any,
) -> RunTrace:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` virtual ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks to launch.
    fn:
        The SPMD program.  It receives a :class:`Communicator` as its first
        argument; its return value is collected into the result list.
    machine:
        Machine model pricing communication and arithmetic; defaults to
        :func:`repro.machines.model.unit_machine` (count message steps).
    timeout:
        Per-receive deadlock timeout in (real) seconds — only meaningful for
        the threaded engine; the event engine detects deadlock structurally.
        Defaults to the ``REPRO_VMPI_TIMEOUT`` environment variable, else
        120 s.
    engine:
        Execution engine: a registered name (``"threaded"``, ``"event"``,
        ``"coroutine"``), an
        :class:`~repro.distsim.engine.base.ExecutionEngine` instance, or
        ``None`` to use ``REPRO_VMPI_ENGINE`` / the threaded default.

    Returns
    -------
    RunTrace
        Per-rank traces plus the list of per-rank return values.

    Raises
    ------
    RankFailedError
        If any rank raises; the first failing rank's exception is chained.
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    machine = machine or unit_machine()
    if timeout is None:
        timeout = default_timeout()
    eng = resolve_engine(engine)
    return eng.run(nprocs, fn, args, kwargs, machine=machine, timeout=timeout)
