"""A virtual MPI: threaded SPMD ranks with α-β-γ cost accounting.

The paper's experiments ran on MPI over 64-888 processors.  This module
provides an in-process substitute: :func:`run_spmd` launches ``P`` Python
threads, each executing the same rank function with a :class:`Communicator`
bound to its rank.  Point-to-point messages travel through in-memory queues;
collectives (:mod:`repro.distsim.collectives`) are built from point-to-point
messages, so every message a real MPI implementation would send is visible to
the cost ledger.

Cost accounting
---------------
Each rank owns a :class:`~repro.distsim.tracing.RankTrace` with a *simulated
clock*.  The clock advances by

* ``muladds·γ + divides·γ_d`` whenever the rank charges arithmetic,
* ``α + w·β`` whenever the rank sends a message of ``w`` words,

and a receive synchronises the receiver's clock with the message's
availability time (``max(receiver clock, sender clock when the message
became available)``), which yields the standard critical-path time of the
α-β-γ model.  The latency/bandwidth parameters can differ per *channel*
("col" = within a process column, "row" = within a process row), matching the
``α_c/β_c`` vs ``α_r/β_r`` distinction of Section 4.

Fidelity note: real networks overlap computation with communication and
contend for links; this simulator does neither.  That is the documented
substitution — the quantities the paper argues about (message counts, word
counts, flops, and their weighted sum) are reproduced exactly.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.flops import FlopCounter
from ..machines.model import MachineModel, unit_machine
from .errors import DeadlockError, RankFailedError
from .tracing import RankTrace, RunTrace

#: Default number of seconds a blocking receive waits before declaring deadlock.
DEFAULT_TIMEOUT = 120.0


def payload_words(payload: Any) -> float:
    """Estimate the size of a message payload in 8-byte words.

    numpy arrays count their actual storage; scalars and small control
    objects (pivot indices, flags) count 1 word each; tuples/lists/dicts count
    the sum of their elements.  This mirrors how a real code would pack the
    same information into MPI buffers.
    """
    if isinstance(payload, np.ndarray):
        return float(payload.size * payload.itemsize) / 8.0
    if isinstance(payload, (int, float, np.integer, np.floating, bool)) or payload is None:
        return 1.0
    if isinstance(payload, (tuple, list)):
        return float(sum(payload_words(x) for x in payload)) if payload else 1.0
    if isinstance(payload, dict):
        return float(sum(payload_words(v) for v in payload.values())) if payload else 1.0
    if isinstance(payload, str):
        return max(1.0, len(payload) / 8.0)
    return 1.0


@dataclass
class _Envelope:
    """Internal wrapper around a message in flight."""

    source: int
    tag: Any
    payload: Any
    words: float
    available_at: float  # simulated time at which the receiver may consume it


class Communicator:
    """Handle through which a rank communicates and charges costs.

    The interface intentionally mirrors a small subset of mpi4py:
    :meth:`send`, :meth:`recv`, plus collective operations provided as free
    functions in :mod:`repro.distsim.collectives`.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: Sequence["queue.Queue[_Envelope]"],
        machine: MachineModel,
        trace: RankTrace,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self._rank = rank
        self._size = size
        self._mailboxes = mailboxes
        self._machine = machine
        self._trace = trace
        self._timeout = timeout
        # Messages received but not yet matched by tag/source.
        self._stash: List[_Envelope] = []

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        """This process's rank in ``0..size-1``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the run."""
        return self._size

    @property
    def machine(self) -> MachineModel:
        """The machine model pricing this run."""
        return self._machine

    @property
    def trace(self) -> RankTrace:
        """This rank's cost trace (counters and simulated clock)."""
        return self._trace

    @property
    def clock(self) -> float:
        """Current simulated time of this rank."""
        return self._trace.clock

    # ------------------------------------------------------------- computing
    def charge_flops(
        self, muladds: float = 0.0, divides: float = 0.0, comparisons: float = 0.0
    ) -> None:
        """Charge arithmetic to this rank and advance its simulated clock."""
        self._trace.flops.add_muladds(muladds)
        self._trace.flops.add_divides(divides)
        self._trace.flops.add_comparisons(comparisons)
        self._trace.clock += self._machine.compute_time(muladds, divides)

    def charge_counter(self, counter: FlopCounter) -> None:
        """Charge the contents of a :class:`FlopCounter` (and reset it).

        Sequential kernels accumulate into a scratch counter; calling this
        transfers the work to the rank and zeroes the scratch counter so it
        can be reused.
        """
        self.charge_flops(counter.muladds, counter.divides, counter.comparisons)
        counter.reset()

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated clock without recording arithmetic (e.g. I/O)."""
        if seconds < 0:
            raise ValueError("cannot move the simulated clock backwards")
        self._trace.clock += seconds

    # --------------------------------------------------------- point-to-point
    def send(self, dest: int, payload: Any, tag: Any = 0, channel: str = "any") -> None:
        """Send ``payload`` to rank ``dest`` (blocking in MPI terms, but buffered).

        Parameters
        ----------
        dest:
            Destination rank.
        payload:
            Any picklable object; numpy arrays are passed by reference but
            copied defensively so later mutation by the sender cannot race the
            receiver.
        tag:
            Message tag used for matching.
        channel:
            "col", "row" or "any" — selects which latency/bandwidth parameters
            of the machine model price this message.
        """
        if not (0 <= dest < self._size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self._rank:
            raise ValueError("self-sends are not supported; restructure the algorithm")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        words = payload_words(payload)
        cost = self._machine.message_time(words, channel)
        self._trace.record_send(words, channel)
        self._trace.clock += cost
        env = _Envelope(
            source=self._rank,
            tag=tag,
            payload=payload,
            words=words,
            available_at=self._trace.clock,
        )
        self._mailboxes[dest].put(env)

    def recv(self, source: int, tag: Any = 0) -> Any:
        """Receive a message from ``source`` with matching ``tag``.

        Blocks (with a deadlock timeout) until a matching message arrives.
        The rank's simulated clock is advanced to at least the time at which
        the message became available on the sender's side.
        """
        env = self._match(source, tag)
        self._trace.record_recv(env.words)
        self._trace.clock = max(self._trace.clock, env.available_at)
        return env.payload

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: Optional[int] = None,
        tag: Any = 0,
        channel: str = "any",
    ) -> Any:
        """Exchange messages with a partner (send to ``dest``, receive from ``source``).

        ``source`` defaults to ``dest`` — the pairwise exchange used at every
        level of the TSLU butterfly.
        """
        if source is None:
            source = dest
        self.send(dest, payload, tag=tag, channel=channel)
        return self.recv(source, tag=tag)

    # ---------------------------------------------------------------- helpers
    def _match(self, source: int, tag: Any) -> _Envelope:
        for i, env in enumerate(self._stash):
            if env.source == source and env.tag == tag:
                return self._stash.pop(i)
        deadline_budget = self._timeout
        while True:
            try:
                env = self._mailboxes[self._rank].get(timeout=deadline_budget)
            except queue.Empty as exc:
                raise DeadlockError(
                    f"rank {self._rank} timed out waiting for message "
                    f"(source={source}, tag={tag!r})"
                ) from exc
            if env.source == source and env.tag == tag:
                return env
            self._stash.append(env)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: Optional[MachineModel] = None,
    timeout: float = DEFAULT_TIMEOUT,
    **kwargs: Any,
) -> RunTrace:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` virtual ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks (threads) to launch.
    fn:
        The SPMD program.  It receives a :class:`Communicator` as its first
        argument; its return value is collected into the result list.
    machine:
        Machine model pricing communication and arithmetic; defaults to
        :func:`repro.machines.model.unit_machine` (count message steps).
    timeout:
        Per-receive deadlock timeout in (real) seconds.

    Returns
    -------
    RunTrace
        Per-rank traces plus the list of per-rank return values.

    Raises
    ------
    RankFailedError
        If any rank raises; the first failing rank's exception is chained.
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    machine = machine or unit_machine()
    mailboxes: List["queue.Queue[_Envelope]"] = [queue.Queue() for _ in range(nprocs)]
    traces = [RankTrace(rank=r) for r in range(nprocs)]
    results: List[Any] = [None] * nprocs
    failures: Dict[int, BaseException] = {}

    def worker(rank: int) -> None:
        comm = Communicator(rank, nprocs, mailboxes, machine, traces[rank], timeout)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failures[rank] = exc

    if nprocs == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"vmpi-rank-{r}", daemon=True)
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        first = failures[min(failures)]
        raise RankFailedError(failures) from first
    return RunTrace(ranks=traces, results=results)
