"""Collective operations built from point-to-point messages.

ScaLAPACK's drivers and CALU both rely on broadcasts, reductions and
all-reductions along rows and columns of the process grid.  The paper's model
prices each collective over ``P`` processes as ``log2(P)`` communication
steps; the implementations below use binomial trees (broadcast, reduce,
gather, scatter) and a recursive-doubling butterfly (all-reduce / all-gather),
which have exactly that depth, so the simulated critical path matches the
model's assumption.

All collectives operate over an explicit *group*: an ordered list of world
ranks.  This is how "the column of the grid holding block-column j" or "the
process row holding block-row j" are expressed.  Every rank in the group must
call the collective with the same group (same order); other ranks must not.

Each collective is a :class:`~repro.distsim.engine.base.SpmdProgram`: calling
it blocks (the historical API, valid on every engine), while ``.co(...)``
returns the resumable generator form for use inside rank coroutines
(``value = yield from broadcast.co(comm, ...)``).  On engines that advertise
``comm.group_collectives`` (the coroutine engine), a collective yields one
group-level :class:`~repro.distsim.engine.base.CollectiveRequest` instead of
walking its point-to-point tree; the scheduler evaluates the same tree
centrally (:mod:`repro.distsim.engine.group_ops`) with bit-identical per-rank
cost attribution, so traces match across engines either way.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .engine.base import CollectiveRequest, spmd_program
from .vmpi import Communicator


def _norm_group(comm: Communicator, group: Optional[Sequence[int]]) -> Sequence[int]:
    """Canonical group form: ``range`` for the whole world, tuple otherwise.

    The default all-ranks group is kept as a ``range`` object because every
    participant of a group-level collective hashes and position-indexes its
    group — with a materialized list that is O(P) per rank, O(P²) per
    collective, which dominates whole-world collectives at large P.  A
    ``range`` hashes, compares and ``index``-es in O(1).
    """
    if group is None:
        return range(comm.size)
    if isinstance(group, range):
        return group
    return tuple(group)


def _position(comm: Communicator, group: Sequence[int]) -> int:
    try:
        return group.index(comm.rank)
    except ValueError as exc:
        raise ValueError(
            f"rank {comm.rank} called a collective for group {list(group)} "
            "it does not belong to"
        ) from exc


def _root_position(name: str, root: int, group: Sequence[int]) -> int:
    """Position of ``root`` in ``group``, validated up front.

    A rooted collective whose root is outside the group would otherwise die
    on a bare ``index`` ValueError somewhere mid-tree — this raises a
    diagnosable error naming the collective, the root and the group instead.
    """
    try:
        return group.index(root)
    except ValueError:
        raise ValueError(
            f"{name}: root rank {root} is not a member of group {list(group)}"
        ) from None


@spmd_program
def broadcast(
    comm: Communicator,
    value: Any,
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "bcast",
    channel: str = "any",
) -> Any:
    """Binomial-tree broadcast of ``value`` from ``root`` to every rank of ``group``.

    Parameters
    ----------
    comm:
        The calling rank's communicator.
    value:
        The payload (significant only on ``root``).
    root:
        World rank of the source.
    group:
        Ordered list of participating world ranks; defaults to all ranks.
    tag:
        Tag namespace for this collective (use distinct tags for concurrent
        collectives on overlapping groups).
    channel:
        Cost channel ("row", "col", "any").

    Returns
    -------
    The broadcast value on every rank of the group.
    """
    group = _norm_group(comm, group)
    p = len(group)
    me = _position(comm, group)
    rootpos = _root_position("broadcast", root, group)
    if p == 1:
        return value
    if comm.group_collectives:
        return (
            yield CollectiveRequest(
                kind="broadcast",
                group=group,
                pos=me,
                rootpos=rootpos,
                value=value,
                op=None,
                tag=tag,
                channel=channel,
            )
        )
    # Re-index so the root is position 0.
    vrank = (me - rootpos) % p

    # Binomial tree: in round k, ranks with vrank < 2**k that have the data
    # send it to vrank + 2**k.
    received = value if vrank == 0 else None
    k = 1
    while k < p:
        if vrank < k and vrank + k < p:
            dest = group[(vrank + k + rootpos) % p]
            comm.send(dest, received, tag=(tag, k), channel=channel)
        elif k <= vrank < 2 * k:
            src = group[(vrank - k + rootpos) % p]
            received = yield from comm.co_recv(src, tag=(tag, k))
        k *= 2
    return received


@spmd_program
def reduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "reduce",
    channel: str = "any",
) -> Optional[Any]:
    """Binomial-tree reduction to ``root`` with the associative operator ``op``.

    Returns the reduced value on ``root`` and ``None`` elsewhere.  ``op`` is
    applied as ``op(partial_from_child, own_partial)``; for commutative
    operators the order is irrelevant.
    """
    group = _norm_group(comm, group)
    p = len(group)
    me = _position(comm, group)
    rootpos = _root_position("reduce", root, group)
    if comm.group_collectives and p > 1:
        return (
            yield CollectiveRequest(
                kind="reduce",
                group=group,
                pos=me,
                rootpos=rootpos,
                value=value,
                op=op,
                tag=tag,
                channel=channel,
            )
        )
    vrank = (me - rootpos) % p

    acc = value
    k = 1
    while k < p:
        if vrank % (2 * k) == 0:
            partner = vrank + k
            if partner < p:
                src = group[(partner + rootpos) % p]
                other = yield from comm.co_recv(src, tag=(tag, k))
                acc = op(other, acc)
        elif vrank % (2 * k) == k:
            dest = group[(vrank - k + rootpos) % p]
            comm.send(dest, acc, tag=(tag, k), channel=channel)
            return None if comm.rank != root else acc
        k *= 2
    return acc if comm.rank == root else None


@spmd_program
def allreduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    group: Optional[Sequence[int]] = None,
    tag: Any = "allreduce",
    channel: str = "any",
) -> Any:
    """Butterfly (recursive-doubling) all-reduction.

    Every rank of the group obtains ``op`` applied over all contributions in
    ``log2(P)`` pairwise-exchange steps.  This is the communication pattern of
    TSLU itself (with ``op`` = "Gaussian elimination of two stacked b x b
    blocks"), so the same routine is reused there.

    For non-power-of-two groups the routine folds the excess ranks into the
    nearest power of two first (one extra step), as standard MPI
    implementations do.
    """
    group = _norm_group(comm, group)
    p = len(group)
    me = _position(comm, group)
    if p == 1:
        return value
    if comm.group_collectives:
        return (
            yield CollectiveRequest(
                kind="allreduce",
                group=group,
                pos=me,
                rootpos=0,
                value=value,
                op=op,
                tag=tag,
                channel=channel,
            )
        )

    # Largest power of two <= p.
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    rem = p - pow2

    acc = value
    # Fold ranks beyond the power-of-two boundary onto their partners.
    if me >= pow2:
        dest = group[me - pow2]
        comm.send(dest, acc, tag=(tag, "fold"), channel=channel)
    elif me < rem:
        other = yield from comm.co_recv(group[me + pow2], tag=(tag, "fold"))
        acc = op(other, acc)

    if me < pow2:
        k = 1
        while k < pow2:
            partner = me ^ k
            other = yield from comm.co_sendrecv(
                group[partner], acc, tag=(tag, k), channel=channel
            )
            # Keep a deterministic order: lower position's contribution first.
            acc = op(other, acc) if partner < me else op(acc, other)
            k *= 2

    # Un-fold: send the result back to the folded ranks.
    if me < rem:
        comm.send(group[me + pow2], acc, tag=(tag, "unfold"), channel=channel)
    elif me >= pow2:
        acc = yield from comm.co_recv(group[me - pow2], tag=(tag, "unfold"))
    return acc


@spmd_program
def gather(
    comm: Communicator,
    value: Any,
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "gather",
    channel: str = "any",
) -> Optional[List[Any]]:
    """Binomial-tree gather; returns the list of contributions (in group order) on ``root``."""
    def merge(a: dict, b: dict) -> dict:
        out = dict(b)
        out.update(a)
        return out

    me = _position(comm, _norm_group(comm, group))
    result = yield from reduce.co(
        comm, {me: value}, merge, root, group=group, tag=tag, channel=channel
    )
    if comm.rank == root and result is not None:
        return [result[i] for i in sorted(result)]
    return None


@spmd_program
def allgather(
    comm: Communicator,
    value: Any,
    group: Optional[Sequence[int]] = None,
    tag: Any = "allgather",
    channel: str = "any",
) -> List[Any]:
    """Butterfly all-gather; every rank receives the list of contributions in group order."""
    grp = _norm_group(comm, group)
    me = _position(comm, grp)

    def merge(a: dict, b: dict) -> dict:
        out = dict(b)
        out.update(a)
        return out

    combined = yield from allreduce.co(
        comm, {me: value}, merge, group=grp, tag=tag, channel=channel
    )
    return [combined[i] for i in sorted(combined)]


@spmd_program
def scatter(
    comm: Communicator,
    values: Optional[Sequence[Any]],
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "scatter",
    channel: str = "any",
) -> Any:
    """Scatter one element of ``values`` (significant on ``root``) to each group rank.

    Implemented as root-sends (linear), which is how ScaLAPACK distributes
    small per-process payloads; the latency cost is attributed to the root.
    """
    group = _norm_group(comm, group)
    me = _position(comm, group)
    rootpos = _root_position("scatter", root, group)
    if comm.rank == root and (values is None or len(values) != len(group)):
        raise ValueError("root must supply one value per group member")
    if comm.group_collectives and len(group) > 1:
        return (
            yield CollectiveRequest(
                kind="scatter",
                group=group,
                pos=me,
                rootpos=rootpos,
                value=list(values) if comm.rank == root else None,
                op=None,
                tag=tag,
                channel=channel,
            )
        )
    if comm.rank == root:
        for pos, dest in enumerate(group):
            if dest == root:
                continue
            comm.send(dest, values[pos], tag=(tag, pos), channel=channel)
        return values[rootpos]
    return (yield from comm.co_recv(root, tag=(tag, me)))


@spmd_program
def barrier(
    comm: Communicator,
    group: Optional[Sequence[int]] = None,
    tag: Any = "barrier",
    channel: str = "any",
) -> None:
    """Synchronise all ranks of the group (an all-reduce of nothing)."""
    yield from allreduce.co(comm, 0, lambda a, b: 0, group=group, tag=tag, channel=channel)
