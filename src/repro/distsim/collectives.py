"""Collective operations built from point-to-point messages.

ScaLAPACK's drivers and CALU both rely on broadcasts, reductions and
all-reductions along rows and columns of the process grid.  The paper's model
prices each collective over ``P`` processes as ``log2(P)`` communication
steps; the implementations below use binomial trees (broadcast, reduce,
gather, scatter) and a recursive-doubling butterfly (all-reduce / all-gather),
which have exactly that depth, so the simulated critical path matches the
model's assumption.

All collectives operate over an explicit *group*: an ordered list of world
ranks.  This is how "the column of the grid holding block-column j" or "the
process row holding block-row j" are expressed.  Every rank in the group must
call the collective with the same group (same order); other ranks must not.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .vmpi import Communicator


def _position(comm: Communicator, group: Sequence[int]) -> int:
    try:
        return list(group).index(comm.rank)
    except ValueError as exc:
        raise ValueError(
            f"rank {comm.rank} called a collective for group {list(group)} "
            "it does not belong to"
        ) from exc


def _root_position(name: str, root: int, group: Sequence[int]) -> int:
    """Position of ``root`` in ``group``, validated up front.

    A rooted collective whose root is outside the group would otherwise die
    on a bare ``list.index`` ValueError somewhere mid-tree — this raises a
    diagnosable error naming the collective, the root and the group instead.
    """
    try:
        return list(group).index(root)
    except ValueError:
        raise ValueError(
            f"{name}: root rank {root} is not a member of group {list(group)}"
        ) from None


def broadcast(
    comm: Communicator,
    value: Any,
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "bcast",
    channel: str = "any",
) -> Any:
    """Binomial-tree broadcast of ``value`` from ``root`` to every rank of ``group``.

    Parameters
    ----------
    comm:
        The calling rank's communicator.
    value:
        The payload (significant only on ``root``).
    root:
        World rank of the source.
    group:
        Ordered list of participating world ranks; defaults to all ranks.
    tag:
        Tag namespace for this collective (use distinct tags for concurrent
        collectives on overlapping groups).
    channel:
        Cost channel ("row", "col", "any").

    Returns
    -------
    The broadcast value on every rank of the group.
    """
    group = list(group) if group is not None else list(range(comm.size))
    p = len(group)
    me = _position(comm, group)
    rootpos = _root_position("broadcast", root, group)
    if p == 1:
        return value
    # Re-index so the root is position 0.
    vrank = (me - rootpos) % p

    # Binomial tree: in round k, ranks with vrank < 2**k that have the data
    # send it to vrank + 2**k.
    have = vrank == 0
    received = value if have else None
    k = 1
    while k < p:
        if vrank < k and vrank + k < p:
            dest = group[(vrank + k + rootpos) % p]
            comm.send(dest, received, tag=(tag, k), channel=channel)
        elif k <= vrank < 2 * k:
            src = group[(vrank - k + rootpos) % p]
            received = comm.recv(src, tag=(tag, k))
        k *= 2
    return received


def reduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "reduce",
    channel: str = "any",
) -> Optional[Any]:
    """Binomial-tree reduction to ``root`` with the associative operator ``op``.

    Returns the reduced value on ``root`` and ``None`` elsewhere.  ``op`` is
    applied as ``op(partial_from_child, own_partial)``; for commutative
    operators the order is irrelevant.
    """
    group = list(group) if group is not None else list(range(comm.size))
    p = len(group)
    me = _position(comm, group)
    rootpos = _root_position("reduce", root, group)
    vrank = (me - rootpos) % p

    acc = value
    k = 1
    while k < p:
        if vrank % (2 * k) == 0:
            partner = vrank + k
            if partner < p:
                src = group[(partner + rootpos) % p]
                other = comm.recv(src, tag=(tag, k))
                acc = op(other, acc)
        elif vrank % (2 * k) == k:
            dest = group[(vrank - k + rootpos) % p]
            comm.send(dest, acc, tag=(tag, k), channel=channel)
            return None if comm.rank != root else acc
        k *= 2
    return acc if comm.rank == root else None


def allreduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    group: Optional[Sequence[int]] = None,
    tag: Any = "allreduce",
    channel: str = "any",
) -> Any:
    """Butterfly (recursive-doubling) all-reduction.

    Every rank of the group obtains ``op`` applied over all contributions in
    ``log2(P)`` pairwise-exchange steps.  This is the communication pattern of
    TSLU itself (with ``op`` = "Gaussian elimination of two stacked b x b
    blocks"), so the same routine is reused there.

    For non-power-of-two groups the routine folds the excess ranks into the
    nearest power of two first (one extra step), as standard MPI
    implementations do.
    """
    group = list(group) if group is not None else list(range(comm.size))
    p = len(group)
    me = _position(comm, group)
    if p == 1:
        return value

    # Largest power of two <= p.
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    rem = p - pow2

    acc = value
    # Fold ranks beyond the power-of-two boundary onto their partners.
    if me >= pow2:
        dest = group[me - pow2]
        comm.send(dest, acc, tag=(tag, "fold"), channel=channel)
    elif me < rem:
        other = comm.recv(group[me + pow2], tag=(tag, "fold"))
        acc = op(other, acc)

    if me < pow2:
        k = 1
        while k < pow2:
            partner = me ^ k
            other = comm.sendrecv(
                group[partner], acc, tag=(tag, k), channel=channel
            )
            # Keep a deterministic order: lower position's contribution first.
            acc = op(other, acc) if partner < me else op(acc, other)
            k *= 2

    # Un-fold: send the result back to the folded ranks.
    if me < rem:
        comm.send(group[me + pow2], acc, tag=(tag, "unfold"), channel=channel)
    elif me >= pow2:
        acc = comm.recv(group[me - pow2], tag=(tag, "unfold"))
    return acc


def gather(
    comm: Communicator,
    value: Any,
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "gather",
    channel: str = "any",
) -> Optional[List[Any]]:
    """Binomial-tree gather; returns the list of contributions (in group order) on ``root``."""
    def merge(a: dict, b: dict) -> dict:
        out = dict(b)
        out.update(a)
        return out

    me = _position(comm, list(group) if group is not None else list(range(comm.size)))
    result = reduce(comm, {me: value}, merge, root, group=group, tag=tag, channel=channel)
    if comm.rank == root and result is not None:
        return [result[i] for i in sorted(result)]
    return None


def allgather(
    comm: Communicator,
    value: Any,
    group: Optional[Sequence[int]] = None,
    tag: Any = "allgather",
    channel: str = "any",
) -> List[Any]:
    """Butterfly all-gather; every rank receives the list of contributions in group order."""
    grp = list(group) if group is not None else list(range(comm.size))
    me = _position(comm, grp)

    def merge(a: dict, b: dict) -> dict:
        out = dict(b)
        out.update(a)
        return out

    combined = allreduce(comm, {me: value}, merge, group=grp, tag=tag, channel=channel)
    return [combined[i] for i in sorted(combined)]


def scatter(
    comm: Communicator,
    values: Optional[Sequence[Any]],
    root: int,
    group: Optional[Sequence[int]] = None,
    tag: Any = "scatter",
    channel: str = "any",
) -> Any:
    """Scatter one element of ``values`` (significant on ``root``) to each group rank.

    Implemented as root-sends (linear), which is how ScaLAPACK distributes
    small per-process payloads; the latency cost is attributed to the root.
    """
    group = list(group) if group is not None else list(range(comm.size))
    me = _position(comm, group)
    rootpos = _root_position("scatter", root, group)
    if comm.rank == root:
        if values is None or len(values) != len(group):
            raise ValueError("root must supply one value per group member")
        for pos, dest in enumerate(group):
            if dest == root:
                continue
            comm.send(dest, values[pos], tag=(tag, pos), channel=channel)
        return values[rootpos]
    return comm.recv(root, tag=(tag, me))


def barrier(
    comm: Communicator,
    group: Optional[Sequence[int]] = None,
    tag: Any = "barrier",
    channel: str = "any",
) -> None:
    """Synchronise all ranks of the group (an all-reduce of nothing)."""
    allreduce(comm, 0, lambda a, b: 0, group=group, tag=tag, channel=channel)
