"""Per-rank communication/computation traces.

The whole point of the reproduction is to measure *communication* — the
number of messages and words each process sends, the arithmetic it performs,
and the resulting critical-path time under a machine model.  Every virtual
rank owns a :class:`RankTrace`; the runtime aggregates them into a
:class:`RunTrace` whose fields line up with the terms of Equations (1)-(3) of
the paper (latency term = messages, bandwidth term = words, flop terms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernels.flops import FlopCounter


@dataclass
class RankTrace:
    """Counters and simulated clock for a single virtual process.

    Attributes
    ----------
    rank:
        The process's linear rank.
    messages_sent / messages_received:
        Point-to-point message counts.  Collectives are built from
        point-to-point messages so their cost is captured automatically.
    words_sent / words_received:
        8-byte words moved (numpy payloads count their size; small control
        payloads count a fixed overhead of 1 word).
    messages_by_channel / words_by_channel:
        Split of the send counters by communication channel ("col" for
        messages within a process column, "row" for within a process row,
        "any" otherwise) — the paper prices these with different
        latency/bandwidth parameters (``α_c, β_c`` vs ``α_r, β_r``).
    flops:
        Arithmetic performed by this rank.
    clock:
        Simulated time (seconds under the run's machine model) at which the
        rank has finished everything it has done so far.
    zero_copy_sends:
        Number of sends whose defensive numpy copy was elided because the
        engine proved the payload could not alias (see
        :mod:`repro.distsim.engine.base`).  Purely diagnostic — the words
        charged are identical either way.
    group_collectives:
        Number of collectives this rank completed through a single group-level
        event instead of point-to-point messages (coroutine engine only; see
        :mod:`repro.distsim.engine.group_ops`).  Purely diagnostic — the
        message/word/flop counters and the clock charged per rank are
        identical to the point-to-point evaluation, so this field is *not*
        part of :meth:`RunTrace.summary` and not compared by the cross-engine
        parity suite.
    """

    rank: int
    messages_sent: int = 0
    messages_received: int = 0
    words_sent: float = 0.0
    words_received: float = 0.0
    messages_by_channel: Dict[str, int] = field(default_factory=dict)
    words_by_channel: Dict[str, float] = field(default_factory=dict)
    flops: FlopCounter = field(default_factory=FlopCounter)
    clock: float = 0.0
    zero_copy_sends: int = 0
    group_collectives: int = 0

    def record_send(self, words: float, channel: str, zero_copy: bool = False) -> None:
        """Record one outgoing message of ``words`` 8-byte words."""
        self.messages_sent += 1
        self.words_sent += words
        self.messages_by_channel[channel] = self.messages_by_channel.get(channel, 0) + 1
        self.words_by_channel[channel] = self.words_by_channel.get(channel, 0.0) + words
        if zero_copy:
            self.zero_copy_sends += 1

    def record_recv(self, words: float) -> None:
        """Record one incoming message of ``words`` 8-byte words."""
        self.messages_received += 1
        self.words_received += words


@dataclass
class RunTrace:
    """Aggregate view over all ranks of one SPMD run.

    Attributes
    ----------
    ranks:
        The per-rank traces, indexed by rank.
    results:
        The values returned by each rank's SPMD function.
    engine:
        Name of the execution engine that produced this trace ("threaded",
        "event", ...); empty for hand-built traces.
    """

    ranks: List[RankTrace]
    results: List[object] = field(default_factory=list)
    engine: str = ""

    @property
    def nprocs(self) -> int:
        """Number of ranks that took part in the run."""
        return len(self.ranks)

    @property
    def total_messages(self) -> int:
        """Total point-to-point messages sent by all ranks."""
        return sum(t.messages_sent for t in self.ranks)

    @property
    def total_words(self) -> float:
        """Total words sent by all ranks."""
        return sum(t.words_sent for t in self.ranks)

    @property
    def max_messages(self) -> int:
        """Maximum messages sent by any single rank (latency critical path proxy)."""
        return max((t.messages_sent for t in self.ranks), default=0)

    @property
    def max_words(self) -> float:
        """Maximum words sent by any single rank (bandwidth critical path proxy)."""
        return max((t.words_sent for t in self.ranks), default=0.0)

    @property
    def critical_path_time(self) -> float:
        """Simulated wall-clock time: the largest per-rank clock."""
        return max((t.clock for t in self.ranks), default=0.0)

    @property
    def total_flops(self) -> float:
        """Total arithmetic (muladds + divides) over all ranks."""
        return sum(t.flops.total for t in self.ranks)

    @property
    def total_group_collectives(self) -> int:
        """Collectives delivered as single group-level events (diagnostic).

        Non-zero only under the coroutine engine; deliberately kept out of
        :meth:`summary` because summaries are compared across engines.
        """
        return sum(t.group_collectives for t in self.ranks)

    @property
    def max_flops(self) -> float:
        """Maximum arithmetic performed by any rank."""
        return max((t.flops.total for t in self.ranks), default=0.0)

    def messages_by_channel(self, channel: str) -> int:
        """Total messages sent over a given channel ("row", "col", "any")."""
        return sum(t.messages_by_channel.get(channel, 0) for t in self.ranks)

    def words_by_channel(self, channel: str) -> float:
        """Total words sent over a given channel."""
        return sum(t.words_by_channel.get(channel, 0.0) for t in self.ranks)

    def summary(self) -> Dict[str, float]:
        """Dictionary summary convenient for tabular reporting."""
        return {
            "nprocs": self.nprocs,
            "total_messages": self.total_messages,
            "max_messages": self.max_messages,
            "total_words": self.total_words,
            "max_words": self.max_words,
            "total_flops": self.total_flops,
            "max_flops": self.max_flops,
            "critical_path_time": self.critical_path_time,
        }
