"""Virtual message-passing runtime with α-β-γ cost accounting.

This is the stand-in for MPI + a parallel machine: SPMD rank functions run in
threads, exchange messages through :class:`~repro.distsim.vmpi.Communicator`,
and every message/word/flop is charged to a per-rank trace priced under a
:class:`~repro.machines.model.MachineModel`.
"""

from .collectives import (
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    reduce,
    scatter,
)
from .errors import DeadlockError, RankFailedError, SimulationError
from .tracing import RankTrace, RunTrace
from .vmpi import Communicator, payload_words, run_spmd

__all__ = [
    "Communicator",
    "run_spmd",
    "payload_words",
    "RankTrace",
    "RunTrace",
    "SimulationError",
    "DeadlockError",
    "RankFailedError",
    "broadcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "barrier",
]
