"""Virtual message-passing runtime with α-β-γ cost accounting.

This is the stand-in for MPI + a parallel machine: SPMD rank functions
exchange messages through :class:`~repro.distsim.vmpi.Communicator`, and
every message/word/flop is charged to a per-rank trace priced under a
:class:`~repro.machines.model.MachineModel`.

Three execution backends are available (see :mod:`repro.distsim.engine`):

``threaded``
    The original backend: one OS thread per rank, OS-scheduled, with a
    real-time timeout guarding blocking receives.  Its host-side interleaving
    is nondeterministic and it degrades beyond a few dozen ranks (GIL
    contention, thread startup), but rank programs that release the GIL can
    overlap for real.
``event``
    A deterministic single-process discrete-event scheduler: exactly one rank
    runs at a time, and the next runnable rank is always the one with the
    smallest ``(simulated clock, rank)``.  Deadlock is detected structurally
    (no rank runnable ⇒ fail immediately), traces are bit-for-bit
    reproducible across runs, and process counts at the paper's scale
    (P = 64…888 and beyond) are practical.
``coroutine``
    The event engine's wake order without the threads: rank programs run as
    generator coroutines stepped by a single host thread, and collectives are
    evaluated as single group-level events with per-rank cost attribution.
    Deterministic, structurally deadlock-detecting, and fast enough for
    process counts in the thousands (P ≈ 10⁴).

**Determinism guarantee** — the simulated quantities (message counts, word
counts, flop counts, per-rank clocks and hence critical-path times) are a
pure function of the rank programs and the machine model.  They are identical
across *all* backends and across repeated runs; the event and coroutine
engines additionally make the host-side execution order itself reproducible.

Select a backend with ``run_spmd(..., engine="coroutine")``, the
``REPRO_VMPI_ENGINE`` environment variable, or register your own via
:func:`repro.distsim.engine.register_engine`.
"""

from .collectives import (
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    reduce,
    scatter,
)
from .engine import (
    ExecutionEngine,
    SpmdProgram,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine,
    spmd_program,
)
from .errors import (
    DeadlockError,
    RankFailedError,
    SimulationError,
    UnknownEngineError,
)
from .tracing import RankTrace, RunTrace
from .vmpi import (
    DEFAULT_TIMEOUT,
    Communicator,
    default_timeout,
    payload_words,
    run_spmd,
)

__all__ = [
    "Communicator",
    "run_spmd",
    "payload_words",
    "DEFAULT_TIMEOUT",
    "default_timeout",
    "ExecutionEngine",
    "SpmdProgram",
    "spmd_program",
    "available_engines",
    "get_engine",
    "register_engine",
    "resolve_engine",
    "RankTrace",
    "RunTrace",
    "SimulationError",
    "DeadlockError",
    "RankFailedError",
    "UnknownEngineError",
    "broadcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "barrier",
]
