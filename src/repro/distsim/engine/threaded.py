"""The threaded execution engine (the original virtual-MPI backend).

One OS thread per rank; point-to-point messages travel through per-rank
:class:`queue.Queue` mailboxes.  Blocking receives are guarded by a real-time
timeout, after which a :class:`~repro.distsim.errors.DeadlockError` is raised
— the interleaving of rank programs is whatever the OS scheduler produces, so
deadlock cannot be detected structurally here.

The simulated quantities (counts, words, flops, clocks) are computed entirely
in :class:`~repro.distsim.engine.base.Communicator` and are therefore
identical to the deterministic event engine's; only host-side execution
differs.  Prefer this backend when rank programs call into code that releases
the GIL for long stretches and real parallelism helps; prefer the event
engine for determinism and for large ``P``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ...machines.model import MachineModel
from ..errors import DeadlockError
from ..tracing import RankTrace, RunTrace
from .base import Communicator, Envelope, ExecutionEngine, call_rank_program


class ThreadedCommunicator(Communicator):
    """Communicator whose transport is a per-rank thread-safe mailbox queue."""

    def __init__(
        self,
        rank: int,
        size: int,
        mailboxes: Sequence["queue.Queue[Envelope]"],
        machine: MachineModel,
        trace: RankTrace,
        timeout: float,
    ) -> None:
        super().__init__(rank, size, machine, trace)
        self._mailboxes = mailboxes
        self._timeout = timeout

    def _deliver(self, dest: int, env: Envelope) -> None:
        self._mailboxes[dest].put(env)

    def _match(self, source: int, tag: Any) -> Envelope:
        for i, env in enumerate(self._stash):
            if env.source == source and env.tag == tag:
                return self._stash.pop(i)
        deadline_budget = self._timeout
        while True:
            try:
                env = self._mailboxes[self._rank].get(timeout=deadline_budget)
            except queue.Empty as exc:
                raise DeadlockError(
                    f"rank {self._rank} timed out waiting for message "
                    f"(source={source}, tag={tag!r})",
                    blocked={self._rank: {"source": source, "tag": tag}},
                ) from exc
            if env.source == source and env.tag == tag:
                return env
            self._stash.append(env)


class ThreadedEngine(ExecutionEngine):
    """One real thread per rank, OS-scheduled, timeout-based deadlock guard."""

    name = "threaded"
    deterministic = False

    def run(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        machine: MachineModel,
        timeout: float,
    ) -> RunTrace:
        mailboxes: List["queue.Queue[Envelope]"] = [queue.Queue() for _ in range(nprocs)]
        traces = [RankTrace(rank=r) for r in range(nprocs)]
        results: List[Any] = [None] * nprocs
        failures: Dict[int, BaseException] = {}

        def worker(rank: int) -> None:
            comm = ThreadedCommunicator(
                rank, nprocs, mailboxes, machine, traces[rank], timeout
            )
            try:
                results[rank] = call_rank_program(fn, comm, args, kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to the caller
                failures[rank] = exc

        if nprocs == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(
                    target=worker, args=(r,), name=f"vmpi-rank-{r}", daemon=True
                )
                for r in range(nprocs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        return self._finish_run(traces, results, failures)
