"""Single-threaded coroutine execution engine: the virtual MPI at P ≈ 10⁴.

The event engine already computes the correct deterministic wake order — a
heap of ``(simulated clock, rank)`` — but it still parks one OS thread per
rank and passes a baton between them, so every suspension costs a futex
handshake and every run costs ``P`` thread stacks.  This engine lifts the
rank bodies out of threads entirely: each rank's SPMD program runs as a
*generator coroutine* (see the coroutine protocol in
:mod:`repro.distsim.engine.base`), and a single host thread steps the
runnable generator with the smallest ``(clock, rank)`` key.  A blocking
receive becomes ``yield RecvRequest`` — a Python frame suspension, three
orders of magnitude cheaper than a thread handoff — so process counts in the
thousands (ptslu at P = 4096, pdgesv at P = 2048) run in seconds where the
threaded engine cannot even allocate its stacks.

On top of the scheduler, collectives are *vectorized*: a
broadcast/reduce/all-reduce/scatter over a rank group yields one group-level
:class:`~repro.distsim.engine.base.CollectiveRequest`; the scheduler
rendezvouses the ``len(group)`` participants on a single event and evaluates
the collective's communication tree centrally
(:mod:`repro.distsim.engine.group_ops`) with per-rank cost attribution that
is bit-identical to the point-to-point evaluation — one event instead of
``O(P)`` suspensions and envelope deliveries per collective.  Point-to-point
traffic (e.g. the pairwise exchanges of ``pdlaswp``) still flows through
stash + wake, as on the event engine.

Like the event engine this backend is deterministic, detects deadlock
structurally (reporting, per blocked rank, the ``(source, tag)`` or the
collective it waits on), and enables zero-copy payload delivery for provably
unaliased temporaries.  Rank programs that are *not* generator-based fall
back to the event engine's thread-baton machinery transparently, so legacy
blocking bodies keep working under ``engine="coroutine"``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...machines.model import MachineModel
from ..errors import DeadlockError, SimulationError
from ..tracing import RankTrace, RunTrace
from .base import (
    CollectiveRequest,
    Communicator,
    Envelope,
    ExecutionEngine,
    RecvRequest,
    coroutine_entry,
)
from .group_ops import evaluate_collective

_READY = "ready"
_BLOCKED = "blocked"  # suspended on a RecvRequest
_JOINED = "joined"  # suspended in a partially-assembled collective
_DONE = "done"


class CoroutineCommunicator(Communicator):
    """Communicator whose transport is the coroutine scheduler's stash + wake."""

    copy_elision = True
    group_collectives = True

    def __init__(
        self,
        rank: int,
        size: int,
        machine: MachineModel,
        trace: RankTrace,
        scheduler: "_CoroutineScheduler",
    ) -> None:
        super().__init__(rank, size, machine, trace)
        self._scheduler = scheduler

    def _deliver(self, dest: int, env: Envelope) -> None:
        self._scheduler.deliver(dest, env)

    def _match(self, source: int, tag: Any) -> Envelope:
        # Reached only through the *blocking* API (comm.recv / a blocking
        # SpmdProgram call) from inside a rank coroutine.  The single host
        # thread cannot park here, but a message that has already arrived can
        # be consumed without suspending — so opportunistic blocking calls
        # keep working as long as they never actually have to wait.
        for i, env in enumerate(self._stash):
            if env.source == source and env.tag == tag:
                return self._stash.pop(i)
        raise SimulationError(
            f"rank {self._rank} called a blocking receive for (source={source}, "
            f"tag={tag!r}) with no matching message under the coroutine engine; "
            "use the generator form (comm.co_recv / program.co) so the "
            "scheduler can suspend the rank"
        )


class _RankState:
    """Book-keeping the scheduler holds for one rank coroutine."""

    __slots__ = ("rank", "comm", "gen", "status", "waiting", "resume_value", "pending_exc")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.comm: Optional[CoroutineCommunicator] = None
        self.gen = None
        self.status = _READY
        self.waiting: Optional[Any] = None  # RecvRequest or CollectiveRequest
        self.resume_value: Any = None
        self.pending_exc: Optional[BaseException] = None


class _CoroutineScheduler:
    """Heap-ordered single-threaded stepper over the rank generators.

    Invariant: exactly one generator executes at a time (the host thread runs
    them in sequence), so scheduler state is only mutated between steps.  The
    heap holds each READY rank exactly once, keyed by ``(simulated clock,
    rank)`` — a rank's clock cannot change while it is suspended, so entries
    never go stale.  This is the event engine's wake order with the thread
    baton replaced by a plain loop.
    """

    def __init__(self, nprocs: int) -> None:
        self.states = [_RankState(r) for r in range(nprocs)]
        self.heap: List[Tuple[float, int]] = [(0.0, r) for r in range(nprocs)]
        self.n_done = 0
        self.results: List[Any] = [None] * nprocs
        self.failures: Dict[int, BaseException] = {}
        # Rendezvous buckets: key -> FIFO list of partially-filled instances,
        # each mapping group position -> its CollectiveRequest.  The FIFO
        # handles back-to-back same-key collectives (e.g. repeated barriers):
        # a rank joining its i-th instance lands in the i-th bucket.
        self.pending_collectives: Dict[Any, List[Dict[int, CollectiveRequest]]] = {}

    # --------------------------------------------------------------- stepping
    def run(self) -> None:
        nprocs = len(self.states)
        while self.n_done < nprocs:
            if not self.heap:
                self._inject_deadlock()
            _, rank = heapq.heappop(self.heap)
            self._step(self.states[rank])

    def _step(self, st: _RankState) -> None:
        try:
            if st.pending_exc is not None:
                exc, st.pending_exc = st.pending_exc, None
                request = st.gen.throw(exc)
            else:
                value, st.resume_value = st.resume_value, None
                request = st.gen.send(value)
        except StopIteration as stop:
            self.results[st.rank] = stop.value
            self._finish(st)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            self.failures[st.rank] = exc
            self._finish(st)
        else:
            self._handle_request(st, request)

    def _finish(self, st: _RankState) -> None:
        st.status = _DONE
        st.gen = None
        self.n_done += 1

    def _handle_request(self, st: _RankState, request: Any) -> None:
        if isinstance(request, RecvRequest):
            stash = st.comm._stash
            for i, env in enumerate(stash):
                if env.source == request.source and env.tag == request.tag:
                    st.resume_value = stash.pop(i)
                    heapq.heappush(self.heap, (st.comm.clock, st.rank))
                    return
            st.status = _BLOCKED
            st.waiting = request
        elif isinstance(request, CollectiveRequest):
            self._join_collective(st, request)
        else:
            st.pending_exc = SimulationError(
                f"rank {st.rank} yielded an unknown request: {request!r}"
            )
            heapq.heappush(self.heap, (st.comm.clock, st.rank))

    # ------------------------------------------------------- point-to-point
    def deliver(self, dest: int, env: Envelope) -> None:
        st = self.states[dest]
        if (
            st.status is _BLOCKED
            and st.waiting.source == env.source
            and st.waiting.tag == env.tag
        ):
            # Nothing else can match (the rank scanned its stash before
            # suspending), so resolve the wait directly.
            st.status = _READY
            st.waiting = None
            st.resume_value = env
            heapq.heappush(self.heap, (st.comm.clock, st.rank))
        else:
            st.comm._stash.append(env)

    # ----------------------------------------------------------- collectives
    @staticmethod
    def _collective_key(req: CollectiveRequest) -> Any:
        return (req.kind, req.group, req.tag, req.channel, req.rootpos)

    def _join_collective(self, st: _RankState, req: CollectiveRequest) -> None:
        key = self._collective_key(req)
        buckets = self.pending_collectives.setdefault(key, [])
        for bucket in buckets:
            if req.pos not in bucket:
                bucket[req.pos] = req
                break
        else:
            bucket = {req.pos: req}
            buckets.append(bucket)
        if len(bucket) == len(req.group):
            buckets.remove(bucket)
            if not buckets:
                del self.pending_collectives[key]
            self._finish_collective(req.group, req.kind, req.channel, bucket)
        else:
            st.status = _JOINED
            st.waiting = req

    def _finish_collective(
        self,
        group: Sequence[int],
        kind: str,
        channel: str,
        bucket: Dict[int, CollectiveRequest],
    ) -> None:
        p = len(group)
        comms = [self.states[group[pos]].comm for pos in range(p)]
        requests = [bucket[pos] for pos in range(p)]
        rootpos = requests[0].rootpos
        if kind == "scatter":
            values: List[Any] = requests[rootpos].value
        else:
            values = [r.value for r in requests]
        results = evaluate_collective(
            comms, kind, values, [r.op for r in requests], rootpos, channel
        )
        for pos in range(p):
            st = self.states[group[pos]]
            st.status = _READY
            st.waiting = None
            st.resume_value = results[pos]
            heapq.heappush(self.heap, (st.comm.clock, st.rank))

    # -------------------------------------------------------------- deadlock
    def _inject_deadlock(self) -> None:
        """No rank is runnable and some are suspended: fail them all, now.

        Every suspended rank is re-queued with a pending
        :class:`DeadlockError` describing, per rank, the ``(source, tag)`` or
        the collective it was waiting on; the ranks then unwind one by one in
        deterministic heap order.
        """
        blocked = [s for s in self.states if s.status in (_BLOCKED, _JOINED)]
        info: Dict[int, Dict[str, Any]] = {}
        parts: List[str] = []
        for s in blocked:
            w = s.waiting
            if isinstance(w, CollectiveRequest):
                info[s.rank] = {
                    "collective": w.kind,
                    "tag": w.tag,
                    "group": tuple(w.group),
                }
                parts.append(
                    f"rank {s.rank} waiting in collective "
                    f"(kind={w.kind}, tag={w.tag!r}, group={list(w.group)})"
                )
            else:
                info[s.rank] = {"source": w.source, "tag": w.tag}
                parts.append(
                    f"rank {s.rank} waiting for (source={w.source}, tag={w.tag!r})"
                )
        message = "structural deadlock: no rank is runnable [" + "; ".join(parts) + "]"
        self.pending_collectives.clear()
        for s in blocked:
            s.pending_exc = DeadlockError(message, blocked=info)
            s.status = _READY
            s.waiting = None
            heapq.heappush(self.heap, (s.comm.clock, s.rank))


class CoroutineEngine(ExecutionEngine):
    """Generator-coroutine backend: one host thread, heap-ordered, vectorized."""

    name = "coroutine"
    deterministic = True

    def run(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        machine: MachineModel,
        timeout: float,  # accepted for interface compatibility; unused
    ) -> RunTrace:
        entry = coroutine_entry(fn)
        if entry is None:
            # Compatibility shim: a plain blocking rank program needs a real
            # thread to park, so borrow the event engine's baton machinery
            # and re-tag the trace.
            from .event import EventEngine

            trace = EventEngine().run(nprocs, fn, args, kwargs, machine, timeout)
            trace.engine = self.name
            return trace

        traces = [RankTrace(rank=r) for r in range(nprocs)]
        sched = _CoroutineScheduler(nprocs)
        for st in sched.states:
            st.comm = CoroutineCommunicator(
                st.rank, nprocs, machine, traces[st.rank], sched
            )
            st.gen = entry(st.comm, *args, **kwargs)
        sched.run()
        return self._finish_run(traces, sched.results, sched.failures)
