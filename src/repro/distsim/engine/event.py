"""Deterministic event-driven execution engine.

Rank programs run as coroutines via thread-baton handoff: every rank owns a
(paused) host thread, but exactly **one** of them executes at any moment.  A
rank runs until it blocks on a receive whose message has not arrived, at
which point it hands the baton straight to the runnable rank with the
smallest ``(simulated clock, rank)`` — a discrete-event simulation ordered by
the α-β-γ model's own time.  The ready queue is a binary heap and the baton
passes peer to peer (one futex handshake per switch, no central scheduler
thread), so a context switch costs O(log P) bookkeeping plus a single OS
wakeup.

Consequences of this design:

* **Determinism** — the interleaving is a pure function of the rank programs
  and the machine model, so repeated runs are bit-for-bit identical (traces,
  results, and host execution order).
* **Structural deadlock detection** — when no rank is runnable and some are
  blocked, that is a deadlock *now*; a
  :class:`~repro.distsim.errors.DeadlockError` is raised into every blocked
  rank immediately instead of after a 120 s timeout.
* **Scalability** — parked threads cost only (mostly untouched, virtual)
  stack memory; there is no GIL contention, no timeout polling, and no O(P)
  work per event, so runs with ``P`` at the paper's scale (64–888 ranks and
  beyond) are practical.

The simulated quantities are identical to the threaded engine's for the same
program, because all accounting lives in the shared
:class:`~repro.distsim.engine.base.Communicator`.  Since rank execution is
serialized, the engine also enables zero-copy payload delivery for provably
unaliased numpy temporaries (see the base module).
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...machines.model import MachineModel
from ..errors import DeadlockError
from ..tracing import RankTrace, RunTrace
from .base import Communicator, Envelope, ExecutionEngine, call_rank_program

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class _RankState:
    """Book-keeping the scheduler holds for one rank coroutine."""

    __slots__ = ("rank", "comm", "thread", "resume", "status", "waiting", "pending_exc")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.comm: Optional["EventCommunicator"] = None
        self.thread: Optional[threading.Thread] = None
        self.resume = threading.Event()
        self.status = _READY
        self.waiting: Optional[Tuple[int, Any]] = None
        self.pending_exc: Optional[BaseException] = None


class EventCommunicator(Communicator):
    """Communicator whose transport is the deterministic scheduler itself."""

    copy_elision = True

    def __init__(
        self,
        rank: int,
        size: int,
        machine: MachineModel,
        trace: RankTrace,
        scheduler: "_Scheduler",
    ) -> None:
        super().__init__(rank, size, machine, trace)
        self._scheduler = scheduler

    def _deliver(self, dest: int, env: Envelope) -> None:
        self._scheduler.deliver(dest, env)

    def _match(self, source: int, tag: Any) -> Envelope:
        while True:
            stash = self._stash
            for i, env in enumerate(stash):
                if env.source == source and env.tag == tag:
                    return stash.pop(i)
            # Nothing matches: park this rank until a matching envelope
            # arrives (or the scheduler declares a structural deadlock).
            self._scheduler.block(self._rank, source, tag)


class _Scheduler:
    """Deterministic ready-queue scheduler, executed by the ranks themselves.

    Invariant: exactly one rank thread executes between two baton handoffs,
    so scheduler state is only ever mutated by the single running rank (or by
    the launcher before the first handoff).  ``heap`` holds each READY rank
    exactly once, keyed by ``(simulated clock, rank)`` — a rank's clock
    cannot change while it is parked, so entries never go stale.
    """

    def __init__(self, nprocs: int) -> None:
        self.states = [_RankState(r) for r in range(nprocs)]
        self.heap: List[Tuple[float, int]] = [(0.0, r) for r in range(nprocs)]
        self.n_done = 0
        self.all_done = threading.Event()

    # ----------------------------------------------------- called from ranks
    def deliver(self, dest: int, env: Envelope) -> None:
        st = self.states[dest]
        st.comm._stash.append(env)
        if st.status is _BLOCKED and st.waiting == (env.source, env.tag):
            st.status = _READY
            st.waiting = None
            heapq.heappush(self.heap, (st.comm.clock, st.rank))

    def block(self, rank: int, source: int, tag: Any) -> None:
        st = self.states[rank]
        st.waiting = (source, tag)
        st.status = _BLOCKED
        if self._dispatch_from(st):
            st.resume.wait()
            st.resume.clear()
        if st.pending_exc is not None:
            exc = st.pending_exc
            st.pending_exc = None
            raise exc

    def finish(self, st: _RankState) -> None:
        """Called (on the rank's thread) after the rank function returned."""
        st.status = _DONE
        self.n_done += 1
        if self.n_done == len(self.states):
            self.all_done.set()
            return
        # A DONE rank is never in the heap, so this always resumes a peer.
        self._dispatch_from(st)

    # ---------------------------------------------------------------- baton
    def _dispatch_from(self, current: _RankState) -> bool:
        """Hand the baton to the next runnable rank.

        Returns True when the baton left ``current`` (the caller must park),
        False when deadlock injection chose ``current`` itself to resume.
        """
        if self.heap:
            _, rank = heapq.heappop(self.heap)
            nxt = self.states[rank]
        else:
            nxt = self._inject_deadlock()
        if nxt is current:
            return False
        nxt.resume.set()
        return True

    def _inject_deadlock(self) -> _RankState:
        """No rank is runnable: fail every blocked rank with a DeadlockError.

        All blocked ranks are re-queued with a pending exception so they
        unwind one by one in deterministic order; the first of them is
        returned as the next rank to run.
        """
        blocked = [s for s in self.states if s.status is _BLOCKED]
        waits = "; ".join(
            f"rank {s.rank} waiting for (source={s.waiting[0]}, tag={s.waiting[1]!r})"
            for s in blocked
        )
        info = {
            s.rank: {"source": s.waiting[0], "tag": s.waiting[1]} for s in blocked
        }
        for s in blocked:
            s.pending_exc = DeadlockError(
                f"structural deadlock: no rank is runnable [{waits}]",
                blocked=info,
            )
            s.status = _READY
            s.waiting = None
            heapq.heappush(self.heap, (s.comm.clock, s.rank))
        _, rank = heapq.heappop(self.heap)
        return self.states[rank]


class EventEngine(ExecutionEngine):
    """Single-runner discrete-event backend: deterministic, timeout-free."""

    name = "event"
    deterministic = True

    def run(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        machine: MachineModel,
        timeout: float,  # accepted for interface compatibility; unused
    ) -> RunTrace:
        traces = [RankTrace(rank=r) for r in range(nprocs)]
        results: List[Any] = [None] * nprocs
        failures: Dict[int, BaseException] = {}
        sched = _Scheduler(nprocs)
        for st in sched.states:
            st.comm = EventCommunicator(st.rank, nprocs, machine, traces[st.rank], sched)

        def body(st: _RankState) -> None:
            st.resume.wait()
            st.resume.clear()
            try:
                results[st.rank] = call_rank_program(fn, st.comm, args, kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to the caller
                failures[st.rank] = exc
            finally:
                sched.finish(st)

        for st in sched.states:
            st.thread = threading.Thread(
                target=body, args=(st,), name=f"vmpi-ev-{st.rank}", daemon=True
            )
            st.thread.start()

        # Hand the baton to the first rank and wait for the run to drain.
        first = sched.states[heapq.heappop(sched.heap)[1]]
        first.resume.set()
        sched.all_done.wait()
        for st in sched.states:
            if st.thread is not None:
                st.thread.join()

        return self._finish_run(traces, results, failures)
