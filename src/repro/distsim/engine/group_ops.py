"""Central evaluation of group-level collectives (coroutine engine).

When every participant of a collective has yielded its
:class:`~repro.distsim.engine.base.CollectiveRequest`, the scheduler hands
the whole group to :func:`evaluate_collective`, which replays the *same*
communication tree the point-to-point implementation in
:mod:`repro.distsim.collectives` would walk — binomial broadcast/reduce,
fold + recursive-doubling butterfly + unfold for the all-reduce, linear
root-sends for the scatter — but as plain Python loops over the group,
charging each participant's trace directly.

The contract is **bit identity** with the point-to-point evaluation, pinned
by the cross-engine parity suite.  That dictates several details mirrored
from ``collectives.py`` and ``Communicator.send``/``recv`` exactly:

* per edge, the sender records the send and advances its clock *before* the
  receiver records the receive and max-syncs with the sender's post-send
  clock (the envelope's ``available_at``);
* within one butterfly round, both partners send before either receives —
  ``sendrecv`` order — so a round's ``available_at`` values never include
  the same round's operator applications;
* operator applications use each *receiver's own* submitted closure (ops in
  this codebase charge flops through the communicator they close over) in
  the exact association order of the tree: ``op(other, own)`` for reduce and
  the fold, ``op(other, acc) if partner < me else op(acc, other)`` in the
  butterfly;
* top-level ndarray payloads are copied per edge (what ``send`` does
  defensively); tuples/dicts are shared by reference, as point-to-point
  delivery shares them.  Collective payloads are always name-bound at their
  send sites, so the point-to-point path never copy-elides them — the
  central path therefore records plain (non-zero-copy) sends, keeping
  ``zero_copy_sends`` identical too.

One collective here replaces ``O(P)`` scheduler suspensions and envelope
deliveries with a single event — the vectorization that lets the coroutine
engine run figure-scale sweeps at ``P`` in the thousands.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .base import Communicator, payload_words


def _ship(payload: Any) -> Any:
    """Per-edge payload transfer: defensive copy for top-level ndarrays only."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


class _Edge:
    """One group position's charging state, with α/β hoisted out of the loops.

    A collective charges O(P log P) edges in tight Python loops, so the
    per-edge path avoids repeated property lookups and the
    ``message_time`` → ``latency``/``inv_bandwidth`` call chain: the
    channel-resolved α and β are constant for the collective's lifetime, and
    ``α + words·β`` is the exact expression ``MachineModel.message_time``
    evaluates, so clocks stay bit-identical.
    """

    __slots__ = ("trace", "alpha", "beta")

    def __init__(self, comm: Communicator, channel: str) -> None:
        self.trace = comm.trace
        self.alpha = comm.machine.latency(channel)
        self.beta = comm.machine.inv_bandwidth(channel)

    def charge_send(self, payload: Any, channel: str) -> Tuple[float, float]:
        """Record one send and return ``(words, available_at)``."""
        words = payload_words(payload)
        trace = self.trace
        trace.record_send(words, channel)
        trace.clock += self.alpha + words * self.beta
        return words, trace.clock

    def charge_recv(self, words: float, available_at: float) -> None:
        """Record one receive and max-sync the clock."""
        trace = self.trace
        trace.record_recv(words)
        if available_at > trace.clock:
            trace.clock = available_at


def _eval_broadcast(
    edges: Sequence[_Edge],
    values: Sequence[Any],
    rootpos: int,
    channel: str,
) -> List[Any]:
    """Binomial-tree broadcast, root re-indexed to virtual rank 0."""
    p = len(edges)
    by_v = [edges[(v + rootpos) % p] for v in range(p)]
    data: List[Any] = [None] * p  # indexed by virtual rank
    data[0] = values[rootpos]
    k = 1
    while k < p:
        for v in range(min(k, p)):
            if v + k < p:
                payload = _ship(data[v])
                words, avail = by_v[v].charge_send(data[v], channel)
                by_v[v + k].charge_recv(words, avail)
                data[v + k] = payload
        k *= 2
    return [data[(pos - rootpos) % p] for pos in range(p)]


def _eval_reduce(
    edges: Sequence[_Edge],
    values: Sequence[Any],
    ops: Sequence[Callable[[Any, Any], Any]],
    rootpos: int,
    channel: str,
) -> List[Any]:
    """Binomial-tree reduction to the root's position; ``None`` elsewhere."""
    p = len(edges)
    by_v = [edges[(v + rootpos) % p] for v in range(p)]
    ops_v = [ops[(v + rootpos) % p] for v in range(p)]
    acc: List[Any] = [values[(v + rootpos) % p] for v in range(p)]
    k = 1
    while k < p:
        # Virtual ranks with vrank % 2k == k each send to vrank - k, which
        # folds the contribution in with its own submitted operator.
        for v in range(k, p, 2 * k):
            dest = v - k
            payload = _ship(acc[v])
            words, avail = by_v[v].charge_send(acc[v], channel)
            by_v[dest].charge_recv(words, avail)
            acc[dest] = ops_v[dest](payload, acc[dest])
        k *= 2
    return [acc[0] if pos == rootpos else None for pos in range(p)]


def _eval_allreduce(
    edges: Sequence[_Edge],
    values: Sequence[Any],
    ops: Sequence[Callable[[Any, Any], Any]],
    channel: str,
) -> List[Any]:
    """Fold + recursive-doubling butterfly + unfold, by group position."""
    p = len(edges)
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    rem = p - pow2

    acc: List[Any] = list(values)
    # Fold the excess ranks onto their partners below the power-of-two line.
    for me in range(pow2, p):
        dest = me - pow2
        payload = _ship(acc[me])
        words, avail = edges[me].charge_send(acc[me], channel)
        edges[dest].charge_recv(words, avail)
        acc[dest] = ops[dest](payload, acc[dest])

    k = 1
    while k < pow2:
        # sendrecv semantics: every rank's send (and hence its partner's
        # available_at) precedes every receive and operator of this round.
        payloads: List[Any] = [None] * pow2
        words_sent: List[float] = [0.0] * pow2
        avails: List[float] = [0.0] * pow2
        for me in range(pow2):
            payloads[me] = _ship(acc[me])
            words_sent[me], avails[me] = edges[me].charge_send(acc[me], channel)
        for me in range(pow2):
            partner = me ^ k
            edges[me].charge_recv(words_sent[partner], avails[partner])
        nxt: List[Any] = [None] * pow2
        for me in range(pow2):
            partner = me ^ k
            other = payloads[partner]
            # Deterministic association order: lower position's contribution
            # first, exactly as the point-to-point butterfly applies it.
            nxt[me] = ops[me](other, acc[me]) if partner < me else ops[me](acc[me], other)
        acc[:pow2] = nxt
        k *= 2

    # Un-fold: ship the finished result back up across the line.
    for me in range(rem):
        dest = me + pow2
        payload = _ship(acc[me])
        words, avail = edges[me].charge_send(acc[me], channel)
        edges[dest].charge_recv(words, avail)
        acc[dest] = payload
    return acc


def _eval_scatter(
    edges: Sequence[_Edge],
    root_values: Sequence[Any],
    rootpos: int,
    channel: str,
) -> List[Any]:
    """Linear root-sends in group order; the root keeps its own element."""
    p = len(edges)
    results: List[Any] = [None] * p
    root = edges[rootpos]
    for pos in range(p):
        if pos == rootpos:
            continue
        payload = _ship(root_values[pos])
        words, avail = root.charge_send(root_values[pos], channel)
        edges[pos].charge_recv(words, avail)
        results[pos] = payload
    results[rootpos] = root_values[rootpos]
    return results


def evaluate_collective(
    comms: Sequence[Communicator],
    kind: str,
    values: Sequence[Any],
    ops: Sequence[Optional[Callable[[Any, Any], Any]]],
    rootpos: int,
    channel: str,
) -> List[Any]:
    """Evaluate one rendezvoused collective; returns per-position results.

    ``comms``/``values``/``ops`` are indexed by group position (the order of
    the collective's ``group`` list).  Every participant's
    ``group_collectives`` diagnostic counter is bumped; all other counters
    follow the point-to-point tree exactly.
    """
    edges = [_Edge(comm, channel) for comm in comms]
    for edge in edges:
        edge.trace.group_collectives += 1
    if kind == "broadcast":
        return _eval_broadcast(edges, values, rootpos, channel)
    if kind == "reduce":
        return _eval_reduce(edges, values, ops, rootpos, channel)
    if kind == "allreduce":
        return _eval_allreduce(edges, values, ops, channel)
    if kind == "scatter":
        return _eval_scatter(edges, values, rootpos, channel)
    raise ValueError(f"unknown collective kind {kind!r}")
