"""Shared machinery of the virtual-MPI execution engines.

An *execution engine* decides how the ``P`` rank programs of an SPMD run are
interleaved on the host machine; it has no influence on the simulated
quantities.  All cost accounting — words per payload, clock advancement for
arithmetic and messages, the per-rank trace counters — lives here in
:class:`Communicator`, which both backends subclass.  A backend supplies only
the *transport*: how an envelope travels from sender to receiver
(:meth:`Communicator._deliver`) and how a rank waits for a matching message
(:meth:`Communicator._match`).

Because every simulated quantity is computed in this shared base from the
rank program's own sequence of calls, the two backends produce identical
message counts, word counts, flop counts and critical-path times for the same
program — the property the cross-backend test suite pins down.

Zero-copy payload accounting
----------------------------
``send`` normally copies numpy payloads defensively so that a sender mutating
its buffer after the call cannot race the receiver.  An engine may opt into
*copy elision* (``copy_elision = True``): when the payload is a fresh
temporary — a base ndarray owning its data whose only references are the
call frames of the send itself — the sender provably holds no handle through
which it could later mutate the buffer, so ownership can be transferred to
the receiver without a copy.  The words charged are identical either way;
only the defensive ``ndarray.copy()`` is skipped.  Elided sends are counted
in :attr:`~repro.distsim.tracing.RankTrace.zero_copy_sends`.

The coroutine protocol
----------------------
Rank programs may be written as *generator coroutines*: instead of blocking
inside :meth:`Communicator.recv`, they ``yield`` a :class:`RecvRequest` (via
:meth:`Communicator.co_recv`) or a :class:`CollectiveRequest` (via the group
branch of :mod:`repro.distsim.collectives`) and are resumed with the matched
envelope / collective result.  ``send`` never blocks in this simulator, so a
receive is the only suspension point and the protocol stays tiny.

Engines that park a real thread per rank run such programs through
:func:`drive`, a trampoline that services each yielded request against the
communicator's blocking transport — so one body works on every engine.  The
single-threaded coroutine engine instead schedules the generators natively.
:class:`SpmdProgram` packages both interfaces behind one name: calling the
wrapped routine blocks (the historical API), ``routine.co(...)`` returns the
resumable generator for use inside an enclosing coroutine (``yield from``).
"""

from __future__ import annotations

import functools
import inspect
import os
import sys
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ...kernels.flops import FlopCounter
from ...machines.model import MachineModel
from ..errors import DeadlockError, RankFailedError, SimulationError
from ..tracing import RankTrace, RunTrace

#: Fallback number of seconds a blocking receive waits before declaring
#: deadlock (threaded backend only; the event backend detects deadlock
#: structurally and never waits).  Overridable via ``REPRO_VMPI_TIMEOUT``.
DEFAULT_TIMEOUT = 120.0


def default_timeout() -> float:
    """Resolve the deadlock timeout from ``REPRO_VMPI_TIMEOUT`` (else 120 s)."""
    raw = os.environ.get("REPRO_VMPI_TIMEOUT")
    if raw is None:
        return DEFAULT_TIMEOUT
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_TIMEOUT


def payload_words(payload: Any) -> float:
    """Estimate the size of a message payload in 8-byte words.

    numpy arrays count their actual storage; scalars and small control
    objects (pivot indices, flags) count 1 word each; tuples/lists/dicts count
    the sum of their elements.  This mirrors how a real code would pack the
    same information into MPI buffers.
    """
    if isinstance(payload, np.ndarray):
        return float(payload.size * payload.itemsize) / 8.0
    if isinstance(payload, (int, float, np.integer, np.floating, bool)) or payload is None:
        return 1.0
    if isinstance(payload, (tuple, list)):
        return float(sum(payload_words(x) for x in payload)) if payload else 1.0
    if isinstance(payload, dict):
        return float(sum(payload_words(v) for v in payload.values())) if payload else 1.0
    if isinstance(payload, str):
        return max(1.0, len(payload) / 8.0)
    return 1.0


@dataclass
class Envelope:
    """Internal wrapper around a message in flight."""

    source: int
    tag: Any
    payload: Any
    words: float
    available_at: float  # simulated time at which the receiver may consume it


@dataclass
class RecvRequest:
    """Yielded by a rank coroutine to suspend until a matching message arrives.

    The scheduler (or the blocking trampoline) resumes the coroutine with the
    matched :class:`Envelope`; all receive-side accounting stays inside
    :meth:`Communicator.co_recv`, engine-independent.
    """

    source: int
    tag: Any


@dataclass
class CollectiveRequest:
    """Yielded by a rank coroutine to join a single group-level collective.

    Engines advertising ``group_collectives`` rendezvous all ``len(group)``
    participants on one event keyed by ``(kind, group, tag, channel,
    rootpos)`` and evaluate the collective centrally with exact per-rank cost
    attribution (:mod:`repro.distsim.engine.group_ops`); the coroutine is
    resumed with its rank's result.  Engines without group delivery never see
    this request — the collectives fall back to their point-to-point trees.
    """

    kind: str  # "broadcast" | "reduce" | "allreduce" | "scatter"
    #: Participating world ranks in group order: a tuple, or a ``range`` for
    #: the default all-ranks group (hashes and ``index``-es in O(1)).
    group: Sequence[int]
    pos: int  # caller's position within ``group``
    rootpos: int  # root's position within ``group`` (0 for unrooted kinds)
    value: Any
    op: Optional[Callable[[Any, Any], Any]]
    tag: Any
    channel: str


def _calibrate_fresh_refcount() -> int:
    """Reference count observed for a payload that is a pure temporary.

    Mirrors the frame depth of ``send -> _prepare_payload -> _can_elide_copy
    -> sys.getrefcount`` so the threshold adapts to how the running Python
    implementation accounts call-argument references.
    """
    if not hasattr(sys, "getrefcount"):  # pragma: no cover - non-CPython
        return 0

    def probe(x: Any) -> int:
        return sys.getrefcount(x)

    def middle(x: Any) -> int:
        return probe(x)

    def outer(x: Any) -> int:
        return middle(x)

    return outer(np.empty(0))


_FRESH_REFCOUNT = _calibrate_fresh_refcount()


def _can_elide_copy(arr: np.ndarray) -> bool:
    """True when ``arr`` is provably unreachable by the sender after ``send``.

    The proof: a base-class ndarray that owns its data and whose only
    references are the frames of the in-flight send call cannot be mutated by
    the sender afterwards (the sender retains no name bound to it), so handing
    it to the receiver without a defensive copy cannot alias.
    """
    return (
        _FRESH_REFCOUNT > 0
        and type(arr) is np.ndarray
        and arr.base is None
        and arr.flags.owndata
        and sys.getrefcount(arr) <= _FRESH_REFCOUNT
    )


class Communicator(ABC):
    """Handle through which a rank communicates and charges costs.

    The interface intentionally mirrors a small subset of mpi4py:
    :meth:`send`, :meth:`recv`, plus collective operations provided as free
    functions in :mod:`repro.distsim.collectives`.  Concrete engines supply
    the transport by implementing :meth:`_deliver` and :meth:`_match`.
    """

    #: Engines that serialize or otherwise control rank execution may enable
    #: defensive-copy elision for provably unaliased payloads.
    copy_elision: bool = False

    #: Engines that rendezvous collectives as single group-level events set
    #: this; the collectives in :mod:`repro.distsim.collectives` branch on it.
    group_collectives: bool = False

    def __init__(
        self,
        rank: int,
        size: int,
        machine: MachineModel,
        trace: RankTrace,
    ) -> None:
        self._rank = rank
        self._size = size
        self._machine = machine
        self._trace = trace
        # Messages received but not yet matched by tag/source.
        self._stash: List[Envelope] = []

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        """This process's rank in ``0..size-1``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the run."""
        return self._size

    @property
    def machine(self) -> MachineModel:
        """The machine model pricing this run."""
        return self._machine

    @property
    def trace(self) -> RankTrace:
        """This rank's cost trace (counters and simulated clock)."""
        return self._trace

    @property
    def clock(self) -> float:
        """Current simulated time of this rank."""
        return self._trace.clock

    # ------------------------------------------------------------- computing
    def charge_flops(
        self, muladds: float = 0.0, divides: float = 0.0, comparisons: float = 0.0
    ) -> None:
        """Charge arithmetic to this rank and advance its simulated clock."""
        self._trace.flops.add_muladds(muladds)
        self._trace.flops.add_divides(divides)
        self._trace.flops.add_comparisons(comparisons)
        self._trace.clock += self._machine.compute_time(muladds, divides, comparisons)

    def charge_counter(self, counter: FlopCounter) -> None:
        """Charge the contents of a :class:`FlopCounter` (and reset it).

        Sequential kernels accumulate into a scratch counter; calling this
        transfers the work to the rank and zeroes the scratch counter so it
        can be reused.
        """
        self.charge_flops(counter.muladds, counter.divides, counter.comparisons)
        counter.reset()

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated clock without recording arithmetic (e.g. I/O)."""
        if seconds < 0:
            raise ValueError("cannot move the simulated clock backwards")
        self._trace.clock += seconds

    # --------------------------------------------------------- point-to-point
    def send(self, dest: int, payload: Any, tag: Any = 0, channel: str = "any") -> None:
        """Send ``payload`` to rank ``dest`` (blocking in MPI terms, but buffered).

        Parameters
        ----------
        dest:
            Destination rank.
        payload:
            Any picklable object; numpy arrays are copied defensively so later
            mutation by the sender cannot race the receiver — unless the
            engine can prove the payload is a fresh temporary (see the module
            docstring on zero-copy accounting).
        tag:
            Message tag used for matching.
        channel:
            "col", "row" or "any" — selects which latency/bandwidth parameters
            of the machine model price this message.
        """
        if not (0 <= dest < self._size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self._rank:
            raise ValueError("self-sends are not supported; restructure the algorithm")
        zero_copy = False
        if isinstance(payload, np.ndarray):
            payload, zero_copy = self._prepare_payload(payload)
        words = payload_words(payload)
        cost = self._machine.message_time(words, channel)
        self._trace.record_send(words, channel, zero_copy=zero_copy)
        self._trace.clock += cost
        env = Envelope(
            source=self._rank,
            tag=tag,
            payload=payload,
            words=words,
            available_at=self._trace.clock,
        )
        self._deliver(dest, env)

    def recv(self, source: int, tag: Any = 0) -> Any:
        """Receive a message from ``source`` with matching ``tag``.

        Blocks until a matching message arrives (the threaded backend guards
        the wait with a deadlock timeout; the event backend detects deadlock
        structurally).  The rank's simulated clock is advanced to at least the
        time at which the message became available on the sender's side.
        """
        env = self._match(source, tag)
        self._trace.record_recv(env.words)
        self._trace.clock = max(self._trace.clock, env.available_at)
        return env.payload

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: Optional[int] = None,
        tag: Any = 0,
        channel: str = "any",
    ) -> Any:
        """Exchange messages with a partner (send to ``dest``, receive from ``source``).

        ``source`` defaults to ``dest`` — the pairwise exchange used at every
        level of the TSLU butterfly.
        """
        if source is None:
            source = dest
        self.send(dest, payload, tag=tag, channel=channel)
        return self.recv(source, tag=tag)

    # ------------------------------------------------------ coroutine protocol
    def co_recv(self, source: int, tag: Any = 0):
        """Coroutine form of :meth:`recv`: ``payload = yield from comm.co_recv(...)``.

        Yields a :class:`RecvRequest` and is resumed with the matched
        envelope.  The accounting is exactly :meth:`recv`'s — same counters,
        same clock synchronisation — so traces are engine-independent.
        """
        env = yield RecvRequest(source, tag)
        self._trace.record_recv(env.words)
        self._trace.clock = max(self._trace.clock, env.available_at)
        return env.payload

    def co_sendrecv(
        self,
        dest: int,
        payload: Any,
        source: Optional[int] = None,
        tag: Any = 0,
        channel: str = "any",
    ):
        """Coroutine form of :meth:`sendrecv` (the send part never blocks)."""
        if source is None:
            source = dest
        self.send(dest, payload, tag=tag, channel=channel)
        return (yield from self.co_recv(source, tag=tag))

    def _service(self, request: Any) -> Any:
        """Blocking fulfilment of a yielded request (used by :func:`drive`)."""
        if isinstance(request, RecvRequest):
            return self._match(request.source, request.tag)
        if isinstance(request, CollectiveRequest):
            raise SimulationError(
                f"engine cannot service a group-level {request.kind} collective; "
                "group delivery requires a scheduler with rendezvous support"
            )
        raise SimulationError(
            f"rank coroutine yielded an unknown request: {request!r}"
        )

    # ---------------------------------------------------------------- helpers
    def _prepare_payload(self, arr: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Return the array to enqueue and whether the defensive copy was elided."""
        if self.copy_elision and _can_elide_copy(arr):
            return arr, True
        return arr.copy(), False

    # ------------------------------------------------------ transport (engine)
    @abstractmethod
    def _deliver(self, dest: int, env: Envelope) -> None:
        """Hand an envelope to rank ``dest``'s incoming message store."""

    @abstractmethod
    def _match(self, source: int, tag: Any) -> Envelope:
        """Block until a message matching ``(source, tag)`` is available."""


def drive(comm: Communicator, gen) -> Any:
    """Run a rank coroutine to completion against blocking transport.

    The compatibility shim between the coroutine protocol and the
    thread-parking engines: each yielded request is serviced through the
    communicator's blocking primitives, and transport errors (e.g.
    :class:`~repro.distsim.errors.DeadlockError`) are thrown *into* the
    generator so they surface at the receive call site, exactly as the
    blocking API raises them.
    """
    try:
        request = gen.send(None)
        while True:
            try:
                response = comm._service(request)
            except BaseException as exc:  # noqa: BLE001 - rethrown at the yield
                request = gen.throw(exc)
            else:
                request = gen.send(response)
    except StopIteration as stop:
        return stop.value


def call_rank_program(fn: Callable[..., Any], comm: Communicator, args, kwargs) -> Any:
    """Invoke a rank program that may be plain, a generator, or dual-interface.

    Thread-parking engines call this from each rank's worker: legacy blocking
    functions run as before, while generator-based bodies (including
    :class:`SpmdProgram` wrappers, whose ``__call__`` already drives) are
    driven to completion through :func:`drive`.
    """
    out = fn(comm, *args, **kwargs)
    if inspect.isgenerator(out):
        return drive(comm, out)
    return out


class SpmdProgram:
    """Dual-interface SPMD routine: blocking call or resumable coroutine.

    Wraps a generator function ``gen_fn(comm, *args, **kwargs)`` whose first
    argument is the calling rank's communicator.  Calling the wrapper runs
    the generator to completion against the communicator's blocking transport
    (the historical API, valid on every engine); ``.co(...)`` returns the raw
    generator for engines — or enclosing coroutines — that schedule the
    suspension points themselves (``result = yield from program.co(...)``).
    """

    def __init__(self, gen_fn: Callable[..., Any]) -> None:
        if not inspect.isgeneratorfunction(gen_fn):
            raise TypeError(
                f"SpmdProgram requires a generator function, got {gen_fn!r}"
            )
        self._gen_fn = gen_fn
        functools.update_wrapper(self, gen_fn)

    def co(self, comm: Communicator, *args: Any, **kwargs: Any):
        """The resumable coroutine form (for ``yield from`` composition)."""
        return self._gen_fn(comm, *args, **kwargs)

    def __call__(self, comm: Communicator, *args: Any, **kwargs: Any) -> Any:
        return drive(comm, self._gen_fn(comm, *args, **kwargs))


def spmd_program(gen_fn: Callable[..., Any]) -> SpmdProgram:
    """Decorator form of :class:`SpmdProgram`."""
    return SpmdProgram(gen_fn)


def coroutine_entry(fn: Callable[..., Any]) -> Optional[Callable[..., Any]]:
    """Resolve a rank program to a generator factory, or ``None`` if blocking.

    Returns a callable ``entry(comm, *args, **kwargs)`` producing the rank's
    resumable generator: the function itself for (possibly ``partial``-bound)
    generator functions, the ``.co`` interface for :class:`SpmdProgram`
    wrappers (rebuilding any ``partial`` chain over it).  ``None`` means the
    program is a plain blocking callable and needs an engine that can park.
    """
    target = fn
    wrappers: List[functools.partial] = []
    while isinstance(target, functools.partial):
        wrappers.append(target)
        target = target.func
    if isinstance(target, SpmdProgram):
        entry: Callable[..., Any] = target.co
        for w in reversed(wrappers):
            entry = functools.partial(entry, *w.args, **(w.keywords or {}))
        return entry
    if inspect.isgeneratorfunction(target):
        return fn
    return None


class ExecutionEngine(ABC):
    """Strategy deciding how the ``P`` rank programs are executed.

    Engines are registered in :mod:`repro.distsim.engine` and selected via the
    ``engine=`` argument of :func:`repro.distsim.run_spmd` (or the
    ``REPRO_VMPI_ENGINE`` environment variable).
    """

    #: Registry name of the engine.
    name: str = "abstract"
    #: Whether repeated runs of the same program produce bit-identical traces
    #: *and* identical host-side execution order.
    deterministic: bool = False

    @abstractmethod
    def run(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        machine: MachineModel,
        timeout: float,
    ) -> RunTrace:
        """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` virtual ranks."""

    # ------------------------------------------------------- shared epilogue
    def _finish_run(
        self,
        traces: List[RankTrace],
        results: List[Any],
        failures: "dict[int, BaseException]",
    ) -> RunTrace:
        """Raise on rank failures, else assemble the run trace.

        When ranks failed for mixed reasons, the chained ``__cause__`` is the
        lowest-ranked *root* failure: DeadlockErrors are secondary whenever a
        rank crashed outright (its crash is what left the others waiting), so
        they are only used as the cause when every failure is a deadlock.
        """
        if failures:
            cause = next(
                (
                    failures[r]
                    for r in sorted(failures)
                    if not isinstance(failures[r], DeadlockError)
                ),
                failures[min(failures)],
            )
            raise RankFailedError(failures) from cause
        return RunTrace(ranks=traces, results=results, engine=self.name)
