"""Pluggable execution engines for the virtual MPI.

An engine decides how the ``P`` rank programs of an SPMD run execute on the
host; the simulated cost model is engine-independent.  Three backends ship:

``threaded``
    One OS thread per rank, OS-scheduled, timeout-guarded receives — the
    original backend, useful when rank programs release the GIL.
``event``
    Deterministic single-runner discrete-event scheduler (thread-baton
    handoff ordered by simulated clock): bit-for-bit reproducible traces,
    structural deadlock detection, and practical at paper-scale process
    counts (``P`` ≥ 888).
``coroutine``
    Deterministic single-threaded generator-coroutine scheduler with
    vectorized group-level collectives: no threads at all, so process
    counts in the thousands (``P`` ≈ 10⁴) run in seconds.  Traces are
    bit-identical to the event engine's; non-generator rank programs fall
    back to the event engine's machinery transparently.

Select an engine per call (``run_spmd(..., engine="coroutine")``),
ambiently via :func:`set_engine` / the :func:`engine_context` context
manager, process-wide via the ``REPRO_VMPI_ENGINE`` environment variable, or
register a custom one with :func:`register_engine`.  The knob is registered
into the shared configuration subsystem (:mod:`repro.core.options`), so it
follows the same precedence rule as ``pivoting``/``kernel_tier``/``matmul``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Union

from ...core.options import Option, register_option
from ..errors import UnknownEngineError
from .base import (
    DEFAULT_TIMEOUT,
    CollectiveRequest,
    Communicator,
    Envelope,
    ExecutionEngine,
    RecvRequest,
    SpmdProgram,
    call_rank_program,
    coroutine_entry,
    default_timeout,
    drive,
    payload_words,
    spmd_program,
)
from .coroutine import CoroutineCommunicator, CoroutineEngine
from .event import EventCommunicator, EventEngine
from .threaded import ThreadedCommunicator, ThreadedEngine

#: Engine used when neither ``engine=`` nor ``REPRO_VMPI_ENGINE`` is given.
DEFAULT_ENGINE = "threaded"

#: Environment variable consulted between the ambient context and the default.
ENV_VAR = "REPRO_VMPI_ENGINE"

_REGISTRY: Dict[str, Callable[[], ExecutionEngine]] = {
    ThreadedEngine.name: ThreadedEngine,
    EventEngine.name: EventEngine,
    CoroutineEngine.name: CoroutineEngine,
}

_ALIASES = {
    "thread": "threaded",
    "threads": "threaded",
    "event-driven": "event",
    "deterministic": "event",
    "coro": "coroutine",
    "coroutines": "coroutine",
    "generator": "coroutine",
}


def available_engines() -> list:
    """Names of the registered execution engines."""
    return sorted(_REGISTRY)


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register a custom engine factory under ``name`` (overwrites existing)."""
    _REGISTRY[name] = factory


def get_engine(name: str) -> ExecutionEngine:
    """Instantiate the engine registered under ``name`` (aliases accepted).

    Exact registry entries win over aliases, so a custom engine registered
    under an alias name is reachable.
    """
    factory = _REGISTRY.get(name) or _REGISTRY.get(_ALIASES.get(name, name))
    if factory is None:
        raise UnknownEngineError(name, available_engines())
    return factory()


def _validate(name: str) -> str:
    """Canonicalise an engine name (aliases resolved) or raise.

    Exact registry entries win over aliases, mirroring :func:`get_engine`, so
    the validated name always instantiates the same engine the raw name
    would.  Raises :class:`~repro.distsim.errors.UnknownEngineError` (an
    ``UnknownOptionError`` subclass) for unregistered names.
    """
    if name in _REGISTRY:
        return name
    canonical = _ALIASES.get(name)
    if canonical is not None and canonical in _REGISTRY:
        return canonical
    raise UnknownEngineError(name, available_engines())


#: The engine knob, registered into the shared configuration subsystem
#: (:mod:`repro.core.options`): precedence is explicit > ambient >
#: ``REPRO_VMPI_ENGINE`` > "threaded", with aliases canonicalised so store
#: keying and execution can never disagree on the resolved engine.
OPTION = register_option(
    Option(
        name="engine",
        kind="execution engine",
        env_var=ENV_VAR,
        default=DEFAULT_ENGINE,
        validate=_validate,
    )
)


def get_engine_name() -> str:
    """The ambient engine name (ambient > ``REPRO_VMPI_ENGINE`` > default)."""
    return OPTION.get()


def set_engine(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the ambient process-wide engine override."""
    OPTION.set(name)


@contextmanager
def engine_context(name: str) -> Iterator[None]:
    """Context manager scoping an ambient engine override."""
    with OPTION.context(name):
        yield


def resolve_engine_name(
    engine: Union[None, str, ExecutionEngine] = None
) -> str:
    """Resolve an ``engine=`` argument to its canonical registered *name*.

    Instances report their ``name``; strings are canonicalised (aliases
    resolved) and validated; ``None`` follows the shared precedence rule.
    This is what keying code (the result store, the factor cache) uses, so
    the recorded name always matches the engine that would execute.
    """
    if isinstance(engine, ExecutionEngine):
        return engine.name
    if engine is None or isinstance(engine, str):
        return OPTION.resolve(engine)
    raise TypeError(
        f"engine must be None, a registered name, or an ExecutionEngine; "
        f"got {type(engine).__name__}"
    )


def resolve_engine(
    engine: Union[None, str, ExecutionEngine] = None
) -> ExecutionEngine:
    """Resolve an ``engine=`` argument to an :class:`ExecutionEngine` instance.

    ``None`` follows the shared precedence rule (ambient context >
    ``REPRO_VMPI_ENGINE`` > :data:`DEFAULT_ENGINE`); strings are looked up in
    the registry; instances pass through.
    """
    if isinstance(engine, ExecutionEngine):
        return engine
    return get_engine(resolve_engine_name(engine))


__all__ = [
    "CollectiveRequest",
    "Communicator",
    "Envelope",
    "ExecutionEngine",
    "RecvRequest",
    "SpmdProgram",
    "ThreadedCommunicator",
    "ThreadedEngine",
    "EventCommunicator",
    "EventEngine",
    "CoroutineCommunicator",
    "CoroutineEngine",
    "DEFAULT_ENGINE",
    "DEFAULT_TIMEOUT",
    "ENV_VAR",
    "call_rank_program",
    "coroutine_entry",
    "default_timeout",
    "drive",
    "payload_words",
    "spmd_program",
    "available_engines",
    "register_engine",
    "engine_context",
    "get_engine",
    "get_engine_name",
    "resolve_engine",
    "resolve_engine_name",
    "set_engine",
]
