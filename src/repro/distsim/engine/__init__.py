"""Pluggable execution engines for the virtual MPI.

An engine decides how the ``P`` rank programs of an SPMD run execute on the
host; the simulated cost model is engine-independent.  Three backends ship:

``threaded``
    One OS thread per rank, OS-scheduled, timeout-guarded receives — the
    original backend, useful when rank programs release the GIL.
``event``
    Deterministic single-runner discrete-event scheduler (thread-baton
    handoff ordered by simulated clock): bit-for-bit reproducible traces,
    structural deadlock detection, and practical at paper-scale process
    counts (``P`` ≥ 888).
``coroutine``
    Deterministic single-threaded generator-coroutine scheduler with
    vectorized group-level collectives: no threads at all, so process
    counts in the thousands (``P`` ≈ 10⁴) run in seconds.  Traces are
    bit-identical to the event engine's; non-generator rank programs fall
    back to the event engine's machinery transparently.

Select an engine per call (``run_spmd(..., engine="coroutine")``),
process-wide via the ``REPRO_VMPI_ENGINE`` environment variable, or register
a custom one with :func:`register_engine`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from ..errors import UnknownEngineError
from .base import (
    DEFAULT_TIMEOUT,
    CollectiveRequest,
    Communicator,
    Envelope,
    ExecutionEngine,
    RecvRequest,
    SpmdProgram,
    call_rank_program,
    coroutine_entry,
    default_timeout,
    drive,
    payload_words,
    spmd_program,
)
from .coroutine import CoroutineCommunicator, CoroutineEngine
from .event import EventCommunicator, EventEngine
from .threaded import ThreadedCommunicator, ThreadedEngine

#: Engine used when neither ``engine=`` nor ``REPRO_VMPI_ENGINE`` is given.
DEFAULT_ENGINE = "threaded"

_REGISTRY: Dict[str, Callable[[], ExecutionEngine]] = {
    ThreadedEngine.name: ThreadedEngine,
    EventEngine.name: EventEngine,
    CoroutineEngine.name: CoroutineEngine,
}

_ALIASES = {
    "thread": "threaded",
    "threads": "threaded",
    "event-driven": "event",
    "deterministic": "event",
    "coro": "coroutine",
    "coroutines": "coroutine",
    "generator": "coroutine",
}


def available_engines() -> list:
    """Names of the registered execution engines."""
    return sorted(_REGISTRY)


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register a custom engine factory under ``name`` (overwrites existing)."""
    _REGISTRY[name] = factory


def get_engine(name: str) -> ExecutionEngine:
    """Instantiate the engine registered under ``name`` (aliases accepted).

    Exact registry entries win over aliases, so a custom engine registered
    under an alias name is reachable.
    """
    factory = _REGISTRY.get(name) or _REGISTRY.get(_ALIASES.get(name, name))
    if factory is None:
        raise UnknownEngineError(name, available_engines())
    return factory()


def resolve_engine(
    engine: Union[None, str, ExecutionEngine] = None
) -> ExecutionEngine:
    """Resolve an ``engine=`` argument to an :class:`ExecutionEngine` instance.

    ``None`` falls back to the ``REPRO_VMPI_ENGINE`` environment variable and
    then to :data:`DEFAULT_ENGINE`; strings are looked up in the registry;
    instances pass through.
    """
    if engine is None:
        engine = os.environ.get("REPRO_VMPI_ENGINE") or DEFAULT_ENGINE
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, str):
        return get_engine(engine)
    raise TypeError(
        f"engine must be None, a registered name, or an ExecutionEngine; "
        f"got {type(engine).__name__}"
    )


__all__ = [
    "CollectiveRequest",
    "Communicator",
    "Envelope",
    "ExecutionEngine",
    "RecvRequest",
    "SpmdProgram",
    "ThreadedCommunicator",
    "ThreadedEngine",
    "EventCommunicator",
    "EventEngine",
    "CoroutineCommunicator",
    "CoroutineEngine",
    "DEFAULT_ENGINE",
    "DEFAULT_TIMEOUT",
    "call_rank_program",
    "coroutine_entry",
    "default_timeout",
    "drive",
    "payload_words",
    "spmd_program",
    "available_engines",
    "register_engine",
    "get_engine",
    "resolve_engine",
]
