"""Cacheable distributed factorizations: the ``FactoredMatrix`` artifact.

The paper's economics (Section 1) say the ``O(n^3)`` factorization dominates
and communication dominates inside it — which is exactly why a production
solver pays it *once* and amortizes it over many ``O(n^2)`` triangular
solves.  :func:`pcalu_factor` (and its partial-pivoting alias
:func:`pdgetrf_factor`) runs the distributed factorization and packages
everything the solve phase needs into a :class:`FactoredMatrix`:

* the packed factors ``tril(L, -1) + U`` (the storage convention of
  :mod:`repro.scalapack.pdtrsv`),
* the permuted matrix ``P A`` (what iterative refinement computes residuals
  against),
* the pivot sequence ``perm``,
* the layout/grid/strategy metadata (``n``, block size, grid shape,
  pivoting, kernel tier, engine) that determines the artifact's identity.

:func:`repro.parallel.psolve.pdgesv_solve` consumes a ``FactoredMatrix`` and
is bit-identical to the solve phase of a cold
:func:`repro.parallel.psolve.pdgesv`; the content-addressed
:class:`repro.harness.factor_cache.FactorCache` persists these artifacts so
the factorization is skipped entirely on a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.options import SolveConfig
from ..distsim.engine import ExecutionEngine
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from .driver import DistributedLUResult
from .pcalu import _merge_config, pcalu


@dataclass
class FactoredMatrix:
    """Everything the solve phase needs from a distributed factorization.

    Attributes
    ----------
    n:
        Matrix dimension (the factors are ``n x n``).
    block_size:
        Block size ``b`` of the 2-D block-cyclic distribution.
    nprow, npcol:
        Process-grid shape the factorization ran on (the solve phase reuses
        the same grid so the factor blocks are already in place).
    pivoting, kernel_tier, engine, matmul:
        The resolved strategy/tier/engine/matmul-backend that produced the
        factors — part of the artifact's identity in the factor cache (two
        factorizations differing in any of these are distinct artifacts).
    packed:
        Packed factors ``tril(L, -1) + U`` (unit diagonal of ``L`` implicit).
    permuted:
        The permuted matrix ``P A``; iterative refinement computes residuals
        ``P b - (P A) x`` against it.
    perm:
        Row permutation with ``A[perm, :] = L @ U``.
    key:
        Content address when the artifact came from (or was stored into) a
        :class:`~repro.harness.factor_cache.FactorCache`, else ``None``.
    source:
        The full :class:`~repro.parallel.driver.DistributedLUResult` when
        this factorization was computed in-process (its ``trace`` prices the
        factor phase); ``None`` when loaded from the cache — the whole point
        being that no factorization ran.
    """

    n: int
    block_size: int
    nprow: int
    npcol: int
    pivoting: str
    kernel_tier: str
    engine: str
    packed: np.ndarray
    permuted: np.ndarray
    perm: np.ndarray
    matmul: str = "summa"
    key: Optional[str] = None
    source: Optional[DistributedLUResult] = None

    @property
    def grid(self) -> ProcessGrid:
        return ProcessGrid(self.nprow, self.npcol)

    @property
    def config(self) -> SolveConfig:
        """The :class:`~repro.core.options.SolveConfig` that produced this factor.

        Rebuilt from the artifact's identity metadata (knobs + grid shape +
        block size), so a cached factor round-trips to the configuration the
        tuner or the serving layer would re-request it under.
        """
        return SolveConfig(
            pivoting=self.pivoting,
            engine=self.engine,
            kernel_tier=self.kernel_tier,
            matmul=self.matmul,
            grid=(self.nprow, self.npcol),
            b=self.block_size,
        )

    def nbytes(self) -> int:
        """In-memory payload size (packed + permuted + perm)."""
        return int(self.packed.nbytes + self.permuted.nbytes + self.perm.nbytes)


def pcalu_factor(
    A: np.ndarray,
    grid: Optional[ProcessGrid] = None,
    block_size: Optional[int] = None,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
    matmul: Optional[str] = None,
    config: Optional[SolveConfig] = None,
) -> FactoredMatrix:
    """Factor ``A`` on the grid and package the result for reuse.

    Runs :func:`repro.parallel.pcalu.pcalu` with the given knobs, then
    precomputes the packed factors and the permuted matrix the solve phase
    consumes.  The returned :class:`FactoredMatrix` feeds any number of
    :func:`repro.parallel.psolve.pdgesv_solve` calls, each bit-identical to
    the solve phase of a cold :func:`repro.parallel.psolve.pdgesv`.

    ``config`` supplies defaults for unset arguments (explicit arguments
    win), exactly as in :func:`~repro.parallel.pcalu.pcalu`.
    """
    from ..core.strategies import resolve_pivoting
    from ..distsim.engine import resolve_engine_name
    from ..kernels.tiers import resolve_tier
    from ..matmul import resolve_matmul

    grid, block_size, machine, engine, kernel_tier, pivoting, matmul = (
        _merge_config(
            config, grid, block_size, machine, engine, kernel_tier, pivoting,
            matmul,
        )
    )
    if grid is None or block_size is None:
        raise ValueError(
            "pcalu_factor needs a process grid and a block size, either as "
            "arguments or through config="
        )
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("pcalu_factor expects a square matrix")
    fact = pcalu(
        A,
        grid,
        block_size,
        local_kernel=local_kernel,
        machine=machine,
        engine=engine,
        kernel_tier=kernel_tier,
        pivoting=pivoting,
        matmul=matmul,
    )
    packed = np.tril(fact.L, -1) + fact.U
    return FactoredMatrix(
        n=A.shape[0],
        block_size=block_size,
        nprow=grid.nprow,
        npcol=grid.npcol,
        pivoting=resolve_pivoting(pivoting),
        kernel_tier=resolve_tier(kernel_tier),
        engine=resolve_engine_name(engine),
        packed=packed,
        permuted=A[fact.perm, :],
        perm=np.asarray(fact.perm, dtype=np.int64),
        matmul=resolve_matmul(matmul),
        source=fact,
    )


def pdgetrf_factor(
    A: np.ndarray,
    grid: Optional[ProcessGrid] = None,
    block_size: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    matmul: Optional[str] = None,
    config: Optional[SolveConfig] = None,
) -> FactoredMatrix:
    """Partial-pivoting factorization artifact (bit-for-bit PDGETRF)."""
    return pcalu_factor(
        A,
        grid,
        block_size,
        machine=machine,
        engine=engine,
        kernel_tier=kernel_tier,
        pivoting="pp",
        matmul=matmul,
        config=config,
    )
