"""Shared block right-looking driver for distributed LU factorizations.

Both CALU (Section 4 of the paper) and ScaLAPACK's PDGETRF follow the same
outer iteration; they differ *only* in how the panel (block-column) is
factored.  This module implements that outer iteration once, parameterised by
a panel-factorization callback, so the comparison between the two algorithms
is an apples-to-apples comparison of their panel strategies — exactly the
structure of the paper's argument.

Per iteration ``j`` (block column of width ``b``):

1. the processes of the grid column owning block-column ``j`` factor the
   panel (callback) and return the row swaps it decided on;
2. each of those processes broadcasts, along its process *row*, the swap list
   and its local piece of the packed panel factors (the ``L`` blocks);
3. every process applies the swaps to its local columns outside the panel;
4. the processes of the grid row owning block-row ``j`` compute their local
   pieces of ``U12`` with a triangular solve against ``L11``;
5. each of those processes broadcasts its ``U12`` piece down its process
   *column*;
6. every process updates its local trailing block ``A22 -= L21 U12``.

Steps 2-6 are identical for CALU and PDGETRF (and their message counts are of
order ``(n/b)(log2 Pr + log2 Pc)``); the panel step is where CALU saves a
factor ``b`` in latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..distsim.engine import ExecutionEngine
from ..distsim.engine.base import spmd_program
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator, run_spmd
from ..layouts.block_cyclic import BlockCyclic2D
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from ..matmul import MatmulBackend, get_backend, resolve_matmul
from ..scalapack.pdlaswp import apply_swaps_to_permutation, pdlaswp

#: Signature of a panel factorization callback.
#:
#: ``panel_fn(comm, dist, Aloc, j0, jb, col_group, tag)`` is a *generator
#: function* driven with ``yield from``; its return value is ``swaps``, the
#: ordered list of global row swaps chosen by the panel.  The callback is
#: invoked only on the ranks of ``col_group`` and must leave the packed panel
#: factors in the local panel columns of ``Aloc``.
PanelFactorizer = Callable[..., object]


@dataclass
class DistributedLUResult:
    """Factors gathered from a distributed block LU run.

    Attributes
    ----------
    L, U:
        Global factors assembled from the per-rank local arrays.
    perm:
        Row permutation with ``A[perm, :] = L @ U``.
    swaps:
        The full ordered swap sequence (useful for replaying pivoting).
    trace:
        Per-rank communication/computation trace.
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    swaps: List[Tuple[int, int]]
    trace: RunTrace


@spmd_program
def block_right_looking_rank(
    comm: Communicator,
    dist: BlockCyclic2D,
    Aloc: np.ndarray,
    panel_fn: PanelFactorizer,
    backend: MatmulBackend,
):
    """SPMD body of the block right-looking factorization (one rank).

    The panel broadcast and the trailing update (steps 2 and 4-6) are owned
    by the distributed-matmul ``backend``; the default ``summa`` backend
    reproduces the historical inlined steps bit-for-bit.

    Returns a dict with the rank's final local array and the swap list (the
    latter is identical on every rank).
    """
    grid = dist.grid
    myrow, mycol = grid.coords(comm.rank)
    my_grows = dist.local_rows(myrow)  # global rows stored here (ascending)
    my_gcols = dist.local_cols(mycol)  # global cols stored here (ascending)
    Aloc = np.array(Aloc, dtype=np.float64)
    b = dist.block
    k = min(dist.m, dist.n)
    all_swaps: List[Tuple[int, int]] = []

    for j0 in range(0, k, b):
        jb = min(b, k - j0)
        pcol_owner = (j0 // b) % grid.npcol  # grid column owning block-column j
        prow_owner = (j0 // b) % grid.nprow  # grid row owning block-row j
        col_group = grid.column_ranks(pcol_owner)
        row_group = grid.row_ranks(myrow)

        panel_lcols = np.asarray(
            [dist.global_to_local_col(g) for g in range(j0, j0 + jb)], dtype=np.int64
        )
        act_mask = my_grows >= j0
        act_grows = my_grows[act_mask]
        act_lrows = np.nonzero(act_mask)[0]

        # ------------------------------------------------ 1. panel factorization
        swaps: Optional[List[Tuple[int, int]]] = None
        if mycol == pcol_owner:
            swaps = yield from panel_fn(
                comm, dist, Aloc, j0, jb, col_group, tag=("panel", j0)
            )

        # ----------------------- 2. broadcast swaps + packed panel along rows
        if mycol == pcol_owner:
            payload = {
                "swaps": swaps,
                "rows": act_grows,
                "panel": Aloc[np.ix_(act_lrows, panel_lcols)],
            }
        else:
            payload = None
        payload = yield from backend.share_panel(
            comm, grid, myrow, pcol_owner, payload, j0
        )
        swaps = payload["swaps"]
        packed_rows = payload["rows"]  # global indices, ascending, >= j0
        packed_panel = payload["panel"]  # len(packed_rows) x jb
        all_swaps.extend(swaps)

        # --------------------------- 3. apply the swaps outside the panel columns
        non_panel_lcols = np.asarray(
            [lc for lc, g in enumerate(my_gcols) if not (j0 <= g < j0 + jb)],
            dtype=np.int64,
        )
        yield from pdlaswp.co(
            comm,
            dist,
            Aloc,
            swaps,
            non_panel_lcols,
            tag=("laswp", j0),
            channel="col",
        )

        # Extract L11 / L21 from the packed panel broadcast.  The diagonal
        # block is passed packed: the triangular solve reads only its strict
        # lower part (unit diagonal implied), so no tril + eye temporaries
        # are materialised.
        diag_sel = (packed_rows >= j0) & (packed_rows < j0 + jb)
        trail_sel = packed_rows >= j0 + jb
        L11 = None
        if myrow == prow_owner:
            L11 = packed_panel[diag_sel, :]
        L21_local = packed_panel[trail_sel, :]

        # ---------- 4-6. U12 solve + broadcast + trailing update (the backend)
        trail_lcols = np.nonzero(my_gcols >= j0 + jb)[0]
        trail_lrows = np.nonzero(my_grows >= j0 + jb)[0]
        yield from backend.update_trailing(
            comm, dist, Aloc, L11, L21_local, j0, jb, trail_lrows, trail_lcols
        )

    return {"Aloc": Aloc, "swaps": all_swaps}


def run_block_lu(
    A: np.ndarray,
    grid: ProcessGrid,
    block_size: int,
    panel_factory: Callable[[], PanelFactorizer],
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    matmul: Optional[str] = None,
) -> DistributedLUResult:
    """Scatter ``A``, run the distributed factorization, gather the factors.

    Parameters
    ----------
    A:
        The global matrix (``m x n``, ``m >= n``).
    grid:
        The process grid to run on.
    block_size:
        The block size ``b`` of the 2-D block-cyclic distribution.
    panel_factory:
        Zero-argument callable returning the panel factorization callback
        (a factory so each run gets a fresh, stateless callback).
    machine:
        Machine model pricing the run.
    engine:
        Execution engine for the SPMD run ("threaded", "event", an engine
        instance, or ``None`` for the process-wide default).
    matmul:
        Distributed-matmul backend for the trailing update ("summa", "caps",
        or ``None`` for the process-wide default).

    Returns
    -------
    DistributedLUResult
    """
    A = np.asarray(A, dtype=np.float64)
    m, n = A.shape
    dist = BlockCyclic2D(m, n, block_size, grid)
    locals_in = dist.scatter(A)
    panel_fn = panel_factory()
    backend = get_backend(resolve_matmul(matmul))

    def rank_fn(comm: Communicator):
        return (
            yield from block_right_looking_rank.co(
                comm, dist, locals_in[comm.rank], panel_fn, backend
            )
        )

    trace = run_spmd(grid.size, rank_fn, machine=machine, engine=engine)

    gathered = dist.gather({r: res["Aloc"] for r, res in enumerate(trace.results)})
    swaps = trace.results[0]["swaps"]
    perm = apply_swaps_to_permutation(np.arange(m, dtype=np.int64), swaps)

    kk = min(m, n)
    L = np.tril(gathered[:, :kk], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(gathered[:kk, :])
    return DistributedLUResult(L=L, U=U, perm=perm, swaps=swaps, trace=trace)
