"""Distributed TSLU: the SPMD panel factorization of Section 3.

Each of the ``P`` ranks owns a block of the panel's rows (1-D layout).  The
algorithm is exactly the one in the paper:

1. every rank factors its local block with partial pivoting (classic or
   recursive kernel) and keeps its ``b`` candidate pivot rows;
2. an all-reduction with a butterfly communication pattern merges candidate
   sets — at each of the ``log2 P`` levels a rank exchanges its current
   ``b x b`` candidate block with its partner and both redundantly factor the
   stacked ``2b x b`` matrix;
3. after the butterfly every rank knows the ``b`` global pivot rows and the
   ``U`` factor; each rank forms its local rows of ``L`` with a triangular
   solve against ``U11``.

Communication: each rank sends exactly ``log2 P`` messages of ``b^2`` words —
the latency win over ScaLAPACK's PDGETF2 (2 messages *per column*, i.e.
``2 b log2 P`` per panel) that the whole paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.tournament import CandidateSet, local_candidates, merge_candidates
from ..distsim.collectives import allreduce
from ..distsim.engine import ExecutionEngine
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.batched import getf2_batched, slab_flop_counters
from ..kernels.flops import FlopCounter
from ..kernels.tiers import resolve_tier
from ..kernels.trsm import trsm_right_upper
from ..layouts.block1d import Block1D, BlockCyclic1D
from ..machines.model import MachineModel


@dataclass
class PTSLUResult:
    """Result of a distributed TSLU run.

    Attributes
    ----------
    L:
        Global ``m x k`` unit-lower-trapezoidal factor (assembled from the
        per-rank pieces, winners first).
    U:
        ``k x b`` upper-triangular factor (known redundantly by every rank).
    perm:
        Row permutation with ``A[perm, :] = L @ U``.
    winners:
        Global indices of the selected pivot rows (``perm[:k]``).
    trace:
        Per-rank communication/computation trace of the run.
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    winners: np.ndarray
    trace: RunTrace


def _tournament_allreduce(
    comm: Communicator,
    candidate: CandidateSet,
    b: int,
    group: Sequence[int],
    channel: str = "col",
    tag: str = "tslu",
) -> CandidateSet:
    """Butterfly all-reduction whose operator is the pivot tournament merge.

    Every rank of ``group`` ends up with the same winning candidate set.  The
    merge arithmetic is charged to the calling rank (this is the redundant
    computation the paper trades for fewer messages).  The payload exchanged
    at each level is the pair (row indices, candidate block) — ``b + b^2``
    words, as in the real algorithm.
    """
    scratch = FlopCounter()

    def op(x: Tuple[np.ndarray, np.ndarray], y: Tuple[np.ndarray, np.ndarray]):
        merged, _ = merge_candidates(
            CandidateSet(rows=x[0], block=x[1]),
            CandidateSet(rows=y[0], block=y[1]),
            b,
            flops=scratch,
        )
        comm.charge_counter(scratch)
        return (merged.rows, merged.block)

    rows, block = allreduce(
        comm, (candidate.rows, candidate.block), op, group=group, tag=tag, channel=channel
    )
    return CandidateSet(rows=rows, block=block)


def ptslu_rank(
    comm: Communicator,
    local_rows: np.ndarray,
    local_block: np.ndarray,
    b: int,
    group: Optional[Sequence[int]] = None,
    local_kernel: str = "getf2",
    channel: str = "col",
    tag: str = "tslu",
    compute_L: bool = True,
    kernel_tier: Optional[str] = None,
    precomputed_candidate: Optional[Tuple[CandidateSet, FlopCounter]] = None,
) -> dict:
    """The SPMD body of TSLU executed by one rank.

    Parameters
    ----------
    comm:
        The rank's communicator.
    local_rows:
        Global indices of the panel rows this rank owns.
    local_block:
        The corresponding entries (``len(local_rows) x b``).
    b:
        Panel width.
    group:
        Ranks participating in this panel factorization (defaults to all).
    local_kernel:
        ``"getf2"`` or ``"rgetf2"`` for the local factorization.
    channel:
        Cost channel ("col" inside CALU, where the panel lives in a process
        column).
    tag:
        Tag namespace (must differ between concurrent panels).
    kernel_tier:
        Kernel tier for the rank-local factorizations (None: process-wide
        default).  Only the pivot order flows into the candidate set, so the
        fast tier leaves the simulated results bit-identical.
    precomputed_candidate:
        Optional ``(candidate, flops)`` pair computed ahead of the SPMD run
        by the batched leaf step of :func:`ptslu` — the candidate set and the
        flop counts are exactly what the local factorization would produce,
        so the trace is unchanged; only the host-side Python overhead of
        ``P`` sequential leaf factorizations is gone.

    Returns
    -------
    dict
        ``{"winners", "U", "rows", "L_local"}`` — the global pivot rows, the
        shared ``U`` factor, this rank's row indices and its block of ``L``.
    """
    group = list(group) if group is not None else list(range(comm.size))
    scratch = FlopCounter()
    if precomputed_candidate is not None:
        candidate, leaf_flops = precomputed_candidate
        comm.charge_counter(leaf_flops)
    else:
        candidate = local_candidates(
            np.asarray(local_rows, dtype=np.int64),
            np.asarray(local_block, dtype=np.float64),
            b,
            flops=scratch,
            local_kernel=local_kernel,
            kernel_tier=kernel_tier,
        )
        comm.charge_counter(scratch)

    if len(group) > 1:
        winner = _tournament_allreduce(comm, candidate, b, group, channel=channel, tag=tag)
    else:
        winner = candidate

    # Second phase of ca-pivoting: factor the winning b x b block *without*
    # pivoting (performed redundantly by every participant, which is exactly
    # the redundant arithmetic the paper trades for fewer messages).
    from ..kernels.getf2 import getf2_nopivot

    k = min(b, winner.rows.shape[0])
    packed = getf2_nopivot(winner.block[:k, :], flops=scratch)
    comm.charge_counter(scratch)
    U = np.triu(packed)
    U11 = U[:, :k]

    # Local rows of L: solve L_local @ U11 = A_local (columns 1..k).
    if compute_L and local_block.shape[0] > 0:
        L_local = trsm_right_upper(U11, np.asarray(local_block)[:, :k], flops=scratch)
        comm.charge_counter(scratch)
    else:
        L_local = np.zeros((np.asarray(local_block).shape[0] if compute_L else 0, k))

    return {
        "winners": winner.rows[:k],
        "U": U,
        "rows": np.asarray(local_rows, dtype=np.int64),
        "L_local": L_local,
    }


def _batched_leaf_candidates(
    rows_per_rank: List[np.ndarray],
    A: np.ndarray,
    b: int,
) -> List[Tuple[CandidateSet, FlopCounter]]:
    """Precompute every rank's leaf candidate set in batched ``getf2`` calls.

    Ranks owning same-shape blocks are factored together; the returned
    candidate sets and flop counters are exactly (bit-for-bit, count-for-
    count) what :func:`~repro.core.tournament.local_candidates` computes on
    each rank, so the simulated traces are unchanged.
    """
    blocks = [np.ascontiguousarray(A[rows, :]) for rows in rows_per_rank]
    out: List[Optional[Tuple[CandidateSet, FlopCounter]]] = [None] * len(blocks)
    groups: dict = {}
    for i, blk in enumerate(blocks):
        groups.setdefault(blk.shape, []).append(i)
    for shape, idxs in groups.items():
        m_blk, n_blk = shape
        if m_blk == 0:
            for i in idxs:
                out[i] = (
                    CandidateSet(rows=rows_per_rank[i][:0], block=blocks[i][:0]),
                    FlopCounter(),
                )
            continue
        if len(idxs) == 1:
            i = idxs[0]
            scratch = FlopCounter()
            cand = local_candidates(
                rows_per_rank[i], blocks[i], b, flops=scratch
            )
            out[i] = (cand, scratch)
            continue
        # Private temporary stack; candidates gather from the original blocks.
        res = getf2_batched(np.stack([blocks[i] for i in idxs]), overwrite=True)
        counters = slab_flop_counters(m_blk, n_blk, res.zero_columns)
        k = min(b, m_blk)
        for s, i in enumerate(idxs):
            chosen = res.perm[s][:k]
            cand = CandidateSet(
                rows=rows_per_rank[i][chosen], block=blocks[i][chosen, :]
            )
            out[i] = (cand, counters[s])
    return out


def ptslu(
    A: np.ndarray,
    nprocs: int,
    layout: str = "block",
    block_size: Optional[int] = None,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
) -> PTSLUResult:
    """Driver: distribute an ``m x b`` panel, run SPMD TSLU, gather the factors.

    Parameters
    ----------
    A:
        The panel.
    nprocs:
        Number of ranks.
    layout:
        ``"block"`` (contiguous row blocks) or ``"block_cyclic"``.
    block_size:
        Row-block size for the block-cyclic layout (default: panel width).
    local_kernel:
        Local factorization kernel (``"getf2"`` / ``"rgetf2"``).
    machine:
        Machine model pricing the run (default: unit-latency machine).
    engine:
        Execution engine for the SPMD run ("threaded", "event", an
        :class:`~repro.distsim.engine.base.ExecutionEngine` instance, or
        ``None`` for the process-wide default).
    kernel_tier:
        Kernel tier for the rank-local arithmetic (None: process-wide
        default).  With a non-reference tier the ``getf2`` leaf
        factorizations of all ranks are precomputed in batched calls — the
        candidate sets and flop charges are identical, only the host-side
        overhead of ``P`` sequential Python-loop factorizations is removed.

    Returns
    -------
    PTSLUResult
    """
    A = np.asarray(A, dtype=np.float64)
    m, b = A.shape
    if layout == "block":
        dist: object = Block1D(m, nprocs)
    elif layout == "block_cyclic":
        dist = BlockCyclic1D(m, block_size or b, nprocs)
    else:
        raise ValueError(f"unknown layout {layout!r}")

    rows_per_rank = [dist.rows_of(p) for p in range(nprocs)]

    precomputed: Optional[List[Tuple[CandidateSet, FlopCounter]]] = None
    if resolve_tier(kernel_tier) != "reference" and local_kernel == "getf2":
        precomputed = _batched_leaf_candidates(rows_per_rank, A, b)

    def rank_fn(comm: Communicator) -> dict:
        rows = rows_per_rank[comm.rank]
        return ptslu_rank(
            comm,
            rows,
            A[rows, :],
            b,
            local_kernel=local_kernel,
            kernel_tier=kernel_tier,
            precomputed_candidate=None if precomputed is None else precomputed[comm.rank],
        )

    trace = run_spmd(nprocs, rank_fn, machine=machine, engine=engine)
    results = trace.results

    winners = np.asarray(results[0]["winners"], dtype=np.int64)
    U = np.asarray(results[0]["U"], dtype=np.float64)
    k = winners.shape[0]

    # Assemble the global L: winners first (in pivot order), remaining rows in
    # ascending global order, exactly like the sequential TSLU.
    mask = np.ones(m, dtype=bool)
    mask[winners] = False
    rest = np.nonzero(mask)[0]
    perm = np.concatenate([winners, rest]).astype(np.int64)

    L_by_row = np.zeros((m, k))
    for res in results:
        rows = res["rows"]
        if rows.shape[0]:
            L_by_row[rows, :] = res["L_local"]
    L = L_by_row[perm, :]

    return PTSLUResult(L=L, U=U, perm=perm, winners=winners, trace=trace)
