"""Distributed TSLU: the SPMD panel factorization of Section 3.

Each of the ``P`` ranks owns a block of the panel's rows (1-D layout).  The
algorithm is exactly the one in the paper:

1. every rank factors its local block with partial pivoting (classic or
   recursive kernel) and keeps its ``b`` candidate pivot rows;
2. an all-reduction with a butterfly communication pattern merges candidate
   sets — at each of the ``log2 P`` levels a rank exchanges its current
   ``b x b`` candidate block with its partner and both redundantly factor the
   stacked ``2b x b`` matrix;
3. after the butterfly every rank knows the ``b`` global pivot rows and the
   ``U`` factor; each rank forms its local rows of ``L`` with a triangular
   solve against ``U11``.

Communication: each rank sends exactly ``log2 P`` messages of ``b^2`` words —
the latency win over ScaLAPACK's PDGETF2 (2 messages *per column*, i.e.
``2 b log2 P`` per panel) that the whole paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.strategies import get_strategy, resolve_pivoting
from ..core.tournament import (
    CandidateSet,
    local_candidates,
    local_candidates_rrqr,
    merge_candidates,
    merge_candidates_rrqr,
)
from ..distsim.collectives import allreduce, broadcast
from ..distsim.engine import ExecutionEngine
from ..distsim.engine.base import spmd_program
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.batched import getf2_batched, slab_flop_counters
from ..kernels.flops import FlopCounter
from ..kernels.tiers import resolve_tier
from ..kernels.trsm import trsm_right_upper
from ..layouts.block1d import Block1D, BlockCyclic1D
from ..machines.model import MachineModel


@dataclass
class PTSLUResult:
    """Result of a distributed TSLU run.

    Attributes
    ----------
    L:
        Global ``m x k`` unit-lower-trapezoidal factor (assembled from the
        per-rank pieces, winners first).
    U:
        ``k x b`` upper-triangular factor (known redundantly by every rank).
    perm:
        Row permutation with ``A[perm, :] = L @ U``.
    winners:
        Global indices of the selected pivot rows (``perm[:k]``).
    trace:
        Per-rank communication/computation trace of the run.
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    winners: np.ndarray
    trace: RunTrace


def _tournament_allreduce(
    comm: Communicator,
    candidate: CandidateSet,
    b: int,
    group: Sequence[int],
    channel: str = "col",
    tag: str = "tslu",
    selector: str = "getf2",
):
    """Butterfly all-reduction whose operator is the pivot tournament merge.

    Every rank of ``group`` ends up with the same winning candidate set.  The
    merge arithmetic is charged to the calling rank (this is the redundant
    computation the paper trades for fewer messages).  The payload exchanged
    at each level is the pair (row indices, candidate block) — ``b + b^2``
    words, as in the real algorithm.  ``selector`` picks the merge operator:
    partial-pivoting rows (``"getf2"``, CALU) or strong-RRQR rows
    (``"rrqr"``, CALU_PRRP) — the communication pattern is identical.
    """
    scratch = FlopCounter()
    merge_fn = merge_candidates_rrqr if selector == "rrqr" else merge_candidates

    def op(x: Tuple[np.ndarray, np.ndarray], y: Tuple[np.ndarray, np.ndarray]):
        merged, _ = merge_fn(
            CandidateSet(rows=x[0], block=x[1]),
            CandidateSet(rows=y[0], block=y[1]),
            b,
            flops=scratch,
        )
        comm.charge_counter(scratch)
        return (merged.rows, merged.block)

    rows, block = yield from allreduce.co(
        comm, (candidate.rows, candidate.block), op, group=group, tag=tag, channel=channel
    )
    return CandidateSet(rows=rows, block=block)


@spmd_program
def ptslu_rank(
    comm: Communicator,
    local_rows: np.ndarray,
    local_block: np.ndarray,
    b: int,
    group: Optional[Sequence[int]] = None,
    local_kernel: str = "getf2",
    channel: str = "col",
    tag: str = "tslu",
    compute_L: bool = True,
    kernel_tier: Optional[str] = None,
    precomputed_candidate: Optional[Tuple[CandidateSet, FlopCounter]] = None,
    selector: str = "getf2",
):
    """The SPMD body of TSLU executed by one rank.

    Parameters
    ----------
    comm:
        The rank's communicator.
    local_rows:
        Global indices of the panel rows this rank owns.
    local_block:
        The corresponding entries (``len(local_rows) x b``).
    b:
        Panel width.
    group:
        Ranks participating in this panel factorization (defaults to all).
    local_kernel:
        ``"getf2"`` or ``"rgetf2"`` for the local factorization.
    channel:
        Cost channel ("col" inside CALU, where the panel lives in a process
        column).
    tag:
        Tag namespace (must differ between concurrent panels).
    kernel_tier:
        Kernel tier for the rank-local factorizations (None: process-wide
        default).  Only the pivot order flows into the candidate set, so the
        fast tier leaves the simulated results bit-identical.
    precomputed_candidate:
        Optional ``(candidate, flops)`` pair computed ahead of the SPMD run
        by the batched leaf step of :func:`ptslu` — the candidate set and the
        flop counts are exactly what the local factorization would produce,
        so the trace is unchanged; only the host-side Python overhead of
        ``P`` sequential leaf factorizations is gone.
    selector:
        Tournament selection kernel: ``"getf2"`` (partial-pivoting rows, the
        paper's CALU) or ``"rrqr"`` (strong-RRQR rows, CALU_PRRP).  With
        ``"rrqr"`` the winner block is additionally re-ordered by a redundant
        rank-local LU with partial pivoting before the no-pivoting second
        phase — a permutation inside the already-chosen rows, identical on
        every rank and free of communication.

    Returns
    -------
    dict
        ``{"winners", "U", "rows", "L_local"}`` — the global pivot rows, the
        shared ``U`` factor, this rank's row indices and its block of ``L``.
    """
    # Keep the default all-ranks group as a ``range``: the collective layer
    # hashes and position-indexes the group per participant, which a range
    # does in O(1) where a materialized list costs O(P) each (O(P²) per
    # tournament round at figure-scale P).
    group = list(group) if group is not None else range(comm.size)
    scratch = FlopCounter()
    if precomputed_candidate is not None:
        candidate, leaf_flops = precomputed_candidate
        comm.charge_counter(leaf_flops)
    elif selector == "rrqr":
        candidate = local_candidates_rrqr(
            np.asarray(local_rows, dtype=np.int64),
            np.asarray(local_block, dtype=np.float64),
            b,
            flops=scratch,
        )
        comm.charge_counter(scratch)
    else:
        candidate = local_candidates(
            np.asarray(local_rows, dtype=np.int64),
            np.asarray(local_block, dtype=np.float64),
            b,
            flops=scratch,
            local_kernel=local_kernel,
            kernel_tier=kernel_tier,
        )
        comm.charge_counter(scratch)

    if len(group) > 1:
        winner = yield from _tournament_allreduce(
            comm, candidate, b, group, channel=channel, tag=tag, selector=selector
        )
    else:
        winner = candidate

    # Second phase of ca-pivoting: factor the winning b x b block *without*
    # pivoting (performed redundantly by every participant, which is exactly
    # the redundant arithmetic the paper trades for fewer messages).  The
    # RRQR selection order is not an elimination order, so CALU_PRRP first
    # re-orders the winners by a (redundant, deterministic, local) partial
    # pivoting of the winner block.
    from ..kernels.getf2 import getf2, getf2_nopivot

    k = min(b, winner.rows.shape[0])
    if selector == "rrqr":
        res = getf2(winner.block[:k, :], flops=scratch, kernel_tier="reference")
        order = res.perm[:k]
        winner = CandidateSet(
            rows=np.concatenate([winner.rows[:k][order], winner.rows[k:]]),
            block=np.vstack([winner.block[:k][order], winner.block[k:]]),
        )
        packed = res.lu[:k, :]
    else:
        packed = getf2_nopivot(winner.block[:k, :], flops=scratch)
    comm.charge_counter(scratch)
    U = np.triu(packed)
    U11 = U[:, :k]

    # Local rows of L: solve L_local @ U11 = A_local (columns 1..k).
    if compute_L and local_block.shape[0] > 0:
        L_local = trsm_right_upper(U11, np.asarray(local_block)[:, :k], flops=scratch)
        comm.charge_counter(scratch)
    else:
        L_local = np.zeros((np.asarray(local_block).shape[0] if compute_L else 0, k))

    return {
        "winners": winner.rows[:k],
        "U": U,
        "rows": np.asarray(local_rows, dtype=np.int64),
        "L_local": L_local,
    }


def _batched_leaf_candidates(
    rows_per_rank: List[np.ndarray],
    A: np.ndarray,
    b: int,
) -> List[Tuple[CandidateSet, FlopCounter]]:
    """Precompute every rank's leaf candidate set in batched ``getf2`` calls.

    Ranks owning same-shape blocks are factored together; the returned
    candidate sets and flop counters are exactly (bit-for-bit, count-for-
    count) what :func:`~repro.core.tournament.local_candidates` computes on
    each rank, so the simulated traces are unchanged.
    """
    blocks = [np.ascontiguousarray(A[rows, :]) for rows in rows_per_rank]
    out: List[Optional[Tuple[CandidateSet, FlopCounter]]] = [None] * len(blocks)
    groups: dict = {}
    for i, blk in enumerate(blocks):
        groups.setdefault(blk.shape, []).append(i)
    for shape, idxs in groups.items():
        m_blk, n_blk = shape
        if m_blk == 0:
            for i in idxs:
                out[i] = (
                    CandidateSet(rows=rows_per_rank[i][:0], block=blocks[i][:0]),
                    FlopCounter(),
                )
            continue
        if len(idxs) == 1:
            i = idxs[0]
            scratch = FlopCounter()
            cand = local_candidates(
                rows_per_rank[i], blocks[i], b, flops=scratch
            )
            out[i] = (cand, scratch)
            continue
        # Private temporary stack; candidates gather from the original blocks.
        res = getf2_batched(np.stack([blocks[i] for i in idxs]), overwrite=True)
        counters = slab_flop_counters(m_blk, n_blk, res.zero_columns)
        k = min(b, m_blk)
        for s, i in enumerate(idxs):
            chosen = res.perm[s][:k]
            cand = CandidateSet(
                rows=rows_per_rank[i][chosen], block=blocks[i][chosen, :]
            )
            out[i] = (cand, counters[s])
    return out


def _pp_maxloc(a: Tuple, b: Tuple) -> Tuple:
    """All-reduce operator for the distributed partial-pivoting panel.

    Entries are ``(|value|, value, global_row, owner_rank, owner_local_row)``;
    ties break towards the smallest *global* row index.  Sequential ``getf2``
    scans rows in swap-permuted order instead (it physically swaps pivot rows
    down), so on an exact magnitude tie the two can legitimately pick
    different rows of equal value — the pivot sequences agree whenever the
    column maximum is unique (always, for generic matrices).
    """
    if (a[0], -a[2]) >= (b[0], -b[2]):
        return a
    return b


@spmd_program
def pp_panel_rank(
    comm: Communicator,
    local_rows: np.ndarray,
    local_block: np.ndarray,
    b: int,
    npivots: int,
    group: Optional[Sequence[int]] = None,
    channel: str = "col",
    tag: str = "tslu-pp",
):
    """Distributed *partial pivoting* panel factorization (one rank's body).

    The communication baseline TSLU is measured against, on TSLU's own 1-D
    row layout: partial pivoting is performed column by column — per column
    one max-loc all-reduction picks the global pivot and one broadcast ships
    the (eliminated) pivot row's trailing segment — i.e. ``~2 b log2 P``
    messages per panel versus the tournament's ``log2 P``.  This is the
    PDGETF2 pattern of :mod:`repro.scalapack.pdgetf2` transplanted to the
    ``ptslu`` API, so the two pivoting strategies can be compared message for
    message inside one driver.  Rows are never physically swapped (eliminated
    rows are only *marked*), so on an exact magnitude tie the pivot row may
    differ from sequential ``getf2``'s swap-ordered scan — see
    :func:`_pp_maxloc`; for matrices with unique column maxima the pivot
    sequence matches the sequential baseline.

    Returns the same dict as :func:`ptslu_rank` (``winners``/``U``/``rows``/
    ``L_local``).
    """
    group = list(group) if group is not None else list(range(comm.size))
    rows = np.asarray(local_rows, dtype=np.int64)
    W = np.array(local_block, dtype=np.float64)
    chosen = np.zeros(rows.shape[0], dtype=bool)
    pivot_step = np.full(rows.shape[0], -1, dtype=np.int64)
    winners: List[int] = []
    U = np.zeros((npivots, b))
    L_local = np.zeros((rows.shape[0], npivots))
    scratch = FlopCounter()

    for jc in range(npivots):
        # Local pivot candidate among the rows not yet eliminated.
        active = np.nonzero(~chosen)[0]
        if active.size:
            vals = W[active, jc]
            li = int(np.argmax(np.abs(vals)))
            cand = (
                float(abs(vals[li])),
                float(vals[li]),
                int(rows[active[li]]),
                comm.rank,
                int(active[li]),
            )
            comm.charge_flops(comparisons=float(active.size - 1))
        else:
            cand = (-1.0, 0.0, 1 << 60, -1, -1)
        best = yield from allreduce.co(
            comm, cand, _pp_maxloc, group=group, tag=(tag, "amax", jc), channel=channel
        )
        _, _, grow, owner, owner_li = best
        winners.append(int(grow))

        # The owner broadcasts the pivot row's trailing segment (already
        # updated by the previous eliminations) down the group.
        if comm.rank == owner:
            seg = W[owner_li, jc:].copy()
            chosen[owner_li] = True
            pivot_step[owner_li] = jc
            L_local[owner_li, jc] = 1.0
        else:
            seg = None
        seg = yield from broadcast.co(
            comm, seg, root=owner, group=group, tag=(tag, "prow", jc), channel=channel
        )
        U[jc, jc:] = seg

        # Local elimination below the pivot.
        remaining = np.nonzero(~chosen)[0]
        if remaining.size and seg[0] != 0.0:
            mult = W[remaining, jc] / seg[0]
            L_local[remaining, jc] = mult
            scratch.add_divides(float(remaining.size))
            if jc + 1 < b:
                W[remaining, jc + 1 :] -= np.outer(mult, seg[1:])
                scratch.add_muladds(2.0 * remaining.size * (b - jc - 1))
            comm.charge_counter(scratch)
            scratch = FlopCounter()

    return {
        "winners": np.asarray(winners, dtype=np.int64),
        "U": np.triu(U),
        "rows": rows,
        "L_local": L_local,
    }


def ptslu(
    A: np.ndarray,
    nprocs: int,
    layout: str = "block",
    block_size: Optional[int] = None,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
) -> PTSLUResult:
    """Driver: distribute an ``m x b`` panel, run SPMD TSLU, gather the factors.

    Parameters
    ----------
    A:
        The panel.
    nprocs:
        Number of ranks.
    layout:
        ``"block"`` (contiguous row blocks) or ``"block_cyclic"``.
    block_size:
        Row-block size for the block-cyclic layout (default: panel width).
    local_kernel:
        Local factorization kernel (``"getf2"`` / ``"rgetf2"``).
    machine:
        Machine model pricing the run (default: unit-latency machine).
    engine:
        Execution engine for the SPMD run ("threaded", "event", an
        :class:`~repro.distsim.engine.base.ExecutionEngine` instance, or
        ``None`` for the process-wide default).
    kernel_tier:
        Kernel tier for the rank-local arithmetic (None: process-wide
        default).  With a non-reference tier the ``getf2`` leaf
        factorizations of all ranks are precomputed in batched calls — the
        candidate sets and flop charges are identical, only the host-side
        overhead of ``P`` sequential Python-loop factorizations is removed.
    pivoting:
        Pivoting strategy (None: process-wide default, see
        :mod:`repro.core.strategies`): ``"ca"`` (the paper's tournament),
        ``"ca_prrp"`` (strong-RRQR tournament — same ``log2 P`` messages) or
        ``"pp"`` (column-by-column partial pivoting, ``~2 b log2 P``
        messages — the baseline of the paper's comparison).

    Returns
    -------
    PTSLUResult
    """
    A = np.asarray(A, dtype=np.float64)
    m, b = A.shape
    strategy = get_strategy(resolve_pivoting(pivoting))
    if layout == "block":
        dist: object = Block1D(m, nprocs)
    elif layout == "block_cyclic":
        dist = BlockCyclic1D(m, block_size or b, nprocs)
    else:
        raise ValueError(f"unknown layout {layout!r}")

    rows_per_rank = [dist.rows_of(p) for p in range(nprocs)]

    precomputed: Optional[List[Tuple[CandidateSet, FlopCounter]]] = None
    if (
        strategy.tournament
        and strategy.selector == "getf2"
        and resolve_tier(kernel_tier) != "reference"
        and local_kernel == "getf2"
    ):
        precomputed = _batched_leaf_candidates(rows_per_rank, A, b)

    if strategy.tournament:

        def rank_fn(comm: Communicator):
            rows = rows_per_rank[comm.rank]
            return (
                yield from ptslu_rank.co(
                    comm,
                    rows,
                    A[rows, :],
                    b,
                    local_kernel=local_kernel,
                    kernel_tier=kernel_tier,
                    precomputed_candidate=(
                        None if precomputed is None else precomputed[comm.rank]
                    ),
                    selector=strategy.selector,
                )
            )

    else:
        npivots = min(m, b)

        def rank_fn(comm: Communicator):
            rows = rows_per_rank[comm.rank]
            return (yield from pp_panel_rank.co(comm, rows, A[rows, :], b, npivots))

    trace = run_spmd(nprocs, rank_fn, machine=machine, engine=engine)
    results = trace.results

    winners = np.asarray(results[0]["winners"], dtype=np.int64)
    U = np.asarray(results[0]["U"], dtype=np.float64)
    k = winners.shape[0]

    # Assemble the global L: winners first (in pivot order), remaining rows in
    # ascending global order, exactly like the sequential TSLU.
    mask = np.ones(m, dtype=bool)
    mask[winners] = False
    rest = np.nonzero(mask)[0]
    perm = np.concatenate([winners, rest]).astype(np.int64)

    L_by_row = np.zeros((m, k))
    for res in results:
        rows = res["rows"]
        if rows.shape[0]:
            L_by_row[rows, :] = res["L_local"]
    L = L_by_row[perm, :]

    return PTSLUResult(L=L, U=U, perm=perm, winners=winners, trace=trace)
