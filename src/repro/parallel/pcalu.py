"""Distributed CALU on a 2-D block-cyclic layout (Section 4 of the paper).

The outer iteration is the shared block right-looking driver of
:mod:`repro.parallel.driver`; the panel factorization is the distributed TSLU
of :mod:`repro.parallel.ptslu`.  Per panel, the processes of the owning grid
column exchange only ``log2 Pr`` messages (the tournament butterfly) instead
of the ``~2 b log2 Pr`` messages of ScaLAPACK's PDGETF2 — the whole point of
the algorithm.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..core.options import SolveConfig
from ..core.strategies import get_strategy, resolve_pivoting
from ..distsim.engine import ExecutionEngine
from ..distsim.vmpi import Communicator
from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_right_upper
from ..layouts.block_cyclic import BlockCyclic2D
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from ..scalapack.pdlaswp import pdlaswp, winners_to_swaps
from .driver import DistributedLUResult, run_block_lu
from .ptslu import ptslu_rank


def make_calu_panel(
    local_kernel: str = "getf2",
    kernel_tier: Optional[str] = None,
    selector: str = "getf2",
) -> Callable[..., object]:
    """Create the CALU panel-factorization coroutine for the shared driver.

    The returned callable is a generator function (driven with ``yield
    from``); its return value is the panel's swap list.

    Parameters
    ----------
    local_kernel:
        Kernel used for the local (leaf) factorizations of the tournament:
        ``"getf2"`` (classic) or ``"rgetf2"`` (recursive) — the paper's Cl /
        Rec configurations.
    kernel_tier:
        Kernel tier for the leaf factorizations (None: process-wide
        default).  Tournament merges always run reference-tier arithmetic,
        so the simulated factors do not depend on the tier.
    selector:
        Tournament selection kernel: ``"getf2"`` (partial-pivoting rows,
        CALU) or ``"rrqr"`` (strong-RRQR rows, CALU_PRRP) — see
        :mod:`repro.core.strategies`.
    """

    def panel(
        comm: Communicator,
        dist: BlockCyclic2D,
        Aloc: np.ndarray,
        j0: int,
        jb: int,
        col_group: List[int],
        tag: object,
    ):
        grid = dist.grid
        myrow, _ = grid.coords(comm.rank)
        my_grows = dist.local_rows(myrow)
        act_mask = my_grows >= j0
        act_grows = my_grows[act_mask]
        act_lrows = np.nonzero(act_mask)[0]
        panel_lcols = np.asarray(
            [dist.global_to_local_col(g) for g in range(j0, j0 + jb)], dtype=np.int64
        )
        local_panel = Aloc[np.ix_(act_lrows, panel_lcols)]

        # Tournament pivoting over the grid column (log2 Pr messages).
        res = yield from ptslu_rank.co(
            comm,
            act_grows,
            local_panel,
            jb,
            group=col_group,
            local_kernel=local_kernel,
            channel="col",
            tag=(tag, "tslu"),
            compute_L=False,
            kernel_tier=kernel_tier,
            selector=selector,
        )
        winners = res["winners"]
        U = np.asarray(res["U"], dtype=np.float64)
        swaps = winners_to_swaps(j0, winners)

        # Move the winning rows to the top of the panel columns.
        yield from pdlaswp.co(
            comm, dist, Aloc, swaps, panel_lcols, tag=(tag, "pswap"), channel="col"
        )

        # Second phase of ca-pivoting: with the winners on the diagonal block,
        # the panel is factored without further pivoting.  Locally that means
        # L = A_panel(swapped) U11^{-1}, then packing L (strictly lower) and
        # U11 (diagonal block rows) into the panel columns.
        scratch = FlopCounter()
        swapped = Aloc[np.ix_(act_lrows, panel_lcols)]
        if act_lrows.size:
            k = min(jb, U.shape[0])
            U11 = U[:k, :k]
            L_loc = trsm_right_upper(U11, swapped[:, :k], flops=scratch)
            comm.charge_counter(scratch)
            packed = np.array(L_loc[:, :jb]) if L_loc.shape[1] >= jb else np.pad(
                L_loc, ((0, 0), (0, jb - L_loc.shape[1]))
            )
            for i, g in enumerate(act_grows):
                if j0 <= g < j0 + jb:
                    idx = g - j0
                    # Diagonal-block row: strictly-lower part is L, the rest is U.
                    packed[i, idx:] = U[idx, idx:jb] if idx < U.shape[0] else 0.0
            Aloc[np.ix_(act_lrows, panel_lcols)] = packed
        return swaps

    return panel


def _merge_config(
    config: Optional[SolveConfig],
    grid,
    block_size,
    machine,
    engine,
    kernel_tier,
    pivoting,
    matmul,
):
    """Fill unset driver arguments from a :class:`SolveConfig`.

    Explicit per-call arguments always win; the config only supplies
    defaults for arguments left ``None``, so threading a config through a
    driver cannot change what a spelled-out call resolves to.
    """
    if config is not None:
        if grid is None:
            grid = config.process_grid()
        if block_size is None:
            block_size = config.b
        if machine is None:
            machine = config.machine_model()
        if engine is None:
            engine = config.engine
        if kernel_tier is None:
            kernel_tier = config.kernel_tier
        if pivoting is None:
            pivoting = config.pivoting
        if matmul is None:
            matmul = config.matmul
    return grid, block_size, machine, engine, kernel_tier, pivoting, matmul


def pcalu(
    A: np.ndarray,
    grid: Optional[ProcessGrid] = None,
    block_size: Optional[int] = None,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
    matmul: Optional[str] = None,
    config: Optional[SolveConfig] = None,
) -> DistributedLUResult:
    """Distributed CALU of ``A`` over ``grid`` with block size ``block_size``.

    ``engine`` selects the virtual-MPI execution backend ("threaded",
    "event", or ``None`` for the process-wide default); ``kernel_tier``
    selects the numerical tier for the rank-local leaf factorizations (see
    :mod:`repro.kernels.tiers`); ``pivoting`` selects the panel pivoting
    strategy (``"ca"``, ``"ca_prrp"`` or ``"pp"`` — with ``"pp"`` the panel
    is ScaLAPACK's column-by-column PDGETF2 and the run is exactly
    :func:`repro.scalapack.pdgetrf.pdgetrf`); ``matmul`` selects the
    distributed-matmul backend for the trailing update (``"summa"`` or
    ``"caps"``, see :mod:`repro.matmul`).  Returns the gathered factors,
    the pivot sequence and the per-rank communication trace (see
    :class:`~repro.parallel.driver.DistributedLUResult`).

    ``config`` is an optional :class:`~repro.core.options.SolveConfig`
    supplying defaults for every unset argument above (grid, block size,
    machine and all four knobs); explicit per-call arguments still win, so
    ``pcalu(A, config=cfg)`` and the historical spelled-out signature
    resolve identically.
    """
    grid, block_size, machine, engine, kernel_tier, pivoting, matmul = (
        _merge_config(
            config, grid, block_size, machine, engine, kernel_tier, pivoting,
            matmul,
        )
    )
    if grid is None or block_size is None:
        raise ValueError(
            "pcalu needs a process grid and a block size, either as "
            "arguments or through config="
        )
    strategy = get_strategy(resolve_pivoting(pivoting))
    if strategy.tournament:
        def panel_factory() -> Callable[..., List[Tuple[int, int]]]:
            return make_calu_panel(
                local_kernel=local_kernel,
                kernel_tier=kernel_tier,
                selector=strategy.selector,
            )
    else:
        from ..scalapack.pdgetf2 import make_pdgetf2_panel

        panel_factory = make_pdgetf2_panel
    return run_block_lu(
        A,
        grid,
        block_size,
        panel_factory=panel_factory,
        machine=machine,
        engine=engine,
        matmul=matmul,
    )
