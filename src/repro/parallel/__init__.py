"""Distributed (SPMD) versions of TSLU and CALU running on the virtual MPI."""

from .driver import DistributedLUResult, block_right_looking_rank, run_block_lu
from .factor import FactoredMatrix, pcalu_factor, pdgetrf_factor
from .pcalu import make_calu_panel, pcalu
from .psolve import DistributedSolveResult, pdgesv, pdgesv_rank, pdgesv_solve
from .ptslu import PTSLUResult, pp_panel_rank, ptslu, ptslu_rank

__all__ = [
    "ptslu",
    "ptslu_rank",
    "pp_panel_rank",
    "PTSLUResult",
    "pcalu",
    "make_calu_panel",
    "pdgesv",
    "pdgesv_rank",
    "pdgesv_solve",
    "FactoredMatrix",
    "pcalu_factor",
    "pdgetrf_factor",
    "DistributedSolveResult",
    "run_block_lu",
    "block_right_looking_rank",
    "DistributedLUResult",
]
