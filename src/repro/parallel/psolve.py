"""End-to-end distributed solution of ``A x = b`` (``PDGESV`` analogue).

This closes the factorization→solve gap: ``pcalu``/``pdgetrf`` produce
distributed factors, and the paper's accuracy story (Table 1, Section 6.1) is
defined on the *solution* — residuals and componentwise backward error after
iterative refinement.  :func:`pdgesv` chains

1. a distributed factorization (:func:`repro.parallel.pcalu.pcalu`, honoring
   the ``pivoting`` knob — with ``pivoting="pp"`` the factorization is
   bit-for-bit ScaLAPACK's PDGETRF — plus ``kernel_tier`` and both execution
   engines);
2. the row permutation applied to the right-hand sides (folded into the
   block-cyclic redistribution of ``b``: the driver knows the full pivot
   sequence once the factorization is gathered, so ``P b`` costs no
   messages — a real code would run PDLASWP on ``B`` at ``O(n)`` extra
   messages, which the analytic model deliberately excludes the same way);
3. two blocked distributed triangular solves
   (:mod:`repro.scalapack.pdtrsv`);
4. distributed iterative refinement: the residual ``r = P b - (P A) x`` and
   the componentwise denominator ``|P A| |x| + |P b|`` are computed from
   block-cyclic local pieces and reduced along process rows, the per-RHS
   max-abs residuals and the backward error are agreed on by a global
   all-reduce, and each correction is another pair of triangular solves —
   "usually after 2 iterative refinements, the componentwise backward error
   can be reduced to the order of 1e-16" (Section 6.1).

The solve phase's communication is exactly predicted by
:mod:`repro.models.solve_model`; the ``solve`` experiment spec
(``repro run solve``) checks the measured message counts against it.

The factorization and the solve are independently callable:
:func:`repro.parallel.factor.pcalu_factor` produces a reusable
:class:`~repro.parallel.factor.FactoredMatrix` and :func:`pdgesv_solve` runs
steps 2-4 against it — bit-identical to the solve phase of a cold
:func:`pdgesv`, which is itself just the composition of the two.  That split
is what the factor cache and the serving layer
(:mod:`repro.harness.factor_cache`, :mod:`repro.harness.serving`) build on:
pay the ``O(n^3)`` factorization once, amortize it over any number of
``O(n^2)`` solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.options import SolveConfig
from ..distsim.collectives import allreduce, reduce
from ..distsim.engine import ExecutionEngine
from ..distsim.engine.base import spmd_program
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.flops import FlopCounter
from ..layouts.block_cyclic import BlockCyclic2D
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from ..scalapack.pdtrsv import (
    RhsBlocks,
    block_bounds,
    diag_owner,
    pdtrsv_lower_unit,
    pdtrsv_upper,
)
from .driver import DistributedLUResult
from .factor import FactoredMatrix, pcalu_factor
from .pcalu import _merge_config


@dataclass
class DistributedSolveResult:
    """Solution of ``A x = b`` computed by the distributed solver.

    Attributes
    ----------
    x:
        Computed solution (vector, or ``n x nrhs`` matrix of solutions).
    residual_norms:
        Largest residual entry ``max_ij |b - A x|_ij`` after the initial
        solve and after each refinement step — the same quantity (and list
        layout) as :class:`repro.core.solve.SolveResult`.
    per_rhs_residuals:
        Per right-hand side max-abs residuals, one ``nrhs``-vector per
        recorded step (``residual_norms[i] == max(per_rhs_residuals[i])``).
    backward_errors:
        Componentwise backward error ``max_i |r_i| / (|A||x| + |b|)_i`` after
        the initial solve and after each refinement step.
    iterations:
        Number of refinement steps actually performed.
    factorization:
        The distributed factorization consumed by the solve (its ``trace``
        prices the factorization phase).  ``None`` when the solve ran
        against a cached :class:`~repro.parallel.factor.FactoredMatrix`
        whose factorization happened in another process — no factorization
        ran here, which is the point of the cache.
    trace:
        Per-rank communication/computation trace of the *solve* phase only
        (triangular solves + refinement), so it can be validated against
        :func:`repro.models.solve_model.solve_message_counts`.
    factor:
        The reusable factor artifact the solve consumed (always set).
    """

    x: np.ndarray
    residual_norms: List[float]
    per_rhs_residuals: List[List[float]]
    backward_errors: List[float]
    iterations: int
    factorization: Optional[DistributedLUResult]
    trace: RunTrace
    factor: Optional[FactoredMatrix] = None


def _distributed_residual(
    comm: Communicator,
    dist: BlockCyclic2D,
    PAloc: np.ndarray,
    pb_blocks: RhsBlocks,
    x_cols: np.ndarray,
    nrhs: int,
    tag: object,
):
    """Distributed residual and componentwise backward error (one rank's body).

    Every rank multiplies its local piece of the permuted matrix by the
    solution entries of its local columns (``P A x`` and ``|P A| |x|`` in one
    pass); the per-block-row slices are summed across each process row to the
    diagonal owners, which assemble the residual blocks
    ``r_k = (P b)_k - (P A x)_k`` and the componentwise ratios.  A final
    all-reduce over every rank agrees on the per-RHS max-abs residuals and the
    backward error, so refinement stops at the same step on all ranks.

    Returns ``(residual_blocks, per_rhs_max, backward_error)``; the residual
    blocks live on the diagonal owners, ready to be the next refinement
    right-hand side.
    """
    grid = dist.grid
    myrow, mycol = grid.coords(comm.rank)
    mloc = dist.local_rows(myrow).shape[0] if myrow < grid.nprow else 0
    scratch = FlopCounter()

    if mloc and x_cols.shape[0]:
        partial = PAloc @ x_cols
        abs_partial = np.abs(PAloc) @ np.abs(x_cols)
        # Charge before the reductions ship slices of these partials, so the
        # message timestamps include the matvec that produced them.
        comm.charge_flops(muladds=4.0 * mloc * x_cols.shape[0] * nrhs)
    else:
        partial = np.zeros((mloc, nrhs))
        abs_partial = np.zeros((mloc, nrhs))

    def add(a: Tuple[np.ndarray, np.ndarray], b: Tuple[np.ndarray, np.ndarray]):
        comm.charge_flops(muladds=float(a[0].size + a[1].size))
        return (a[0] + b[0], a[1] + b[1])

    residual_blocks: RhsBlocks = {}
    local_max = np.zeros(nrhs)
    local_wb = 0.0
    nb = dist.num_block_rows()
    for k in range(nb):
        if k % grid.nprow != myrow:
            continue
        g0, g1 = block_bounds(dist, k)
        kb = g1 - g0
        lr0 = (k // grid.nprow) * dist.block
        root = diag_owner(dist, k)
        acc = yield from reduce.co(
            comm,
            (partial[lr0 : lr0 + kb], abs_partial[lr0 : lr0 + kb]),
            add,
            root=root,
            group=grid.row_ranks(myrow),
            tag=(tag, "res", k),
            channel="row",
        )
        if comm.rank == root:
            pb_k = pb_blocks[k]
            r_k = pb_k - acc[0]
            denom = acc[1] + np.abs(pb_k)
            scratch.add_muladds(2.0 * kb * nrhs)
            residual_blocks[k] = r_k
            if r_k.size:
                local_max = np.maximum(local_max, np.max(np.abs(r_k), axis=0))
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratios = np.where(denom > 0.0, np.abs(r_k) / denom, 0.0)
                local_wb = max(local_wb, float(np.max(ratios)))
                scratch.add_divides(float(kb * nrhs))
                scratch.add_comparisons(2.0 * kb * nrhs)
    comm.charge_counter(scratch)

    def take_max(a: Tuple[np.ndarray, float], b: Tuple[np.ndarray, float]):
        comm.charge_flops(comparisons=float(nrhs + 1))
        return (np.maximum(a[0], b[0]), max(a[1], b[1]))

    global_max, global_wb = yield from allreduce.co(
        comm,
        (local_max, local_wb),
        take_max,
        tag=(tag, "stats"),
        channel="any",
    )
    return residual_blocks, np.asarray(global_max), float(global_wb)


@spmd_program
def pdgesv_rank(
    comm: Communicator,
    dist: BlockCyclic2D,
    LUloc: np.ndarray,
    PAloc: np.ndarray,
    pb_blocks: RhsBlocks,
    nrhs: int,
    max_iterations: int,
    tolerance: float,
    rhs_slo: Optional[np.ndarray] = None,
):
    """SPMD body of the distributed solve + refinement (one rank).

    ``pb_blocks`` holds the permuted right-hand-side blocks this rank
    diagonal-owns; the factorization's permutation has already been applied.
    Mirrors :func:`repro.core.solve.solve_with_refinement` step for step.

    ``rhs_slo`` (optional, length ``nrhs``) gives per-RHS max-abs residual
    targets: refinement continues while any right-hand side exceeds its
    target, even once the global backward error satisfies ``tolerance``.
    The targets are agreed on by the same all-reduce as the stop decision,
    so every rank stops at the same step.  ``None`` leaves the stopping
    rule exactly as before (bit-identical paths).
    """
    _, y_blocks = yield from pdtrsv_lower_unit.co(
        comm, dist, LUloc, pb_blocks, nrhs, tag=("fwd", 0)
    )
    x_cols, _ = yield from pdtrsv_upper.co(
        comm, dist, LUloc, y_blocks, nrhs, tag=("bwd", 0)
    )
    r_blocks, per_rhs, wb = yield from _distributed_residual(
        comm, dist, PAloc, pb_blocks, x_cols, nrhs, tag=("resid", 0)
    )
    residuals = [float(np.max(per_rhs)) if per_rhs.size else 0.0]
    per_rhs_hist = [per_rhs.tolist()]
    backward = [wb]
    iterations = 0

    def converged(wb_now: float, per_rhs_now: np.ndarray) -> bool:
        if wb_now > tolerance:
            return False
        if rhs_slo is not None and per_rhs_now.size:
            return bool(np.all(per_rhs_now <= rhs_slo))
        return True

    for it in range(1, max_iterations + 1):
        if converged(backward[-1], per_rhs):
            break
        _, dy_blocks = yield from pdtrsv_lower_unit.co(
            comm, dist, LUloc, r_blocks, nrhs, tag=("fwd", it)
        )
        dx_cols, _ = yield from pdtrsv_upper.co(
            comm, dist, LUloc, dy_blocks, nrhs, tag=("bwd", it)
        )
        x_cols += dx_cols
        comm.charge_flops(muladds=float(x_cols.size))
        r_blocks, per_rhs, wb = yield from _distributed_residual(
            comm, dist, PAloc, pb_blocks, x_cols, nrhs, tag=("resid", it)
        )
        iterations += 1
        residuals.append(float(np.max(per_rhs)) if per_rhs.size else 0.0)
        per_rhs_hist.append(per_rhs.tolist())
        backward.append(wb)

    # The solution blocks this rank diagonal-owns, read straight off the
    # column-broadcast copies — x_cols already holds every solved block
    # assigned to this grid column, so no separate per-block state is kept.
    grid = dist.grid
    x_blocks: RhsBlocks = {}
    for k in range(dist.num_block_rows()):
        if diag_owner(dist, k) == comm.rank:
            g0, g1 = block_bounds(dist, k)
            lc0 = (k // grid.npcol) * dist.block
            x_blocks[k] = x_cols[lc0 : lc0 + (g1 - g0)]
    return {
        "x_blocks": x_blocks,
        "residuals": residuals,
        "per_rhs": per_rhs_hist,
        "backward": backward,
        "iterations": iterations,
    }


def pdgesv(
    A: np.ndarray,
    b: np.ndarray,
    grid: Optional[ProcessGrid] = None,
    block_size: Optional[int] = None,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
    matmul: Optional[str] = None,
    refine: int = 2,
    tolerance: float = 1.0e-16,
    config: Optional[SolveConfig] = None,
) -> DistributedSolveResult:
    """Solve ``A x = b`` end to end on the virtual process grid.

    Parameters
    ----------
    A:
        Square ``n x n`` matrix.
    b:
        Right-hand side(s): an ``n``-vector or an ``n x nrhs`` matrix (the
        triangular solves are batched over the RHS block, so the message
        count does not grow with ``nrhs``).
    grid:
        The process grid; both the factorization and the solve run on it.
    block_size:
        Block size ``b`` of the 2-D block-cyclic distribution.
    local_kernel, kernel_tier, pivoting, matmul:
        Passed to the factorization (:func:`repro.parallel.pcalu.pcalu`);
        ``pivoting="pp"`` makes the factorization exactly
        :func:`repro.scalapack.pdgetrf.pdgetrf`; ``matmul`` selects the
        distributed-matmul backend of the trailing update.
    machine, engine:
        Machine model and virtual-MPI execution engine for *both* phases.
    refine:
        Maximum iterative-refinement steps (default 2, as in the paper).
    tolerance:
        Refinement stops once the componentwise backward error drops below
        this (default ``1e-16``, matching
        :func:`repro.core.solve.solve_with_refinement`).
    config:
        Optional :class:`~repro.core.options.SolveConfig` supplying defaults
        for every unset argument above (explicit arguments win), so
        ``pdgesv(A, b, config=cfg)`` runs the configuration as resolved.

    Returns
    -------
    DistributedSolveResult
    """
    grid, block_size, machine, engine, kernel_tier, pivoting, matmul = (
        _merge_config(
            config, grid, block_size, machine, engine, kernel_tier, pivoting,
            matmul,
        )
    )
    factor = pcalu_factor(
        A,
        grid,
        block_size,
        local_kernel=local_kernel,
        machine=machine,
        engine=engine,
        kernel_tier=kernel_tier,
        pivoting=pivoting,
        matmul=matmul,
    )
    return pdgesv_solve(
        factor,
        b,
        machine=machine,
        engine=engine,
        refine=refine,
        tolerance=tolerance,
    )


def pdgesv_solve(
    factor: FactoredMatrix,
    b: np.ndarray,
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    refine: int = 2,
    tolerance: float = 1.0e-16,
    rhs_slo: Optional[np.ndarray] = None,
    config: Optional[SolveConfig] = None,
) -> DistributedSolveResult:
    """Solve ``A x = b`` against an already-computed (possibly cached) factor.

    Skips refactorization entirely: applies the factor's row permutation to
    the right-hand sides, runs the two blocked distributed triangular sweeps
    and distributed iterative refinement on the factor's grid.  With the
    same right-hand sides and knobs this is bit-identical — solution,
    residual history and solve-phase trace — to the solve phase of a cold
    :func:`pdgesv` that produced ``factor``.

    Parameters
    ----------
    factor:
        The :class:`~repro.parallel.factor.FactoredMatrix` to solve against
        (from :func:`~repro.parallel.factor.pcalu_factor` or a
        :class:`~repro.harness.factor_cache.FactorCache` hit).
    b:
        Right-hand side(s): ``n``-vector or ``n x nrhs`` matrix; ``nrhs=0``
        is a valid empty batch and returns an empty solution.
    machine, engine:
        Machine model and execution engine for the solve phase (defaulting
        like :func:`pdgesv`; the factor records the engine that produced it
        but the solve may run on any engine — all three are bit-identical).
    refine, tolerance:
        Refinement budget and backward-error stop, as in :func:`pdgesv`.
    rhs_slo:
        Optional per-RHS max-abs residual targets (length ``nrhs``): the
        refinement loop keeps iterating, within ``refine``, while any
        right-hand side exceeds its target.  Used by the serving layer to
        honor per-request residual SLOs inside one coalesced sweep.
    config:
        Optional :class:`~repro.core.options.SolveConfig` supplying the
        solve-phase ``machine``/``engine`` defaults when the explicit
        arguments are unset.
    """
    if config is not None:
        if machine is None:
            machine = config.machine_model()
        if engine is None:
            engine = config.engine
    n = factor.n
    b = np.asarray(b, dtype=np.float64)
    one_d = b.ndim == 1
    B = b[:, None] if one_d else b
    if B.shape[0] != n:
        raise ValueError(
            f"right-hand side has {B.shape[0]} rows, expected {n}"
        )
    nrhs = B.shape[1]
    if rhs_slo is not None:
        rhs_slo = np.asarray(rhs_slo, dtype=np.float64)
        if rhs_slo.shape != (nrhs,):
            raise ValueError(
                f"rhs_slo has shape {rhs_slo.shape}, expected ({nrhs},)"
            )

    # Packed factors, permuted matrix and permuted RHS, redistributed
    # block-cyclically.  Working in the permuted row space throughout means
    # residuals and backward errors are computed rowwise on ``P A`` / ``P b``
    # — the same values as for ``A`` / ``b``, since both are row
    # permutations of the unpermuted quantities.
    grid = factor.grid
    pB = B[factor.perm, :]
    dist = BlockCyclic2D(n, n, factor.block_size, grid)
    LU_locals = dist.scatter(factor.packed)
    PA_locals = dist.scatter(factor.permuted)
    nb = dist.num_block_rows()
    pb_by_rank: Dict[int, RhsBlocks] = {r: {} for r in range(grid.size)}
    for k in range(nb):
        g0, g1 = block_bounds(dist, k)
        pb_by_rank[diag_owner(dist, k)][k] = np.ascontiguousarray(pB[g0:g1])

    def rank_fn(comm: Communicator):
        return (
            yield from pdgesv_rank.co(
                comm,
                dist,
                LU_locals[comm.rank],
                PA_locals[comm.rank],
                pb_by_rank[comm.rank],
                nrhs,
                refine,
                tolerance,
                rhs_slo,
            )
        )

    trace = run_spmd(grid.size, rank_fn, machine=machine, engine=engine)

    x = np.zeros((n, nrhs))
    for res in trace.results:
        for k, xk in res["x_blocks"].items():
            g0, g1 = block_bounds(dist, k)
            x[g0:g1] = xk
    first = trace.results[0]
    return DistributedSolveResult(
        x=x[:, 0] if one_d else x,
        residual_norms=first["residuals"],
        per_rhs_residuals=first["per_rhs"],
        backward_errors=first["backward"],
        iterations=first["iterations"],
        factorization=factor.source,
        trace=trace,
        factor=factor,
    )
