"""End-to-end distributed solution of ``A x = b`` (``PDGESV`` analogue).

This closes the factorization→solve gap: ``pcalu``/``pdgetrf`` produce
distributed factors, and the paper's accuracy story (Table 1, Section 6.1) is
defined on the *solution* — residuals and componentwise backward error after
iterative refinement.  :func:`pdgesv` chains

1. a distributed factorization (:func:`repro.parallel.pcalu.pcalu`, honoring
   the ``pivoting`` knob — with ``pivoting="pp"`` the factorization is
   bit-for-bit ScaLAPACK's PDGETRF — plus ``kernel_tier`` and both execution
   engines);
2. the row permutation applied to the right-hand sides (folded into the
   block-cyclic redistribution of ``b``: the driver knows the full pivot
   sequence once the factorization is gathered, so ``P b`` costs no
   messages — a real code would run PDLASWP on ``B`` at ``O(n)`` extra
   messages, which the analytic model deliberately excludes the same way);
3. two blocked distributed triangular solves
   (:mod:`repro.scalapack.pdtrsv`);
4. distributed iterative refinement: the residual ``r = P b - (P A) x`` and
   the componentwise denominator ``|P A| |x| + |P b|`` are computed from
   block-cyclic local pieces and reduced along process rows, the per-RHS
   max-abs residuals and the backward error are agreed on by a global
   all-reduce, and each correction is another pair of triangular solves —
   "usually after 2 iterative refinements, the componentwise backward error
   can be reduced to the order of 1e-16" (Section 6.1).

The solve phase's communication is exactly predicted by
:mod:`repro.models.solve_model`; the ``solve`` experiment spec
(``repro run solve``) checks the measured message counts against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..distsim.collectives import allreduce, reduce
from ..distsim.engine import ExecutionEngine
from ..distsim.engine.base import spmd_program
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.flops import FlopCounter
from ..layouts.block_cyclic import BlockCyclic2D
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from ..scalapack.pdtrsv import (
    RhsBlocks,
    block_bounds,
    diag_owner,
    pdtrsv_lower_unit,
    pdtrsv_upper,
)
from .driver import DistributedLUResult
from .pcalu import pcalu


@dataclass
class DistributedSolveResult:
    """Solution of ``A x = b`` computed by the distributed solver.

    Attributes
    ----------
    x:
        Computed solution (vector, or ``n x nrhs`` matrix of solutions).
    residual_norms:
        Largest residual entry ``max_ij |b - A x|_ij`` after the initial
        solve and after each refinement step — the same quantity (and list
        layout) as :class:`repro.core.solve.SolveResult`.
    per_rhs_residuals:
        Per right-hand side max-abs residuals, one ``nrhs``-vector per
        recorded step (``residual_norms[i] == max(per_rhs_residuals[i])``).
    backward_errors:
        Componentwise backward error ``max_i |r_i| / (|A||x| + |b|)_i`` after
        the initial solve and after each refinement step.
    iterations:
        Number of refinement steps actually performed.
    factorization:
        The distributed factorization consumed by the solve (its ``trace``
        prices the factorization phase).
    trace:
        Per-rank communication/computation trace of the *solve* phase only
        (triangular solves + refinement), so it can be validated against
        :func:`repro.models.solve_model.solve_message_counts`.
    """

    x: np.ndarray
    residual_norms: List[float]
    per_rhs_residuals: List[List[float]]
    backward_errors: List[float]
    iterations: int
    factorization: DistributedLUResult
    trace: RunTrace


def _distributed_residual(
    comm: Communicator,
    dist: BlockCyclic2D,
    PAloc: np.ndarray,
    pb_blocks: RhsBlocks,
    x_cols: np.ndarray,
    nrhs: int,
    tag: object,
):
    """Distributed residual and componentwise backward error (one rank's body).

    Every rank multiplies its local piece of the permuted matrix by the
    solution entries of its local columns (``P A x`` and ``|P A| |x|`` in one
    pass); the per-block-row slices are summed across each process row to the
    diagonal owners, which assemble the residual blocks
    ``r_k = (P b)_k - (P A x)_k`` and the componentwise ratios.  A final
    all-reduce over every rank agrees on the per-RHS max-abs residuals and the
    backward error, so refinement stops at the same step on all ranks.

    Returns ``(residual_blocks, per_rhs_max, backward_error)``; the residual
    blocks live on the diagonal owners, ready to be the next refinement
    right-hand side.
    """
    grid = dist.grid
    myrow, mycol = grid.coords(comm.rank)
    mloc = dist.local_rows(myrow).shape[0] if myrow < grid.nprow else 0
    scratch = FlopCounter()

    if mloc and x_cols.shape[0]:
        partial = PAloc @ x_cols
        abs_partial = np.abs(PAloc) @ np.abs(x_cols)
        # Charge before the reductions ship slices of these partials, so the
        # message timestamps include the matvec that produced them.
        comm.charge_flops(muladds=4.0 * mloc * x_cols.shape[0] * nrhs)
    else:
        partial = np.zeros((mloc, nrhs))
        abs_partial = np.zeros((mloc, nrhs))

    def add(a: Tuple[np.ndarray, np.ndarray], b: Tuple[np.ndarray, np.ndarray]):
        comm.charge_flops(muladds=float(a[0].size + a[1].size))
        return (a[0] + b[0], a[1] + b[1])

    residual_blocks: RhsBlocks = {}
    local_max = np.zeros(nrhs)
    local_wb = 0.0
    nb = dist.num_block_rows()
    for k in range(nb):
        if k % grid.nprow != myrow:
            continue
        g0, g1 = block_bounds(dist, k)
        kb = g1 - g0
        lr0 = (k // grid.nprow) * dist.block
        root = diag_owner(dist, k)
        acc = yield from reduce.co(
            comm,
            (partial[lr0 : lr0 + kb], abs_partial[lr0 : lr0 + kb]),
            add,
            root=root,
            group=grid.row_ranks(myrow),
            tag=(tag, "res", k),
            channel="row",
        )
        if comm.rank == root:
            pb_k = pb_blocks[k]
            r_k = pb_k - acc[0]
            denom = acc[1] + np.abs(pb_k)
            scratch.add_muladds(2.0 * kb * nrhs)
            residual_blocks[k] = r_k
            if r_k.size:
                local_max = np.maximum(local_max, np.max(np.abs(r_k), axis=0))
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratios = np.where(denom > 0.0, np.abs(r_k) / denom, 0.0)
                local_wb = max(local_wb, float(np.max(ratios)))
                scratch.add_divides(float(kb * nrhs))
                scratch.add_comparisons(2.0 * kb * nrhs)
    comm.charge_counter(scratch)

    def take_max(a: Tuple[np.ndarray, float], b: Tuple[np.ndarray, float]):
        comm.charge_flops(comparisons=float(nrhs + 1))
        return (np.maximum(a[0], b[0]), max(a[1], b[1]))

    global_max, global_wb = yield from allreduce.co(
        comm,
        (local_max, local_wb),
        take_max,
        tag=(tag, "stats"),
        channel="any",
    )
    return residual_blocks, np.asarray(global_max), float(global_wb)


@spmd_program
def pdgesv_rank(
    comm: Communicator,
    dist: BlockCyclic2D,
    LUloc: np.ndarray,
    PAloc: np.ndarray,
    pb_blocks: RhsBlocks,
    nrhs: int,
    max_iterations: int,
    tolerance: float,
):
    """SPMD body of the distributed solve + refinement (one rank).

    ``pb_blocks`` holds the permuted right-hand-side blocks this rank
    diagonal-owns; the factorization's permutation has already been applied.
    Mirrors :func:`repro.core.solve.solve_with_refinement` step for step.
    """
    _, y_blocks = yield from pdtrsv_lower_unit.co(
        comm, dist, LUloc, pb_blocks, nrhs, tag=("fwd", 0)
    )
    x_cols, _ = yield from pdtrsv_upper.co(
        comm, dist, LUloc, y_blocks, nrhs, tag=("bwd", 0)
    )
    r_blocks, per_rhs, wb = yield from _distributed_residual(
        comm, dist, PAloc, pb_blocks, x_cols, nrhs, tag=("resid", 0)
    )
    residuals = [float(np.max(per_rhs)) if per_rhs.size else 0.0]
    per_rhs_hist = [per_rhs.tolist()]
    backward = [wb]
    iterations = 0
    for it in range(1, max_iterations + 1):
        if backward[-1] <= tolerance:
            break
        _, dy_blocks = yield from pdtrsv_lower_unit.co(
            comm, dist, LUloc, r_blocks, nrhs, tag=("fwd", it)
        )
        dx_cols, _ = yield from pdtrsv_upper.co(
            comm, dist, LUloc, dy_blocks, nrhs, tag=("bwd", it)
        )
        x_cols += dx_cols
        comm.charge_flops(muladds=float(x_cols.size))
        r_blocks, per_rhs, wb = yield from _distributed_residual(
            comm, dist, PAloc, pb_blocks, x_cols, nrhs, tag=("resid", it)
        )
        iterations += 1
        residuals.append(float(np.max(per_rhs)) if per_rhs.size else 0.0)
        per_rhs_hist.append(per_rhs.tolist())
        backward.append(wb)

    # The solution blocks this rank diagonal-owns, read straight off the
    # column-broadcast copies — x_cols already holds every solved block
    # assigned to this grid column, so no separate per-block state is kept.
    grid = dist.grid
    x_blocks: RhsBlocks = {}
    for k in range(dist.num_block_rows()):
        if diag_owner(dist, k) == comm.rank:
            g0, g1 = block_bounds(dist, k)
            lc0 = (k // grid.npcol) * dist.block
            x_blocks[k] = x_cols[lc0 : lc0 + (g1 - g0)]
    return {
        "x_blocks": x_blocks,
        "residuals": residuals,
        "per_rhs": per_rhs_hist,
        "backward": backward,
        "iterations": iterations,
    }


def pdgesv(
    A: np.ndarray,
    b: np.ndarray,
    grid: ProcessGrid,
    block_size: int,
    local_kernel: str = "getf2",
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
    refine: int = 2,
    tolerance: float = 1.0e-16,
) -> DistributedSolveResult:
    """Solve ``A x = b`` end to end on the virtual process grid.

    Parameters
    ----------
    A:
        Square ``n x n`` matrix.
    b:
        Right-hand side(s): an ``n``-vector or an ``n x nrhs`` matrix (the
        triangular solves are batched over the RHS block, so the message
        count does not grow with ``nrhs``).
    grid:
        The process grid; both the factorization and the solve run on it.
    block_size:
        Block size ``b`` of the 2-D block-cyclic distribution.
    local_kernel, kernel_tier, pivoting:
        Passed to the factorization (:func:`repro.parallel.pcalu.pcalu`);
        ``pivoting="pp"`` makes the factorization exactly
        :func:`repro.scalapack.pdgetrf.pdgetrf`.
    machine, engine:
        Machine model and virtual-MPI execution engine for *both* phases.
    refine:
        Maximum iterative-refinement steps (default 2, as in the paper).
    tolerance:
        Refinement stops once the componentwise backward error drops below
        this (default ``1e-16``, matching
        :func:`repro.core.solve.solve_with_refinement`).

    Returns
    -------
    DistributedSolveResult
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("pdgesv expects a square matrix")
    n = A.shape[0]
    b = np.asarray(b, dtype=np.float64)
    one_d = b.ndim == 1
    B = b[:, None] if one_d else b
    if B.shape[0] != n:
        raise ValueError(
            f"right-hand side has {B.shape[0]} rows, expected {n}"
        )
    nrhs = B.shape[1]

    fact = pcalu(
        A,
        grid,
        block_size,
        local_kernel=local_kernel,
        machine=machine,
        engine=engine,
        kernel_tier=kernel_tier,
        pivoting=pivoting,
    )

    # Packed factors, permuted matrix and permuted RHS, redistributed
    # block-cyclically.  Working in the permuted row space throughout means
    # residuals and backward errors are computed rowwise on ``P A`` / ``P b``
    # — the same values as for ``A`` / ``b``, since both are row
    # permutations of the unpermuted quantities.
    packed = np.tril(fact.L, -1) + fact.U
    PA = A[fact.perm, :]
    pB = B[fact.perm, :]
    dist = BlockCyclic2D(n, n, block_size, grid)
    LU_locals = dist.scatter(packed)
    PA_locals = dist.scatter(PA)
    nb = dist.num_block_rows()
    pb_by_rank: Dict[int, RhsBlocks] = {r: {} for r in range(grid.size)}
    for k in range(nb):
        g0, g1 = block_bounds(dist, k)
        pb_by_rank[diag_owner(dist, k)][k] = np.ascontiguousarray(pB[g0:g1])

    def rank_fn(comm: Communicator):
        return (
            yield from pdgesv_rank.co(
                comm,
                dist,
                LU_locals[comm.rank],
                PA_locals[comm.rank],
                pb_by_rank[comm.rank],
                nrhs,
                refine,
                tolerance,
            )
        )

    trace = run_spmd(grid.size, rank_fn, machine=machine, engine=engine)

    x = np.zeros((n, nrhs))
    for res in trace.results:
        for k, xk in res["x_blocks"].items():
            g0, g1 = block_bounds(dist, k)
            x[g0:g1] = xk
    first = trace.results[0]
    return DistributedSolveResult(
        x=x[:, 0] if one_d else x,
        residual_norms=first["residuals"],
        per_rhs_residuals=first["per_rhs"],
        backward_errors=first["backward"],
        iterations=first["iterations"],
        factorization=fact,
        trace=trace,
    )
