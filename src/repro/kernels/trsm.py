"""Triangular solve kernels (BLAS ``TRSM`` analogues) with flop accounting.

CALU and the ScaLAPACK baseline both compute the block-row of ``U`` at every
iteration as ``U12 = L11^{-1} A12`` — a lower-unit-triangular solve with many
right-hand sides (``PDTRSM`` in ScaLAPACK).  These wrappers delegate the
arithmetic to :func:`scipy.linalg.solve_triangular` (i.e. LAPACK ``trtrs``)
and charge the standard ``m^2 n`` flop count.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_triangular

from .flops import FlopCounter, FlopFormulas


def trsm_lower_unit(
    L: np.ndarray,
    B: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Solve ``L X = B`` where ``L`` is lower triangular with unit diagonal.

    The strictly-lower part of ``L`` is used; the diagonal is assumed to be 1
    (it is not read), matching the packed-LU storage convention where the unit
    diagonal of ``L`` is implicit.
    """
    L = np.asarray(L, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    m = L.shape[0]
    if flops is not None:
        flops.add_muladds(FlopFormulas.trsm(m, B.shape[1] if B.ndim == 2 else 1))
    return solve_triangular(L, B, lower=True, unit_diagonal=True)


def trsm_upper(
    U: np.ndarray,
    B: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Solve ``U X = B`` where ``U`` is upper triangular (non-unit diagonal)."""
    U = np.asarray(U, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    m = U.shape[0]
    if flops is not None:
        flops.add_muladds(FlopFormulas.trsm(m, B.shape[1] if B.ndim == 2 else 1))
        flops.add_divides(float(m) * float(B.shape[1] if B.ndim == 2 else 1))
    return solve_triangular(U, B, lower=False, unit_diagonal=False)


def trsm_right_upper(
    U: np.ndarray,
    B: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Solve ``X U = B`` for ``X`` where ``U`` is upper triangular.

    Used to form the ``L`` block-column from a factored panel:
    ``L21 = A21 U11^{-1}``.
    """
    U = np.asarray(U, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    n = U.shape[0]
    if flops is not None:
        flops.add_muladds(FlopFormulas.trsm(n, B.shape[0]))
        flops.add_divides(float(n) * float(B.shape[0]))
    # X U = B  <=>  U^T X^T = B^T
    Xt = solve_triangular(U.T, B.T, lower=True, unit_diagonal=False)
    return Xt.T
