"""Kernel tier selection: reference Python loops vs. optimized LAPACK calls.

The numerical kernels of this package come in *tiers*:

``reference``
    The original per-column Python loops.  Every stability quantity the paper
    measures (growth histories, pivot thresholds) is recorded by this tier,
    and its results define the bit-exact behaviour all other tiers are
    validated against.

``lapack``
    Large factorizations are delegated to ``scipy.linalg.lapack.dgetrf`` with
    closed-form flop/comparison accounting (see
    :class:`~repro.kernels.flops.FlopFormulas`).  The factor entries agree to
    rounding but are *not* bit-identical, because LAPACK scales multipliers
    by a precomputed reciprocal and vendor BLAS uses FMA in the rank-1
    update.  Pivot choices match the reference tier on every tested input
    (LAPACK's ``IDAMAX`` breaks ties towards the first maximum exactly like
    ``numpy.argmax``) — but because the compared trailing entries are
    rounded differently, an adversarial near-tie within ~1 ulp could in
    principle flip a pivot; this tier is therefore used only where the pivot
    *order* flows onward (tournament leaves, plain factorizations), the
    agreement is enforced by ``tests/test_kernels_tiers.py``, and call sites
    where bits are contractual (tournament merges, growth tracking,
    threshold recording) always pin the reference tier instead.

``auto`` (the default)
    Resolves to ``lapack`` whenever SciPy's LAPACK bindings are importable
    and the caller did not request stability recording; falls back to
    ``reference`` otherwise.  (SciPy is a hard dependency of the TRSM
    kernels in this package, so in practice the fallback only triggers in
    stripped-down environments where :mod:`repro.kernels` is vendored
    piecemeal.)

Selection, in order of precedence:

1. per call: ``getf2(A, kernel_tier="lapack")`` (also threaded through
   ``tournament_pivoting``, ``tslu``, ``calu``, ``ptslu``, ``pcalu``);
2. process-wide: :func:`set_kernel_tier` / the :func:`kernel_tier` context
   manager;
3. environment: ``REPRO_KERNEL_TIER``;
4. default: ``auto``.

Kernels that record stability quantities (``track_growth=``,
``compute_thresholds=``) force the reference tier regardless of the knob, so
the paper's stability experiments are bit-identical no matter how the process
is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..core.options import Option, UnknownOptionError, register_option

#: Recognised tier names.
TIERS = ("auto", "reference", "lapack")

#: Tier used when neither a per-call argument, a process-wide override, nor
#: the environment variable is given.
DEFAULT_TIER = "auto"

#: Environment variable consulted by :func:`get_kernel_tier`.
ENV_VAR = "REPRO_KERNEL_TIER"

try:  # pragma: no cover - exercised implicitly by every tier resolution
    from scipy.linalg import lapack as _scipy_lapack

    HAVE_LAPACK = hasattr(_scipy_lapack, "dgetrf")
except Exception:  # pragma: no cover - scipy missing or broken
    _scipy_lapack = None
    HAVE_LAPACK = False

def lapack_module():
    """Return the ``scipy.linalg.lapack`` module (None when unavailable)."""
    return _scipy_lapack


def _validate(tier: str) -> str:
    if tier not in TIERS:
        raise UnknownOptionError("kernel tier", tier, list(TIERS))
    return tier


#: The kernel-tier knob, registered into the shared configuration subsystem
#: (:mod:`repro.core.options`): the functions below are thin delegations to
#: its precedence machinery (explicit > ambient > ``REPRO_KERNEL_TIER`` >
#: "auto").  The tier-specific semantics — ``force_reference`` and the
#: ``auto`` -> ``lapack``/``reference`` degradation — stay here, applied
#: *after* the shared precedence rule picks a tier name.
OPTION = register_option(
    Option(
        name="kernel_tier",
        kind="kernel tier",
        env_var=ENV_VAR,
        default=DEFAULT_TIER,
        validate=_validate,
    )
)


def available_tiers() -> list:
    """Tier names usable in this process (``lapack`` requires SciPy)."""
    return [t for t in TIERS if t != "lapack" or HAVE_LAPACK]


def get_kernel_tier() -> str:
    """The process-wide kernel tier (override > ``REPRO_KERNEL_TIER`` > auto)."""
    return OPTION.get()


def set_kernel_tier(tier: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide kernel tier override."""
    OPTION.set(tier)


@contextmanager
def kernel_tier(tier: str) -> Iterator[None]:
    """Context manager scoping a process-wide tier override."""
    with OPTION.context(tier):
        yield


def resolve_tier(tier: Optional[str] = None, force_reference: bool = False) -> str:
    """Resolve a per-call ``kernel_tier=`` argument to ``reference``/``lapack``.

    ``force_reference`` is set by kernels when the caller requested stability
    recording (growth histories, pivot thresholds): those paths must replay
    the reference arithmetic bit-for-bit, so every other tier is overridden.
    An explicit ``"lapack"`` request without SciPy raises; ``"auto"`` degrades
    silently.
    """
    if force_reference:
        return "reference"
    name = OPTION.resolve(tier)
    if name == "auto":
        return "lapack" if HAVE_LAPACK else "reference"
    if name == "lapack" and not HAVE_LAPACK:
        raise RuntimeError(
            "kernel tier 'lapack' requested but scipy.linalg.lapack is not available"
        )
    return name
