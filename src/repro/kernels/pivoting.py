"""Permutation and pivot-vector utilities shared by the LU kernels.

Two representations are used throughout the package:

* an *ipiv* vector (LAPACK convention): ``ipiv[k] = r`` means that at step
  ``k`` row ``k`` was swapped with row ``r`` (``r >= k``);
* a *permutation* vector ``perm``: ``perm[i]`` is the original index of the
  row that ends up in position ``i``, i.e. ``PA = A[perm, :]``.

The helpers below convert between the two, compose permutations, and build
explicit permutation matrices for verification.
"""

from __future__ import annotations

import numpy as np


def ipiv_to_perm(ipiv: np.ndarray, m: int) -> np.ndarray:
    """Convert a LAPACK-style swap sequence into a row permutation of length ``m``.

    Parameters
    ----------
    ipiv:
        Sequence of swap targets; ``ipiv[k]`` is swapped with row ``k``.
    m:
        Total number of rows of the matrix the swaps act on.

    Returns
    -------
    numpy.ndarray
        Integer vector ``perm`` such that applying the swaps to ``A`` gives
        ``A[perm, :]``.
    """
    perm = np.arange(m, dtype=np.int64)
    for k, r in enumerate(np.asarray(ipiv, dtype=np.int64)):
        if r != k:
            perm[[k, r]] = perm[[r, k]]
    return perm


def perm_to_matrix(perm: np.ndarray) -> np.ndarray:
    """Return the dense permutation matrix ``P`` with ``P @ A == A[perm, :]``."""
    perm = np.asarray(perm, dtype=np.int64)
    m = perm.shape[0]
    P = np.zeros((m, m))
    P[np.arange(m), perm] = 1.0
    return P


def invert_perm(perm: np.ndarray) -> np.ndarray:
    """Return the inverse permutation of ``perm``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def compose_perms(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Compose two permutations: applying ``inner`` first, then ``outer``.

    If ``B = A[inner, :]`` and ``C = B[outer, :]`` then
    ``C = A[compose_perms(outer, inner), :]``.
    """
    inner = np.asarray(inner, dtype=np.int64)
    outer = np.asarray(outer, dtype=np.int64)
    return inner[outer]


def extend_perm(perm: np.ndarray, m: int, offset: int = 0) -> np.ndarray:
    """Embed a permutation of a contiguous row range into an identity of size ``m``.

    The rows ``offset .. offset+len(perm)-1`` are permuted according to
    ``perm`` (whose entries are relative to ``offset``); all other rows are
    fixed.  This implements the paper's "extended by the appropriate identity
    matrices" convention for the tournament permutations.
    """
    perm = np.asarray(perm, dtype=np.int64)
    full = np.arange(m, dtype=np.int64)
    full[offset : offset + perm.shape[0]] = offset + perm
    return full


def is_permutation(perm: np.ndarray) -> bool:
    """Return True if ``perm`` is a permutation of ``0..len(perm)-1``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    return np.array_equal(np.sort(perm), np.arange(perm.shape[0]))


def apply_ipiv(A: np.ndarray, ipiv: np.ndarray, forward: bool = True) -> np.ndarray:
    """Apply (or undo) a LAPACK-style swap sequence to the rows of ``A`` in place.

    Parameters
    ----------
    A:
        Matrix whose rows are swapped (modified in place and returned).
    ipiv:
        Swap sequence as produced by :func:`repro.kernels.getf2.getf2`.
    forward:
        If True apply the swaps in order (k = 0, 1, ...); if False apply them
        in reverse order, undoing a previous forward application.
    """
    ipiv = np.asarray(ipiv, dtype=np.int64)
    indices = range(len(ipiv)) if forward else range(len(ipiv) - 1, -1, -1)
    for k in indices:
        r = ipiv[k]
        if r != k:
            A[[k, r], :] = A[[r, k], :]
    return A
