"""Matrix-multiply update kernels (BLAS ``GEMM`` analogues) with flop accounting.

The trailing-matrix update of every right-looking LU algorithm —
``A22 <- A22 - L21 @ U12`` — is a GEMM.  Both CALU and the simulated
ScaLAPACK baseline charge its ``2 m n k`` flops through these wrappers so the
arithmetic ledgers are directly comparable with Equations (2) and (3) of the
paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .flops import FlopCounter, FlopFormulas


def gemm(
    A: np.ndarray,
    B: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Return ``A @ B`` charging ``2 m n k`` multiply/adds."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if flops is not None:
        k = A.shape[1]
        flops.add_muladds(FlopFormulas.gemm(A.shape[0], B.shape[1], k))
    return A @ B


def gemm_update(
    C: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    alpha: float = -1.0,
    flops: Optional[FlopCounter] = None,
    work: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Perform ``C <- C + alpha * A @ B`` in place and return ``C``.

    This is the trailing-matrix (Schur complement) update.  ``C`` must be a
    writable array; the update is done without allocating a second copy of
    ``C`` (only the product is materialised), following the in-place guidance
    of the HPC style guides.  ``work`` — an optional flat, contiguous float64
    buffer of at least ``C.size`` elements — receives the product instead of
    a fresh allocation, letting drivers reuse one workspace across panels.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if flops is not None:
        flops.add_muladds(FlopFormulas.gemm(C.shape[0], C.shape[1], A.shape[1]))
    if work is not None and work.size >= C.size and C.ndim == 2:
        prod = np.matmul(A, B, out=work[: C.size].reshape(C.shape))
    else:
        prod = A @ B
    if alpha == -1.0:
        C -= prod
    elif alpha == 1.0:
        C += prod
    else:
        C += alpha * prod
    return C
