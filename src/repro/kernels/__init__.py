"""Sequential dense linear-algebra kernels with explicit flop accounting.

These are the building blocks every higher-level algorithm in the package is
assembled from: unblocked and recursive panel LU, blocked LU, row swaps,
triangular solves and matrix-multiply updates.  They correspond to the
LAPACK/BLAS routines named in the paper (DGETF2, RGETF2, DGETRF, DLASWP,
DTRSM, DGEMM).
"""

from .batched import BatchedLUResult, getf2_batched, slab_flop_counters
from .flops import FlopCounter, FlopFormulas
from .gemm import gemm, gemm_update
from .getf2 import LUResult, getf2, lu_reconstruct, split_lu
from .getrf import BlockedLUResult, getrf_blocked, getrf_partial_pivoting
from .laswp import apply_row_permutation, laswp, permute_rows_inplace
from .pivoting import (
    apply_ipiv,
    compose_perms,
    extend_perm,
    invert_perm,
    ipiv_to_perm,
    is_permutation,
    perm_to_matrix,
)
from .rgetf2 import rgetf2
from .rrqr import (
    DEFAULT_TAU,
    PRRPPanel,
    RRQRResult,
    prrp_panel,
    rrqr,
    select_rows_rrqr,
)
from .tiers import (
    available_tiers,
    get_kernel_tier,
    kernel_tier,
    resolve_tier,
    set_kernel_tier,
)
from .trsm import trsm_lower_unit, trsm_right_upper, trsm_upper

__all__ = [
    "rrqr",
    "select_rows_rrqr",
    "prrp_panel",
    "RRQRResult",
    "PRRPPanel",
    "DEFAULT_TAU",
    "FlopCounter",
    "FlopFormulas",
    "LUResult",
    "BatchedLUResult",
    "BlockedLUResult",
    "getf2_batched",
    "slab_flop_counters",
    "available_tiers",
    "get_kernel_tier",
    "kernel_tier",
    "set_kernel_tier",
    "resolve_tier",
    "permute_rows_inplace",
    "getf2",
    "rgetf2",
    "getrf_blocked",
    "getrf_partial_pivoting",
    "split_lu",
    "lu_reconstruct",
    "laswp",
    "apply_row_permutation",
    "gemm",
    "gemm_update",
    "trsm_lower_unit",
    "trsm_upper",
    "trsm_right_upper",
    "ipiv_to_perm",
    "perm_to_matrix",
    "invert_perm",
    "compose_perms",
    "extend_perm",
    "is_permutation",
    "apply_ipiv",
]
