"""Batched LU with partial pivoting over a stack of equally-shaped blocks.

The ca-pivoting tournament multiplies the number of small (``2b x b``)
factorizations by ``P log P`` per panel: every reduction round of
:func:`~repro.core.tournament.tournament_pivoting` performs ``P/2``
independent merges (``pow2`` redundant merges per butterfly level), and the
leaf step performs ``P`` independent block factorizations.  Running each of
those through the per-column Python loop of
:func:`~repro.kernels.getf2.getf2` makes the *local arithmetic* the wall
clock bottleneck once the communication side is simulated by the event
engine.

:func:`getf2_batched` eliminates that overhead by broadcasting the reference
elimination over a batch axis: one ``argmax`` per column finds all slab
pivots at once, one broadcast divide scales all multiplier columns, and one
broadcast multiply-subtract applies all rank-1 updates.  Because every
elementwise operation is the same IEEE operation the sequential loop
performs (division, multiply, subtract — numpy ufuncs never fuse them), the
factors, pivot choices (``argmax`` keeps the first maximum, like the loop)
and singularity handling are **bit-identical** per slab to running
:func:`~repro.kernels.getf2.getf2` on each block separately.  That is the
property the tournament needs: a batched reduction round returns exactly the
winners and ``U`` factor the sequential merges would.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from .flops import FlopCounter, FlopFormulas
from .pivoting import ipiv_to_perm


class BatchedLUResult(NamedTuple):
    """Result of a batched in-place LU factorization.

    Attributes
    ----------
    lu:
        ``nb x m x n`` stack of packed factors (same convention as
        :class:`~repro.kernels.getf2.LUResult`).
    ipiv:
        ``nb x k`` LAPACK-style swap vectors, ``k = min(m, n)``.
    perm:
        ``nb x m`` full row permutations (``stack[i][perm[i], :] = L_i U_i``).
    singular:
        ``nb`` booleans; True where a zero pivot was encountered.
    zero_columns:
        ``nb x k`` booleans marking the columns whose pivot was exactly zero
        (the columns the reference loop skips); used for exact per-slab flop
        accounting.
    """

    lu: np.ndarray
    ipiv: np.ndarray
    perm: np.ndarray
    singular: np.ndarray
    zero_columns: np.ndarray


def getf2_batched(
    stack: np.ndarray,
    flops: Optional[FlopCounter] = None,
    overwrite: bool = False,
) -> BatchedLUResult:
    """Factor every slab of an ``nb x m x n`` stack with partial pivoting.

    Bit-identical, slab for slab, to calling
    :func:`~repro.kernels.getf2.getf2` on each ``stack[i]`` with the
    reference tier — including pivot tie-breaking and the skip-and-continue
    handling of exactly singular columns.  ``flops`` is charged with the sum
    of the per-slab reference counts (use :func:`slab_flop_counters` when the
    per-slab split is needed).
    """
    A = np.array(stack, dtype=np.float64, copy=not overwrite)
    if A.ndim != 3:
        raise ValueError("getf2_batched expects an nb x m x n stack")
    nb, m, n = A.shape
    k = min(m, n)
    ipiv = np.empty((nb, k), dtype=np.int64)
    zero_columns = np.zeros((nb, k), dtype=bool)
    bidx = np.arange(nb)
    # Flat workspace for the rank-1 products: sliced-and-reshaped views stay
    # C-contiguous, so the multiply writes sequentially and nothing is
    # allocated per column.
    work = np.empty(nb * (m - 1) * (n - 1)) if (m > 1 and n > 1) else None
    total_muladds = 0
    total_divides = 0

    for j in range(k):
        # Pivot search in column j of every slab (first maximum, like argmax
        # in the sequential loop).
        p = np.argmax(np.abs(A[:, j:, j]), axis=1)
        p += j
        ipiv[:, j] = p
        piv = A[bidx, p, j]
        zero = piv == 0.0
        any_zero = bool(zero.any())

        # Swap rows j and p in the slabs that need it (zero-pivot slabs skip
        # the swap, exactly like the reference loop's ``continue``).
        do = p != j
        if any_zero:
            zero_columns[:, j] = zero
            do &= ~zero
        if do.any():
            src = bidx[do]
            rows = p[do]
            buf = A[src, rows, :]  # fancy indexing already yields a copy
            A[src, rows, :] = A[src, j, :]
            A[src, j, :] = buf

        if j < m - 1:
            if not any_zero:
                nlive = nb
                cols = A[:, j + 1 :, j]
                cols /= piv[:, None]
                if j < n - 1:
                    w = work[: nb * (m - j - 1) * (n - j - 1)].reshape(
                        nb, m - j - 1, n - j - 1
                    )
                    # One rounded multiply per element, then a rounded
                    # subtract — the exact operation pair of the reference
                    # rank-1 update (einsum with distinct output subscripts
                    # never accumulates).
                    np.einsum("bi,bo->bio", cols, A[:, j, j + 1 :], out=w)
                    A[:, j + 1 :, j + 1 :] -= w
            else:
                live = np.flatnonzero(~zero)
                nlive = live.shape[0]
                if nlive:
                    A[live, j + 1 :, j] /= piv[live, None]
                    if j < n - 1:
                        A[live, j + 1 :, j + 1 :] -= (
                            A[live, j + 1 :, j, None] * A[live, None, j, j + 1 :]
                        )
            if nlive:
                total_divides += nlive * (m - j - 1)
                if j < n - 1:
                    total_muladds += 2 * nlive * (m - j - 1) * (n - j - 1)

    if flops is not None:
        # Comparisons are charged for every column of every slab, like the
        # reference loop; divides/muladds only for non-singular columns.
        flops.add_comparisons(float(nb * (k * (m - 1) - k * (k - 1) // 2)))
        flops.add_divides(float(total_divides))
        flops.add_muladds(float(total_muladds))

    return BatchedLUResult(
        lu=A,
        ipiv=ipiv,
        perm=_batched_ipiv_to_perm(ipiv, m),
        singular=zero_columns.any(axis=1),
        zero_columns=zero_columns,
    )


def _batched_ipiv_to_perm(ipiv: np.ndarray, m: int) -> np.ndarray:
    """Vectorized :func:`~repro.kernels.pivoting.ipiv_to_perm` over a batch.

    One small vectorized swap per column instead of ``nb`` Python loops.
    """
    nb, k = ipiv.shape
    perm = np.tile(np.arange(m, dtype=np.int64), (nb, 1))
    bidx = np.arange(nb)
    for j in range(k):
        r = ipiv[:, j]
        sel = r != j
        if sel.any():
            rows = bidx[sel]
            rs = r[sel]
            tmp = perm[rows, j]  # fancy indexing copies
            perm[rows, j] = perm[rows, rs]
            perm[rows, rs] = tmp
    return perm


def slab_flop_counters(
    m: int, n: int, zero_columns: np.ndarray
) -> List[FlopCounter]:
    """Per-slab reference flop counts for a batched factorization.

    ``zero_columns`` is the array returned by :func:`getf2_batched`; each
    returned counter equals what :func:`~repro.kernels.getf2.getf2` would
    have charged for that slab alone.
    """
    zero_columns = np.asarray(zero_columns, dtype=bool)
    return [
        FlopFormulas.getf2_exact(m, n, np.flatnonzero(zc)) for zc in zero_columns
    ]


def batch_by_shape(blocks: Sequence[np.ndarray]) -> List[List[int]]:
    """Group block indices by shape, preserving first-seen order of shapes.

    Only groups with at least one row and one column are returned; callers
    handle degenerate blocks through the sequential path.
    """
    groups: dict = {}
    for i, blk in enumerate(blocks):
        if blk.shape[0] == 0 or blk.shape[1] == 0:
            continue
        groups.setdefault(blk.shape, []).append(i)
    return list(groups.values())
