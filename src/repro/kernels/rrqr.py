"""Strong rank-revealing QR: the panel selection kernel of CALU_PRRP.

Khabou, Demmel, Grigori and Gu ("LU factorization with panel rank revealing
pivoting and its communication avoiding version", arXiv:1208.2451) replace the
partial-pivoting selection inside the ca-pivoting tournament with a *strong
rank-revealing QR* (Gu-Eisenstat) of the transposed block: to pick ``b`` pivot
rows of an ``m x b`` block ``W``, factor

    W^T P  =  Q [R11 R12],        P a column permutation of W^T,

where the strong-RRQR column threshold ``tau`` guarantees

    max |R11^{-1} R12|  <=  tau.

The selected columns of ``W^T`` are rows of ``W``; writing ``P^T W = [W1; W2]``
(``W1`` the selected rows) gives ``W1 = (Q R11)^T`` and

    L21 = W2 W1^{-1} = W2 (Q R11)^{-T} = (R11^{-1} R12)^T,

so every multiplier of the panel elimination is bounded by ``tau`` — the bound
behind PRRP's ``(1 + 2b)^(n/b)`` worst-case growth, versus ``2^(n-1)`` for
partial pivoting and ``2^(n(log2 P + 1))``-ish for plain ca-pivoting.

This module provides the factorization (:func:`rrqr`), the row-selection
wrapper the tournament uses (:func:`select_rows_rrqr`) and the full panel form
(:func:`prrp_panel`) with ``L21 = A21 (Q R11)^{-1}`` available directly from
the interaction matrix, no triangular solve against the panel required.

Everything here is plain NumPy (reference arithmetic, deterministic
tie-breaking towards the lowest index) so the selection is reproducible
bit-for-bit across kernel tiers and execution engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .flops import FlopCounter

#: Default strong-RRQR column threshold.  ``tau >= 1`` is required for the
#: swap loop to terminate; the Khabou et al. experiments use a small constant
#: (their ``f``); 2.0 keeps every PRRP multiplier at most 2 in magnitude.
DEFAULT_TAU = 2.0

#: Hard cap on Gu-Eisenstat strengthening swaps (each swap grows
#: ``|det(R11)|`` by at least ``tau``, so ``~n log(kappa)/log(tau)`` bounds the
#: count; in practice QR-with-column-pivoting already satisfies the threshold
#: and zero swaps are performed).
MAX_SWAPS_PER_COLUMN = 8


@dataclass
class RRQRResult:
    """A (strong) rank-revealing QR factorization of ``A``.

    With the default ``k = min(m, n)`` the factorization is complete:
    ``A[:, perm] = Q @ R`` exactly.  With a smaller requested ``k`` only the
    first ``k`` reflector steps run, so the result is *partial*: the selected
    columns are still exact (``A[:, perm[:k]] = Q @ R[:, :k]``), while the
    trailing columns of ``R`` hold their projection onto ``range(Q)`` only —
    ``interaction`` is then the projected interaction matrix, which is the
    bound quantity of strong RRQR only when ``k >= rank(A)``.

    Attributes
    ----------
    Q:
        ``m x k`` matrix with orthonormal columns.
    R:
        ``k x n`` upper-triangular (trapezoidal) factor.
    perm:
        Column permutation (global indices into the original columns); the
        first ``k`` entries are the selected columns in selection order.
    k:
        Number of factored columns.
    swaps:
        Number of Gu-Eisenstat strengthening swaps performed beyond plain QR
        with column pivoting (0 in the overwhelmingly common case).
    interaction:
        ``R11^{-1} R12`` (``k x (n-k)``), the matrix the strong-RRQR
        threshold bounds; ``None`` when ``n == k`` or ``R11`` is singular.
    """

    Q: np.ndarray
    R: np.ndarray
    perm: np.ndarray
    k: int
    swaps: int
    interaction: Optional[np.ndarray]


def _householder_qr(
    A: np.ndarray, k: int, flops: Optional[FlopCounter], pivot: bool = True
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder QR of ``A``, optionally with column pivoting (Businger-Golub).

    Returns ``(Q, R, perm)`` with ``A[:, perm] = Q @ R`` and (when ``pivot``)
    the first ``k`` columns chosen greedily by trailing norm.  Ties break
    towards the lowest column index (``np.argmax`` semantics), which keeps the
    selection deterministic and matches the tie-breaking of the
    partial-pivoting kernels.
    """
    m, n = A.shape
    R = np.array(A, dtype=np.float64)
    Q = np.eye(m, dtype=np.float64)
    perm = np.arange(n, dtype=np.int64)

    for j in range(k):
        if pivot:
            # Greedy pivot: trailing column with the largest norm below row j.
            tails = R[j:, j:]
            norms2 = np.einsum("ij,ij->j", tails, tails)
            if flops is not None:
                flops.add_muladds(2.0 * tails.size)
                flops.add_comparisons(float(max(norms2.size - 1, 0)))
            p = j + int(np.argmax(norms2))
            if p != j:
                R[:, [j, p]] = R[:, [p, j]]
                perm[[j, p]] = perm[[p, j]]
            col_norm2 = float(norms2[p - j])
        else:
            col_norm2 = float(R[j:, j] @ R[j:, j])
            if flops is not None:
                flops.add_muladds(2.0 * (m - j))
        if col_norm2 == 0.0:
            if pivot:
                # Remaining columns are exactly zero: R is already triangular.
                break
            continue
        # Householder reflector annihilating R[j+1:, j].
        x = R[j:, j]
        alpha = -np.sign(x[0]) * np.sqrt(col_norm2) if x[0] != 0.0 else -np.sqrt(
            col_norm2
        )
        v = x.copy()
        v[0] -= alpha
        vnorm2 = float(v @ v)
        if vnorm2 > 0.0:
            w = (2.0 / vnorm2) * (v @ R[j:, j:])
            R[j:, j:] -= np.outer(v, w)
            wq = (2.0 / vnorm2) * (Q[:, j:] @ v)
            Q[:, j:] -= np.outer(wq, v)
            if flops is not None:
                # Per reflector: v@v, the two matrix-vector products AND the
                # two rank-1 updates (2 ops per touched element each), plus
                # the two scalings by 2/vnorm2.
                flops.add_muladds(
                    2.0 * (m - j)
                    + 4.0 * (m - j) * (n - j)
                    + 4.0 * m * (m - j)
                    + (n - j)
                    + m
                )
                flops.add_divides(1.0)
        R[j, j] = alpha
        R[j + 1 :, j] = 0.0
    return Q[:, :k], R[:k, :], perm


def _interaction(R: np.ndarray, k: int) -> Optional[np.ndarray]:
    """``R11^{-1} R12`` (None when there is no R12 or R11 is singular)."""
    if R.shape[1] <= k:
        return None
    R11 = R[:k, :k]
    if np.any(np.diagonal(R11) == 0.0):
        return None
    from scipy.linalg import solve_triangular

    return solve_triangular(R11, R[:k, k:], lower=False)


def rrqr(
    A: np.ndarray,
    k: Optional[int] = None,
    tau: float = DEFAULT_TAU,
    flops: Optional[FlopCounter] = None,
) -> RRQRResult:
    """Strong rank-revealing QR of ``A`` with column threshold ``tau``.

    First a QR with column pivoting, then Gu-Eisenstat strengthening: while
    some entry of ``R11^{-1} R12`` exceeds ``tau`` in magnitude, the offending
    column pair is swapped and the factorization recomputed (each swap grows
    ``|det(R11)|`` by at least that entry's magnitude ``> tau >= 1``, so the
    loop terminates).  With ``tau >= 1`` QR-with-column-pivoting almost always
    satisfies the bound outright and the loop body never runs.

    Parameters
    ----------
    A:
        ``m x n`` real matrix.
    k:
        Number of columns to reveal (default ``min(m, n)``).
    tau:
        Column threshold (``>= 1``).
    flops:
        Optional flop counter (muladds for reflections/norms, comparisons for
        the pivot searches).
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("rrqr expects a 2-D matrix")
    if tau < 1.0:
        raise ValueError(f"strong-RRQR threshold tau must be >= 1, got {tau}")
    m, n = A.shape
    k = min(m, n) if k is None else min(k, m, n)

    Q, R, perm = _householder_qr(A, k, flops, pivot=True)
    swaps = 0
    max_swaps = MAX_SWAPS_PER_COLUMN * max(k, 1)
    inter = _interaction(R, k)
    while inter is not None and swaps < max_swaps:
        i, j = np.unravel_index(int(np.argmax(np.abs(inter))), inter.shape)
        if abs(inter[i, j]) <= tau:
            break
        # Swap the weak selected column with the strong rejected one and
        # refactor the permuted matrix without re-pivoting (blocks here are
        # small — b x 2b at most in the tournament — so a fresh QR is cheaper
        # than the textbook update formulas and stays bit-deterministic).
        perm[[i, k + j]] = perm[[k + j, i]]
        Q, R, _ = _householder_qr(A[:, perm], k, flops, pivot=False)
        swaps += 1
        inter = _interaction(R, k)
    return RRQRResult(Q=Q, R=R, perm=perm, k=k, swaps=swaps, interaction=inter)


def select_rows_rrqr(
    block: np.ndarray,
    nselect: int,
    tau: float = DEFAULT_TAU,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Indices of up to ``nselect`` pivot rows of ``block``, by strong RRQR.

    The selection kernel of CALU_PRRP's tournament: rows of ``block`` are
    columns of ``block.T``, so a strong RRQR of the transpose picks the rows
    whose span best represents the block — with every discarded row within
    ``tau`` of the selected ones in the ``L21`` sense.  Returns local row
    indices in selection order (the order they must occupy at the top of the
    panel).
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2:
        raise ValueError("select_rows_rrqr expects a 2-D block")
    k = min(nselect, block.shape[0])
    if k == 0:
        return np.empty(0, dtype=np.int64)
    res = rrqr(block.T, k=k, tau=tau, flops=flops)
    return np.asarray(res.perm[:k], dtype=np.int64)


@dataclass
class PRRPPanel:
    """The LU_PRRP panel form of an ``m x b`` block ``W``.

    ``W[perm] = [W1; W2]`` with ``W2 = L21 @ W1``: the selected rows ``W1``
    carry the panel, every eliminated row is a ``tau``-bounded combination of
    them.  ``L21`` is read straight off the strong RRQR of ``W^T``
    (``L21 = W2 W1^{-1} = A21 (Q R11)^{-1}`` in the notation of the paper,
    i.e. the transposed interaction matrix) — no triangular solve against the
    panel is performed.
    """

    perm: np.ndarray
    W1: np.ndarray
    L21: np.ndarray
    tau: float
    swaps: int

    def reconstruct(self) -> np.ndarray:
        """``[W1; L21 @ W1]`` — equals ``W[perm]`` up to rounding."""
        return np.vstack([self.W1, self.L21 @ self.W1])


def prrp_panel(
    W: np.ndarray,
    b: Optional[int] = None,
    tau: float = DEFAULT_TAU,
    flops: Optional[FlopCounter] = None,
) -> PRRPPanel:
    """Factor a panel in the LU_PRRP form: select rows, read off ``L21``.

    Parameters
    ----------
    W:
        The ``m x b`` panel.
    b:
        Number of rows to select — the panel width (the default), or at
        least ``min(m, width)``.  Selecting *fewer* rows than the panel has
        columns cannot represent the eliminated rows exactly (``W2`` then
        generally lies outside the row span of ``W1``), so it is rejected.
    tau:
        Strong-RRQR column threshold; guarantees ``max |L21| <= tau`` whenever
        the selected block is nonsingular.
    """
    W = np.asarray(W, dtype=np.float64)
    m, width = W.shape
    if b is not None and b < min(m, width):
        raise ValueError(
            f"prrp_panel must select at least min(m, width) = {min(m, width)} "
            f"rows of a {m} x {width} panel, got b={b}; a narrower selection "
            "cannot factor the panel (use select_rows_rrqr for selection only)"
        )
    k = min(b if b is not None else width, m)
    res = rrqr(W.T, k=k, tau=tau, flops=flops)
    selected = np.asarray(res.perm[:k], dtype=np.int64)
    mask = np.ones(m, dtype=bool)
    mask[selected] = False
    rest = np.nonzero(mask)[0]
    perm = np.concatenate([selected, rest]).astype(np.int64)
    # The interaction columns are ordered like res.perm[k:], which is not in
    # general the ascending "rest" order the panel permutation uses — reorder.
    if res.interaction is None:
        # Rank-deficient selected block: fall back to a least-squares L21
        # (exact whenever the eliminated rows lie in the span of W1).
        W1 = W[selected, :]
        L21 = np.linalg.lstsq(W1.T, W[rest, :].T, rcond=None)[0].T if rest.size else (
            np.zeros((0, k))
        )
    else:
        order = {int(g): i for i, g in enumerate(res.perm[k:])}
        take = np.asarray([order[int(g)] for g in rest], dtype=np.int64)
        L21 = res.interaction.T[take, :]
    return PRRPPanel(perm=perm, W1=W[selected, :], L21=L21, tau=tau, swaps=res.swaps)
