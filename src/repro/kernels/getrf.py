"""Blocked LU factorization with partial pivoting (LAPACK ``DGETRF`` analogue).

This sequential blocked right-looking factorization serves three purposes:

* it is the sequential reference against which CALU's factors are validated,
* it is the GEPP baseline of the stability study (Table 2, Figure 2): the
  pivot sequence it produces is exactly the partial-pivoting sequence, so its
  growth factor and residuals are the "partial pivoting" rows of the paper,
* its structure (panel / LASWP / TRSM / GEMM) mirrors the parallel drivers,
  which makes the correspondence between sequential and simulated-parallel
  code easy to audit.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from .flops import FlopCounter
from .gemm import gemm_update
from .getf2 import getf2, split_lu
from .laswp import laswp
from .pivoting import ipiv_to_perm
from .rgetf2 import rgetf2
from .trsm import trsm_lower_unit


class BlockedLUResult(NamedTuple):
    """Factors of a blocked LU with partial pivoting.

    Attributes
    ----------
    L:
        ``m x k`` unit-lower-trapezoidal factor (``k = min(m, n)``).
    U:
        ``k x n`` upper-trapezoidal factor.
    perm:
        Row permutation such that ``A[perm, :] = L @ U``.
    ipiv:
        LAPACK-style swap vector (global row indices relative to each step).
    growth_history:
        Max |entry| of the working matrix after each panel elimination
        (only populated when ``track_growth=True``).
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    ipiv: np.ndarray
    growth_history: list


def getrf_blocked(
    A: np.ndarray,
    block_size: int = 64,
    flops: Optional[FlopCounter] = None,
    panel_kernel: str = "getf2",
    track_growth: bool = False,
    kernel_tier: Optional[str] = None,
) -> BlockedLUResult:
    """Blocked right-looking LU with partial pivoting.

    Parameters
    ----------
    A:
        ``m x n`` matrix (``m >= n`` or square; wide inputs are supported by
        factoring the first ``m`` columns and solving for the rest).
    block_size:
        Panel width ``b``.
    flops:
        Optional flop counter.
    panel_kernel:
        ``"getf2"`` (classic unblocked) or ``"rgetf2"`` (recursive) for the
        panel factorization — the same choice the paper exposes for TSLU.
    track_growth:
        Record the max absolute entry of the working matrix after each panel
        step (used by the growth-factor experiments).  Forces the reference
        kernel tier: the recorded values depend on the factor bits.
    kernel_tier:
        Kernel tier for the panel factorizations (None: process-wide
        default); see :mod:`repro.kernels.tiers`.

    Returns
    -------
    BlockedLUResult
    """
    A = np.array(A, dtype=np.float64)
    m, n = A.shape
    k = min(m, n)
    b = max(1, int(block_size))
    ipiv = np.arange(k, dtype=np.int64)
    growth: list = []
    panel_fn = {"getf2": getf2, "rgetf2": rgetf2}[panel_kernel]
    if track_growth:
        kernel_tier = "reference"

    for j in range(0, k, b):
        jb = min(b, k - j)
        # Factor the current panel A[j:, j:j+jb].
        panel = A[j:, j : j + jb]
        res = panel_fn(panel, flops=flops, kernel_tier=kernel_tier)
        A[j:, j : j + jb] = res.lu
        ipiv[j : j + jb] = res.ipiv + j

        # Apply the panel's row swaps to the columns outside the panel.
        if j > 0:
            laswp(A[:, :j], res.ipiv, offset=j)
        if j + jb < n:
            laswp(A[:, j + jb :], res.ipiv, offset=j)

            # Compute the block-row of U: U12 = L11^{-1} A12.
            L11 = A[j : j + jb, j : j + jb]
            A[j : j + jb, j + jb :] = trsm_lower_unit(
                L11, A[j : j + jb, j + jb :], flops=flops
            )

            # Trailing update A22 -= L21 @ U12.
            if j + jb < m:
                gemm_update(
                    A[j + jb :, j + jb :],
                    A[j + jb :, j : j + jb],
                    A[j : j + jb, j + jb :],
                    flops=flops,
                )
        if track_growth:
            growth.append(float(np.max(np.abs(A))))

    L, U = split_lu(A, m, n)
    perm = ipiv_to_perm(ipiv, m)
    return BlockedLUResult(L=L, U=U, perm=perm, ipiv=ipiv, growth_history=growth)


def getrf_partial_pivoting(
    A: np.ndarray,
    flops: Optional[FlopCounter] = None,
    track_growth: bool = False,
    kernel_tier: Optional[str] = None,
) -> BlockedLUResult:
    """Gaussian elimination with partial pivoting (GEPP) reference.

    Unblocked elimination of the whole matrix; identical pivot sequence to
    LAPACK's ``getrf``.  Provided as the stability baseline of the paper's
    Table 2 ("LU with partial pivoting").  ``track_growth`` forces the
    reference tier (inside :func:`~repro.kernels.getf2.getf2`).
    """
    A = np.asarray(A, dtype=np.float64)
    m, n = A.shape
    history: list = [] if track_growth else None  # type: ignore[assignment]
    res = getf2(A, flops=flops, track_growth=history, kernel_tier=kernel_tier)
    L, U = split_lu(res.lu, m, n)
    return BlockedLUResult(
        L=L,
        U=U,
        perm=res.perm,
        ipiv=res.ipiv,
        growth_history=history if history is not None else [],
    )
