"""Unblocked LU factorization with partial pivoting (LAPACK ``DGETF2`` analogue).

This is the classic right-looking, column-by-column elimination.  It is used

* as the *local* kernel of TSLU in its "classic" configuration (the ``Cl``
  columns of Tables 3 and 4 of the paper),
* at the leaves and internal nodes of the ca-pivoting tournament, where the
  matrices are small (``2b x b``),
* as the reference Gaussian elimination with partial pivoting (GEPP) for the
  stability comparison of Table 2 and Figure 2.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from .flops import FlopCounter, FlopFormulas
from .tiers import lapack_module, resolve_tier


class LUResult(NamedTuple):
    """Result of an in-place LU factorization.

    Attributes
    ----------
    lu:
        The factored matrix: unit-lower-triangular ``L`` below the diagonal
        (unit diagonal not stored) and ``U`` on and above the diagonal.
    ipiv:
        LAPACK-style swap vector of length ``min(m, n)``.
    perm:
        Full row permutation of length ``m`` such that ``A[perm, :] = L @ U``.
    singular:
        True if a zero pivot was encountered (the factorization is still
        returned but the corresponding column was not eliminated).
    """

    lu: np.ndarray
    ipiv: np.ndarray
    perm: np.ndarray
    singular: bool


def getf2(
    A: np.ndarray,
    flops: Optional[FlopCounter] = None,
    overwrite: bool = False,
    track_growth: Optional[list] = None,
    kernel_tier: Optional[str] = None,
) -> LUResult:
    """Factor ``A = P^T L U`` using unblocked Gaussian elimination with partial pivoting.

    Parameters
    ----------
    A:
        ``m x n`` real matrix.
    flops:
        Optional :class:`~repro.kernels.flops.FlopCounter` charged with the
        arithmetic performed.
    overwrite:
        If True, ``A`` itself is overwritten with the factors; otherwise a
        copy is made.
    track_growth:
        Optional list; if given, the maximum absolute value of the (active
        part of the) matrix after each elimination step is appended to it.
        Used by the growth-factor study (Figure 2).  Requesting it forces the
        reference tier so the recorded values are reproducible bit-for-bit.
    kernel_tier:
        ``"reference"``, ``"lapack"`` or ``"auto"`` (None: the process-wide
        tier, see :mod:`repro.kernels.tiers`).  The ``lapack`` tier delegates
        to ``scipy.linalg.lapack.dgetrf`` with closed-form flop accounting;
        factor entries agree to rounding and pivot choices match the
        reference loop in practice (identical tie-breaking; see the tiers
        module for the near-tie caveat).

    Returns
    -------
    LUResult
    """
    A = np.array(A, dtype=np.float64, copy=not overwrite)
    if A.ndim != 2:
        raise ValueError("getf2 expects a 2-D array")
    m, n = A.shape
    k = min(m, n)
    tier = resolve_tier(kernel_tier, force_reference=track_growth is not None)
    if tier == "lapack" and k > 0:
        return _getf2_lapack(A, flops)
    ipiv = np.arange(k, dtype=np.int64)
    singular = False
    swap_buf = np.empty(n, dtype=np.float64)
    # Incremental growth tracking: after step j, row j and the multipliers of
    # column j are final; the running maximum over those frozen entries plus a
    # scan of the (just rewritten) trailing submatrix equals the full-matrix
    # maximum — later row swaps only permute entries inside already-counted
    # regions.  Same recorded values as scanning all of |A| each step, without
    # the O(m*n)-per-column full-matrix pass.
    frozen_max = 0.0

    for j in range(k):
        # Pivot search in column j, rows j..m-1.
        col = A[j:, j]
        p = int(np.argmax(np.abs(col))) + j
        ipiv[j] = p
        if flops is not None:
            flops.add_comparisons(m - j - 1)
        zero_pivot = A[p, j] == 0.0
        if zero_pivot:
            singular = True
        else:
            if p != j:
                # Buffered in-place swap: one reusable row buffer instead of
                # the two fresh row copies a fancy-index swap allocates.
                np.copyto(swap_buf, A[j])
                np.copyto(A[j], A[p])
                np.copyto(A[p], swap_buf)
            if j < m - 1:
                # Scale the multipliers.
                A[j + 1 :, j] /= A[j, j]
                if flops is not None:
                    flops.add_divides(m - j - 1)
                # Rank-1 update of the trailing matrix.
                if j < n - 1:
                    A[j + 1 :, j + 1 :] -= np.outer(A[j + 1 :, j], A[j, j + 1 :])
                    if flops is not None:
                        flops.add_muladds(2.0 * (m - j - 1) * (n - j - 1))
        if track_growth is not None:
            frozen_max = max(frozen_max, float(np.max(np.abs(A[j, :]))))
            if j < m - 1:
                frozen_max = max(frozen_max, float(np.max(np.abs(A[j + 1 :, j]))))
            if not zero_pivot:
                trailing = A[j + 1 :, j + 1 :]
                current = frozen_max
                if trailing.size:
                    current = max(current, float(np.max(np.abs(trailing))))
                track_growth.append(current)

    from .pivoting import ipiv_to_perm

    perm = ipiv_to_perm(ipiv, m)
    return LUResult(lu=A, ipiv=ipiv, perm=perm, singular=singular)


def _getf2_lapack(A: np.ndarray, flops: Optional[FlopCounter]) -> LUResult:
    """Fast tier: ``dgetrf`` with exact closed-form flop accounting.

    ``A`` is this call's private working array (the public entry point has
    already honoured ``overwrite``); the factors are copied back into it so
    the ``lu is A`` contract of ``overwrite=True`` holds.
    """
    m, n = A.shape
    k = min(m, n)
    lu, piv, info = lapack_module().dgetrf(A)
    if info < 0:  # pragma: no cover - argument errors cannot happen here
        raise ValueError(f"dgetrf: illegal argument {-info}")
    A[...] = lu
    ipiv = np.asarray(piv[:k], dtype=np.int64)
    if flops is not None:
        # A zero on U's diagonal marks exactly the columns whose pivot was
        # zero at elimination time (a nonzero pivot lands on the diagonal and
        # is never touched again), i.e. the columns the reference loop skips.
        zero_cols = np.flatnonzero(np.diagonal(A)[:k] == 0.0)
        flops.merge(FlopFormulas.getf2_exact(m, n, zero_cols))
    from .pivoting import ipiv_to_perm

    perm = ipiv_to_perm(ipiv, m)
    return LUResult(lu=A, ipiv=ipiv, perm=perm, singular=bool(info > 0))


def getf2_nopivot(
    A: np.ndarray,
    flops: Optional[FlopCounter] = None,
    overwrite: bool = False,
) -> np.ndarray:
    """LU factorization *without* pivoting; returns the packed LU array.

    Used for the second phase of ca-pivoting: once the tournament has placed
    good pivot rows on the diagonal, the block is eliminated in order.  Raises
    ``ZeroDivisionError`` only implicitly through inf/nan entries — callers
    that may feed singular blocks should check the diagonal themselves.
    """
    A = np.array(A, dtype=np.float64, copy=not overwrite)
    m, n = A.shape
    k = min(m, n)
    for j in range(k):
        if A[j, j] == 0.0:
            continue
        if j < m - 1:
            A[j + 1 :, j] /= A[j, j]
            if flops is not None:
                flops.add_divides(m - j - 1)
            if j < n - 1:
                A[j + 1 :, j + 1 :] -= np.outer(A[j + 1 :, j], A[j, j + 1 :])
                if flops is not None:
                    flops.add_muladds(2.0 * (m - j - 1) * (n - j - 1))
    return A


def split_lu(lu: np.ndarray, m: Optional[int] = None, n: Optional[int] = None):
    """Split a packed LU factor into explicit ``L`` (m x k) and ``U`` (k x n).

    ``k = min(m, n)``.  ``L`` has a unit diagonal; ``U`` is upper triangular
    (upper trapezoidal when ``n > m``).
    """
    if m is None or n is None:
        m, n = lu.shape
    k = min(m, n)
    L = np.tril(lu[:, :k], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(lu[:k, :])
    return L, U


def lu_reconstruct(result: LUResult) -> np.ndarray:
    """Rebuild ``A`` from an :class:`LUResult` (for verification)."""
    m, n = result.lu.shape
    L, U = split_lu(result.lu, m, n)
    from .pivoting import invert_perm

    PA = L @ U
    return PA[invert_perm(result.perm), :]
