"""Row-interchange kernels (LAPACK ``DLASWP`` analogue).

``laswp`` applies a sequence of row swaps produced by a panel factorization to
the remaining columns of the matrix.  The same operation is performed in
parallel by :mod:`repro.scalapack.pdlaswp` and by the pivot-application step
of CALU; this sequential version is the reference used in tests and in the
sequential drivers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def laswp(
    A: np.ndarray,
    ipiv: np.ndarray,
    k1: int = 0,
    k2: Optional[int] = None,
    offset: int = 0,
    forward: bool = True,
) -> np.ndarray:
    """Apply the row swaps ``ipiv[k1:k2]`` to ``A`` in place.

    Parameters
    ----------
    A:
        The matrix whose rows are interchanged (modified in place).
    ipiv:
        Swap vector; ``ipiv[k]`` is exchanged with row ``k + offset`` of ``A``.
        The values of ``ipiv`` are interpreted relative to ``offset`` as well,
        matching how a panel factorization reports pivots relative to the top
        of the panel.
    k1, k2:
        Range of swaps to apply (default: all of ``ipiv``).
    offset:
        Row of ``A`` corresponding to index 0 of the panel that produced
        ``ipiv``.
    forward:
        Apply in increasing order of ``k`` (True) or reverse (False).
    """
    ipiv = np.asarray(ipiv, dtype=np.int64)
    if k2 is None:
        k2 = len(ipiv)
    ks = range(k1, k2) if forward else range(k2 - 1, k1 - 1, -1)
    for k in ks:
        r = int(ipiv[k]) + offset
        kk = k + offset
        if r != kk:
            A[[kk, r], :] = A[[r, kk], :]
    return A


def apply_row_permutation(A: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Return ``A[perm, :]`` (a copy); convenience wrapper used by drivers."""
    return np.asarray(A)[np.asarray(perm, dtype=np.int64), :]
