"""Row-interchange kernels (LAPACK ``DLASWP`` analogue).

``laswp`` applies a sequence of row swaps produced by a panel factorization to
the remaining columns of the matrix.  The same operation is performed in
parallel by :mod:`repro.scalapack.pdlaswp` and by the pivot-application step
of CALU; this sequential version is the reference used in tests and in the
sequential drivers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def laswp(
    A: np.ndarray,
    ipiv: np.ndarray,
    k1: int = 0,
    k2: Optional[int] = None,
    offset: int = 0,
    forward: bool = True,
) -> np.ndarray:
    """Apply the row swaps ``ipiv[k1:k2]`` to ``A`` in place.

    Parameters
    ----------
    A:
        The matrix whose rows are interchanged (modified in place).
    ipiv:
        Swap vector; ``ipiv[k]`` is exchanged with row ``k + offset`` of ``A``.
        The values of ``ipiv`` are interpreted relative to ``offset`` as well,
        matching how a panel factorization reports pivots relative to the top
        of the panel.
    k1, k2:
        Range of swaps to apply (default: all of ``ipiv``).
    offset:
        Row of ``A`` corresponding to index 0 of the panel that produced
        ``ipiv``.
    forward:
        Apply in increasing order of ``k`` (True) or reverse (False).
    """
    ipiv = np.asarray(ipiv, dtype=np.int64)
    if k2 is None:
        k2 = len(ipiv)
    ks = range(k1, k2) if forward else range(k2 - 1, k1 - 1, -1)
    swap_buf = np.empty(A.shape[1], dtype=A.dtype)
    for k in ks:
        r = int(ipiv[k]) + offset
        kk = k + offset
        if r != kk:
            np.copyto(swap_buf, A[kk])
            np.copyto(A[kk], A[r])
            np.copyto(A[r], swap_buf)
    return A


def apply_row_permutation(A: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Return ``A[perm, :]`` (a copy); convenience wrapper used by drivers."""
    return np.asarray(A)[np.asarray(perm, dtype=np.int64), :]


def permute_rows_inplace(A: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply ``A <- A[perm]`` in place, touching only the rows that move.

    Fixed points of the permutation are never read or written, and the only
    temporary is a gather of the *moved* rows — not the ``len(perm) x n``
    copy of the whole array that ``A[:] = A[perm]`` would allocate.  Works
    for 1-D and 2-D arrays; returns ``A``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    mp = perm.shape[0]
    if A.shape[0] != mp:
        raise ValueError("permutation length must match the leading dimension")
    moved = np.flatnonzero(perm != np.arange(mp, dtype=np.int64))
    if moved.size:
        # The right-hand side fancy index materialises the moved source rows
        # before any destination row is written, so overlap is safe.
        A[moved] = A[perm[moved]]
    return A
