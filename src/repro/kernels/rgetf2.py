"""Recursive LU factorization with partial pivoting (``RGETF2``).

This is the recursive panel factorization of Gustavson (1997) and Toledo
(1997), cited as [6] and [9] in the paper and given as Appendix B of [6].
The recursion splits the column dimension in two, factors the left half,
applies the resulting row swaps and a triangular solve to the right half,
updates, and recurses on the trailing part.  Because most of the work is
performed in matrix-matrix products it has far better cache behaviour than
the unblocked :func:`repro.kernels.getf2.getf2`, which is exactly why the
paper's TSLU uses it for the local factorization on each process (the ``Rec``
columns of Tables 3 and 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .flops import FlopCounter, FlopFormulas
from .getf2 import LUResult, getf2
from .pivoting import ipiv_to_perm
from .tiers import lapack_module, resolve_tier


def rgetf2(
    A: np.ndarray,
    flops: Optional[FlopCounter] = None,
    threshold: int = 8,
    overwrite: bool = False,
    kernel_tier: Optional[str] = None,
) -> LUResult:
    """Factor ``A = P^T L U`` with recursive partial-pivoting LU.

    Parameters
    ----------
    A:
        ``m x n`` matrix with ``m >= n`` (tall or square); wide matrices are
        rejected because the recursive algorithm is defined on panels.
    flops:
        Optional flop counter.
    threshold:
        Column count below which the recursion bottoms out into the unblocked
        kernel.  The classic formulation recurses down to a single column; a
        small threshold keeps the Python overhead bounded without changing
        the arithmetic.
    overwrite:
        If True the input array is overwritten with the factors.
    kernel_tier:
        ``"reference"``, ``"lapack"`` or ``"auto"`` (None: process-wide tier).
        The ``lapack`` tier delegates the whole factorization to ``dgetrf``
        (itself a blocked/recursive implementation) and charges the closed
        form of the reference recursion's counts; singular inputs fall back
        to the reference recursion so the skip-singular-column semantics are
        preserved exactly.

    Returns
    -------
    LUResult
        Same contract as :func:`repro.kernels.getf2.getf2`.
    """
    A = np.array(A, dtype=np.float64, copy=not overwrite)
    m, n = A.shape
    if m < n:
        raise ValueError("rgetf2 requires m >= n (tall panel)")
    if resolve_tier(kernel_tier) == "lapack" and n > 0:
        res = _rgetf2_lapack(A, flops, threshold)
        if res is not None:
            return res
    ipiv = np.arange(n, dtype=np.int64)
    singular = _rgetf2_inplace(A, ipiv, 0, flops, threshold)
    perm = ipiv_to_perm(ipiv, m)
    return LUResult(lu=A, ipiv=ipiv, perm=perm, singular=singular)


def _rgetf2_lapack(
    A: np.ndarray, flops: Optional[FlopCounter], threshold: int
) -> Optional[LUResult]:
    """Fast tier: whole-panel ``dgetrf``; None when the input is singular."""
    m, n = A.shape
    lu, piv, info = lapack_module().dgetrf(A)
    if info > 0:
        # Singular panel: replay the reference recursion (rare, and the only
        # way to reproduce its skip-singular-column behaviour exactly).
        return None
    A[...] = lu
    ipiv = np.asarray(piv, dtype=np.int64)
    if flops is not None:
        flops.merge(FlopFormulas.rgetf2_exact(m, n, threshold))
    return LUResult(lu=A, ipiv=ipiv, perm=ipiv_to_perm(ipiv, m), singular=False)


def _rgetf2_inplace(
    A: np.ndarray,
    ipiv: np.ndarray,
    col0: int,
    flops: Optional[FlopCounter],
    threshold: int,
) -> bool:
    """Recursive worker operating on the full array ``A``.

    ``A`` here is the *remaining* submatrix view (rows already aligned); the
    swap indices written into ``ipiv`` are offset by ``col0`` so that the
    caller sees swaps relative to the original matrix.
    """
    m, n = A.shape
    if n <= threshold or n == 1:
        res = getf2(A, flops=flops, overwrite=True)
        A[...] = res.lu
        ipiv[col0 : col0 + len(res.ipiv)] = res.ipiv + col0
        return res.singular

    n1 = n // 2
    n2 = n - n1

    left = A[:, :n1]
    right = A[:, n1:]

    # Factor the left half recursively.
    singular = _rgetf2_inplace(left, ipiv, col0, flops, threshold)

    # Apply the left half's row swaps to the right half (buffered in-place
    # swaps; a fancy-index swap would allocate two fresh rows per step).
    swap_buf = np.empty(n2, dtype=np.float64)
    for k in range(n1):
        r = ipiv[col0 + k] - col0
        if r != k:
            np.copyto(swap_buf, right[k])
            np.copyto(right[k], right[r])
            np.copyto(right[r], swap_buf)

    # Triangular solve: right[:n1, :] <- L11^{-1} right[:n1, :]
    L11 = np.tril(left[:n1, :n1], -1) + np.eye(n1)
    right[:n1, :] = np.linalg.solve(L11, right[:n1, :])
    if flops is not None:
        flops.add_muladds(float(n1) * float(n1) * float(n2))

    # Trailing update: right[n1:, :] -= L21 @ right[:n1, :]
    if m > n1:
        right[n1:, :] -= left[n1:, :n1] @ right[:n1, :]
        if flops is not None:
            flops.add_muladds(2.0 * float(m - n1) * float(n1) * float(n2))

    # Recurse on the trailing (m - n1) x n2 block.
    trailing = A[n1:, n1:]
    singular2 = _rgetf2_inplace(trailing, ipiv, col0 + n1, flops, threshold)

    # The trailing recursion stored swap targets relative to its own column
    # offset (col0 + n1), which coincides with row n1 of this view, so the
    # stored values are already absolute within this view.  Apply the same
    # swaps to the left block-columns below the diagonal.
    left_buf = np.empty(n1, dtype=np.float64)
    for k in range(n2):
        idx = col0 + n1 + k
        r = ipiv[idx] - col0
        kk = n1 + k
        if r != kk:
            np.copyto(left_buf, A[kk, :n1])
            np.copyto(A[kk, :n1], A[r, :n1])
            np.copyto(A[r, :n1], left_buf)

    return singular or singular2
