"""Floating-point operation accounting.

The paper's cost model (Section 3 and 5) distinguishes three kinds of work:

* ``gamma`` operations: additions and multiplications (time ``γ`` each),
* ``gamma_d`` operations: divisions (time ``γ_d`` each),
* communication: messages and words (handled in :mod:`repro.costs`).

Every sequential kernel in :mod:`repro.kernels` accepts an optional
:class:`FlopCounter` and charges the classic dense linear-algebra flop counts
to it, so that both the sequential algorithms and the simulated parallel
algorithms report work in the same currency as Equations (1)-(3) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlopCounter:
    """Accumulator for floating-point work.

    Attributes
    ----------
    muladds:
        Number of multiply/add floating point operations (the paper's ``γ``
        operations).  A fused ``a*b + c`` counts as 2.
    divides:
        Number of divisions (the paper's ``γ_d`` operations).
    comparisons:
        Number of comparisons performed while searching for pivots.  The
        paper's model neglects these; we record them anyway because they are
        useful when validating pivot-search implementations.
    """

    muladds: float = 0.0
    divides: float = 0.0
    comparisons: float = 0.0

    def add_muladds(self, n: float) -> None:
        """Charge ``n`` multiply/add operations."""
        self.muladds += float(n)

    def add_divides(self, n: float) -> None:
        """Charge ``n`` divisions."""
        self.divides += float(n)

    def add_comparisons(self, n: float) -> None:
        """Charge ``n`` comparisons (pivot searches)."""
        self.comparisons += float(n)

    def merge(self, other: "FlopCounter") -> None:
        """Accumulate the counts of ``other`` into this counter."""
        self.muladds += other.muladds
        self.divides += other.divides
        self.comparisons += other.comparisons

    def copy(self) -> "FlopCounter":
        """Return an independent copy of this counter."""
        return FlopCounter(self.muladds, self.divides, self.comparisons)

    @property
    def total(self) -> float:
        """Total arithmetic operations (muladds + divides)."""
        return self.muladds + self.divides

    def reset(self) -> None:
        """Zero all counters."""
        self.muladds = 0.0
        self.divides = 0.0
        self.comparisons = 0.0

    def __add__(self, other: "FlopCounter") -> "FlopCounter":
        return FlopCounter(
            self.muladds + other.muladds,
            self.divides + other.divides,
            self.comparisons + other.comparisons,
        )


@dataclass
class FlopFormulas:
    """Closed-form flop counts for the dense kernels used in the paper.

    These are the textbook leading-order counts; they are used both to charge
    analytic models and to sanity-check the counts measured by the kernels.
    """

    @staticmethod
    def getf2(m: int, n: int) -> float:
        """Multiply/adds of unblocked LU with partial pivoting of an m x n matrix."""
        m = float(m)
        n = float(n)
        if m >= n:
            return m * n * n - n**3 / 3.0
        # Wide case: eliminate only m-1 columns.
        return m * m * n - m**3 / 3.0

    @staticmethod
    def getf2_divides(m: int, n: int) -> float:
        """Divisions of unblocked LU with partial pivoting of an m x n matrix."""
        k = min(m, n)
        # Column j scales (m - j - 1) subdiagonal entries: sum over j.
        return float(k) * float(m) - float(k) * (float(k) + 1.0) / 2.0

    @staticmethod
    def trsm(m: int, n: int) -> float:
        """Multiply/adds of a triangular solve with an m x m triangle and n right-hand sides."""
        return float(m) * float(m) * float(n)

    @staticmethod
    def gemm(m: int, n: int, k: int) -> float:
        """Multiply/adds of C -= A @ B with A m x k and B k x n."""
        return 2.0 * float(m) * float(n) * float(k)

    @staticmethod
    def getrf(m: int, n: int) -> float:
        """Multiply/adds of a full LU factorization of an m x n matrix (m >= n)."""
        m = float(m)
        n = float(n)
        return m * n * n - n**3 / 3.0

    # ------------------------------------------------------------------
    # Exact (not leading-order) counts, matching the reference loops step
    # for step.  These are what the optimized kernel tiers charge so that
    # flop ledgers are identical between tiers (all counts are integers
    # well below 2**53, hence exact in float64 regardless of order).
    # ------------------------------------------------------------------

    @staticmethod
    def getf2_exact(m: int, n: int, zero_columns=()) -> "FlopCounter":
        """Exact counts of the reference :func:`~repro.kernels.getf2.getf2` loop.

        ``zero_columns`` lists the column indices whose pivot was exactly
        zero: the reference loop skips the scaling and the rank-1 update for
        those columns (the pivot search is still performed and charged).
        """
        k = min(m, n)
        muladds = 0
        divides = 0
        comparisons = 0
        skipped = frozenset(int(j) for j in zero_columns)
        for j in range(k):
            comparisons += m - j - 1
            if j in skipped:
                continue
            if j < m - 1:
                divides += m - j - 1
                if j < n - 1:
                    muladds += 2 * (m - j - 1) * (n - j - 1)
        return FlopCounter(float(muladds), float(divides), float(comparisons))

    @staticmethod
    def rgetf2_exact(m: int, n: int, threshold: int = 8) -> "FlopCounter":
        """Exact counts of the reference recursive kernel on a nonsingular input.

        Mirrors the recursion of :func:`~repro.kernels.rgetf2.rgetf2`: leaf
        ``getf2`` counts plus the triangular solve (``n1^2 n2`` muladds) and
        the GEMM update (``2 (m - n1) n1 n2`` muladds) of each split.
        """
        if n <= threshold or n == 1:
            return FlopFormulas.getf2_exact(m, n)
        n1 = n // 2
        n2 = n - n1
        total = FlopFormulas.rgetf2_exact(m, n1, threshold)
        total.add_muladds(float(n1) * float(n1) * float(n2))
        if m > n1:
            total.add_muladds(2.0 * float(m - n1) * float(n1) * float(n2))
        total.merge(FlopFormulas.rgetf2_exact(m - n1, n2, threshold))
        return total
