"""Floating-point operation accounting.

The paper's cost model (Section 3 and 5) distinguishes three kinds of work:

* ``gamma`` operations: additions and multiplications (time ``γ`` each),
* ``gamma_d`` operations: divisions (time ``γ_d`` each),
* communication: messages and words (handled in :mod:`repro.costs`).

Every sequential kernel in :mod:`repro.kernels` accepts an optional
:class:`FlopCounter` and charges the classic dense linear-algebra flop counts
to it, so that both the sequential algorithms and the simulated parallel
algorithms report work in the same currency as Equations (1)-(3) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlopCounter:
    """Accumulator for floating-point work.

    Attributes
    ----------
    muladds:
        Number of multiply/add floating point operations (the paper's ``γ``
        operations).  A fused ``a*b + c`` counts as 2.
    divides:
        Number of divisions (the paper's ``γ_d`` operations).
    comparisons:
        Number of comparisons performed while searching for pivots.  The
        paper's model neglects these; we record them anyway because they are
        useful when validating pivot-search implementations.
    """

    muladds: float = 0.0
    divides: float = 0.0
    comparisons: float = 0.0

    def add_muladds(self, n: float) -> None:
        """Charge ``n`` multiply/add operations."""
        self.muladds += float(n)

    def add_divides(self, n: float) -> None:
        """Charge ``n`` divisions."""
        self.divides += float(n)

    def add_comparisons(self, n: float) -> None:
        """Charge ``n`` comparisons (pivot searches)."""
        self.comparisons += float(n)

    def merge(self, other: "FlopCounter") -> None:
        """Accumulate the counts of ``other`` into this counter."""
        self.muladds += other.muladds
        self.divides += other.divides
        self.comparisons += other.comparisons

    def copy(self) -> "FlopCounter":
        """Return an independent copy of this counter."""
        return FlopCounter(self.muladds, self.divides, self.comparisons)

    @property
    def total(self) -> float:
        """Total arithmetic operations (muladds + divides)."""
        return self.muladds + self.divides

    def reset(self) -> None:
        """Zero all counters."""
        self.muladds = 0.0
        self.divides = 0.0
        self.comparisons = 0.0

    def __add__(self, other: "FlopCounter") -> "FlopCounter":
        return FlopCounter(
            self.muladds + other.muladds,
            self.divides + other.divides,
            self.comparisons + other.comparisons,
        )


@dataclass
class FlopFormulas:
    """Closed-form flop counts for the dense kernels used in the paper.

    These are the textbook leading-order counts; they are used both to charge
    analytic models and to sanity-check the counts measured by the kernels.
    """

    @staticmethod
    def getf2(m: int, n: int) -> float:
        """Multiply/adds of unblocked LU with partial pivoting of an m x n matrix."""
        m = float(m)
        n = float(n)
        if m >= n:
            return m * n * n - n**3 / 3.0
        # Wide case: eliminate only m-1 columns.
        return m * m * n - m**3 / 3.0

    @staticmethod
    def getf2_divides(m: int, n: int) -> float:
        """Divisions of unblocked LU with partial pivoting of an m x n matrix."""
        k = min(m, n)
        # Column j scales (m - j - 1) subdiagonal entries: sum over j.
        return float(k) * float(m) - float(k) * (float(k) + 1.0) / 2.0

    @staticmethod
    def trsm(m: int, n: int) -> float:
        """Multiply/adds of a triangular solve with an m x m triangle and n right-hand sides."""
        return float(m) * float(m) * float(n)

    @staticmethod
    def gemm(m: int, n: int, k: int) -> float:
        """Multiply/adds of C -= A @ B with A m x k and B k x n."""
        return 2.0 * float(m) * float(n) * float(k)

    @staticmethod
    def getrf(m: int, n: int) -> float:
        """Multiply/adds of a full LU factorization of an m x n matrix (m >= n)."""
        m = float(m)
        n = float(n)
        return m * n * n - n**3 / 3.0
