"""Pivot-threshold statistics (Figure 2 right; the τ columns of Table 1).

ca-pivoting does not guarantee that the pivot is the largest entry of its
column, so ``|L|`` is not bounded by 1 as with partial pivoting.  The paper
measures, at every elimination step ``i``, the *threshold*

    τ_i = |pivot_i| / max_j |A^(i)[j, i]|   (j over the active rows)

and reports its minimum and average: τ_min ≥ 0.33 and τ_ave ≥ 0.84 in all
their experiments, i.e. ca-pivoting behaves like threshold pivoting with
``|L| ≤ 1/τ_min ≈ 3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ThresholdStats:
    """Summary of the per-step pivot thresholds of one factorization."""

    minimum: float
    average: float
    count: int

    @property
    def l_bound(self) -> float:
        """Implied bound on ``|L|`` (``1 / τ_min``)."""
        return 1.0 / self.minimum if self.minimum > 0 else float("inf")


def threshold_stats(threshold_history: np.ndarray) -> ThresholdStats:
    """Summarise a threshold history produced by CALU/TSLU."""
    t = np.asarray(threshold_history, dtype=np.float64)
    t = t[np.isfinite(t)]
    if t.size == 0:
        return ThresholdStats(minimum=1.0, average=1.0, count=0)
    return ThresholdStats(minimum=float(t.min()), average=float(t.mean()), count=int(t.size))


def l_infinity_norm_of_L(L: np.ndarray) -> float:
    """``max |L_ij|`` — the quantity the paper bounds by ~3 for ca-pivoting."""
    return float(np.max(np.abs(L))) if L.size else 0.0
