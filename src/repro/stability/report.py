"""One-call stability reports: everything a row of Table 1 / Table 2 needs.

Given a matrix family and a pivoting strategy (CALU with a given (P, b) or
GEPP), :func:`stability_row` factors the matrix, solves a random system, and
returns the growth factor, threshold statistics, componentwise backward error
and the three HPL residuals — i.e. one row of the paper's stability tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.calu import calu
from ..core.solve import componentwise_backward_error, lu_solve
from ..kernels.getrf import getrf_partial_pivoting
from .growth import trefethen_schreiber_growth
from .residuals import HPLResiduals, hpl_residuals
from .threshold import ThresholdStats, threshold_stats


@dataclass
class StabilityRow:
    """One row of a stability table.

    Attributes mirror the columns of the paper's Table 1: problem size,
    pivoting parameters, growth factor ``g_T``, average/minimum thresholds,
    componentwise backward error ``w_b`` (before refinement) and the three
    HPL residuals.
    """

    n: int
    P: int
    b: int
    method: str
    growth: float
    tau_ave: float
    tau_min: float
    wb: float
    residuals: HPLResiduals

    def as_dict(self) -> dict:
        """Flat dictionary used by the experiment harness and benchmarks."""
        out = {
            "n": self.n,
            "P": self.P,
            "b": self.b,
            "method": self.method,
            "gT": self.growth,
            "tau_ave": self.tau_ave,
            "tau_min": self.tau_min,
            "wb": self.wb,
        }
        out.update(self.residuals.as_dict())
        return out


def stability_row_calu(
    A: np.ndarray,
    P: int,
    b: int,
    rhs: Optional[np.ndarray] = None,
    schedule: str = "binary",
    pivoting: Optional[str] = None,
) -> StabilityRow:
    """Factor ``A`` with CALU(P, b), solve a system, and report the stability row.

    ``pivoting`` selects the panel pivoting strategy (``"ca"`` default,
    ``"ca_prrp"`` for the strong-RRQR tournament of Khabou et al., ``"pp"``
    for partial-pivoting panels — see :mod:`repro.core.strategies`).  The
    default rows are bit-identical to the seed Table 1 rows; non-default
    strategies are reported under ``method="calu[<strategy>]"``.  For
    ``"ca_prrp"`` the recorded growth is the block-form quantity of the PRRP
    analysis (the growth its ``(1+2b)^(n/b)`` bound speaks about).
    """
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    rhs = A @ np.ones(n) if rhs is None else np.asarray(rhs, dtype=np.float64)
    res = calu(
        A,
        block_size=b,
        nblocks=P,
        schedule=schedule,
        track_growth=True,
        compute_thresholds=True,
        pivoting=pivoting,
    )
    x = lu_solve(res.L, res.U, res.perm, rhs)
    stats: ThresholdStats = threshold_stats(res.threshold_history)
    return StabilityRow(
        n=n,
        P=P,
        b=b,
        method="calu" if res.pivoting == "ca" else f"calu[{res.pivoting}]",
        growth=trefethen_schreiber_growth(A, res.growth_history),
        tau_ave=stats.average,
        tau_min=stats.minimum,
        wb=componentwise_backward_error(A, x, rhs),
        residuals=hpl_residuals(A, x, rhs),
    )


def stability_row_gepp(A: np.ndarray, rhs: Optional[np.ndarray] = None) -> StabilityRow:
    """Same report for Gaussian elimination with partial pivoting (Table 2)."""
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    rhs = A @ np.ones(n) if rhs is None else np.asarray(rhs, dtype=np.float64)
    res = getrf_partial_pivoting(A, track_growth=True)
    x = lu_solve(res.L, res.U, res.perm, rhs)
    return StabilityRow(
        n=n,
        P=1,
        b=n,
        method="gepp",
        growth=trefethen_schreiber_growth(A, res.growth_history),
        tau_ave=1.0,
        tau_min=1.0,
        wb=componentwise_backward_error(A, x, rhs),
        residuals=hpl_residuals(A, x, rhs),
    )
