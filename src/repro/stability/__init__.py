"""Stability metrics: growth factors, pivot thresholds, HPL residual tests."""

from .growth import (
    expected_partial_pivoting_growth,
    trefethen_schreiber_growth,
    wilkinson_growth,
)
from .report import StabilityRow, stability_row_calu, stability_row_gepp
from .residuals import (
    HPL_PASS_THRESHOLD,
    HPLResiduals,
    hpl_residuals,
    normwise_backward_error,
)
from .threshold import ThresholdStats, l_infinity_norm_of_L, threshold_stats

__all__ = [
    "trefethen_schreiber_growth",
    "wilkinson_growth",
    "expected_partial_pivoting_growth",
    "threshold_stats",
    "ThresholdStats",
    "l_infinity_norm_of_L",
    "hpl_residuals",
    "HPLResiduals",
    "HPL_PASS_THRESHOLD",
    "normwise_backward_error",
    "StabilityRow",
    "stability_row_calu",
    "stability_row_gepp",
]
