"""Growth factors for the stability study (Figure 2, left; Table 1).

The paper uses the Trefethen-Schreiber growth factor

    g_T = max_{i,j,k} |a_ij^(k)| / sigma_A

where ``a_ij^(k)`` are the entries of the working matrix during elimination
and ``sigma_A`` is the standard deviation of the initial entry distribution
(for standard-normal matrices sigma_A = 1).  For reference the classic Wilkinson
growth factor (normalised by ``max |a_ij|``) is provided too.

Both CALU and the GEPP baseline record ``max |entry|`` of the working matrix
after each panel/elimination step; these helpers turn those histories into
growth factors.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


def trefethen_schreiber_growth(
    A: np.ndarray,
    growth_history: Iterable[float],
    sigma: Optional[float] = None,
) -> float:
    """Growth factor ``g_T`` from a recorded elimination history.

    Parameters
    ----------
    A:
        The original matrix.
    growth_history:
        ``max |entry|`` of the working matrix after each elimination step
        (what :func:`repro.core.calu.calu` records with ``track_growth=True``).
    sigma:
        Standard deviation of the initial element distribution; if None it is
        estimated from ``A`` itself (which is what one does for arbitrary
        inputs; for standard-normal test matrices it is ~1).
    """
    A = np.asarray(A, dtype=np.float64)
    history = list(growth_history)
    peak = max([float(np.max(np.abs(A)))] + [float(h) for h in history])
    if sigma is None:
        sigma = float(np.std(A))
    if sigma == 0.0:
        return float("inf") if peak > 0 else 0.0
    return peak / sigma


def wilkinson_growth(A: np.ndarray, growth_history: Iterable[float]) -> float:
    """Classic growth factor ``max_k |a_ij^(k)| / max |a_ij|``."""
    A = np.asarray(A, dtype=np.float64)
    amax = float(np.max(np.abs(A)))
    history = [float(h) for h in growth_history]
    peak = max([amax] + history)
    return peak / amax if amax > 0 else 0.0


def expected_partial_pivoting_growth(n: int) -> float:
    """The empirical ``n^(2/3)`` trend of partial pivoting (Trefethen-Schreiber).

    The paper observes that ca-pivoting follows ``c * n^(2/3)`` with a small
    constant ``c ≈ 1.5``; tests use this reference curve to check the trend.
    """
    return float(n) ** (2.0 / 3.0)
