"""HPL-style accuracy tests (Table 1 and Table 2 of the paper).

The High-Performance Linpack benchmark accepts a factorization if three
scaled residuals are "of order O(1)" (in practice below 16):

    HPL1 = ||A x - b||_inf / (eps * ||A||_1 * N)
    HPL2 = ||A x - b||_inf / (eps * ||A||_1 * ||x||_1)
    HPL3 = ||A x - b||_inf / (eps * ||A||_inf * ||x||_inf * N)

The paper computes these for systems solved with CALU's factors (and with
GEPP's, for reference), together with the componentwise backward error
``w_b`` before iterative refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The pass threshold used by HPL (and quoted by the paper).
HPL_PASS_THRESHOLD = 16.0


@dataclass
class HPLResiduals:
    """The three HPL residuals of one solved system."""

    hpl1: float
    hpl2: float
    hpl3: float

    @property
    def passed(self) -> bool:
        """True if all three residuals are below the HPL acceptance threshold."""
        return max(self.hpl1, self.hpl2, self.hpl3) < HPL_PASS_THRESHOLD

    def as_dict(self) -> dict:
        """Dictionary form used by the experiment tables."""
        return {"HPL1": self.hpl1, "HPL2": self.hpl2, "HPL3": self.hpl3}


def hpl_residuals(A: np.ndarray, x: np.ndarray, b: np.ndarray) -> HPLResiduals:
    """Compute the three HPL scaled residuals for a computed solution ``x``."""
    A = np.asarray(A, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = A.shape[0]
    eps = np.finfo(np.float64).eps
    r_inf = float(np.linalg.norm(b - A @ x, np.inf))
    a1 = float(np.linalg.norm(A, 1))
    ainf = float(np.linalg.norm(A, np.inf))
    x1 = float(np.linalg.norm(x, 1))
    xinf = float(np.linalg.norm(x, np.inf))

    def safe(num: float, den: float) -> float:
        return num / den if den > 0 else 0.0

    return HPLResiduals(
        hpl1=safe(r_inf, eps * a1 * n),
        hpl2=safe(r_inf, eps * a1 * x1),
        hpl3=safe(r_inf, eps * ainf * xinf * n),
    )


def normwise_backward_error(A: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """Normwise backward error ``||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf)``."""
    A = np.asarray(A, dtype=np.float64)
    r = float(np.linalg.norm(b - A @ x, np.inf))
    denom = float(
        np.linalg.norm(A, np.inf) * np.linalg.norm(x, np.inf) + np.linalg.norm(b, np.inf)
    )
    return r / denom if denom > 0 else 0.0
