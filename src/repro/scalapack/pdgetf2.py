"""Simulated ScaLAPACK panel factorization (``PDGETF2``).

This is the baseline CALU is compared against.  The panel (block-column) is
distributed by rows over the ``Pr`` processes of one grid column; partial
pivoting is performed *column by column*:

for each of the ``b`` columns,

1. every process finds the largest entry among the rows it owns and an
   all-reduce over the grid column determines the global pivot (``log2 Pr``
   message steps);
2. the pivot row is swapped with the diagonal row (one exchange between the
   two owning processes);
3. the owner of the (new) diagonal row broadcasts the pivot row's trailing
   segment down the grid column (``log2 Pr`` steps);
4. every process scales its local sub-column and applies the rank-1 update to
   its local trailing panel columns.

That is ``~2 b log2 Pr`` messages per panel — the latency bottleneck the
paper identifies (its Section 1: "2 n log2 Pr messages" over the whole
factorization), versus TSLU's ``log2 Pr``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from ..distsim.collectives import allreduce, broadcast
from ..distsim.vmpi import Communicator
from ..kernels.flops import FlopCounter
from ..layouts.block_cyclic import BlockCyclic2D
from .indexing import is_contiguous_range
from .pdlaswp import pdlaswp


def _maxloc(a: Tuple[float, float, int], b: Tuple[float, float, int]) -> Tuple[float, float, int]:
    """All-reduce operator: keep the entry with the largest magnitude.

    Ties are broken towards the smallest global row index so the pivot choice
    matches sequential partial pivoting exactly.
    """
    if (a[0], -a[2]) >= (b[0], -b[2]):
        return a
    return b


def make_pdgetf2_panel() -> Callable[..., Iterator]:
    """Create the PDGETF2 panel coroutine for the shared block-LU driver.

    The returned callable is a generator function (driven with ``yield
    from``); its return value is the panel's swap list.
    """

    def panel(
        comm: Communicator,
        dist: BlockCyclic2D,
        Aloc: np.ndarray,
        j0: int,
        jb: int,
        col_group: List[int],
        tag: object,
    ):
        grid = dist.grid
        myrow, mycol = grid.coords(comm.rank)
        my_grows = dist.local_rows(myrow)
        panel_lcols = np.asarray(
            [dist.global_to_local_col(g) for g in range(j0, j0 + jb)], dtype=np.int64
        )
        swaps: List[Tuple[int, int]] = []
        scratch = FlopCounter()

        for jc in range(jb):
            gcol = j0 + jc
            lcol = panel_lcols[jc]

            # --- pivot search: local max then column-wise all-reduce (maxloc).
            act_mask = my_grows >= gcol
            act_lrows = np.nonzero(act_mask)[0]
            act_grows = my_grows[act_mask]
            if act_lrows.size:
                colvals = Aloc[act_lrows, lcol]
                li = int(np.argmax(np.abs(colvals)))
                cand = (float(abs(colvals[li])), float(colvals[li]), int(act_grows[li]))
                comm.charge_flops(comparisons=float(act_lrows.size - 1))
            else:
                cand = (-1.0, 0.0, 1 << 60)
            best = yield from allreduce.co(
                comm, cand, _maxloc, group=col_group, tag=(tag, "amax", jc), channel="col"
            )
            pivot_row = best[2]

            # --- swap the pivot row into the diagonal position (panel columns).
            if pivot_row != gcol and best[0] > 0.0:
                swaps.append((gcol, pivot_row))
                yield from pdlaswp.co(
                    comm,
                    dist,
                    Aloc,
                    [(gcol, pivot_row)],
                    panel_lcols,
                    tag=(tag, "swap", jc),
                    channel="col",
                )

            # --- broadcast the pivot row's trailing segment down the column.
            owner_grow = (gcol // dist.block) % grid.nprow
            root = grid.rank(owner_grow, mycol)
            if comm.rank == root:
                lrow = dist.global_to_local_row(gcol)
                seg = Aloc[lrow, panel_lcols[jc:]].copy()
            else:
                seg = None
            seg = yield from broadcast.co(
                comm, seg, root=root, group=col_group, tag=(tag, "prow", jc), channel="col"
            )
            pivot_val = float(seg[0])

            # --- local elimination below the pivot.
            below_mask = my_grows > gcol
            bl = np.nonzero(below_mask)[0]
            if bl.size and pivot_val != 0.0:
                mult = Aloc[bl, lcol] / pivot_val
                Aloc[bl, lcol] = mult
                scratch.add_divides(float(bl.size))
                if jc + 1 < jb:
                    sub = panel_lcols[jc + 1 :]
                    if is_contiguous_range(bl) and is_contiguous_range(sub):
                        # Contiguous local ranges: rank-1 update in place on
                        # a view, no fancy-index gather + scatter.
                        Aloc[bl[0] : bl[-1] + 1, sub[0] : sub[-1] + 1] -= np.outer(
                            mult, seg[1:]
                        )
                    else:
                        Aloc[np.ix_(bl, sub)] -= np.outer(mult, seg[1:])
                    scratch.add_muladds(2.0 * bl.size * (jb - jc - 1))
                comm.charge_counter(scratch)
        return swaps

    return panel

