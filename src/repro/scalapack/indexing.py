"""Shared local-index helpers for the simulated ScaLAPACK routines."""

from __future__ import annotations

import numpy as np


def is_contiguous_range(idx: np.ndarray) -> bool:
    """True when a **sorted ascending** index vector is a contiguous range.

    The local row/column index vectors produced by ``np.nonzero`` over
    ownership masks are always ascending; this predicate lets the local
    update kernels replace a fancy-index gather + scatter with a direct
    slice view.  Callers must not pass unsorted indices — the span test
    would accept e.g. ``[1, 3, 2, 4]`` and the slice view would then pair
    rows with the wrong operand rows.
    """
    return idx.size > 0 and int(idx[-1]) - int(idx[0]) + 1 == idx.size
