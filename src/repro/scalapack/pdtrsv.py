"""Distributed triangular solves on the 2-D block-cyclic layout (``PDTRSV``).

After ``pcalu`` / ``pdgetrf`` leave the packed factors distributed over the
process grid, solving ``L y = P b`` and ``U x = y`` is a blocked substitution
sweep over the ``ceil(n/b)`` block rows.  The routines here implement the
left-looking (fan-in) variant:

for each block ``k`` (ascending for the unit-lower forward substitution,
descending for the upper back substitution),

1. every process of the grid row owning block-row ``k`` multiplies its local
   pieces of the factor's off-diagonal blocks by the solution blocks it has
   already received, and those partial sums are combined by a binomial-tree
   reduction across the process *row* to the diagonal-block owner
   (``log2 Pc`` steps, ``Pc - 1`` messages, charged to the "row" channel);
2. the diagonal owner subtracts the accumulated sum from its right-hand-side
   block and solves the ``b x b`` diagonal triangle locally;
3. the solved block is broadcast down the process *column* owning
   block-column ``k`` (``log2 Pr`` steps, ``Pr - 1`` messages, "col"
   channel), where later steps — and the residual computation of iterative
   refinement — consume it.

Per triangular solve that is ``nb`` column broadcasts and ``nb - 1`` row
reductions (the first forward / last backward block has nothing to reduce),
i.e. ``(n/b)(log2 Pr + log2 Pc)`` message steps on the critical path —
the same collective structure as one outer iteration of the factorization,
which is what makes the solve phase latency-negligible next to it.

Right-hand sides are processed as one ``b x nrhs`` block per step, so a
multi-RHS solve is batched: the message *count* is independent of ``nrhs``
and only the payload words grow, exactly like ScaLAPACK's ``PDTRSM``-based
``PDGETRS``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..distsim.collectives import broadcast, reduce
from ..distsim.engine.base import spmd_program
from ..distsim.vmpi import Communicator
from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_lower_unit, trsm_upper
from ..layouts.block_cyclic import BlockCyclic2D

#: Per-rank solution blocks: block index -> (kb x nrhs) array.
RhsBlocks = Dict[int, np.ndarray]


def block_bounds(dist: BlockCyclic2D, k: int) -> Tuple[int, int]:
    """Global row/column range ``[g0, g1)`` covered by block ``k``."""
    g0 = k * dist.block
    return g0, min(dist.n, g0 + dist.block)


def diag_owner(dist: BlockCyclic2D, k: int) -> int:
    """Rank owning the diagonal block ``(k, k)``."""
    return dist.grid.rank(k % dist.grid.nprow, k % dist.grid.npcol)


def _pdtrsv(
    comm: Communicator,
    dist: BlockCyclic2D,
    LUloc: np.ndarray,
    rhs_blocks: RhsBlocks,
    nrhs: int,
    tag: object,
    lower: bool,
):
    """Shared SPMD body of the forward/backward substitution (one rank).

    Parameters
    ----------
    comm:
        The calling rank's communicator.
    dist:
        The square ``n x n`` block-cyclic distribution of the factors.
    LUloc:
        This rank's local piece of the packed LU factors (``L`` strictly
        below the diagonal with implicit unit diagonal, ``U`` on and above).
    rhs_blocks:
        Right-hand-side blocks owned by this rank, keyed by block index;
        block ``k`` must live on the diagonal owner ``(k % Pr, k % Pc)``.
    nrhs:
        Number of right-hand sides (all blocks are ``kb x nrhs``).
    tag:
        Tag namespace, unique per solve.
    lower:
        ``True`` for the unit-lower forward substitution, ``False`` for the
        upper back substitution.

    Returns
    -------
    (x_cols, x_blocks):
        ``x_cols`` holds the solution entries for every *local column* of
        this rank (ranks of grid column ``c`` end up with the solution
        blocks assigned to ``c``, courtesy of the column broadcasts);
        ``x_blocks`` maps each diagonal-owned block index to its solved
        ``kb x nrhs`` block.
    """
    grid = dist.grid
    myrow, mycol = grid.coords(comm.rank)
    my_gcols = dist.local_cols(mycol)
    nb = dist.num_block_cols()
    x_cols = np.zeros((my_gcols.shape[0], nrhs))
    x_blocks: RhsBlocks = {}
    scratch = FlopCounter()

    order = range(nb) if lower else range(nb - 1, -1, -1)
    for step, k in enumerate(order):
        g0, g1 = block_bounds(dist, k)
        kb = g1 - g0
        prow_k = k % grid.nprow
        pcol_k = k % grid.npcol
        root = grid.rank(prow_k, pcol_k)

        acc = None
        if myrow == prow_k:
            lr0 = (k // grid.nprow) * dist.block
            # Local columns already solved: strictly left of the block for
            # the forward sweep, strictly right of it for the backward sweep.
            # Both are contiguous runs of the ascending local column map.
            if lower:
                sel = slice(0, int(np.searchsorted(my_gcols, g0)))
            else:
                sel = slice(int(np.searchsorted(my_gcols, g1)), my_gcols.shape[0])
            width = sel.stop - sel.start
            if width:
                partial = LUloc[lr0 : lr0 + kb, sel] @ x_cols[sel]
                # Charge before the reduce ships `partial`, so the message
                # timestamps include the accumulation that produced it.
                comm.charge_flops(muladds=2.0 * kb * width * nrhs)
            else:
                partial = np.zeros((kb, nrhs))

            def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
                comm.charge_flops(muladds=float(a.size))
                return a + b

            if step > 0:
                acc = yield from reduce.co(
                    comm,
                    partial,
                    add,
                    root=root,
                    group=grid.row_ranks(prow_k),
                    tag=(tag, "red", k),
                    channel="row",
                )
            else:
                acc = partial

        xk = None
        if comm.rank == root:
            rhs = rhs_blocks[k] - acc
            scratch.add_muladds(float(kb * nrhs))
            lc0 = (k // grid.npcol) * dist.block
            diag = LUloc[lr0 : lr0 + kb, lc0 : lc0 + kb]
            if lower:
                xk = trsm_lower_unit(diag, rhs, flops=scratch)
            else:
                xk = trsm_upper(diag, rhs, flops=scratch)
            x_blocks[k] = xk
        comm.charge_counter(scratch)

        if mycol == pcol_k:
            xk = yield from broadcast.co(
                comm,
                xk,
                root=root,
                group=grid.column_ranks(pcol_k),
                tag=(tag, "bc", k),
                channel="col",
            )
            lc0 = (k // grid.npcol) * dist.block
            x_cols[lc0 : lc0 + kb] = xk
    return x_cols, x_blocks


@spmd_program
def pdtrsv_lower_unit(
    comm: Communicator,
    dist: BlockCyclic2D,
    LUloc: np.ndarray,
    rhs_blocks: RhsBlocks,
    nrhs: int,
    tag: object = "pdtrsv-l",
):
    """Blocked distributed forward substitution ``L y = rhs`` (unit-lower ``L``).

    ``L`` is read from the strictly-lower part of the packed ``LUloc`` (unit
    diagonal implicit), exactly as :func:`repro.kernels.trsm.trsm_lower_unit`
    does sequentially.  See the module docstring for the communication
    structure and :func:`_pdtrsv` for the parameters.
    """
    return (yield from _pdtrsv(comm, dist, LUloc, rhs_blocks, nrhs, tag, lower=True))


@spmd_program
def pdtrsv_upper(
    comm: Communicator,
    dist: BlockCyclic2D,
    LUloc: np.ndarray,
    rhs_blocks: RhsBlocks,
    nrhs: int,
    tag: object = "pdtrsv-u",
):
    """Blocked distributed back substitution ``U x = rhs`` (upper ``U``).

    ``U`` is read from the diagonal and above of the packed ``LUloc``.  See
    the module docstring for the communication structure.
    """
    return (yield from _pdtrsv(comm, dist, LUloc, rhs_blocks, nrhs, tag, lower=False))
