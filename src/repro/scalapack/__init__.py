"""Simulated ScaLAPACK baselines (PDGETF2, PDGETRF, PDLASWP, PDTRSM, PDTRSV, PDGEMM).

These reproduce the communication structure of the routines the paper
compares against, on the same virtual-MPI substrate and cost model as CALU.
"""

from .pdgemm import pdgemm_trailing_update
from .pdgetf2 import make_pdgetf2_panel
from .pdgetrf import pdgetrf
from .pdlaswp import apply_swaps_to_permutation, pdlaswp, winners_to_swaps
from .pdtrsm import pdtrsm_block_row
from .pdtrsv import pdtrsv_lower_unit, pdtrsv_upper

__all__ = [
    "pdgetrf",
    "make_pdgetf2_panel",
    "pdlaswp",
    "winners_to_swaps",
    "apply_swaps_to_permutation",
    "pdtrsm_block_row",
    "pdtrsv_lower_unit",
    "pdtrsv_upper",
    "pdgemm_trailing_update",
]
