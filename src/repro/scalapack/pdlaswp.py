"""Distributed row interchanges (ScaLAPACK ``PDLASWP`` analogue).

Rows of a 2-D block-cyclic matrix live on specific grid rows; swapping global
row ``r1`` with global row ``r2`` therefore requires, in every grid column,
the two owning processes to exchange their local segments of those rows.
When both rows live on the same grid row the swap is local and free of
communication.

The paper discusses two implementations: the PDLASWP-style one that performs
"one message exchange for each row swap" (``n log2 Pr`` messages over the
whole factorization) and an improved reduce+broadcast scheme with
``(2n/b) log2 Pr`` messages.  The routine below implements the direct
pairwise exchange (one message per swap per affected process); the analytic
models in :mod:`repro.models` expose both variants so the effect of the
choice can be studied (it is one of the ablations listed in DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..distsim.engine.base import spmd_program
from ..distsim.vmpi import Communicator
from ..layouts.block_cyclic import BlockCyclic2D


def winners_to_swaps(j0: int, winners: Sequence[int]) -> List[Tuple[int, int]]:
    """Convert a list of tournament winners into a sequential swap list.

    The ``i``-th winner must end up in global row ``j0 + i``.  Because earlier
    swaps may have displaced later winners, the swap targets are tracked
    through a position map, exactly as LAPACK's ipiv semantics do.

    Returns a list of ``(target_row, current_row_of_winner)`` pairs to be
    applied in order.
    """
    winners = [int(w) for w in winners]
    # position[original_row] = current location of that row.
    position = {}
    location = {}  # current location -> original row

    def current_of(orig: int) -> int:
        return position.get(orig, orig)

    def orig_at(loc: int) -> int:
        return location.get(loc, loc)

    swaps: List[Tuple[int, int]] = []
    for i, w in enumerate(winners):
        target = j0 + i
        cur = current_of(w)
        if cur == target:
            continue
        swaps.append((target, cur))
        # Swap the occupants of `target` and `cur`.
        a, bb = orig_at(target), orig_at(cur)
        position[a], position[bb] = cur, target
        location[target], location[cur] = bb, a
    return swaps


def apply_swaps_to_permutation(perm: np.ndarray, swaps: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Apply a swap list to a row-permutation bookkeeping vector (in place)."""
    for r1, r2 in swaps:
        if r1 != r2:
            perm[[r1, r2]] = perm[[r2, r1]]
    return perm


@spmd_program
def pdlaswp(
    comm: Communicator,
    dist: BlockCyclic2D,
    Aloc: np.ndarray,
    swaps: Sequence[Tuple[int, int]],
    local_col_indices: np.ndarray,
    tag: object,
    channel: str = "col",
) -> None:
    """Apply a sequence of global row swaps to this rank's local columns.

    Parameters
    ----------
    comm:
        The calling rank's communicator.
    dist:
        The block-cyclic distribution describing row/column ownership.
    Aloc:
        This rank's local array (modified in place).
    swaps:
        Ordered ``(row1, row2)`` global row pairs.
    local_col_indices:
        The *local* column indices of ``Aloc`` the swap should touch (e.g.
        only the columns outside the current panel).
    tag:
        Unique tag namespace for this invocation.
    channel:
        Cost channel; row exchanges travel within a process column, hence
        "col" by default.
    """
    myrow, mycol = dist.grid.coords(comm.rank)
    cols = np.asarray(local_col_indices, dtype=np.int64)
    if cols.size == 0:
        # Still participate in no communication: nothing to do.
        return
    for s, (r1, r2) in enumerate(swaps):
        if r1 == r2:
            continue
        gr1 = (r1 // dist.block) % dist.grid.nprow
        gr2 = (r2 // dist.block) % dist.grid.nprow
        if myrow not in (gr1, gr2):
            continue
        l1 = dist.global_to_local_row(r1)
        l2 = dist.global_to_local_row(r2)
        if gr1 == gr2:
            # Both rows on this grid row: purely local swap.  The fancy read
            # already materialises one row segment; the old np.ix_ form
            # gathered and scattered both rows.
            buf = Aloc[l1, cols]
            Aloc[l1, cols] = Aloc[l2, cols]
            Aloc[l2, cols] = buf
            continue
        if myrow == gr1:
            mine, peer_row, my_local = r1, gr2, l1
        else:
            mine, peer_row, my_local = r2, gr1, l2
        peer = dist.grid.rank(peer_row, mycol)
        received = yield from comm.co_sendrecv(
            peer, Aloc[my_local, cols].copy(), tag=(tag, "swap", s), channel=channel
        )
        Aloc[my_local, cols] = received
