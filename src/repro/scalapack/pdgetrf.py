"""Simulated ScaLAPACK LU driver (``PDGETRF``).

The classic block right-looking factorization: PDGETF2 panels, PDLASWP row
swaps, PDTRSM block-row of U, PDGEMM trailing update — all on the same
virtual-MPI substrate and cost model as CALU, so the two can be compared
message for message.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..distsim.engine import ExecutionEngine
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from .pdgetf2 import make_pdgetf2_panel


def pdgetrf(
    A: np.ndarray,
    grid: ProcessGrid,
    block_size: int,
    machine: Optional[MachineModel] = None,
    engine: Union[None, str, ExecutionEngine] = None,
    matmul: Optional[str] = None,
):
    """Distributed LU with partial pivoting of ``A`` (ScaLAPACK-style baseline).

    Parameters
    ----------
    A:
        Global ``m x n`` matrix (``m >= n``).
    grid:
        Process grid ``Pr x Pc``.
    block_size:
        Block size ``b`` of the 2-D block-cyclic distribution.
    machine:
        Machine model pricing the run.
    engine:
        Virtual-MPI execution engine ("threaded", "event", an engine
        instance, or ``None`` for the process-wide default).
    matmul:
        Distributed-matmul backend for the trailing update ("summa",
        "caps", or ``None`` for the process-wide default).

    Returns
    -------
    repro.parallel.driver.DistributedLUResult
        Factors, pivot sequence and the per-rank communication trace.
    """
    # Imported lazily to avoid a circular import (the shared driver uses the
    # low-level ScaLAPACK building blocks of this package).
    from ..parallel.driver import run_block_lu

    return run_block_lu(
        A,
        grid,
        block_size,
        panel_factory=make_pdgetf2_panel,
        machine=machine,
        engine=engine,
        matmul=matmul,
    )
