"""Distributed trailing-matrix update (ScaLAPACK ``PDGEMM`` analogue).

After the panel factors ``L21`` (broadcast along process rows) and the block
row ``U12`` (broadcast along process columns) are available on every process,
the Schur-complement update ``A22 <- A22 - L21 U12`` is purely local: each
process updates the intersection of the trailing rows and columns it owns.
The arithmetic is charged to the calling rank; the broadcasts themselves are
performed by the driver so that their messages are attributed to the right
channels.
"""

from __future__ import annotations

import numpy as np

from ..distsim.vmpi import Communicator
from ..kernels.flops import FlopCounter
from ..kernels.gemm import gemm_update
from .indexing import is_contiguous_range


def pdgemm_trailing_update(
    comm: Communicator,
    Aloc: np.ndarray,
    L21_local: np.ndarray,
    U12_local: np.ndarray,
    local_row_indices: np.ndarray,
    local_col_indices: np.ndarray,
    multiply=None,
) -> None:
    """Update this rank's trailing block: ``A22 -= L21_local @ U12_local``.

    Parameters
    ----------
    comm:
        Calling rank (cost accounting only).
    Aloc:
        Local array, modified in place.
    L21_local:
        The rows of ``L21`` corresponding to this rank's trailing rows
        (``len(local_row_indices) x b``).
    U12_local:
        The columns of ``U12`` corresponding to this rank's trailing columns
        (``b x len(local_col_indices)``).
    local_row_indices, local_col_indices:
        Local indices of the trailing rows/columns owned by this rank.
    multiply:
        Local product kernel ``multiply(A, B, flops=...) -> A @ B`` supplied
        by the matmul backend (e.g. Strassen); ``None`` keeps the classical
        in-place :func:`~repro.kernels.gemm.gemm_update`, bit-identical to
        the historical path.
    """
    rows = np.asarray(local_row_indices, dtype=np.int64)
    cols = np.asarray(local_col_indices, dtype=np.int64)
    if rows.size == 0 or cols.size == 0:
        return
    scratch = FlopCounter()
    if is_contiguous_range(rows) and is_contiguous_range(cols):
        # Trailing rows/cols form contiguous local ranges (always true on
        # small grids, and for the last panels on any grid): update the view
        # in place, skipping the gather + scatter round trip.
        block = Aloc[rows[0] : rows[-1] + 1, cols[0] : cols[-1] + 1]
        if multiply is None:
            gemm_update(block, L21_local, U12_local, flops=scratch)
        else:
            block -= multiply(L21_local, U12_local, flops=scratch)
    else:
        block = Aloc[np.ix_(rows, cols)]
        if multiply is None:
            gemm_update(block, L21_local, U12_local, flops=scratch)
        else:
            block -= multiply(L21_local, U12_local, flops=scratch)
        Aloc[np.ix_(rows, cols)] = block
    comm.charge_counter(scratch)

