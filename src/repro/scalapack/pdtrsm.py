"""Distributed computation of a block-row of U (ScaLAPACK ``PDTRSM`` analogue).

At iteration ``j`` of the block right-looking factorization the processes in
the grid row that owns block-row ``j`` solve ``U12 = L11^{-1} A12`` for their
local columns.  ``L11`` (the unit-lower-triangular diagonal block of the
panel) has already been received through the panel's row broadcast, so the
solve itself involves no communication — only local arithmetic, which is
charged to the calling rank.
"""

from __future__ import annotations

import numpy as np

from ..distsim.vmpi import Communicator
from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_lower_unit
from .indexing import is_contiguous_range


def pdtrsm_block_row(
    comm: Communicator,
    L11: np.ndarray,
    Aloc: np.ndarray,
    local_row_indices: np.ndarray,
    local_col_indices: np.ndarray,
) -> np.ndarray:
    """Overwrite the local piece of the U block-row: ``A12 <- L11^{-1} A12``.

    Parameters
    ----------
    comm:
        Calling rank (used only for cost accounting).
    L11:
        The ``b x b`` unit-lower-triangular block of the current panel.
    Aloc:
        The local array (modified in place).
    local_row_indices:
        Local row indices of the block-row ``j`` rows this rank stores.
    local_col_indices:
        Local column indices of the trailing columns this rank stores.

    Returns
    -------
    numpy.ndarray
        The computed local block of ``U12`` (also written back into ``Aloc``).
    """
    rows = np.asarray(local_row_indices, dtype=np.int64)
    cols = np.asarray(local_col_indices, dtype=np.int64)
    if rows.size == 0 or cols.size == 0:
        return np.zeros((rows.size, cols.size))
    scratch = FlopCounter()
    if is_contiguous_range(rows) and is_contiguous_range(cols):
        # Contiguous local ranges: solve against the view and write straight
        # back, no gather + scatter round trip.
        block = Aloc[rows[0] : rows[-1] + 1, cols[0] : cols[-1] + 1]
        u12 = trsm_lower_unit(L11[: rows.size, : rows.size], block, flops=scratch)
        block[...] = u12
    else:
        block = Aloc[np.ix_(rows, cols)]
        u12 = trsm_lower_unit(L11[: rows.size, : rows.size], block, flops=scratch)
        Aloc[np.ix_(rows, cols)] = u12
    comm.charge_counter(scratch)
    return u12

