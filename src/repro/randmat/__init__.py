"""Reproducible matrix generators used by tests, examples and experiments."""

from .generators import (
    default_rng,
    diagonally_dominant,
    figure1_matrix,
    ill_conditioned,
    linear_system,
    randn,
    rank_deficient,
    tall_skinny,
    toeplitz_random,
    uniform,
)

__all__ = [
    "default_rng",
    "randn",
    "uniform",
    "toeplitz_random",
    "diagonally_dominant",
    "ill_conditioned",
    "rank_deficient",
    "tall_skinny",
    "figure1_matrix",
    "linear_system",
]
