"""Reproducible test-matrix generators for the stability and performance studies.

The paper's stability experiments (Section 6.1) use matrices "from a normal
distribution with varying size from 1024 to 8192" and mention that similar
results were obtained for "matrices following different random distributions,
dense Toeplitz matrices".  The generators below cover those families plus a
few extra classes (diagonally dominant, ill-conditioned, rank-deficient) used
by the test suite to probe edge cases, and the exact 16 x 2 matrix of the
worked TSLU example in Figure 1 / Section 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import toeplitz


def default_rng(seed: Optional[int] = 0) -> np.random.Generator:
    """The package-wide random generator factory (PCG64, fixed seed by default)."""
    return np.random.default_rng(seed)


def randn(n: int, m: Optional[int] = None, seed: Optional[int] = 0) -> np.ndarray:
    """Standard-normal ``n x m`` matrix (the paper's main stability workload)."""
    m = n if m is None else m
    return default_rng(seed).standard_normal((n, m))


def uniform(n: int, m: Optional[int] = None, seed: Optional[int] = 0) -> np.ndarray:
    """Uniform(-1, 1) ``n x m`` matrix (an alternative random distribution)."""
    m = n if m is None else m
    return default_rng(seed).uniform(-1.0, 1.0, size=(n, m))


def toeplitz_random(n: int, seed: Optional[int] = 0) -> np.ndarray:
    """Dense Toeplitz matrix with standard-normal first row/column."""
    rng = default_rng(seed)
    c = rng.standard_normal(n)
    r = rng.standard_normal(n)
    r[0] = c[0]
    return toeplitz(c, r)


def diagonally_dominant(n: int, seed: Optional[int] = 0) -> np.ndarray:
    """Strictly row-diagonally-dominant random matrix (no pivoting needed)."""
    rng = default_rng(seed)
    A = rng.standard_normal((n, n))
    A += np.diag(np.sum(np.abs(A), axis=1) + 1.0)
    return A


def ill_conditioned(n: int, cond: float = 1.0e10, seed: Optional[int] = 0) -> np.ndarray:
    """Random matrix with prescribed 2-norm condition number ``cond``."""
    rng = default_rng(seed)
    U, _ = np.linalg.qr(rng.standard_normal((n, n)))
    V, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.logspace(0.0, -np.log10(cond), n)
    return (U * s) @ V.T


def rank_deficient(n: int, rank: int, seed: Optional[int] = 0) -> np.ndarray:
    """Random ``n x n`` matrix of the given rank (< n) for edge-case tests."""
    if not (0 <= rank <= n):
        raise ValueError("rank must be between 0 and n")
    rng = default_rng(seed)
    B = rng.standard_normal((n, rank))
    C = rng.standard_normal((rank, n))
    return B @ C


def tall_skinny(m: int, b: int, seed: Optional[int] = 0) -> np.ndarray:
    """Standard-normal ``m x b`` panel (the TSLU workload of Tables 3-4)."""
    return default_rng(seed).standard_normal((m, b))


def figure1_matrix() -> np.ndarray:
    """The exact 16 x 2 matrix of the paper's worked TSLU example (Figure 1).

    The paper writes it transposed::

        A = [ 2 0 2 0 0 1 2 0 2 1 4 1 0 0 1 4
              4 1 0 0 1 4 1 2 0 2 1 0 0 2 0 2 ]^T

    It is distributed over 4 processes with a 1-D block-cyclic layout of
    2 x 2 blocks, so rows (1, 2, 9, 10) in 1-based numbering live on process
    0, etc.  The tournament selects the same pivot rows as Gaussian
    elimination with partial pivoting on this example.
    """
    col0 = [2, 0, 2, 0, 0, 1, 2, 0, 2, 1, 4, 1, 0, 0, 1, 4]
    col1 = [4, 1, 0, 0, 1, 4, 1, 2, 0, 2, 1, 0, 0, 2, 0, 2]
    return np.array([col0, col1], dtype=np.float64).T


def linear_system(
    n: int, seed: Optional[int] = 0, kind: str = "randn"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a linear system ``A x = b`` with known solution.

    Returns ``(A, b, x_true)`` where ``x_true`` is a vector of ones, the
    convention used by the HPL benchmark whose residual tests the paper
    reuses.
    """
    generators = {
        "randn": randn,
        "uniform": uniform,
        "toeplitz": toeplitz_random,
        "diagonally_dominant": diagonally_dominant,
    }
    if kind not in generators:
        raise ValueError(f"unknown matrix kind {kind!r}; choose from {sorted(generators)}")
    A = generators[kind](n, seed=seed)
    x_true = np.ones(n)
    b = A @ x_true
    return A, b, x_true
