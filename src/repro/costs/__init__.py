"""Machine-independent cost ledgers and pricing helpers."""

from .accounting import CostLedger

__all__ = ["CostLedger"]
