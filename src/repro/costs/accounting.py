"""Machine-independent cost ledgers.

The analytic models of the paper (Equations 1-3) express an algorithm's cost
as four numbers per process on the critical path: multiply/add flops,
divisions, messages and words — with messages and words split between the
process-column network and the process-row network.  :class:`CostLedger`
holds exactly those terms, can be priced under any
:class:`~repro.machines.model.MachineModel`, and supports the arithmetic
needed to combine contributions from the different phases of an algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..machines.model import MachineModel


@dataclass
class CostLedger:
    """Per-process critical-path cost of an algorithm phase.

    Attributes
    ----------
    muladds, divides:
        Arithmetic on the critical path (the paper's ``γ`` and ``γ_d`` terms).
    comparisons:
        Pivot-search comparisons on the critical path (priced with ``γ_cmp``,
        which defaults to ``γ`` — see
        :meth:`repro.machines.model.MachineModel.comparison_time`).  The
        simulator charges these for every pivot search, so the analytic
        ledgers must carry them too or model-vs-simulator validation drifts
        whenever ``gamma_cmp`` is set.
    messages_col, words_col:
        Messages and 8-byte words communicated within a process column
        (priced with ``α_c``/``β_c``).
    messages_row, words_row:
        Messages and words within a process row (priced with ``α_r``/``β_r``).
    messages_any, words_any:
        Communication that is not attributed to either network (priced with
        the default ``α``/``β``).
    label:
        Free-form description used in reports.
    """

    muladds: float = 0.0
    divides: float = 0.0
    comparisons: float = 0.0
    messages_col: float = 0.0
    words_col: float = 0.0
    messages_row: float = 0.0
    words_row: float = 0.0
    messages_any: float = 0.0
    words_any: float = 0.0
    label: str = ""

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "CostLedger") -> "CostLedger":
        return CostLedger(
            muladds=self.muladds + other.muladds,
            divides=self.divides + other.divides,
            comparisons=self.comparisons + other.comparisons,
            messages_col=self.messages_col + other.messages_col,
            words_col=self.words_col + other.words_col,
            messages_row=self.messages_row + other.messages_row,
            words_row=self.words_row + other.words_row,
            messages_any=self.messages_any + other.messages_any,
            words_any=self.words_any + other.words_any,
            label=self.label or other.label,
        )

    def scaled(self, factor: float) -> "CostLedger":
        """Return this ledger with every term multiplied by ``factor``."""
        return CostLedger(
            muladds=self.muladds * factor,
            divides=self.divides * factor,
            comparisons=self.comparisons * factor,
            messages_col=self.messages_col * factor,
            words_col=self.words_col * factor,
            messages_row=self.messages_row * factor,
            words_row=self.words_row * factor,
            messages_any=self.messages_any * factor,
            words_any=self.words_any * factor,
            label=self.label,
        )

    # -------------------------------------------------------------- totals
    @property
    def total_messages(self) -> float:
        """Messages over all channels."""
        return self.messages_col + self.messages_row + self.messages_any

    @property
    def total_words(self) -> float:
        """Words over all channels."""
        return self.words_col + self.words_row + self.words_any

    @property
    def total_flops(self) -> float:
        """Arithmetic operations (muladds + divides).

        Comparisons are deliberately excluded so this stays in the same
        currency as :attr:`repro.kernels.flops.FlopCounter.total` and
        :attr:`repro.distsim.tracing.RunTrace.total_flops` — the paper's
        flop counts neglect pivot searches; they are priced separately via
        ``γ_cmp`` in :meth:`time` and :meth:`breakdown`.
        """
        return self.muladds + self.divides

    # ------------------------------------------------------------- pricing
    def time(self, machine: MachineModel) -> float:
        """Evaluate the ledger under a machine model (seconds)."""
        t = machine.compute_time(self.muladds, self.divides, self.comparisons)
        t += self.messages_col * machine.latency("col")
        t += self.words_col * machine.inv_bandwidth("col")
        t += self.messages_row * machine.latency("row")
        t += self.words_row * machine.inv_bandwidth("row")
        t += self.messages_any * machine.latency("any")
        t += self.words_any * machine.inv_bandwidth("any")
        return t

    def breakdown(self, machine: MachineModel) -> Dict[str, float]:
        """Time split into arithmetic / latency / bandwidth contributions."""
        arithmetic = machine.compute_time(self.muladds, self.divides, self.comparisons)
        latency = (
            self.messages_col * machine.latency("col")
            + self.messages_row * machine.latency("row")
            + self.messages_any * machine.latency("any")
        )
        bandwidth = (
            self.words_col * machine.inv_bandwidth("col")
            + self.words_row * machine.inv_bandwidth("row")
            + self.words_any * machine.inv_bandwidth("any")
        )
        return {
            "arithmetic": arithmetic,
            "latency": latency,
            "bandwidth": bandwidth,
            "total": arithmetic + latency + bandwidth,
        }
