"""Shared ``unknown-option`` error for the registry-addressed knobs.

Every pluggable subsystem of this package — pivoting strategies
(:mod:`repro.core.strategies`), kernel tiers (:mod:`repro.kernels.tiers`),
virtual-MPI engines (:mod:`repro.distsim.engine`) and distributed-matmul
backends (:mod:`repro.matmul`) — resolves a string knob against a registry.
Historically each rolled its own error; this module gives them one uniformly
named exception so callers can catch a single type and the messages follow a
single shape::

    unknown <kind> <name!r>; available: [<registered>, ...]

The exception subclasses :class:`ValueError` so existing ``except ValueError``
call sites (and tests matching the historical message prefixes) keep working.
"""

from __future__ import annotations

from typing import Iterable


class UnknownOptionError(ValueError):
    """A knob value names no registered option.

    Attributes
    ----------
    kind:
        Human-readable knob kind (``"pivoting strategy"``, ``"kernel tier"``,
        ``"execution engine"``, ``"matmul backend"``).
    name:
        The offending value.
    available:
        The registered option names, as a list.
    """

    def __init__(self, kind: str, name: object, available: Iterable[str]):
        self.kind = kind
        self.name = name
        self.available = list(available)
        super().__init__(f"unknown {kind} {name!r}; available: {self.available}")
