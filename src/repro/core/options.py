"""The configuration subsystem: one precedence rule, one ``SolveConfig``.

Every pluggable subsystem of this package — pivoting strategies
(:mod:`repro.core.strategies`), kernel tiers (:mod:`repro.kernels.tiers`),
virtual-MPI engines (:mod:`repro.distsim.engine`) and distributed-matmul
backends (:mod:`repro.matmul`) — exposes one string *knob* resolved against a
registry.  Historically each rolled its own resolution stack (a module-global
override, a ``set_*`` function, a context manager, an environment variable);
this module centralises the machinery:

* :class:`UnknownOptionError` — the shared "knob value names no registered
  option" error, raised with the offender and the available choices named.
* :class:`Option` — one generic knob descriptor implementing the shared
  precedence rule::

      explicit per-call argument  >  ambient context (set_*/context manager)
        >  ``REPRO_*`` environment variable  >  default

  The four knob modules *register* an :class:`Option` at import time and keep
  their historical ``resolve_*`` / ``set_*`` / context-manager entry points
  as thin delegations, so every existing call signature keeps working and
  resolves bit-identically.
* :class:`SolveConfig` — a frozen dataclass bundling everything that
  configures a distributed solve (the four knobs plus grid shape, block size
  ``b``, ``nrhs`` and a machine name).  One ``SolveConfig`` travels through
  the drivers (:mod:`repro.parallel`), the content-addressed stores, the
  serving layer and the CLI, and is the unit the autotuner
  (:mod:`repro.harness.tuning`) searches over.

Ambient state is process-wide (the knobs configure a simulation, not a
thread), exactly as the historical per-module globals were.
"""

from __future__ import annotations

import os
from contextlib import ExitStack, contextmanager
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple


class UnknownOptionError(ValueError):
    """A knob value names no registered option.

    Attributes
    ----------
    kind:
        Human-readable knob kind (``"pivoting strategy"``, ``"kernel tier"``,
        ``"execution engine"``, ``"matmul backend"``).
    name:
        The offending value.
    available:
        The registered option names, as a list.
    """

    def __init__(self, kind: str, name: object, available: Iterable[str]):
        self.kind = kind
        self.name = name
        self.available = list(available)
        super().__init__(f"unknown {kind} {name!r}; available: {self.available}")


# ---------------------------------------------------------------------------
# The generic knob descriptor.

@dataclass
class Option:
    """One registry-addressed configuration knob.

    Parameters
    ----------
    name:
        Knob name — the :class:`SolveConfig` field it populates
        (``"pivoting"``, ``"engine"``, ``"kernel_tier"``, ``"matmul"``).
    kind:
        Human-readable kind used in error messages.
    env_var:
        The ``REPRO_*`` environment variable consulted between the ambient
        context and the default.
    default:
        Value used when no explicit argument, ambient override or environment
        variable applies.
    validate:
        Callable mapping a raw value to its canonical registered name,
        raising :class:`UnknownOptionError` (or a subclass) otherwise.  The
        registering module supplies it, so registry lookups and error types
        stay owned by the subsystem (e.g. the engine knob canonicalises
        aliases and raises ``UnknownEngineError``).

    An :class:`Option` carries the knob's *ambient* override — what the
    historical per-module ``_process_*`` globals held — and implements the
    shared precedence rule in :meth:`resolve`.
    """

    name: str
    kind: str
    env_var: str
    default: str
    validate: Callable[[str], str]
    _ambient: Optional[str] = field(default=None, repr=False)

    # ----------------------------------------------------------- precedence
    def get(self) -> str:
        """The knob's current value without an explicit argument.

        Precedence: ambient context > environment variable (ignored when
        empty, matching every historical stack) > default.  The default is
        trusted (it names a registered option by construction); explicit and
        environment values are validated.
        """
        if self._ambient is not None:
            return self._ambient
        env = os.environ.get(self.env_var)
        if env:
            return self.validate(env)
        return self.default

    def resolve(self, explicit: Optional[str] = None) -> str:
        """Resolve a per-call argument: explicit > ambient > env > default."""
        if explicit is not None:
            return self.validate(explicit)
        return self.get()

    # -------------------------------------------------------- ambient state
    def set(self, value: Optional[str]) -> None:
        """Set (or with ``None`` clear) the ambient process-wide override."""
        self._ambient = self.validate(value) if value is not None else None

    @contextmanager
    def context(self, value: Optional[str]) -> Iterator[None]:
        """Scope an ambient override; nests and restores the previous value."""
        previous = self._ambient
        self.set(value)
        try:
            yield
        finally:
            self._ambient = previous


#: The registered knobs, in the order they appear in keys and reports.
OPTIONS: Dict[str, Option] = {}

#: The knob names every :class:`SolveConfig` carries.
KNOBS = ("pivoting", "engine", "kernel_tier", "matmul")


def register_option(option: Option) -> Option:
    """Register a knob (idempotent per name; last registration wins)."""
    OPTIONS[option.name] = option
    return option


def get_option(name: str) -> Option:
    """Look up a registered knob by name (loads the knob modules first)."""
    _load_knob_modules()
    try:
        return OPTIONS[name]
    except KeyError:
        raise UnknownOptionError(
            "configuration knob", name, sorted(OPTIONS)
        ) from None


def _load_knob_modules() -> None:
    """Import the four knob modules so their options are registered.

    Lazy so that :mod:`repro.core.options` itself stays import-light (the
    knob modules import it, not the other way around).
    """
    import repro.core.strategies  # noqa: F401
    import repro.distsim.engine  # noqa: F401
    import repro.kernels.tiers  # noqa: F401
    import repro.matmul  # noqa: F401


@contextmanager
def option_overrides(**values: Optional[str]) -> Iterator[None]:
    """Scope ambient overrides for several knobs at once (``None`` skipped).

    This is what the CLI uses to apply ``--engine`` / ``--tier`` /
    ``--pivoting`` / ``--matmul`` for the duration of one command instead of
    mutating ``os.environ`` process-wide.
    """
    with ExitStack() as stack:
        for name, value in values.items():
            if value is not None:
                stack.enter_context(get_option(name).context(value))
        yield


# ---------------------------------------------------------------------------
# The first-class configuration object.

@dataclass(frozen=True)
class SolveConfig:
    """Everything that configures one distributed factorization/solve.

    The four registry knobs (``pivoting``, ``engine``, ``kernel_tier``,
    ``matmul``) are always concrete resolved names; the layout parameters
    (``grid``, ``b``, ``nrhs``) and the ``machine`` name are optional —
    drivers fall back to their own arguments when a field is ``None``.

    Build one with :meth:`resolve` (fills unset knobs through the shared
    precedence rule) rather than the raw constructor, and derive variations
    with :meth:`replace`.  The dataclass is frozen so a config can key caches
    and travel through threads safely.
    """

    pivoting: str
    engine: str
    kernel_tier: str
    matmul: str
    grid: Optional[Tuple[int, int]] = None
    b: Optional[int] = None
    nrhs: Optional[int] = None
    machine: Optional[str] = None

    # ------------------------------------------------------------- creation
    @classmethod
    def resolve(
        cls,
        pivoting: Optional[str] = None,
        engine: object = None,
        kernel_tier: Optional[str] = None,
        matmul: Optional[str] = None,
        grid: object = None,
        b: Optional[int] = None,
        nrhs: Optional[int] = None,
        machine: Optional[str] = None,
    ) -> "SolveConfig":
        """Build a config, resolving each knob per the shared precedence rule.

        ``engine`` accepts a name, an
        :class:`~repro.distsim.engine.ExecutionEngine` instance (its ``name``
        is recorded) or ``None``; ``grid`` accepts a ``(Pr, Pc)`` tuple, a
        :class:`~repro.layouts.grid.ProcessGrid`, a process count ``P``
        (mapped to the paper's near-square grid) or ``None``.
        """
        _load_knob_modules()
        if engine is not None and not isinstance(engine, str):
            engine = getattr(engine, "name", None)
        return cls(
            pivoting=OPTIONS["pivoting"].resolve(pivoting),
            engine=OPTIONS["engine"].resolve(engine),
            kernel_tier=OPTIONS["kernel_tier"].resolve(kernel_tier),
            matmul=OPTIONS["matmul"].resolve(matmul),
            grid=normalize_grid(grid),
            b=int(b) if b is not None else None,
            nrhs=int(nrhs) if nrhs is not None else None,
            machine=machine,
        )

    def replace(self, **changes: object) -> "SolveConfig":
        """A copy with the given fields replaced (knob values validated)."""
        _load_knob_modules()
        for knob in KNOBS:
            if knob in changes and changes[knob] is not None:
                changes[knob] = OPTIONS[knob].validate(str(changes[knob]))
        if "grid" in changes:
            changes["grid"] = normalize_grid(changes["grid"])
        return replace(self, **changes)

    # ------------------------------------------------------------ accessors
    @property
    def nprow(self) -> Optional[int]:
        return None if self.grid is None else self.grid[0]

    @property
    def npcol(self) -> Optional[int]:
        return None if self.grid is None else self.grid[1]

    @property
    def P(self) -> Optional[int]:
        """Total process count, when the grid shape is set."""
        return None if self.grid is None else self.grid[0] * self.grid[1]

    def process_grid(self):
        """The :class:`~repro.layouts.grid.ProcessGrid` (``None`` if unset)."""
        if self.grid is None:
            return None
        from ..layouts.grid import ProcessGrid

        return ProcessGrid(*self.grid)

    def machine_model(self):
        """The named :class:`~repro.machines.model.MachineModel` (or ``None``).

        ``machine`` names one of the paper's calibrated systems
        (:data:`repro.machines.nersc.MACHINES`); unknown names raise
        :class:`UnknownOptionError`.
        """
        if self.machine is None:
            return None
        from ..machines.nersc import MACHINES

        try:
            return MACHINES[self.machine]()
        except KeyError:
            raise UnknownOptionError(
                "machine", self.machine, sorted(MACHINES)
            ) from None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON-serializable; tuples become lists)."""
        out = asdict(self)
        if out["grid"] is not None:
            out["grid"] = list(out["grid"])
        return out

    def describe(self) -> str:
        """One-line ``key=value`` rendering for status lines and logs."""
        parts = [
            f"pivoting={self.pivoting}",
            f"engine={self.engine}",
            f"kernel_tier={self.kernel_tier}",
            f"matmul={self.matmul}",
        ]
        if self.grid is not None:
            parts.append(f"grid={self.grid[0]}x{self.grid[1]}")
        if self.b is not None:
            parts.append(f"b={self.b}")
        if self.nrhs is not None:
            parts.append(f"nrhs={self.nrhs}")
        if self.machine is not None:
            parts.append(f"machine={self.machine}")
        return " ".join(parts)

    # -------------------------------------------------------------- ambient
    @contextmanager
    def ambient(self) -> Iterator["SolveConfig"]:
        """Apply this config's four knobs as the ambient context, scoped."""
        with option_overrides(
            pivoting=self.pivoting,
            engine=self.engine,
            kernel_tier=self.kernel_tier,
            matmul=self.matmul,
        ):
            yield self


def normalize_grid(grid: object) -> Optional[Tuple[int, int]]:
    """Normalize a grid argument to a ``(Pr, Pc)`` tuple (or ``None``).

    Accepts ``None``, a ``(Pr, Pc)`` tuple/list, a
    :class:`~repro.layouts.grid.ProcessGrid`, or a process count ``P``
    (mapped to the paper's near-square grid via
    :meth:`~repro.layouts.grid.ProcessGrid.default_for`).
    """
    if grid is None:
        return None
    if isinstance(grid, int):
        from ..layouts.grid import ProcessGrid

        g = ProcessGrid.default_for(grid)
        return (g.nprow, g.npcol)
    nprow = getattr(grid, "nprow", None)
    if nprow is not None:
        return (int(nprow), int(grid.npcol))
    pr, pc = grid  # type: ignore[misc]
    return (int(pr), int(pc))
