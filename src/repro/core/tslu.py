"""TSLU: LU factorization of a tall-skinny panel with ca-pivoting.

This is the sequential-semantics version of the algorithm of Section 3: the
panel's rows are split into ``P`` blocks, a tournament
(:mod:`repro.core.tournament`) selects ``b`` pivot rows and the panel is then
factored *without further pivoting* after permuting the winners to the top.
The numerical results (pivot choice, factors, growth) are identical to what
the distributed version (:mod:`repro.parallel.ptslu`) computes — only the
communication is absent — which is why the stability study (Tables 1-2,
Figure 2) can run on this version at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_right_upper
from .strategies import get_strategy, resolve_pivoting
from .tournament import TournamentResult, partition_rows, tournament_pivoting


@dataclass
class TSLUResult:
    """Factors of a panel computed by TSLU.

    Attributes
    ----------
    L:
        ``m x k`` unit-lower-trapezoidal factor (``k = min(m, b)``); its top
        ``k x k`` block is unit lower triangular.
    U:
        ``k x b`` upper-triangular factor.
    perm:
        Row permutation such that ``A[perm, :] = L @ U``; the first ``k``
        entries are the tournament winners in pivot order.
    winners:
        Global indices of the selected pivot rows (== ``perm[:k]``).
    tournament:
        The raw :class:`~repro.core.tournament.TournamentResult`.
    threshold_history:
        For each eliminated column ``i``, the ratio ``|pivot| / max |column
        i|`` over the rows not yet eliminated — the quantity plotted in
        Figure 2 (right).  ca-pivoting does not guarantee this is 1 (as
        partial pivoting does) but the paper observes it stays above 0.33.
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    winners: np.ndarray
    tournament: TournamentResult
    threshold_history: np.ndarray


def tslu(
    A: np.ndarray,
    nblocks: int,
    flops: Optional[FlopCounter] = None,
    schedule: str = "binary",
    local_kernel: str = "getf2",
    partition: str = "contiguous",
    block_size: Optional[int] = None,
    row_indices: Optional[Sequence[int]] = None,
    compute_thresholds: bool = False,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
) -> TSLUResult:
    """Factor a tall-skinny panel ``A`` (``m x b``) with ca-pivoting.

    Parameters
    ----------
    A:
        The panel (``m x b``, ``m >= b`` for a full factorization; shorter
        panels are handled by selecting ``min(m, b)`` pivots).
    nblocks:
        Number of row blocks ``P`` participating in the tournament.
    flops:
        Optional flop counter.
    schedule:
        Tournament schedule (``"binary"``, ``"flat"``, ``"butterfly"``).
    local_kernel:
        Leaf factorization kernel (``"getf2"`` or ``"rgetf2"``).
    partition:
        ``"contiguous"`` or ``"block_cyclic"`` row partitioning.
    block_size:
        Block size for the block-cyclic partitioning (defaults to the panel
        width).
    row_indices:
        Optional global row labels (used when the panel is a sub-panel of a
        larger matrix); purely cosmetic for the returned permutation.
    compute_thresholds:
        Also compute the per-column pivot-threshold history (costs one extra
        pass over the panel).  Forces the reference kernel tier so the
        recorded thresholds replay the seed arithmetic bit-for-bit.
    kernel_tier:
        Kernel tier for the tournament (None: process-wide default); see
        :mod:`repro.kernels.tiers`.
    pivoting:
        Pivoting strategy (None: process-wide default, normally ``"ca"`` —
        see :mod:`repro.core.strategies`).  ``"ca"`` is the paper's
        tournament; ``"ca_prrp"`` swaps strong-RRQR selection into the
        tournament (CALU_PRRP); ``"pp"`` factors the whole panel with partial
        pivoting (``nblocks`` only affects communication modelling, which the
        sequential algorithm does not perform).

    Returns
    -------
    TSLUResult
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("tslu expects a 2-D panel")
    m, b = A.shape
    if m == 0 or b == 0:
        raise ValueError("tslu expects a non-empty panel")
    if nblocks < 1:
        raise ValueError("nblocks must be >= 1")

    strategy = get_strategy(resolve_pivoting(pivoting))
    if compute_thresholds:
        # Stability recording must replay the reference arithmetic exactly.
        kernel_tier = "reference"
    k = min(m, b)

    getf2_L: Optional[np.ndarray] = None
    getf2_pos: Optional[np.ndarray] = None
    if not strategy.tournament:
        # Partial pivoting on the whole panel: the winners are the pivot rows
        # of the classic factorization, U its upper-triangular factor.
        from ..kernels.getf2 import getf2

        res = getf2(A, flops=flops, kernel_tier=kernel_tier)
        tres = TournamentResult(
            winners=np.asarray(res.perm[:k], dtype=np.int64),
            U=np.triu(res.lu[:k, :]),
            rounds=0,
        )
        # getf2 already computed every multiplier: row r of the panel's L is
        # the packed row at r's position in getf2's permutation.  Keep them
        # (plus the position map) so L is a gather below, not an O(m b^2)
        # re-solve that would double the work and the charged flops.
        getf2_L = np.tril(res.lu[:, :k], -1)
        np.fill_diagonal(getf2_L, 1.0)
        getf2_pos = np.empty(m, dtype=np.int64)
        getf2_pos[res.perm] = np.arange(m, dtype=np.int64)
    else:
        groups = partition_rows(
            m,
            nblocks,
            scheme=partition,
            block=block_size or b,
        )
        blocks = [(g, A[g, :]) for g in groups]
        tres = tournament_pivoting(
            blocks, b, flops=flops, schedule=schedule, local_kernel=local_kernel,
            kernel_tier=kernel_tier, selector=strategy.selector,
        )
    winners = tres.winners[:k]

    # Build the full row permutation: winners first (in pivot order), then the
    # remaining rows in their original order.
    mask = np.ones(m, dtype=bool)
    mask[winners] = False
    rest = np.nonzero(mask)[0]
    perm = np.concatenate([winners, rest]).astype(np.int64)

    # U is the root factor of the tournament (k x b upper triangular /
    # trapezoidal); L follows from a triangular solve with the permuted panel
    # (tournament strategies) or a gather of the multipliers the panel
    # factorization already produced (partial pivoting).
    U = np.asarray(tres.U, dtype=np.float64)[:k, :]
    if getf2_L is not None:
        L = getf2_L[getf2_pos[perm]]
    else:
        U11 = U[:, :k]
        L = trsm_right_upper(U11, A[perm, :k], flops=flops)

    thresholds = (
        _threshold_history(A[perm, :], k) if compute_thresholds else np.empty(0)
    )

    if row_indices is not None:
        labels = np.asarray(row_indices, dtype=np.int64)
        perm_out = labels[perm]
        winners_out = labels[winners]
    else:
        perm_out = perm
        winners_out = winners

    return TSLUResult(
        L=L,
        U=U,
        perm=perm_out,
        winners=winners_out,
        tournament=tres,
        threshold_history=thresholds,
    )


def _threshold_history(permuted_panel: np.ndarray, k: int) -> np.ndarray:
    """Per-column pivot thresholds of the no-pivoting elimination of the panel.

    At step ``i`` of the (no-pivoting) elimination, the pivot is the diagonal
    entry; the threshold is ``|pivot| / max_j |column_i[j]|`` over the active
    rows ``j >= i``.  Partial pivoting has threshold 1 by construction.
    """
    A = np.array(permuted_panel, dtype=np.float64)
    m, b = A.shape
    out = np.empty(k)
    for i in range(k):
        col = np.abs(A[i:, i])
        colmax = col.max() if col.size else 0.0
        pivot = abs(A[i, i])
        out[i] = 1.0 if colmax == 0.0 else pivot / colmax
        if A[i, i] != 0.0 and i < m - 1:
            factors = A[i + 1 :, i] / A[i, i]
            A[i + 1 :, i:] -= np.outer(factors, A[i, i:])
    return out


def tslu_partial_pivoting_reference(A: np.ndarray) -> np.ndarray:
    """Pivot rows Gaussian elimination with partial pivoting would choose for ``A``.

    Used in tests to compare ca-pivoting with the classic choice (they
    coincide on the Figure 1 example and whenever ``P = 1``).
    """
    from ..kernels.getf2 import getf2

    res = getf2(np.asarray(A, dtype=np.float64))
    k = min(A.shape)
    return res.perm[:k]
