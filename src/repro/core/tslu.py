"""TSLU: LU factorization of a tall-skinny panel with ca-pivoting.

This is the sequential-semantics version of the algorithm of Section 3: the
panel's rows are split into ``P`` blocks, a tournament
(:mod:`repro.core.tournament`) selects ``b`` pivot rows and the panel is then
factored *without further pivoting* after permuting the winners to the top.
The numerical results (pivot choice, factors, growth) are identical to what
the distributed version (:mod:`repro.parallel.ptslu`) computes — only the
communication is absent — which is why the stability study (Tables 1-2,
Figure 2) can run on this version at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_right_upper
from .tournament import TournamentResult, partition_rows, tournament_pivoting


@dataclass
class TSLUResult:
    """Factors of a panel computed by TSLU.

    Attributes
    ----------
    L:
        ``m x k`` unit-lower-trapezoidal factor (``k = min(m, b)``); its top
        ``k x k`` block is unit lower triangular.
    U:
        ``k x b`` upper-triangular factor.
    perm:
        Row permutation such that ``A[perm, :] = L @ U``; the first ``k``
        entries are the tournament winners in pivot order.
    winners:
        Global indices of the selected pivot rows (== ``perm[:k]``).
    tournament:
        The raw :class:`~repro.core.tournament.TournamentResult`.
    threshold_history:
        For each eliminated column ``i``, the ratio ``|pivot| / max |column
        i|`` over the rows not yet eliminated — the quantity plotted in
        Figure 2 (right).  ca-pivoting does not guarantee this is 1 (as
        partial pivoting does) but the paper observes it stays above 0.33.
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    winners: np.ndarray
    tournament: TournamentResult
    threshold_history: np.ndarray


def tslu(
    A: np.ndarray,
    nblocks: int,
    flops: Optional[FlopCounter] = None,
    schedule: str = "binary",
    local_kernel: str = "getf2",
    partition: str = "contiguous",
    block_size: Optional[int] = None,
    row_indices: Optional[Sequence[int]] = None,
    compute_thresholds: bool = False,
    kernel_tier: Optional[str] = None,
) -> TSLUResult:
    """Factor a tall-skinny panel ``A`` (``m x b``) with ca-pivoting.

    Parameters
    ----------
    A:
        The panel (``m x b``, ``m >= b`` for a full factorization; shorter
        panels are handled by selecting ``min(m, b)`` pivots).
    nblocks:
        Number of row blocks ``P`` participating in the tournament.
    flops:
        Optional flop counter.
    schedule:
        Tournament schedule (``"binary"``, ``"flat"``, ``"butterfly"``).
    local_kernel:
        Leaf factorization kernel (``"getf2"`` or ``"rgetf2"``).
    partition:
        ``"contiguous"`` or ``"block_cyclic"`` row partitioning.
    block_size:
        Block size for the block-cyclic partitioning (defaults to the panel
        width).
    row_indices:
        Optional global row labels (used when the panel is a sub-panel of a
        larger matrix); purely cosmetic for the returned permutation.
    compute_thresholds:
        Also compute the per-column pivot-threshold history (costs one extra
        pass over the panel).  Forces the reference kernel tier so the
        recorded thresholds replay the seed arithmetic bit-for-bit.
    kernel_tier:
        Kernel tier for the tournament (None: process-wide default); see
        :mod:`repro.kernels.tiers`.

    Returns
    -------
    TSLUResult
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("tslu expects a 2-D panel")
    m, b = A.shape
    if m == 0 or b == 0:
        raise ValueError("tslu expects a non-empty panel")
    if nblocks < 1:
        raise ValueError("nblocks must be >= 1")

    groups = partition_rows(
        m,
        nblocks,
        scheme=partition,
        block=block_size or b,
    )
    if compute_thresholds:
        # Stability recording must replay the reference arithmetic exactly.
        kernel_tier = "reference"
    blocks = [(g, A[g, :]) for g in groups]
    tres = tournament_pivoting(
        blocks, b, flops=flops, schedule=schedule, local_kernel=local_kernel,
        kernel_tier=kernel_tier,
    )
    k = min(m, b)
    winners = tres.winners[:k]

    # Build the full row permutation: winners first (in pivot order), then the
    # remaining rows in their original order.
    mask = np.ones(m, dtype=bool)
    mask[winners] = False
    rest = np.nonzero(mask)[0]
    perm = np.concatenate([winners, rest]).astype(np.int64)

    # U is the root factor of the tournament (k x b upper triangular /
    # trapezoidal); L follows from a triangular solve with the permuted panel.
    U = np.asarray(tres.U, dtype=np.float64)[:k, :]
    permuted = A[perm, :]
    U11 = U[:, :k]
    L = trsm_right_upper(U11, permuted[:, :k], flops=flops)

    thresholds = (
        _threshold_history(permuted, k) if compute_thresholds else np.empty(0)
    )

    if row_indices is not None:
        labels = np.asarray(row_indices, dtype=np.int64)
        perm_out = labels[perm]
        winners_out = labels[winners]
    else:
        perm_out = perm
        winners_out = winners

    return TSLUResult(
        L=L,
        U=U,
        perm=perm_out,
        winners=winners_out,
        tournament=tres,
        threshold_history=thresholds,
    )


def _threshold_history(permuted_panel: np.ndarray, k: int) -> np.ndarray:
    """Per-column pivot thresholds of the no-pivoting elimination of the panel.

    At step ``i`` of the (no-pivoting) elimination, the pivot is the diagonal
    entry; the threshold is ``|pivot| / max_j |column_i[j]|`` over the active
    rows ``j >= i``.  Partial pivoting has threshold 1 by construction.
    """
    A = np.array(permuted_panel, dtype=np.float64)
    m, b = A.shape
    out = np.empty(k)
    for i in range(k):
        col = np.abs(A[i:, i])
        colmax = col.max() if col.size else 0.0
        pivot = abs(A[i, i])
        out[i] = 1.0 if colmax == 0.0 else pivot / colmax
        if A[i, i] != 0.0 and i < m - 1:
            factors = A[i + 1 :, i] / A[i, i]
            A[i + 1 :, i:] -= np.outer(factors, A[i, i:])
    return out


def tslu_partial_pivoting_reference(A: np.ndarray) -> np.ndarray:
    """Pivot rows Gaussian elimination with partial pivoting would choose for ``A``.

    Used in tests to compare ca-pivoting with the classic choice (they
    coincide on the Figure 1 example and whenever ``P = 1``).
    """
    from ..kernels.getf2 import getf2

    res = getf2(np.asarray(A, dtype=np.float64))
    k = min(A.shape)
    return res.perm[:k]
