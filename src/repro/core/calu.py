"""CALU: communication-avoiding LU factorization of a dense matrix.

The block right-looking driver of Section 2 / Section 4 of the paper, in its
sequential-semantics form: the matrix is traversed by block-columns of width
``b``; each panel is factored with TSLU (ca-pivoting over ``Pr`` row blocks),
the pivot rows are swapped across the whole matrix, the ``U`` block-row is
obtained from a triangular solve, and the trailing matrix receives the usual
Schur-complement update.

Because ca-pivoting is the only thing that distinguishes CALU from the classic
blocked factorization *numerically*, this sequential version produces exactly
the factors, permutations and growth behaviour the distributed code would —
it is therefore the engine behind the stability experiments (Tables 1-2,
Figure 2), while :mod:`repro.parallel.pcalu` adds the communication structure
on top of the same building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..kernels.flops import FlopCounter
from ..kernels.gemm import gemm_update
from ..kernels.laswp import permute_rows_inplace
from ..kernels.pivoting import invert_perm
from ..kernels.trsm import trsm_lower_unit, trsm_upper
from .tslu import tslu


@dataclass
class CALUResult:
    """Factors produced by CALU.

    Attributes
    ----------
    L:
        ``m x k`` unit-lower-trapezoidal factor, ``k = min(m, n)``.
    U:
        ``k x n`` upper-trapezoidal factor.
    perm:
        Row permutation with ``A[perm, :] = L @ U`` (up to rounding).
    growth_history:
        Maximum absolute entry of the working matrix after each panel step
        (only populated when requested) — feeds the growth factor g_T.
    threshold_history:
        Concatenated per-column pivot thresholds (pivot magnitude divided by
        the column maximum at elimination time) over all panels — feeds the
        τ_min / τ_ave columns of Table 1 and Figure 2 (right).
    flops:
        Arithmetic performed (muladds, divides, comparisons).
    panel_width:
        The block size ``b`` used.
    nblocks:
        The number of row blocks ``Pr`` used by the panel tournaments.
    pivoting:
        The pivoting strategy the panels used (``"pp"``, ``"ca"`` or
        ``"ca_prrp"``; see :mod:`repro.core.strategies`).
    """

    L: np.ndarray
    U: np.ndarray
    perm: np.ndarray
    growth_history: List[float] = field(default_factory=list)
    threshold_history: np.ndarray = field(default_factory=lambda: np.empty(0))
    flops: FlopCounter = field(default_factory=FlopCounter)
    panel_width: int = 0
    nblocks: int = 1
    pivoting: str = "ca"


def calu(
    A: np.ndarray,
    block_size: int,
    nblocks: int,
    schedule: str = "binary",
    local_kernel: str = "getf2",
    partition: str = "block_cyclic",
    track_growth: bool = False,
    compute_thresholds: bool = False,
    kernel_tier: Optional[str] = None,
    pivoting: Optional[str] = None,
) -> CALUResult:
    """Factor ``A`` with communication-avoiding LU (ca-pivoting panels).

    Parameters
    ----------
    A:
        ``m x n`` dense matrix (``m >= n``; square in all the paper's
        experiments).
    block_size:
        Panel width ``b`` of the 2-D block-cyclic distribution.
    nblocks:
        Number of row blocks ``Pr`` over which each panel's tournament is
        played.  From the point of view of numerical behaviour only ``Pr``
        matters (paper, Section 6.1), so this is the "P" of Tables 1-2.
    schedule, local_kernel, partition:
        Passed to :func:`repro.core.tslu.tslu` (tournament schedule, leaf
        kernel, row-partitioning scheme).
    track_growth:
        Record the growth history needed for the growth factor g_T.
    compute_thresholds:
        Record per-column pivot thresholds (needed for τ_min / τ_ave).
    kernel_tier:
        Kernel tier for panels and tournaments (None: process-wide default,
        see :mod:`repro.kernels.tiers`).  Requesting growth or threshold
        recording forces the reference tier so the stability experiments are
        reproducible bit-for-bit regardless of the knob.
    pivoting:
        Pivoting strategy for the panels (None: process-wide default,
        normally ``"ca"`` — see :mod:`repro.core.strategies`): ``"pp"``
        (partial-pivoting panels, i.e. blocked GEPP), ``"ca"`` (the paper's
        tournament) or ``"ca_prrp"`` (strong-RRQR tournament, CALU_PRRP).

    Returns
    -------
    CALUResult

    Notes
    -----
    When ``block_size >= n`` or ``nblocks == 1`` the pivot choice reduces to
    ordinary partial pivoting on each panel, which is the paper's claim that
    ca-pivoting "is equivalent to partial pivoting when b = 1 or P = 1" (the
    b = 1 case makes every tournament a max-magnitude selection).
    """
    A = np.array(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("calu expects a 2-D matrix")
    m, n = A.shape
    if m < n:
        raise ValueError("calu requires m >= n (factor A or its transpose accordingly)")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    if nblocks < 1:
        raise ValueError("nblocks must be >= 1")

    from .strategies import resolve_pivoting

    strategy = resolve_pivoting(pivoting)
    b = min(block_size, n)
    flops = FlopCounter()
    if track_growth or compute_thresholds:
        # Stability recording must replay the reference arithmetic exactly.
        kernel_tier = "reference"
    # Global permutation accumulated panel by panel: perm[i] = original row of
    # the row currently stored at position i of the working matrix.
    perm = np.arange(m, dtype=np.int64)
    growth: List[float] = []
    thresholds: List[np.ndarray] = []
    # Reusable GEMM workspace: the trailing update's product is materialised
    # into this flat buffer instead of a fresh allocation per panel.
    gemm_work = np.empty((m - b) * (n - b)) if (n > b and m > b) else None

    for j in range(0, n, b):
        jb = min(b, n - j)
        panel = A[j:, j : j + jb]

        pres = tslu(
            panel,
            nblocks=nblocks,
            flops=flops,
            schedule=schedule,
            local_kernel=local_kernel,
            partition=partition,
            block_size=jb,
            compute_thresholds=compute_thresholds,
            kernel_tier=kernel_tier,
            pivoting=strategy,
        )
        if compute_thresholds:
            thresholds.append(pres.threshold_history)

        # Apply the panel permutation to the whole working matrix (rows j..m)
        # and to the global permutation bookkeeping, swapping only the rows
        # the permutation actually moves (no (m-j) x n gather copy).
        local_perm = pres.perm  # permutation of the active rows (0-based in panel)
        permute_rows_inplace(A[j:, :], local_perm)
        permute_rows_inplace(perm[j:], local_perm)

        k = min(panel.shape[0], jb)
        if strategy == "ca_prrp":
            # LU_PRRP block panel (Khabou et al., arXiv:1208.2451): the
            # winner block A11 stays as it is, the eliminated rows store
            # L21 = A21 A11^{-1} (every entry tau-bounded by the strong-RRQR
            # selection), the U block-row keeps the winner rows' original
            # values, and the trailing update is the block Schur complement
            # S = A22 - L21 A12.  No triangularization happens here — that
            # is deferred to a per-panel GEPP post-pass (see below), so the
            # recorded growth history is exactly the block-form quantity the
            # PRRP growth bound (1+2b)^(n/b) speaks about.
            if panel.shape[0] > k:
                # L21 = (A21 U11^{-1}) L11^{-1} from the tournament's
                # triangular factors of the winner block.
                L21 = trsm_upper(
                    np.ascontiguousarray(pres.L[:k, :k].T),
                    np.ascontiguousarray(pres.L[k:, :k].T),
                    flops=flops,
                ).T
                panel[k:, :k] = L21
                if j + jb < n and j + jb < m:
                    # Trailing block Schur update: A22 -= L21 @ A12.
                    gemm_update(
                        A[j + jb :, j + jb :],
                        panel[jb:, :],
                        A[j : j + jb, j + jb :],
                        flops=flops,
                        work=gemm_work,
                    )
            if k < jb:  # degenerate wide fringe: zero the unfactored corner
                panel[k:, k:] = 0.0
        else:
            # Store the panel factors in packed form: U on and above the
            # diagonal, the strictly-lower part of L below it (unit diagonal
            # implicit) — written column by column straight into A, no packed
            # temporary.
            panel[:k, :] = pres.U[:k, :]
            for c in range(k):
                panel[c + 1 :, c] = pres.L[c + 1 :, c]
            if k < jb:  # degenerate wide fringe: zero the unfactored corner
                panel[k:, k:] = 0.0

            if j + jb < n:
                # Block-row of U: U12 = L11^{-1} A12.  The solver reads only
                # the strict lower triangle (unit diagonal implied), so L can
                # be passed as is — no tril + eye temporaries.
                A[j : j + jb, j + jb :] = trsm_lower_unit(
                    pres.L[:jb, :jb], A[j : j + jb, j + jb :], flops=flops
                )
                # Trailing update: A22 -= L21 @ U12.
                if j + jb < m:
                    gemm_update(
                        A[j + jb :, j + jb :],
                        pres.L[jb:, :],
                        A[j : j + jb, j + jb :],
                        flops=flops,
                        work=gemm_work,
                    )
        if track_growth:
            growth.append(float(np.max(np.abs(A))))

    if strategy == "ca_prrp":
        _triangularize_prrp_panels(A, perm, b, n, flops, kernel_tier)

    k = min(m, n)
    L = np.tril(A[:, :k], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(A[:k, :])
    return CALUResult(
        L=L,
        U=U,
        perm=perm,
        growth_history=growth,
        threshold_history=np.concatenate(thresholds) if thresholds else np.empty(0),
        flops=flops,
        panel_width=b,
        nblocks=nblocks,
        pivoting=strategy,
    )


def _triangularize_prrp_panels(
    A: np.ndarray,
    perm: np.ndarray,
    b: int,
    n: int,
    flops: FlopCounter,
    kernel_tier: Optional[str],
) -> None:
    """Turn the block-form PRRP factorization into triangular L/U, in place.

    After the block elimination every diagonal block still holds the original
    winner rows ``A11`` (with ``A21 A11^{-1}`` below and the winners' original
    trailing columns to the right).  A GEPP of each ``b x b`` diagonal block —
    a purely local operation; in the distributed algorithm every rank of the
    grid column performs it redundantly, costing no messages — finishes the
    factorization:

        ``A11[p] = L11 U11``  =>  ``L21_final = L21[:, p-cols] L11``,
        ``U12_final = L11^{-1} A12[p]``,

    leaving the standard packed unit-lower/upper-triangular layout that
    :func:`calu` returns for every strategy.  The growth recorded *before*
    this pass is the block-form growth factor of the PRRP analysis; this pass
    only reshapes factors (its b x b GEPP growth is local and does not
    compound across panels).
    """
    from ..kernels.getf2 import getf2

    m = A.shape[0]
    for j in range(0, n, b):
        jb = min(b, n - j)
        k = min(m - j, jb)
        res = getf2(A[j : j + k, j : j + k], flops=flops, kernel_tier=kernel_tier)
        p = res.perm
        L11 = np.tril(res.lu[:, :k], -1)
        np.fill_diagonal(L11, 1.0)
        # Reorder the winner rows: their global-permutation entries, their
        # already-final L entries to the left, and their raw A12 to the right.
        permute_rows_inplace(perm[j : j + k], p)
        if j > 0:
            A[j : j + k, :j] = A[j : j + k, :j][p]
        A[j : j + k, j : j + k] = res.lu
        if j + jb < n:
            A[j : j + k, j + jb :] = trsm_lower_unit(
                res.lu[:, :k], A[j : j + k, j + jb :][p], flops=flops
            )
        # Eliminated rows below: L21_final = (L21 P^T) L11 so that
        # L21_final U11 = L21 A11 = A21.
        if j + k < m:
            L21 = A[j + k :, j : j + k]
            np.matmul(L21[:, p], L11, out=L21)
            flops.add_muladds(2.0 * (m - j - k) * k * k)


def reconstruct(result: CALUResult) -> np.ndarray:
    """Rebuild the original matrix from a :class:`CALUResult` (verification aid)."""
    PA = result.L @ result.U
    return PA[invert_perm(result.perm), :]


def factorization_error(A: np.ndarray, result: CALUResult) -> float:
    """Relative backward error ``||A[perm] - L U||_inf / ||A||_inf``."""
    A = np.asarray(A, dtype=np.float64)
    residual = A[result.perm, :] - result.L @ result.U
    denom = np.linalg.norm(A, np.inf)
    if denom == 0.0:
        return float(np.linalg.norm(residual, np.inf))
    return float(np.linalg.norm(residual, np.inf) / denom)
