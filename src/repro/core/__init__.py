"""The paper's primary contribution: ca-pivoting, TSLU and CALU.

Sequential-semantics implementations live here (identical numerics to the
distributed versions); the SPMD versions that additionally model the
communication are in :mod:`repro.parallel`.
"""

from .calu import CALUResult, calu, factorization_error, reconstruct
from .solve import (
    SolveResult,
    calu_solve,
    componentwise_backward_error,
    lu_solve,
    solve_with_refinement,
)
from .strategies import (
    DEFAULT_STRATEGY,
    PivotingStrategy,
    available_strategies,
    get_pivoting,
    get_strategy,
    pivoting,
    resolve_pivoting,
    set_pivoting,
)
from .tournament import (
    CandidateSet,
    TournamentResult,
    local_candidates,
    local_candidates_rrqr,
    merge_candidates,
    merge_candidates_rrqr,
    partition_rows,
    tournament_pivoting,
)
from .tslu import TSLUResult, tslu, tslu_partial_pivoting_reference

__all__ = [
    "available_strategies",
    "get_pivoting",
    "get_strategy",
    "set_pivoting",
    "pivoting",
    "resolve_pivoting",
    "PivotingStrategy",
    "DEFAULT_STRATEGY",
    "local_candidates_rrqr",
    "merge_candidates_rrqr",
    "calu",
    "CALUResult",
    "reconstruct",
    "factorization_error",
    "tslu",
    "TSLUResult",
    "tslu_partial_pivoting_reference",
    "tournament_pivoting",
    "TournamentResult",
    "CandidateSet",
    "local_candidates",
    "merge_candidates",
    "partition_rows",
    "lu_solve",
    "solve_with_refinement",
    "calu_solve",
    "componentwise_backward_error",
    "SolveResult",
]
