"""The paper's primary contribution: ca-pivoting, TSLU and CALU.

Sequential-semantics implementations live here (identical numerics to the
distributed versions); the SPMD versions that additionally model the
communication are in :mod:`repro.parallel`.
"""

from .calu import CALUResult, calu, factorization_error, reconstruct
from .solve import (
    SolveResult,
    calu_solve,
    componentwise_backward_error,
    lu_solve,
    solve_with_refinement,
)
from .tournament import (
    CandidateSet,
    TournamentResult,
    local_candidates,
    merge_candidates,
    partition_rows,
    tournament_pivoting,
)
from .tslu import TSLUResult, tslu, tslu_partial_pivoting_reference

__all__ = [
    "calu",
    "CALUResult",
    "reconstruct",
    "factorization_error",
    "tslu",
    "TSLUResult",
    "tslu_partial_pivoting_reference",
    "tournament_pivoting",
    "TournamentResult",
    "CandidateSet",
    "local_candidates",
    "merge_candidates",
    "partition_rows",
    "lu_solve",
    "solve_with_refinement",
    "calu_solve",
    "componentwise_backward_error",
    "SolveResult",
]
