"""Pluggable panel-pivoting strategies: partial, ca, and ca+PRRP pivoting.

The paper's argument is a trade: tournament (ca-)pivoting buys a factor ``b``
of latency over partial pivoting at the price of a modestly larger growth
factor.  Khabou-Demmel-Grigori-Gu (arXiv:1208.2451) sharpen the trade by
replacing the partial-pivoting selection inside the tournament with a strong
rank-revealing QR of the transposed block (CALU_PRRP), bounding the growth by
``(1 + 2b)^(n/b)``.  This module makes the pivoting choice a first-class,
registry-addressed knob — exactly like the kernel tiers
(:mod:`repro.kernels.tiers`) and the virtual-MPI engines
(:mod:`repro.distsim.engine`):

``"pp"``
    Partial pivoting on the whole panel (GEPP panels).  The communication
    baseline: distributed, this is ScaLAPACK's PDGETF2 (``~2 b log2 Pr``
    messages per panel).

``"ca"`` (the default)
    The paper's ca-pivoting tournament with partial-pivoting selection at the
    leaves and merge nodes.  This is the seed behaviour — every recorded
    stability quantity stays bit-identical to it.

``"ca_prrp"``
    The tournament with strong-RRQR selection (:mod:`repro.kernels.rrqr`) at
    the leaves and merge nodes, then the panel factored without further
    pivoting — CALU_PRRP.  Same communication pattern as ``"ca"`` (one
    reduction over the grid column), strictly better growth bound.

Selection, in order of precedence (mirroring the tier/engine knobs):

1. per call: ``calu(A, ..., pivoting="ca_prrp")`` (also on ``tslu``,
   ``ptslu``, ``pcalu`` and the stability reports);
2. process-wide: :func:`set_pivoting` / the :func:`pivoting` context manager;
3. environment: ``REPRO_PIVOTING``;
4. default: ``"ca"``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .options import Option, UnknownOptionError, register_option


@dataclass(frozen=True)
class PivotingStrategy:
    """Declarative description of one pivoting strategy.

    Attributes
    ----------
    name:
        Registry key (what the ``pivoting=`` knob accepts).
    title:
        One-line human description.
    tournament:
        True when panel pivots are chosen by a reduction-tree tournament
        (``log2 P`` messages per panel); False for column-by-column partial
        pivoting (``~2 b log2 P`` messages).
    selector:
        Selection kernel at the tournament leaves/merge nodes: ``"getf2"``
        (partial-pivoting rows) or ``"rrqr"`` (strong-RRQR rows); ``None``
        for non-tournament strategies.
    growth_bound:
        Worst-case growth factor bound, for documentation/reports.
    reference:
        Where the strategy comes from.
    """

    name: str
    title: str
    tournament: bool
    selector: Optional[str]
    growth_bound: str
    reference: str


STRATEGIES: Dict[str, PivotingStrategy] = {
    "pp": PivotingStrategy(
        name="pp",
        title="partial pivoting (GEPP panels, the communication baseline)",
        tournament=False,
        selector=None,
        growth_bound="2^(n-1)",
        reference="LAPACK GETF2 / ScaLAPACK PDGETF2",
    ),
    "ca": PivotingStrategy(
        name="ca",
        title="ca-pivoting tournament with partial-pivoting selection (CALU)",
        tournament=True,
        selector="getf2",
        growth_bound="2^(n(log2(P)+1)) worst case, ~1.5 n^(2/3) observed",
        reference="Grigori-Demmel-Xiang, SC'08 (the reproduced paper)",
    ),
    "ca_prrp": PivotingStrategy(
        name="ca_prrp",
        title="ca-pivoting tournament with strong-RRQR selection (CALU_PRRP)",
        tournament=True,
        selector="rrqr",
        growth_bound="(1+2b)^(n/b)",
        reference="Khabou-Demmel-Grigori-Gu, arXiv:1208.2451",
    ),
}

#: Strategy used when neither a per-call argument, a process-wide override,
#: nor the environment variable is given — the paper's own algorithm.
DEFAULT_STRATEGY = "ca"

#: Environment variable consulted by :func:`get_pivoting` (consistent with
#: ``REPRO_KERNEL_TIER`` / ``REPRO_VMPI_ENGINE`` / ``REPRO_RESULTS_DIR``).
ENV_VAR = "REPRO_PIVOTING"


def _validate(name: str) -> str:
    if name not in STRATEGIES:
        raise UnknownOptionError("pivoting strategy", name, available_strategies())
    return name


#: The pivoting knob, registered into the shared configuration subsystem
#: (:mod:`repro.core.options`): the functions below are thin delegations to
#: its precedence machinery (explicit > ambient > ``REPRO_PIVOTING`` > "ca").
OPTION = register_option(
    Option(
        name="pivoting",
        kind="pivoting strategy",
        env_var=ENV_VAR,
        default=DEFAULT_STRATEGY,
        validate=_validate,
    )
)


def available_strategies() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(STRATEGIES)


def get_strategy(name: str) -> PivotingStrategy:
    """Look up one strategy's metadata by name."""
    return STRATEGIES[_validate(name)]


def get_pivoting() -> str:
    """The process-wide strategy (override > ``REPRO_PIVOTING`` > ``"ca"``)."""
    return OPTION.get()


def set_pivoting(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide strategy override."""
    OPTION.set(name)


@contextmanager
def pivoting(name: str) -> Iterator[None]:
    """Context manager scoping a process-wide strategy override."""
    with OPTION.context(name):
        yield


def resolve_pivoting(name: Optional[str] = None) -> str:
    """Resolve a per-call ``pivoting=`` argument to a validated strategy name."""
    return OPTION.resolve(name)
