"""ca-pivoting: tournament selection of panel pivot rows.

The heart of CALU (Section 2 of the paper) is a *tournament* that selects
``b`` pivot rows for an ``m x b`` panel using a reduction tree:

1. the panel's rows are split into ``P`` row blocks (one per process in the
   parallel algorithm);
2. each block performs an LU factorization with partial pivoting and keeps its
   ``b`` pivot rows as its *candidates*;
3. pairs of candidate sets are repeatedly merged: the two ``b x b`` candidate
   blocks are stacked into a ``2b x b`` matrix, factored with partial
   pivoting, and the ``b`` pivot rows of that factorization are the winners of
   the pair;
4. after ``log2(P)`` rounds a single set of ``b`` global pivot rows remains;
   the ``U`` factor computed at the root of the tree is the ``U11`` factor of
   the panel.

This module implements the reduction in a scheduling-agnostic way so the same
code drives the sequential algorithm (:mod:`repro.core.tslu`), the SPMD
algorithm (:mod:`repro.parallel.ptslu`), and the ablation benchmarks that
compare flat, binary-tree and butterfly schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.batched import getf2_batched, slab_flop_counters
from ..kernels.flops import FlopCounter
from ..kernels.getf2 import getf2
from ..kernels.rgetf2 import rgetf2
from ..kernels.rrqr import select_rows_rrqr
from ..kernels.tiers import resolve_tier

#: The local factorization kernels selectable for the leaf step (the paper's
#: "Cl" = classic DGETF2 and "Rec" = recursive RGETF2 configurations).
LOCAL_KERNELS: dict = {"getf2": getf2, "rgetf2": rgetf2}


@dataclass
class CandidateSet:
    """A set of candidate pivot rows produced at a node of the tournament tree.

    Attributes
    ----------
    rows:
        Global row indices of the candidates, in the order chosen by the
        factorization at this node (pivot order).
    block:
        The candidate rows themselves, a ``k x b`` matrix with ``k <= b``
        (fewer than ``b`` only when the whole panel has fewer than ``b``
        rows).
    """

    rows: np.ndarray
    block: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.block = np.asarray(self.block, dtype=np.float64)
        if self.rows.shape[0] != self.block.shape[0]:
            raise ValueError("candidate rows and block must have matching length")


@dataclass
class TournamentResult:
    """Outcome of a full tournament on one panel.

    Attributes
    ----------
    winners:
        Global indices of the ``b`` selected pivot rows, in the pivot order of
        the root factorization (the order in which they must be placed at the
        top of the panel).
    U:
        The ``b x b`` upper-triangular factor computed at the root of the
        tree; this is the ``U11`` factor of the panel's LU factorization.
    rounds:
        Number of reduction rounds performed (tree depth, excluding the local
        leaf factorizations).
    """

    winners: np.ndarray
    U: np.ndarray
    rounds: int


def local_candidates(
    rows: np.ndarray,
    block: np.ndarray,
    b: int,
    flops: Optional[FlopCounter] = None,
    local_kernel: str = "getf2",
    kernel_tier: Optional[str] = None,
) -> CandidateSet:
    """Leaf step of the tournament: select up to ``b`` candidate rows of one block.

    Parameters
    ----------
    rows:
        Global indices of the block's rows.
    block:
        The block's entries (``len(rows) x b``).
    b:
        Panel width.
    flops:
        Optional flop counter charged with the local factorization.
    local_kernel:
        ``"getf2"`` or ``"rgetf2"`` — which sequential LU performs the local
        factorization (the paper's Cl/Rec configurations).
    kernel_tier:
        Kernel tier for the factorization (None: process-wide default).  Only
        the pivot *order* of the factorization flows into the candidate set —
        the candidate rows themselves are gathered from the original block —
        so the fast tier changes no bits of the result.
    """
    rows = np.asarray(rows, dtype=np.int64)
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[0] != rows.shape[0]:
        raise ValueError("block shape must match the number of row indices")
    k = min(b, block.shape[0])
    if block.shape[0] == 0:
        return CandidateSet(rows=rows[:0], block=block[:0])
    kernel = LOCAL_KERNELS[local_kernel]
    if local_kernel == "rgetf2" and block.shape[0] < block.shape[1]:
        # The recursive kernel requires a tall block; fall back for stubs.
        kernel = getf2
    res = kernel(block, flops=flops, kernel_tier=kernel_tier)
    chosen = res.perm[:k]
    return CandidateSet(rows=rows[chosen], block=block[chosen, :])


def merge_candidates(
    a: CandidateSet,
    b_set: CandidateSet,
    b: int,
    flops: Optional[FlopCounter] = None,
) -> Tuple[CandidateSet, np.ndarray]:
    """Internal tournament node: merge two candidate sets.

    The two candidate blocks are stacked (``a`` on top of ``b_set``) and
    factored with partial pivoting; the first ``b`` pivot rows win.

    Returns
    -------
    (winner, U):
        ``winner`` is the merged :class:`CandidateSet`; ``U`` is the upper
        triangular factor of the stacked factorization (needed at the root of
        the tree, where it becomes the panel's ``U11``).

    Notes
    -----
    Merges always run reference-tier arithmetic: the ``U`` factor computed
    here flows straight into the panel factors, so its bits must not depend
    on the configured kernel tier.  Batches of same-shape merges go through
    :func:`~repro.kernels.batched.getf2_batched` instead (bit-identical, one
    call per reduction round) — see ``_merge_round``.
    """
    stacked = np.vstack([a.block, b_set.block])
    all_rows = np.concatenate([a.rows, b_set.rows])
    if stacked.shape[0] == 0:
        return CandidateSet(rows=all_rows, block=stacked), np.zeros((0, 0))
    res = getf2(stacked, flops=flops, kernel_tier="reference")
    k = min(b, stacked.shape[0])
    chosen = res.perm[:k]
    winner = CandidateSet(rows=all_rows[chosen], block=stacked[chosen, :])
    kk = min(stacked.shape[0], stacked.shape[1])
    U = np.triu(res.lu[:kk, :])
    return winner, U


def local_candidates_rrqr(
    rows: np.ndarray,
    block: np.ndarray,
    b: int,
    flops: Optional[FlopCounter] = None,
) -> CandidateSet:
    """Leaf step of the CALU_PRRP tournament: strong-RRQR row selection.

    Same contract as :func:`local_candidates`, but the candidates are the rows
    a strong rank-revealing QR of ``block.T`` picks — every rejected row is a
    ``tau``-bounded combination of the selected ones, which is what bounds the
    PRRP growth factor (Khabou et al., arXiv:1208.2451).
    """
    rows = np.asarray(rows, dtype=np.int64)
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[0] != rows.shape[0]:
        raise ValueError("block shape must match the number of row indices")
    if block.shape[0] == 0:
        return CandidateSet(rows=rows[:0], block=block[:0])
    chosen = select_rows_rrqr(block, min(b, block.shape[0]), flops=flops)
    return CandidateSet(rows=rows[chosen], block=block[chosen, :])


def merge_candidates_rrqr(
    a: CandidateSet,
    b_set: CandidateSet,
    b: int,
    flops: Optional[FlopCounter] = None,
) -> Tuple[CandidateSet, None]:
    """Internal CALU_PRRP tournament node: strong-RRQR merge of two candidate sets.

    The stacked ``2b x b`` candidate block is reduced to ``b`` winners by
    strong-RRQR row selection.  Unlike :func:`merge_candidates`, no ``U``
    factor falls out of the selection — CALU_PRRP computes the panel's ``U11``
    in a second no-pivoting elimination of the winner rows (see
    :func:`tournament_pivoting`), so the second tuple element is ``None``.
    """
    stacked = np.vstack([a.block, b_set.block])
    all_rows = np.concatenate([a.rows, b_set.rows])
    if stacked.shape[0] == 0:
        return CandidateSet(rows=all_rows, block=stacked), None
    chosen = select_rows_rrqr(stacked, min(b, stacked.shape[0]), flops=flops)
    return CandidateSet(rows=all_rows[chosen], block=stacked[chosen, :]), None


def _reduce_selected(
    candidates: List[CandidateSet],
    b: int,
    flops: Optional[FlopCounter],
    schedule: str,
    merge_fn,
) -> Tuple[CandidateSet, int]:
    """Schedule-shaped reduction with a pluggable merge (selection only, no U).

    Supports the same three schedules as the partial-pivoting tournament.
    Used by the ``rrqr`` selector, whose merges carry no ``U`` factor and need
    none of the bit-compatibility batching of the ``getf2`` path.

    Deliberately a separate implementation from ``_flat_reduce`` /
    ``_binary_reduce`` / ``_butterfly_reduce`` + ``_merge_round``: those are
    bit-locked to the seed arithmetic (and interwoven with the batched-LU
    fast path), so they must not grow a merge-operator parameter.  The
    scheduling conventions are shared by contract, not by code — any change
    to the pairing order, the butterfly ``candidates[-1]`` padding rule, or
    the charge-once-per-logical-merge flop convention there must be mirrored
    here (and vice versa).
    """
    if schedule == "flat":
        acc = candidates[0]
        rounds = 0
        for nxt in candidates[1:]:
            acc, _ = merge_fn(acc, nxt, b, flops=flops)
            rounds += 1
        return acc, rounds
    if schedule == "binary":
        level = list(candidates)
        rounds = 0
        while len(level) > 1:
            rounds += 1
            nxt = [
                merge_fn(level[i], level[i + 1], b, flops=flops)[0]
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
        return level[0], rounds
    if schedule == "butterfly":
        p = len(candidates)
        if p == 1:
            return candidates[0], 0
        pow2 = 1
        while pow2 < p:
            pow2 *= 2
        current = list(candidates) + [candidates[-1]] * (pow2 - p)
        rounds = 0
        k = 1
        while k < pow2:
            rounds += 1
            # Each unordered pair is computed once and shared (the redundant
            # butterfly merges are bit-identical), but the flop ledger is
            # charged once per logical merge so the accounted arithmetic
            # matches the redundant parallel schedule — same convention as
            # the batched getf2 path.
            cache: dict = {}
            nxt = []
            for i in range(pow2):
                partner = i ^ k
                lo, hi = (i, partner) if i < partner else (partner, i)
                if (lo, hi) not in cache:
                    scratch = FlopCounter()
                    winner, _ = merge_fn(current[lo], current[hi], b, flops=scratch)
                    cache[(lo, hi)] = (winner, scratch)
                winner, scratch = cache[(lo, hi)]
                if flops is not None:
                    flops.merge(scratch)
                nxt.append(winner)
            current = nxt
            k *= 2
        return current[0], rounds
    raise ValueError(f"unknown tournament schedule {schedule!r}")


def _merge_round(
    pairs: List[Tuple[CandidateSet, CandidateSet]],
    b: int,
    flops: Optional[FlopCounter],
    batched: bool,
) -> Tuple[List[CandidateSet], Optional[np.ndarray]]:
    """Merge one reduction round's pairs; returns (winners, U of last pair).

    With ``batched=True``:

    * all pairs whose stacked blocks share a shape are factored in a single
      :func:`~repro.kernels.batched.getf2_batched` call — the arithmetic,
      pivot choices and flop charges are bit-identical to the sequential
      ``merge_candidates`` loop, only the Python-loop overhead of ``P/2``
      separate ``getf2`` calls is gone;
    * repeated pairs — every butterfly level merges each ``(lo, hi)`` pair
      once per participant, which is the redundant computation the paper
      trades for fewer messages — are factored once and their (bit-identical)
      result replicated, while the flop ledger is still charged once per
      logical merge, so the accounted arithmetic matches the sequential
      schedule exactly.

    Odd-shaped pairs (short blocks at the panel fringe) fall back to the
    sequential merge.  With ``batched=False`` this is exactly the seed's
    sequential merge loop.

    The rrqr selector's ``_reduce_selected`` mirrors this round's scheduling
    conventions (pairing order, padding, per-logical-merge flop charging)
    without sharing code — keep the two in sync when changing either.
    """
    n_pairs = len(pairs)
    if not batched:
        out: List[CandidateSet] = []
        U = None
        for a, c in pairs:
            w, U = merge_candidates(a, c, b, flops=flops)
            out.append(w)
        return out, U

    merged: List[Optional[CandidateSet]] = [None] * n_pairs
    # Deduplicate repeated pairs by object identity (butterfly levels build
    # each unordered pair twice, and padded replicas share objects too).
    rep: dict = {}
    dup_of = [rep.setdefault((id(a), id(c)), i) for i, (a, c) in enumerate(pairs)]
    uniq = [i for i in range(n_pairs) if dup_of[i] == i]

    counters: dict = {}  # unique idx -> FlopCounter of that merge
    packed_lu: dict = {}  # unique idx -> packed lu (batched path)
    direct_U: dict = {}  # unique idx -> triu U (sequential path)
    shapes: dict = {}  # unique idx -> stacked shape
    groups: dict = {}
    for i in uniq:
        a, c = pairs[i]
        shape = (a.block.shape[0] + c.block.shape[0], a.block.shape[1])
        shapes[i] = shape
        groups.setdefault(shape, []).append(i)

    for (mrows, ncols), idxs in groups.items():
        if len(idxs) < 2 or mrows == 0 or ncols == 0:
            for i in idxs:
                cnt = FlopCounter()
                merged[i], direct_U[i] = merge_candidates(
                    pairs[i][0], pairs[i][1], b, flops=cnt
                )
                counters[i] = cnt
                if flops is not None:
                    flops.merge(cnt)
            continue
        stack = np.empty((len(idxs), mrows, ncols), dtype=np.float64)
        for s, i in enumerate(idxs):
            a, c = pairs[i]
            stack[s, : a.block.shape[0]] = a.block
            stack[s, a.block.shape[0] :] = c.block
        res = getf2_batched(stack, flops=flops, overwrite=False)
        slab_counts = slab_flop_counters(mrows, ncols, res.zero_columns)
        k = min(b, mrows)
        for s, i in enumerate(idxs):
            a, c = pairs[i]
            all_rows = np.concatenate([a.rows, c.rows])
            chosen = res.perm[s][:k]
            merged[i] = CandidateSet(rows=all_rows[chosen], block=stack[s][chosen, :])
            counters[i] = slab_counts[s]
            packed_lu[i] = res.lu[s]

    for i in range(n_pairs):
        j = dup_of[i]
        if j != i:
            merged[i] = merged[j]  # bit-identical by construction; share it
            if flops is not None:
                flops.merge(counters[j])

    if n_pairs == 0:
        return [], None
    last = dup_of[n_pairs - 1]
    if last in direct_U:
        U = direct_U[last]
    else:
        mrows, ncols = shapes[last]
        U = np.triu(packed_lu[last][: min(mrows, ncols), :])
    return merged, U


def tournament_pivoting(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray]],
    b: int,
    flops: Optional[FlopCounter] = None,
    schedule: str = "binary",
    local_kernel: str = "getf2",
    kernel_tier: Optional[str] = None,
    selector: str = "getf2",
) -> TournamentResult:
    """Run the full ca-pivoting tournament over a partitioned panel.

    Parameters
    ----------
    blocks:
        Sequence of ``(global_row_indices, block)`` pairs — one per virtual
        process; together they must cover the panel's rows exactly once.
    b:
        Panel width (number of pivots to select).
    flops:
        Optional flop counter.
    schedule:
        Reduction schedule:

        * ``"binary"`` — binary reduction tree (depth ``ceil(log2 P)``), the
          schedule analysed in the paper;
        * ``"flat"`` — sequential left fold (depth ``P - 1``); same winners in
          exact arithmetic for the same pairings order, more rounds;
        * ``"butterfly"`` — all-reduction schedule; every leaf ends with the
          winners.  Sequentially this performs the redundant work of the
          parallel butterfly and is provided for the ablation study.
    local_kernel:
        Kernel for the leaf factorizations (``"getf2"`` or ``"rgetf2"``).
    kernel_tier:
        Kernel tier (None: process-wide default, see
        :mod:`repro.kernels.tiers`).  Any tier other than ``"reference"``
        batches each reduction round — and the ``getf2`` leaf step — into a
        single :func:`~repro.kernels.batched.getf2_batched` call; the
        winners, ``U`` factor and flop charges are bit-identical to the
        sequential reference schedule.
    selector:
        Selection kernel at the leaves and merge nodes:

        * ``"getf2"`` — partial-pivoting rows (the paper's ca-pivoting);
        * ``"rrqr"`` — strong-RRQR rows (CALU_PRRP, Khabou et al.,
          arXiv:1208.2451).  The selection tree carries no ``U`` factor; the
          panel's ``U11`` is a second no-pivoting elimination of the winner
          rows — exactly the redundant second phase the distributed code
          (:func:`repro.parallel.ptslu.ptslu_rank`) performs anyway.

    Returns
    -------
    TournamentResult
    """
    if b < 1:
        raise ValueError("panel width b must be >= 1")
    if len(blocks) == 0:
        raise ValueError("tournament needs at least one row block")
    if selector == "rrqr":
        return _tournament_rrqr(blocks, b, flops, schedule)
    if selector != "getf2":
        raise ValueError(f"unknown tournament selector {selector!r}")
    batched = resolve_tier(kernel_tier) != "reference"
    if batched and local_kernel == "getf2":
        candidates = _leaf_candidates_batched(blocks, b, flops, kernel_tier)
    else:
        candidates = [
            local_candidates(
                rows, block, b, flops=flops, local_kernel=local_kernel,
                kernel_tier=kernel_tier,
            )
            for rows, block in blocks
        ]
    # Drop empty blocks (they can appear when m is not a multiple of P*b).
    candidates = [c for c in candidates if c.rows.shape[0] > 0]
    if not candidates:
        raise ValueError("all row blocks are empty")

    if schedule == "flat":
        return _flat_reduce(candidates, b, flops, batched)
    if schedule == "binary":
        return _binary_reduce(candidates, b, flops, batched)
    if schedule == "butterfly":
        return _butterfly_reduce(candidates, b, flops, batched)
    raise ValueError(f"unknown tournament schedule {schedule!r}")


def _tournament_rrqr(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray]],
    b: int,
    flops: Optional[FlopCounter],
    schedule: str,
) -> TournamentResult:
    """CALU_PRRP tournament: strong-RRQR selection, then a pivoted root LU.

    The reduction tree only *selects* the winner set — strong RRQR bounds how
    much any rejected row depends on the winners (``|L21| <= tau``), but its
    selection order says nothing about elimination order.  The panel's
    ``U11`` therefore comes from an LU with partial pivoting *of the winner
    block only*: a permutation inside the already-chosen ``b`` rows, so it
    costs no extra communication (every rank of the distributed TSLU performs
    it redundantly after the butterfly), while keeping the diagonal-block
    elimination as stable as GEPP.
    """
    candidates = [
        local_candidates_rrqr(rows, block, b, flops=flops) for rows, block in blocks
    ]
    candidates = [c for c in candidates if c.rows.shape[0] > 0]
    if not candidates:
        raise ValueError("all row blocks are empty")
    winner, rounds = _reduce_selected(
        candidates, b, flops, schedule, merge_candidates_rrqr
    )
    k = min(b, winner.rows.shape[0])
    res = getf2(winner.block[:k, :], flops=flops, kernel_tier="reference")
    order = res.perm[:k]
    return TournamentResult(
        winners=winner.rows[:k][order], U=np.triu(res.lu[:k, :]), rounds=rounds
    )


def _leaf_candidates_batched(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray]],
    b: int,
    flops: Optional[FlopCounter],
    kernel_tier: Optional[str],
) -> List[CandidateSet]:
    """Leaf step as batched ``getf2`` calls over same-shape block groups.

    Bit-identical to looping :func:`local_candidates` with the ``getf2``
    kernel: the batched factorization reproduces the reference pivot order
    exactly, and the candidate rows are gathered from the original blocks.
    Stray shapes (fringe blocks when ``m`` is not a multiple of ``P*b``) use
    the per-block path.
    """
    rows_arr = [np.asarray(r, dtype=np.int64) for r, _ in blocks]
    blk_arr = [np.asarray(blk, dtype=np.float64) for _, blk in blocks]
    out: List[Optional[CandidateSet]] = [None] * len(blocks)
    groups: dict = {}
    for i, blk in enumerate(blk_arr):
        groups.setdefault(blk.shape, []).append(i)
    for shape, idxs in groups.items():
        if len(idxs) < 2 or shape[0] == 0 or shape[1] == 0:
            for i in idxs:
                out[i] = local_candidates(
                    rows_arr[i], blk_arr[i], b, flops=flops, kernel_tier=kernel_tier
                )
            continue
        # The stack is a private temporary and the candidate rows are
        # gathered from the original blocks, so it can be factored in place.
        res = getf2_batched(
            np.stack([blk_arr[i] for i in idxs]), flops=flops, overwrite=True
        )
        k = min(b, shape[0])
        for s, i in enumerate(idxs):
            chosen = res.perm[s][:k]
            out[i] = CandidateSet(rows=rows_arr[i][chosen], block=blk_arr[i][chosen, :])
    return out


def _flat_reduce(
    candidates: List[CandidateSet],
    b: int,
    flops: Optional[FlopCounter],
    batched: bool = False,
) -> TournamentResult:
    if len(candidates) == 1:
        return _binary_reduce(candidates, b, flops, batched)
    # A left fold is inherently sequential; each merge depends on the last.
    acc = candidates[0]
    U = None
    rounds = 0
    for nxt in candidates[1:]:
        acc, U = merge_candidates(acc, nxt, b, flops=flops)
        rounds += 1
    return TournamentResult(winners=acc.rows, U=U[: acc.rows.shape[0], :], rounds=rounds)


def _binary_reduce(
    candidates: List[CandidateSet],
    b: int,
    flops: Optional[FlopCounter],
    batched: bool = False,
) -> TournamentResult:
    level = list(candidates)
    U = None
    rounds = 0
    while len(level) > 1:
        rounds += 1
        pairs = [(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        nxt, U = _merge_round(pairs, b, flops, batched)
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    winner = level[0]
    if U is None:
        # Single block: its own factorization provides U (reference tier —
        # these bits become the panel's U11).
        res = getf2(winner.block, flops=flops, kernel_tier="reference")
        U = np.triu(res.lu)
        winner = CandidateSet(rows=winner.rows[res.perm], block=winner.block[res.perm])
    return TournamentResult(
        winners=winner.rows, U=U[: winner.rows.shape[0], :], rounds=rounds
    )


def _butterfly_reduce(
    candidates: List[CandidateSet],
    b: int,
    flops: Optional[FlopCounter],
    batched: bool = False,
) -> TournamentResult:
    """All-reduction schedule: every participant redundantly merges at each level.

    Mirrors the communication pattern of the parallel TSLU; sequentially the
    redundant merges are executed too (that is exactly the extra work the
    paper trades for fewer messages).  With a non-reference tier each level's
    ``pow2`` redundant merges are one batched call.
    """
    p = len(candidates)
    if p == 1:
        return _binary_reduce(candidates, b, flops, batched)
    # Pad to a power of two by replicating the last candidate set; the
    # replicas never win over their originals because ties keep the first row.
    pow2 = 1
    while pow2 < p:
        pow2 *= 2
    current = list(candidates) + [candidates[-1]] * (pow2 - p)
    rounds = 0
    U = None
    k = 1
    while k < pow2:
        rounds += 1
        pairs = []
        for i in range(pow2):
            partner = i ^ k
            lo, hi = (i, partner) if i < partner else (partner, i)
            pairs.append((current[lo], current[hi]))
        current, U = _merge_round(pairs, b, flops, batched)
        k *= 2
    winner = current[0]
    return TournamentResult(
        winners=winner.rows, U=U[: winner.rows.shape[0], :], rounds=rounds
    )


def partition_rows(
    m: int,
    nblocks: int,
    scheme: str = "contiguous",
    block: int = 1,
    row_indices: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Partition ``m`` panel rows into ``nblocks`` groups.

    Parameters
    ----------
    m:
        Number of rows (ignored if ``row_indices`` is given).
    nblocks:
        Number of groups (virtual processes).
    scheme:
        ``"contiguous"`` — equal contiguous chunks (the layout in the paper's
        Section 2 description); ``"block_cyclic"`` — round-robin blocks of
        ``block`` rows (the layout induced by the 2-D block-cyclic
        distribution, used by CALU and by Figure 1).
    block:
        Block size for the block-cyclic scheme.
    row_indices:
        Optional explicit global indices of the panel's rows (they may be a
        subset of a larger matrix); defaults to ``0..m-1``.

    Returns
    -------
    list of numpy.ndarray
        One array of global row indices per group (possibly empty).
    """
    rows = (
        np.arange(m, dtype=np.int64)
        if row_indices is None
        else np.asarray(row_indices, dtype=np.int64)
    )
    m = rows.shape[0]
    if nblocks < 1:
        raise ValueError("nblocks must be >= 1")
    if scheme == "contiguous":
        chunk = -(-m // nblocks)
        return [rows[i * chunk : (i + 1) * chunk] for i in range(nblocks)]
    if scheme == "block_cyclic":
        positions = np.arange(m, dtype=np.int64)
        return [rows[(positions // block) % nblocks == p] for p in range(nblocks)]
    raise ValueError(f"unknown partition scheme {scheme!r}")
