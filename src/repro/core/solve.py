"""Linear-system solution on top of CALU (or any LU factorization).

The HPL accuracy tests the paper reuses (Table 1) are defined on the solution
of ``A x = b``, so the stability study needs a complete solver: forward and
back substitution with the computed factors, plus optional iterative
refinement ("usually after 2 iterative refinements, the componentwise
backward error can be reduced to the order of 1e-16", Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..kernels.flops import FlopCounter
from ..kernels.trsm import trsm_lower_unit, trsm_upper
from .calu import CALUResult, calu


@dataclass
class SolveResult:
    """Solution of a linear system and its refinement history.

    Attributes
    ----------
    x:
        Computed solution.
    residual_norms:
        Largest residual entry ``max_i |b - A x|_i`` after the initial solve
        and after each refinement step.  For a matrix of right-hand sides
        this is the maximum over *all* entries (the worst single residual of
        any system) — not the matrix infinity norm, which would sum the
        residuals across right-hand sides.
    backward_errors:
        Componentwise backward error ``max_i |r_i| / (|A| |x| + |b|)_i`` after
        the initial solve and after each refinement step (the paper's ``w_b``).
    iterations:
        Number of refinement steps actually performed.
    per_rhs_residuals:
        Max-abs residual split per right-hand side, one list of ``nrhs``
        floats per recorded step (``residual_norms[i] ==
        max(per_rhs_residuals[i])``); a single-RHS solve records one-element
        lists.  The same layout as
        :class:`repro.parallel.psolve.DistributedSolveResult`.
    """

    x: np.ndarray
    residual_norms: list
    backward_errors: list
    iterations: int
    per_rhs_residuals: list = field(default_factory=list)


def lu_solve(
    L: np.ndarray,
    U: np.ndarray,
    perm: np.ndarray,
    b: np.ndarray,
    flops: Optional[FlopCounter] = None,
) -> np.ndarray:
    """Solve ``A x = b`` given ``A[perm, :] = L U``.

    Parameters
    ----------
    L:
        ``n x n`` unit-lower-triangular factor.
    U:
        ``n x n`` upper-triangular factor.
    perm:
        Row permutation returned by the factorization.
    b:
        Right-hand side (vector or matrix of right-hand sides).
    """
    b = np.asarray(b, dtype=np.float64)
    pb = b[np.asarray(perm, dtype=np.int64)]
    one_d = pb.ndim == 1
    if one_d:
        pb = pb[:, None]
    y = trsm_lower_unit(L, pb, flops=flops)
    x = trsm_upper(U, y, flops=flops)
    return x[:, 0] if one_d else x


def componentwise_backward_error(
    A: np.ndarray, x: np.ndarray, b: np.ndarray
) -> float:
    """The componentwise backward error ``w_b = max_i |b - Ax|_i / (|A||x| + |b|)_i``."""
    r = b - A @ x
    denom = np.abs(A) @ np.abs(x) + np.abs(b)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(denom > 0.0, np.abs(r) / denom, 0.0)
    return float(np.max(ratios)) if ratios.size else 0.0


def _max_abs_residual(r: np.ndarray) -> float:
    """Largest residual entry, per right-hand side.

    ``np.linalg.norm(r, np.inf)`` on a *matrix* residual is the maximum row
    sum — it grows with the number of right-hand sides and overstates the
    error (e.g. 2.74e-14 reported vs 1.20e-14 true on a 50x3 system).  The
    recorded quantity is the max-abs entry, which coincides with the vector
    infinity norm in the single-RHS case.
    """
    return float(np.max(np.abs(r))) if r.size else 0.0


def _per_rhs_max_abs(r: np.ndarray) -> list:
    """Max-abs residual per right-hand side (a one-element list for vectors)."""
    if r.size == 0:
        return []
    if r.ndim == 1:
        return [float(np.max(np.abs(r)))]
    return [float(v) for v in np.max(np.abs(r), axis=0)]


def solve_with_refinement(
    A: np.ndarray,
    b: np.ndarray,
    factorization: CALUResult,
    max_iterations: int = 2,
    tolerance: float = 1.0e-16,
    flops: Optional[FlopCounter] = None,
) -> SolveResult:
    """Solve ``A x = b`` with the given factorization plus iterative refinement.

    Refinement stops after ``max_iterations`` steps or when the componentwise
    backward error drops below ``tolerance``.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x = lu_solve(factorization.L, factorization.U, factorization.perm, b, flops=flops)
    r = b - A @ x
    residuals = [_max_abs_residual(r)]
    per_rhs = [_per_rhs_max_abs(r)]
    backward = [componentwise_backward_error(A, x, b)]
    iterations = 0
    for _ in range(max_iterations):
        if backward[-1] <= tolerance:
            break
        r = b - A @ x
        dx = lu_solve(factorization.L, factorization.U, factorization.perm, r, flops=flops)
        x = x + dx
        iterations += 1
        r = b - A @ x
        residuals.append(_max_abs_residual(r))
        per_rhs.append(_per_rhs_max_abs(r))
        backward.append(componentwise_backward_error(A, x, b))
    return SolveResult(
        x=x,
        residual_norms=residuals,
        backward_errors=backward,
        iterations=iterations,
        per_rhs_residuals=per_rhs,
    )


def calu_solve(
    A: np.ndarray,
    b: np.ndarray,
    block_size: int = 64,
    nblocks: int = 4,
    refine: int = 2,
    **calu_kwargs,
) -> SolveResult:
    """One-call convenience: factor ``A`` with CALU and solve ``A x = b``.

    This is the "quickstart" entry point exercised by
    ``examples/quickstart.py``.
    """
    fact = calu(A, block_size=block_size, nblocks=nblocks, **calu_kwargs)
    return solve_with_refinement(A, b, fact, max_iterations=refine)
