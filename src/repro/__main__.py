"""``python -m repro`` — entry point for the experiment-registry CLI."""

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
