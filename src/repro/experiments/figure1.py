"""Figure 1: the worked TSLU example on a 16 x 2 matrix over 4 processes.

The paper walks the tournament through three rounds on a specific 16 x 2
matrix distributed block-cyclically (2 x 2 blocks) over 4 processes and notes
that "the pivot rows used by TSLU happen to be the same as those used by
Gaussian elimination with partial pivoting".  This module replays the example
and reports the per-round candidate rows, the final pivots, and the GEPP
pivots for comparison.

``run`` returns the full in-memory result (including the matrix);
``to_rows`` flattens it to the serializable row form the registered
``figure1`` spec stores and the CLI prints.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.tournament import local_candidates, merge_candidates, partition_rows
from ..core.tslu import tslu, tslu_partial_pivoting_reference
from ..harness import ExperimentSpec, register
from ..randmat.generators import figure1_matrix


def run(schedule: str = "binary") -> Dict[str, object]:
    """Replay the Figure 1 example; returns the per-round state and final pivots."""
    A = figure1_matrix()
    m, b = A.shape
    nprocs = 4
    groups = partition_rows(m, nprocs, scheme="block_cyclic", block=2)

    # Round 0: local factorizations.
    candidates = [local_candidates(g, A[g, :], b) for g in groups]
    rounds: List[List[List[int]]] = [[c.rows.tolist() for c in candidates]]

    # Rounds 1..log2(P): binary merges (the butterfly performs the same merges
    # redundantly on every process).
    level = candidates
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            merged, _ = merge_candidates(level[i], level[i + 1], b)
            nxt.append(merged)
        rounds.append([c.rows.tolist() for c in nxt])
        level = nxt

    result = tslu(A, nblocks=nprocs, partition="block_cyclic", block_size=2, schedule=schedule)
    gepp = tslu_partial_pivoting_reference(A)
    residual = float(np.max(np.abs(A[result.perm, :] - result.L @ result.U)))

    return {
        "matrix": A,
        "rounds": rounds,
        "tslu_pivots": result.winners.tolist(),
        "gepp_pivots": gepp.tolist(),
        "pivots_match_gepp": sorted(result.winners.tolist()) == sorted(gepp.tolist()),
        "factorization_residual": residual,
    }


def to_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a :func:`run` result to serializable rows (one per round + summary)."""
    rows: List[Dict[str, object]] = []
    for level, candidates in enumerate(result["rounds"]):
        rows.append(
            {
                "record": "round",
                "round": level,
                "nodes": len(candidates),
                "candidate_rows": candidates,
            }
        )
    rows.append(
        {
            "record": "summary",
            "tslu_pivots": result["tslu_pivots"],
            "gepp_pivots": result["gepp_pivots"],
            "pivots_match_gepp": result["pivots_match_gepp"],
            "factorization_residual": result["factorization_residual"],
        }
    )
    return rows


def run_rows(schedule: str = "binary") -> List[Dict[str, object]]:
    """Registry runner: the Figure 1 replay in row form."""
    return to_rows(run(schedule))


def describe(result: Dict[str, object]) -> str:
    """Human-readable transcript of the example (matches the paper's narrative)."""
    lines = ["Figure 1 — TSLU on the 16 x 2 example over 4 processes"]
    for level, cand in enumerate(result["rounds"]):
        lines.append(f"  round {level}: candidate rows per node: {cand}")
    lines.append(f"  TSLU pivot rows : {result['tslu_pivots']} (0-based)")
    lines.append(f"  GEPP pivot rows : {result['gepp_pivots']} (0-based)")
    lines.append(f"  pivots match GEPP: {result['pivots_match_gepp']}")
    lines.append(f"  ||PA - LU||_max  : {result['factorization_residual']:.2e}")
    return "\n".join(lines)


SPEC = register(
    ExperimentSpec(
        name="figure1",
        title="Worked TSLU example: 16x2 matrix, 4 processes, 3 rounds",
        runner=run_rows,
        params={"schedule": "binary"},
        quick={},
        columns=("record", "round", "nodes", "candidate_rows", "tslu_pivots",
                 "gepp_pivots", "pivots_match_gepp", "factorization_residual"),
        paper_ref="Figure 1",
        sweepable=("schedule",),
    )
)
