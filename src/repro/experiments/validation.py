"""Model-vs-simulator validation (the ablation experiment of DESIGN.md).

The performance tables (3-7) are generated from the paper's analytic cost
formulas.  This module checks those formulas against the *measured*
communication of the SPMD implementations running on the virtual-MPI
simulator, at sizes small enough to execute in Python:

* TSLU must send exactly ``log2 P`` messages per process per panel;
* PDGETF2 must send ``Θ(b log2 P)`` messages per panel;
* over a full factorization, CALU's per-process message count must be lower
  than PDGETRF's by roughly a factor ``b`` (up to the swap-scheme constant).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..layouts.grid import ProcessGrid
from ..machines.model import unit_machine
from ..parallel.pcalu import pcalu
from ..parallel.ptslu import ptslu
from ..randmat.generators import randn
from ..scalapack.pdgetrf import pdgetrf


def measure_panel_counts(m: int = 128, b: int = 8, P: int = 4) -> Dict[str, float]:
    """Measured per-rank message counts of one TSLU panel on the simulator."""
    A = randn(m, b, seed=11)
    res = ptslu(A, nprocs=P, layout="block", machine=unit_machine())
    return {
        "m": m,
        "b": b,
        "P": P,
        "max_messages_per_rank": res.trace.max_messages,
        "expected_log2P": math.log2(P),
        "max_words_per_rank": res.trace.max_words,
    }


def measure_factorization_counts(
    n: int = 64, b: int = 8, Pr: int = 2, Pc: int = 2
) -> List[Dict[str, float]]:
    """Measured message counts of CALU vs PDGETRF on the same small problem."""
    A = randn(n, seed=13)
    grid = ProcessGrid(Pr, Pc)
    calu_res = pcalu(A, grid, block_size=b, machine=unit_machine())
    ref_res = pdgetrf(A, grid, block_size=b, machine=unit_machine())
    rows = []
    for name, res in (("calu", calu_res), ("pdgetrf", ref_res)):
        err = float(np.max(np.abs(A[res.perm, :] - res.L @ res.U)))
        rows.append(
            {
                "algorithm": name,
                "n": n,
                "b": b,
                "grid": f"{Pr}x{Pc}",
                "total_messages": res.trace.total_messages,
                "max_messages_per_rank": res.trace.max_messages,
                "total_words": res.trace.total_words,
                "critical_path_steps": res.trace.critical_path_time,
                "factorization_error": err,
            }
        )
    return rows
