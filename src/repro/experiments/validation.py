"""Model-vs-simulator validation (the ablation experiment of DESIGN.md).

The performance tables (3-7) are generated from the paper's analytic cost
formulas.  This module checks those formulas against the *measured*
communication of the SPMD implementations running on the virtual-MPI
simulator, at sizes small enough to execute in Python:

* TSLU must send exactly ``log2 P`` messages per process per panel;
* PDGETF2 must send ``Θ(b log2 P)`` messages per panel;
* over a full factorization, CALU's per-process message count must be lower
  than PDGETRF's by roughly a factor ``b`` (up to the swap-scheme constant).

These measurements default to the deterministic coroutine engine
(:mod:`repro.distsim.engine`), which makes them reproducible bit for bit and
keeps process counts in the thousands tractable; pass ``engine="event"`` or
``engine="threaded"`` to cross-check against the other backends (the traces
are identical by the engine-parity contract).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..harness import ExperimentSpec, register
from ..layouts.grid import ProcessGrid
from ..machines.model import unit_machine
from ..parallel.pcalu import pcalu
from ..parallel.ptslu import ptslu
from ..randmat.generators import randn
from ..scalapack.pdgetrf import pdgetrf

#: Engine used by default for validation measurements (deterministic; the
#: coroutine engine keeps figure-scale sweeps at large P fast).
DEFAULT_ENGINE = "coroutine"


def measure_panel_counts(
    m: int = 128, b: int = 8, P: int = 4, engine: str = DEFAULT_ENGINE
) -> Dict[str, float]:
    """Measured per-rank message counts of one TSLU panel on the simulator."""
    A = randn(m, b, seed=11)
    res = ptslu(A, nprocs=P, layout="block", machine=unit_machine(), engine=engine)
    return {
        "m": m,
        "b": b,
        "P": P,
        "max_messages_per_rank": res.trace.max_messages,
        # The butterfly costs exactly log2(P) steps at powers of two and
        # floor(log2 P) + 1 = ceil(log2 P) otherwise (fold + inner butterfly).
        "expected_log2P": math.ceil(math.log2(P)),
        "max_words_per_rank": res.trace.max_words,
    }


def measure_panel_scaling(
    Ps: Sequence[int] = (64, 128, 256, 888),
    b: int = 4,
    rows_per_rank: int = 8,
    engine: str = DEFAULT_ENGINE,
) -> List[Dict[str, float]]:
    """TSLU panel message counts at the paper's process counts (64..888).

    Only feasible on the event engine in reasonable time; the matrix height
    grows with ``P`` so every rank keeps ``rows_per_rank`` rows, as in a weak
    scaling experiment.
    """
    rows = []
    for P in Ps:
        rows.append(
            measure_panel_counts(m=P * rows_per_rank, b=b, P=P, engine=engine)
        )
    return rows


def measure_factorization_counts(
    n: int = 64, b: int = 8, Pr: int = 2, Pc: int = 2, engine: str = DEFAULT_ENGINE
) -> List[Dict[str, float]]:
    """Measured message counts of CALU vs PDGETRF on the same small problem."""
    A = randn(n, seed=13)
    grid = ProcessGrid(Pr, Pc)
    calu_res = pcalu(A, grid, block_size=b, machine=unit_machine(), engine=engine)
    ref_res = pdgetrf(A, grid, block_size=b, machine=unit_machine(), engine=engine)
    rows = []
    for name, res in (("calu", calu_res), ("pdgetrf", ref_res)):
        err = float(np.max(np.abs(A[res.perm, :] - res.L @ res.U)))
        rows.append(
            {
                "algorithm": name,
                "n": n,
                "b": b,
                "grid": f"{Pr}x{Pc}",
                "total_messages": res.trace.total_messages,
                "max_messages_per_rank": res.trace.max_messages,
                "total_words": res.trace.total_words,
                "critical_path_steps": res.trace.critical_path_time,
                "factorization_error": err,
            }
        )
    return rows


def run(
    panel_m: int = 128,
    panel_b: int = 8,
    panel_P: int = 4,
    fact_n: int = 64,
    fact_b: int = 8,
    fact_Pr: int = 2,
    fact_Pc: int = 2,
    engine: str = DEFAULT_ENGINE,
) -> List[Dict[str, object]]:
    """Registry runner: panel + factorization measurements in one row set.

    The ``record`` column distinguishes the TSLU panel measurement (one row)
    from the CALU-vs-PDGETRF factorization measurements (one row per
    algorithm).
    """
    rows: List[Dict[str, object]] = [
        {"record": "tslu_panel",
         **measure_panel_counts(m=panel_m, b=panel_b, P=panel_P, engine=engine)}
    ]
    for row in measure_factorization_counts(
        n=fact_n, b=fact_b, Pr=fact_Pr, Pc=fact_Pc, engine=engine
    ):
        rows.append({"record": "factorization", **row})
    return rows


SPEC = register(
    ExperimentSpec(
        name="validation",
        title="Model-vs-simulator validation: measured message counts",
        runner=run,
        params={"panel_m": 128, "panel_b": 8, "panel_P": 4,
                "fact_n": 64, "fact_b": 8, "fact_Pr": 2, "fact_Pc": 2,
                "engine": DEFAULT_ENGINE},
        quick={"panel_m": 64, "panel_b": 4, "fact_n": 32},
        columns=("record", "algorithm", "m", "n", "b", "P", "grid",
                 "max_messages_per_rank", "expected_log2P", "total_messages",
                 "total_words", "max_words_per_rank", "critical_path_steps",
                 "factorization_error"),
        paper_ref="Section 5 (model validation)",
        sweepable=("panel_P", "panel_b", "engine"),
    )
)
