"""Sweepable single-point scenario specs — beyond the paper's fixed grids.

The paper's tables pin specific (n, P, b) grids; these specs expose the same
underlying measurements as *single points* so that ``repro sweep`` can build
arbitrary grids over them, e.g.::

    python -m repro sweep stability --param P=4,16,64 --param b=8,32
    python -m repro sweep panel --param m=10000,100000 --param P=16,64
    python -m repro sweep panel_counts --param P=2,4,8 --set engine=event

Each scenario returns one (or a few) rows per parameter combination; the
sweep executor expands the cartesian product, runs the jobs concurrently and
caches every point in the content-addressed store, so refining a sweep only
computes the new points.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..harness import ExperimentSpec, register
from .runners import (
    factorization_point,
    panel_point,
    pivoting_comparison,
    stability_point,
)
from .validation import DEFAULT_ENGINE, measure_panel_counts


def panel_counts(
    m: int = 128, b: int = 8, P: int = 4, engine: str = DEFAULT_ENGINE
) -> List[Dict[str, object]]:
    """Measured TSLU panel message counts on the simulator (one row)."""
    return [measure_panel_counts(m=m, b=b, P=P, engine=engine)]


def solve_point(
    n: int = 96,
    P: int = 4,
    b: int = 16,
    nrhs: int = 2,
    seed: int = 0,
    pivoting: str = "ca",
    refine: int = 2,
    engine: str = DEFAULT_ENGINE,
) -> List[Dict[str, object]]:
    """End-to-end distributed solve at one (n, P, b, nrhs) point (one row).

    Runs :func:`repro.parallel.psolve.pdgesv` (factor + permute + two
    distributed triangular solves + distributed iterative refinement) on a
    random system with a known solution, cross-checks against the sequential
    :func:`repro.core.solve.calu_solve` on the same seed/pivoting, and
    validates the measured solve-phase message counts against
    :func:`repro.models.solve_model.solve_message_counts`.
    """
    from ..core.solve import calu_solve
    from ..layouts.grid import ProcessGrid
    from ..machines.model import unit_machine
    from ..models.compare import validate_solve
    from ..parallel.psolve import pdgesv
    from ..randmat.generators import randn

    if b >= n:
        return []
    grid = ProcessGrid.default_for(P)
    A = randn(n, seed=seed + n)
    x_true = randn(n, nrhs, seed=seed + 7919)
    rhs = A @ x_true
    res = pdgesv(
        A,
        rhs,
        grid,
        block_size=b,
        machine=unit_machine(),
        engine=engine,
        pivoting=pivoting,
        refine=refine,
    )
    seq = calu_solve(
        A, rhs, block_size=b, nblocks=grid.nprow, refine=refine, pivoting=pivoting
    )
    check = validate_solve(
        res.trace,
        n,
        b,
        grid.nprow,
        grid.npcol,
        unit_machine(),
        nrhs=nrhs,
        refinements=res.iterations,
    )
    return [
        {
            "n": n,
            "P": P,
            "grid": f"{grid.nprow}x{grid.npcol}",
            "b": b,
            "nrhs": nrhs,
            "pivoting": pivoting,
            "iterations": res.iterations,
            "residual": res.residual_norms[-1],
            "wb": res.backward_errors[-1],
            "max_abs_error": float(np.max(np.abs(res.x - x_true))),
            "vs_sequential": float(np.max(np.abs(res.x - seq.x))),
            "solve_messages": check.measured["total_messages"],
            "model_messages": check.predicted["total_messages"],
            "messages_match": check.messages_match,
            "time_ratio": check.time_ratio,
            "seed": seed,
        }
    ]


def matmul_tradeoff(
    n: int = 64,
    P: int = 49,
    b: int = 8,
    matmul: str = "summa",
    engine: str = DEFAULT_ENGINE,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Words/messages trade-off of one distributed ``C += A B`` (one row).

    Runs the requested backend's standalone :func:`repro.matmul.pdgemm` on an
    ``n x n`` product over ``P`` ranks, checks the numerical result against
    the dense product, validates the measured per-channel message *and* word
    totals against the backend's exact analytic ledger
    (:mod:`repro.models.matmul_model`), and reports the words moved next to
    the Strassen bandwidth lower bound ``(n^3)^{2/3} / P^{2/log2 7}`` — the
    floor CAPS attains and classical schedules cannot.
    """
    from ..layouts.grid import ProcessGrid
    from ..machines.model import unit_machine
    from ..matmul import pdgemm
    from ..models.compare import validate_matmul
    from ..models.matmul_model import strassen_lower_bound_words
    from ..randmat.generators import randn

    grid = ProcessGrid.default_for(P)
    A = randn(n, seed=seed + n)
    B = randn(n, seed=seed + n + 104729)
    result = pdgemm(
        A, B, grid=grid, block_size=b, matmul=matmul,
        machine=unit_machine(), engine=engine,
    )
    max_abs_error = float(np.max(np.abs(result.C - A @ B)))
    check = validate_matmul(
        result.trace, matmul, n, n, n, grid, block_size=b
    )
    return [
        {
            "n": n,
            "P": P,
            "grid": f"{grid.nprow}x{grid.npcol}",
            "b": b,
            "matmul": matmul,
            "max_abs_error": max_abs_error,
            "messages": check.measured["total_messages"],
            "words": check.measured["total_words"],
            "model_messages": check.predicted["total_messages"],
            "model_words": check.predicted["total_words"],
            "messages_match": check.messages_match,
            "words_match": check.words_match,
            "words_per_proc": check.measured["total_words"] / grid.size,
            "lower_bound_words_per_proc": strassen_lower_bound_words(
                n, n, n, grid.size
            ),
            "seed": seed,
        }
    ]


SPEC_STABILITY = register(
    ExperimentSpec(
        name="stability",
        title="Stability point: growth/thresholds/HPL at one (n, P, b)",
        runner=stability_point,
        params={"n": 256, "P": 8, "b": 16, "seed": 0, "method": "calu",
                "pivoting": "ca"},
        quick={"n": 64, "P": 2, "b": 8},
        columns=("n", "P", "b", "method", "gT", "tau_ave", "tau_min", "wb",
                 "HPL1", "HPL2", "HPL3", "hpl_passed", "seed"),
        sweepable=("n", "P", "b", "seed", "method", "pivoting"),
    )
)

SPEC_STABILITY_PRRP = register(
    ExperimentSpec(
        name="stability_prrp",
        title="Pivoting-strategy comparison: pp vs ca vs ca_prrp growth at one (n, P, b)",
        runner=pivoting_comparison,
        params={"n": 1024, "P": 32, "b": 32, "seed": 0, "samples": 1},
        quick={"n": 64, "P": 2, "b": 8},
        columns=("n", "P", "b", "pivoting", "S", "gT", "tau_min", "tau_ave",
                 "max_error", "seed"),
        paper_ref="arXiv:1208.2451 (CALU_PRRP follow-up)",
        sweepable=("n", "P", "b", "seed", "samples"),
        # The runner factors with every strategy explicitly, so the ambient
        # REPRO_PIVOTING knob cannot change its rows.
        ambient_invariant=("pivoting",),
    )
)

SPEC_PANEL = register(
    ExperimentSpec(
        name="panel",
        title="Panel-model point: PDGETF2/TSLU ratio at one (m, b, P, machine)",
        runner=panel_point,
        params={"m": 100_000, "b": 50, "P": 16, "machine": "ibm_power5"},
        quick={"m": 10_000},
        columns=("m", "n=b", "P", "ratio_rec", "ratio_cl", "tslu_gflops_rec"),
        sweepable=("m", "b", "P", "machine"),
    )
)

SPEC_FACTORIZATION = register(
    ExperimentSpec(
        name="factorization",
        title="Factorization-model point: PDGETRF/CALU at one (m, b, P, machine)",
        runner=factorization_point,
        params={"m": 1_000, "b": 50, "P": 16, "machine": "ibm_power5"},
        quick={},
        columns=("m", "b", "P", "grid", "improvement", "calu_gflops", "percent_peak"),
        sweepable=("m", "b", "P", "machine"),
    )
)

SPEC_SOLVE = register(
    ExperimentSpec(
        name="solve",
        title="End-to-end distributed solve: pdgesv accuracy + solve-model validation",
        runner=solve_point,
        params={"n": 96, "P": 4, "b": 16, "nrhs": 2, "seed": 0,
                "pivoting": "ca", "refine": 2, "engine": DEFAULT_ENGINE},
        quick={"n": 48, "P": 2, "b": 8, "nrhs": 1},
        columns=("n", "P", "grid", "b", "nrhs", "pivoting", "iterations",
                 "residual", "wb", "max_abs_error", "vs_sequential",
                 "solve_messages", "model_messages", "messages_match",
                 "time_ratio", "seed"),
        paper_ref="Section 6.1 (HPL accuracy on the solution of Ax=b)",
        sweepable=("n", "P", "b", "nrhs", "seed", "pivoting", "engine"),
    )
)

SPEC_MATMUL_TRADEOFF = register(
    ExperimentSpec(
        name="matmul_tradeoff",
        title="Distributed matmul point: SUMMA vs CAPS words/messages trade-off",
        runner=matmul_tradeoff,
        params={"n": 64, "P": 49, "b": 8, "matmul": "summa",
                "engine": DEFAULT_ENGINE, "seed": 0},
        quick={"n": 32, "P": 7, "b": 4},
        columns=("n", "P", "grid", "b", "matmul", "max_abs_error", "messages",
                 "words", "model_messages", "model_words", "messages_match",
                 "words_match", "words_per_proc", "lower_bound_words_per_proc",
                 "seed"),
        paper_ref="arXiv:1202.3173 (CAPS)",
        sweepable=("n", "P", "b", "matmul", "engine", "seed"),
    )
)

SPEC_PANEL_COUNTS = register(
    ExperimentSpec(
        name="panel_counts",
        title="Simulator point: measured TSLU panel message counts",
        runner=panel_counts,
        params={"m": 128, "b": 8, "P": 4, "engine": DEFAULT_ENGINE},
        quick={"m": 64, "b": 4},
        columns=("m", "b", "P", "max_messages_per_rank", "expected_log2P",
                 "max_words_per_rank"),
        sweepable=("m", "b", "P", "engine"),
    )
)
