"""Tables 5, 6 and 7: PDGETRF / CALU comparisons on the two NERSC machines.

Tables 5-6 report, for square matrices of order 1e3, 5e3 and 1e4, block sizes
50/100/150 and 4..64 processes (grids 2x2 .. 8x8), the time ratio
PDGETRF/CALU ("Impvt") and CALU's GFLOP/s.  Table 7 reports the best-CALU vs
best-PDGETRF speedup when both algorithms are allowed to pick their own best
(P, b).

The rows are produced by the analytic models (Equations 2 and 3) under the
calibrated machine models; a validation benchmark checks the models against
the simulator's measured message counts at small sizes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..machines.model import MachineModel
from ..machines.nersc import cray_xt4, ibm_power5
from ..models.compare import PAPER_GRIDS, best_vs_best, compare_factorization

#: The paper's sweep (Tables 5-6).
PAPER_ORDERS: Sequence[int] = (1_000, 5_000, 10_000)
PAPER_BLOCKS: Sequence[int] = (50, 100, 150)
PAPER_PROC_COUNTS: Sequence[int] = (4, 8, 16, 32, 64)


def run(
    machine: MachineModel,
    orders: Sequence[int] = PAPER_ORDERS,
    blocks: Sequence[int] = PAPER_BLOCKS,
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
) -> List[Dict[str, object]]:
    """Evaluate the PDGETRF/CALU sweep of Table 5 (POWER5) or 6 (XT4)."""
    rows: List[Dict[str, object]] = []
    for m in orders:
        for b in blocks:
            for P in proc_counts:
                Pr, Pc = PAPER_GRIDS[P]
                if m < Pr * b or m < Pc * b:
                    # The paper leaves these entries blank (matrix too small).
                    continue
                cmp_ = compare_factorization(m, b, Pr, Pc, machine)
                rows.append(
                    {
                        "m": m,
                        "b": b,
                        "P": P,
                        "grid": f"{Pr}x{Pc}",
                        "improvement": cmp_.ratio,
                        "calu_gflops": cmp_.calu_gflops,
                        "percent_peak": cmp_.percent_of_peak(machine),
                        "t_calu": cmp_.t_calu,
                        "t_pdgetrf": cmp_.t_pdgetrf,
                    }
                )
    return rows


def run_table5(**kwargs) -> List[Dict[str, object]]:
    """Table 5: PDGETRF/CALU on the IBM POWER5 model."""
    return run(ibm_power5(), **kwargs)


def run_table6(**kwargs) -> List[Dict[str, object]]:
    """Table 6: PDGETRF/CALU on the Cray XT4 model."""
    return run(cray_xt4(), **kwargs)


def run_table7(
    machines: Dict[str, MachineModel] | None = None,
    orders: Sequence[int] = PAPER_ORDERS,
    proc_counts: Sequence[int] = (8, 16, 32, 64),
    blocks: Sequence[int] = PAPER_BLOCKS,
) -> List[Dict[str, object]]:
    """Table 7: best-CALU vs best-PDGETRF speedups on both machines."""
    machines = machines or {"ibm_power5": ibm_power5(), "cray_xt4": cray_xt4()}
    grids: List[Tuple[int, int]] = [PAPER_GRIDS[p] for p in proc_counts]
    rows: List[Dict[str, object]] = []
    for name, machine in machines.items():
        for m in orders:
            entry = best_vs_best(m, machine, grids, blocks)
            entry["machine"] = name
            rows.append(entry)
    return rows
