"""Tables 5, 6 and 7: PDGETRF / CALU comparisons on the two NERSC machines.

Tables 5-6 report, for square matrices of order 1e3, 5e3 and 1e4, block sizes
50/100/150 and 4..64 processes (grids 2x2 .. 8x8), the time ratio
PDGETRF/CALU ("Impvt") and CALU's GFLOP/s.  Table 7 reports the best-CALU vs
best-PDGETRF speedup when both algorithms are allowed to pick their own best
(P, b).

The rows are produced by the analytic models (Equations 2 and 3) under the
calibrated machine models; a validation benchmark checks the models against
the simulator's measured message counts at small sizes.

Thin registered specs over :mod:`repro.experiments.runners`
(``table5`` = IBM POWER5, ``table6`` = Cray XT4, ``table7`` = best vs best).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..harness import ExperimentSpec, register
from ..machines.model import MachineModel
from .runners import best_vs_best_sweep, factorization_sweep

#: The paper's sweep (Tables 5-6).
PAPER_ORDERS: Sequence[int] = (1_000, 5_000, 10_000)
PAPER_BLOCKS: Sequence[int] = (50, 100, 150)
PAPER_PROC_COUNTS: Sequence[int] = (4, 8, 16, 32, 64)

#: Reduced grid used by ``--quick`` smoke runs.
QUICK = {"orders": (1_000,), "blocks": (50,), "proc_counts": (4, 16)}

#: Report columns shared by Tables 5 and 6.
COLUMNS = ("m", "b", "P", "grid", "improvement", "calu_gflops", "percent_peak")


def run(
    machine: Union[str, MachineModel],
    orders: Sequence[int] = PAPER_ORDERS,
    blocks: Sequence[int] = PAPER_BLOCKS,
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
) -> List[Dict[str, object]]:
    """Evaluate the PDGETRF/CALU sweep of Table 5 (POWER5) or 6 (XT4)."""
    return factorization_sweep(machine, orders, blocks, proc_counts)


def run_table5(**kwargs) -> List[Dict[str, object]]:
    """Table 5: PDGETRF/CALU on the IBM POWER5 model."""
    return run(kwargs.pop("machine", "ibm_power5"), **kwargs)


def run_table6(**kwargs) -> List[Dict[str, object]]:
    """Table 6: PDGETRF/CALU on the Cray XT4 model."""
    return run(kwargs.pop("machine", "cray_xt4"), **kwargs)


def run_table7(
    machines: Union[Dict[str, MachineModel], Sequence[str], None] = None,
    orders: Sequence[int] = PAPER_ORDERS,
    proc_counts: Sequence[int] = (8, 16, 32, 64),
    blocks: Sequence[int] = PAPER_BLOCKS,
) -> List[Dict[str, object]]:
    """Table 7: best-CALU vs best-PDGETRF speedups on both machines."""
    machines = machines if machines is not None else ("ibm_power5", "cray_xt4")
    return best_vs_best_sweep(machines, orders, proc_counts, blocks)


SPEC_TABLE5 = register(
    ExperimentSpec(
        name="table5",
        title="PDGETRF/CALU time ratio and GFLOP/s, IBM POWER5 (model)",
        runner=run,
        params={"machine": "ibm_power5", "orders": PAPER_ORDERS,
                "blocks": PAPER_BLOCKS, "proc_counts": PAPER_PROC_COUNTS},
        quick=QUICK,
        columns=COLUMNS,
        paper_ref="Table 5",
        sweepable=("machine",),
    )
)

SPEC_TABLE6 = register(
    ExperimentSpec(
        name="table6",
        title="PDGETRF/CALU time ratio and GFLOP/s, Cray XT4 (model)",
        runner=run,
        params={"machine": "cray_xt4", "orders": PAPER_ORDERS,
                "blocks": PAPER_BLOCKS, "proc_counts": PAPER_PROC_COUNTS},
        quick=QUICK,
        columns=COLUMNS,
        paper_ref="Table 6",
        sweepable=("machine",),
    )
)

SPEC_TABLE7 = register(
    ExperimentSpec(
        name="table7",
        title="Best-CALU vs best-PDGETRF speedups, both machines (model)",
        runner=run_table7,
        params={"machines": ("ibm_power5", "cray_xt4"), "orders": PAPER_ORDERS,
                "proc_counts": (8, 16, 32, 64), "blocks": PAPER_BLOCKS},
        quick={"orders": (1_000,), "proc_counts": (16, 64), "blocks": (50, 100)},
        columns=("machine", "m", "speedup", "calu_gflops", "calu_P", "calu_b",
                 "calu_percent_peak", "pdgetrf_gflops"),
        paper_ref="Table 7",
        sweepable=("machines",),
    )
)
