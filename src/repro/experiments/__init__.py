"""Experiment harness: one module per table/figure of the paper's evaluation.

============  ======================================================
Experiment    Module / entry point
============  ======================================================
Figure 1      :func:`repro.experiments.figure1.run`
Figure 2      :func:`repro.experiments.figure2.run`
Table 1       :func:`repro.experiments.table1.run`
Table 2       :func:`repro.experiments.table2.run`
Table 3       :func:`repro.experiments.panel_tables.run_table3`
Table 4       :func:`repro.experiments.panel_tables.run_table4`
Table 5       :func:`repro.experiments.factorization_tables.run_table5`
Table 6       :func:`repro.experiments.factorization_tables.run_table6`
Table 7       :func:`repro.experiments.factorization_tables.run_table7`
Validation    :mod:`repro.experiments.validation`
============  ======================================================
"""

from . import (
    factorization_tables,
    figure1,
    figure2,
    panel_tables,
    table1,
    table2,
    validation,
)
from .report import format_table, rows_to_csv

__all__ = [
    "figure1",
    "figure2",
    "table1",
    "table2",
    "panel_tables",
    "factorization_tables",
    "validation",
    "format_table",
    "rows_to_csv",
]
