"""Experiment harness: registered specs, one per table/figure of the paper.

Importing this package registers every built-in experiment into the
:mod:`repro.harness` registry (the CLI and benchmarks do this implicitly via
:func:`repro.harness.load_builtin_specs`).

============  ==============  ========================================
Experiment    Spec name       Module / direct entry point
============  ==============  ========================================
Figure 1      ``figure1``     :func:`repro.experiments.figure1.run`
Figure 2      ``figure2``     :func:`repro.experiments.figure2.run`
Table 1       ``table1``      :func:`repro.experiments.table1.run`
Table 2       ``table2``      :func:`repro.experiments.table2.run`
Table 3       ``table3``      :func:`repro.experiments.panel_tables.run_table3`
Table 4       ``table4``      :func:`repro.experiments.panel_tables.run_table4`
Table 5       ``table5``      :func:`repro.experiments.factorization_tables.run_table5`
Table 6       ``table6``      :func:`repro.experiments.factorization_tables.run_table6`
Table 7       ``table7``      :func:`repro.experiments.factorization_tables.run_table7`
Validation    ``validation``  :func:`repro.experiments.validation.run`
============  ==============  ========================================

Beyond the paper's grids, :mod:`repro.experiments.scenarios` registers
sweepable single-point specs (``stability``, ``panel``, ``factorization``,
``panel_counts``) for ``python -m repro sweep``.
"""

from . import (
    factorization_tables,
    figure1,
    figure2,
    panel_tables,
    runners,
    scenarios,
    table1,
    table2,
    validation,
)
from .report import (
    format_table,
    rows_from_json,
    rows_to_csv,
    rows_to_json,
)

__all__ = [
    "figure1",
    "figure2",
    "table1",
    "table2",
    "panel_tables",
    "factorization_tables",
    "runners",
    "scenarios",
    "validation",
    "format_table",
    "rows_from_json",
    "rows_to_csv",
    "rows_to_json",
]
