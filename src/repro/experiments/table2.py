"""Table 2: HPL accuracy tests for LU with partial pivoting (the GEPP reference).

Same metrics as Table 1, computed with Gaussian elimination with partial
pivoting, averaged over a small number of samples per size.  CALU's values
(Table 1) should be of the same order of magnitude.  Thin registered spec
over :func:`repro.experiments.runners.gepp_stability_rows` (``table2``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..harness import ExperimentSpec, register
from .runners import gepp_stability_rows

#: Default matrix orders (scaled down from the paper's 2^10..2^13).
DEFAULT_SIZES: Sequence[int] = (256, 512, 1024)

#: Samples per size (the paper uses 5-10).
DEFAULT_SAMPLES = 3


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run the GEPP stability sweep; one averaged row per matrix order."""
    return gepp_stability_rows(sizes, samples, seed=seed)


SPEC = register(
    ExperimentSpec(
        name="table2",
        title="HPL accuracy tests for partial pivoting (GEPP)",
        runner=run,
        params={"sizes": DEFAULT_SIZES, "samples": DEFAULT_SAMPLES, "seed": 0},
        quick={"sizes": (64, 128), "samples": 1},
        columns=("n", "S", "gT", "wb", "HPL1", "HPL2", "HPL3", "hpl_passed"),
        paper_ref="Table 2",
        sweepable=("samples", "seed"),
    )
)
