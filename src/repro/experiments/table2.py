"""Table 2: HPL accuracy tests for LU with partial pivoting (the GEPP reference).

Same metrics as Table 1, computed with Gaussian elimination with partial
pivoting, averaged over a small number of samples per size.  CALU's values
(Table 1) should be of the same order of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..randmat.generators import randn
from ..stability.report import stability_row_gepp

#: Default matrix orders (scaled down from the paper's 2^10..2^13).
DEFAULT_SIZES: Sequence[int] = (256, 512, 1024)

#: Samples per size (the paper uses 5-10).
DEFAULT_SAMPLES = 3


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run the GEPP stability sweep; one averaged row per matrix order."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        collected = []
        for s in range(samples):
            A = randn(n, seed=seed + 7919 * s + n)
            collected.append(stability_row_gepp(A))
        rows.append(
            {
                "n": n,
                "S": samples,
                "method": "gepp",
                "gT": float(np.mean([r.growth for r in collected])),
                "wb": float(np.mean([r.wb for r in collected])),
                "HPL1": float(np.mean([r.residuals.hpl1 for r in collected])),
                "HPL2": float(np.mean([r.residuals.hpl2 for r in collected])),
                "HPL3": float(np.mean([r.residuals.hpl3 for r in collected])),
                "hpl_passed": all(r.residuals.passed for r in collected),
            }
        )
    return rows
