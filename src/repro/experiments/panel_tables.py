"""Tables 3 and 4: PDGETF2 / TSLU time ratios on the two NERSC machines.

The paper measures the panel-factorization speedup for ``m`` from 1e3 to 1e6
rows, ``n = b`` in {50, 100, 150} columns, and 4..64 processes, with the local
factorization done either by the classic kernel (DGETF2, "Cl") or by the
recursive kernel (RGETF2, "Rec").

This reproduction evaluates the same sweep through the analytic cost models
(Equation 1 for TSLU and the column-by-column model for PDGETF2) priced with
the calibrated machine models — the Python substrate cannot time 1e6-row
panels directly, but the model captures the two effects the paper identifies:
the ``b x`` latency reduction and the local-kernel speedup.  A separate
validation benchmark checks the models' message counts against the simulator
on small panels.

Thin registered specs over :func:`repro.experiments.runners.panel_ratio_sweep`
(``table3`` = IBM POWER5, ``table4`` = Cray XT4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..harness import ExperimentSpec, register
from ..machines.model import MachineModel
from .runners import panel_ratio_sweep

#: The paper's sweep (Tables 3-4).
PAPER_HEIGHTS: Sequence[int] = (1_000, 5_000, 10_000, 100_000, 1_000_000)
PAPER_WIDTHS: Sequence[int] = (50, 100, 150)
PAPER_PROCS: Sequence[int] = (4, 8, 16, 32, 64)

#: Reduced grid used by ``--quick`` smoke runs.
QUICK = {"heights": (10_000, 100_000), "widths": (50,), "procs": (4, 16)}

#: Report columns shared by Tables 3 and 4.
COLUMNS = ("m", "n=b", "P", "ratio_rec", "ratio_cl", "tslu_gflops_rec")


def run(
    machine: Union[str, MachineModel],
    heights: Sequence[int] = PAPER_HEIGHTS,
    widths: Sequence[int] = PAPER_WIDTHS,
    procs: Sequence[int] = PAPER_PROCS,
) -> List[Dict[str, object]]:
    """Evaluate the PDGETF2/TSLU ratio sweep for one machine.

    Returns one row per (m, b, P) with the ratio for both local kernels
    (the paper's "Rec" and "Cl" columns).  Rows where the panel does not fit
    the process count (fewer rows than ``P * b``) are skipped, mirroring the
    missing entries of the paper's tables.
    """
    return panel_ratio_sweep(machine, heights, widths, procs)


def run_table3(**kwargs) -> List[Dict[str, object]]:
    """Table 3: PDGETF2/TSLU ratios on the IBM POWER5 model."""
    return run(kwargs.pop("machine", "ibm_power5"), **kwargs)


def run_table4(**kwargs) -> List[Dict[str, object]]:
    """Table 4: PDGETF2/TSLU ratios on the Cray XT4 model."""
    return run(kwargs.pop("machine", "cray_xt4"), **kwargs)


def best_improvement(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The best PDGETF2/TSLU ratio in a sweep (the headline numbers 4.37 / 5.58)."""
    best = max(rows, key=lambda r: max(r["ratio_rec"], r["ratio_cl"]))
    return {
        "m": best["m"],
        "n=b": best["n=b"],
        "P": best["P"],
        "best_ratio": max(best["ratio_rec"], best["ratio_cl"]),
    }


SPEC_TABLE3 = register(
    ExperimentSpec(
        name="table3",
        title="PDGETF2/TSLU panel time ratios, IBM POWER5 (model)",
        runner=run,
        params={"machine": "ibm_power5", "heights": PAPER_HEIGHTS,
                "widths": PAPER_WIDTHS, "procs": PAPER_PROCS},
        quick=QUICK,
        columns=COLUMNS,
        paper_ref="Table 3",
        sweepable=("machine",),
    )
)

SPEC_TABLE4 = register(
    ExperimentSpec(
        name="table4",
        title="PDGETF2/TSLU panel time ratios, Cray XT4 (model)",
        runner=run,
        params={"machine": "cray_xt4", "heights": PAPER_HEIGHTS,
                "widths": PAPER_WIDTHS, "procs": PAPER_PROCS},
        quick=QUICK,
        columns=COLUMNS,
        paper_ref="Table 4",
        sweepable=("machine",),
    )
)
