"""Tables 3 and 4: PDGETF2 / TSLU time ratios on the two NERSC machines.

The paper measures the panel-factorization speedup for ``m`` from 1e3 to 1e6
rows, ``n = b`` in {50, 100, 150} columns, and 4..64 processes, with the local
factorization done either by the classic kernel (DGETF2, "Cl") or by the
recursive kernel (RGETF2, "Rec").

This reproduction evaluates the same sweep through the analytic cost models
(Equation 1 for TSLU and the column-by-column model for PDGETF2) priced with
the calibrated machine models — the Python substrate cannot time 1e6-row
panels directly, but the model captures the two effects the paper identifies:
the ``b x`` latency reduction and the local-kernel speedup.  A separate
validation benchmark checks the models' message counts against the simulator
on small panels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..machines.model import MachineModel
from ..machines.nersc import cray_xt4, ibm_power5
from ..models.compare import compare_panel

#: The paper's sweep (Tables 3-4).
PAPER_HEIGHTS: Sequence[int] = (1_000, 5_000, 10_000, 100_000, 1_000_000)
PAPER_WIDTHS: Sequence[int] = (50, 100, 150)
PAPER_PROCS: Sequence[int] = (4, 8, 16, 32, 64)


def run(
    machine: MachineModel,
    heights: Sequence[int] = PAPER_HEIGHTS,
    widths: Sequence[int] = PAPER_WIDTHS,
    procs: Sequence[int] = PAPER_PROCS,
) -> List[Dict[str, object]]:
    """Evaluate the PDGETF2/TSLU ratio sweep for one machine.

    Returns one row per (m, b, P) with the ratio for both local kernels
    (the paper's "Rec" and "Cl" columns).  Rows where the panel does not fit
    the process count (fewer rows than ``P * b``) are skipped, mirroring the
    missing entries of the paper's tables.
    """
    rows: List[Dict[str, object]] = []
    for m in heights:
        for b in widths:
            for P in procs:
                if m < P * b:
                    continue
                rec = compare_panel(m, b, P, machine, local_kernel="rgetf2")
                cla = compare_panel(m, b, P, machine, local_kernel="getf2")
                rows.append(
                    {
                        "m": m,
                        "n=b": b,
                        "P": P,
                        "ratio_rec": rec.ratio,
                        "ratio_cl": cla.ratio,
                        "tslu_gflops_rec": rec.tslu_gflops,
                        "t_tslu_rec": rec.t_tslu,
                        "t_pdgetf2": rec.t_pdgetf2,
                    }
                )
    return rows


def run_table3(**kwargs) -> List[Dict[str, object]]:
    """Table 3: PDGETF2/TSLU ratios on the IBM POWER5 model."""
    return run(ibm_power5(), **kwargs)


def run_table4(**kwargs) -> List[Dict[str, object]]:
    """Table 4: PDGETF2/TSLU ratios on the Cray XT4 model."""
    return run(cray_xt4(), **kwargs)


def best_improvement(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The best PDGETF2/TSLU ratio in a sweep (the headline numbers 4.37 / 5.58)."""
    best = max(rows, key=lambda r: max(r["ratio_rec"], r["ratio_cl"]))
    return {
        "m": best["m"],
        "n=b": best["n=b"],
        "P": best["P"],
        "best_ratio": max(best["ratio_rec"], best["ratio_cl"]),
    }
