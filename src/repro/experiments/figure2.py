"""Figure 2: growth factor and minimum threshold versus matrix size.

The paper plots, for standard-normal matrices of order 2^10..2^13 and several
(P, b) combinations, the average Trefethen-Schreiber growth factor ``g_T`` of
ca-pivoting (left plot — it tracks ``c · n^(2/3)`` with c ≈ 1.5, like partial
pivoting) and the minimum pivot threshold (right plot — always above 0.33).

``run`` regenerates both series.  Default sizes are reduced (2^8..2^10) so
the experiment completes in seconds in pure Python; pass ``sizes=(1024, 2048,
4096, 8192)`` to match the paper exactly (minutes of runtime).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..randmat.generators import randn
from ..stability.report import stability_row_calu, stability_row_gepp

#: (P, b) combinations of the paper's Figure 2, scaled for small default sizes.
DEFAULT_CONFIGS: Sequence[Tuple[int, int]] = ((4, 16), (4, 32), (8, 16), (8, 32), (16, 16))


def run(
    sizes: Sequence[int] = (256, 512, 1024),
    configs: Sequence[Tuple[int, int]] = DEFAULT_CONFIGS,
    samples: int = 2,
    include_gepp: bool = True,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Compute growth-factor and threshold series for randn matrices.

    Parameters
    ----------
    sizes:
        Matrix orders ``n``.
    configs:
        ``(P, b)`` pairs for ca-pivoting.
    samples:
        Number of random samples averaged per point (the paper uses two for
        the largest sizes).
    include_gepp:
        Also compute the partial-pivoting reference curve.
    seed:
        Base random seed.

    Returns
    -------
    list of dict
        One row per (n, P, b) with averaged ``gT``, ``tau_min``, ``tau_ave``
        and the ``n^(2/3)`` reference.
    """
    rows: List[Dict[str, object]] = []
    for n in sizes:
        for P, b in configs:
            if b >= n or P * b > n:
                continue
            gts, tmins, taves = [], [], []
            for s in range(samples):
                A = randn(n, seed=seed + 1000 * s + n)
                row = stability_row_calu(A, P=P, b=b)
                gts.append(row.growth)
                tmins.append(row.tau_min)
                taves.append(row.tau_ave)
            rows.append(
                {
                    "n": n,
                    "P": P,
                    "b": b,
                    "method": "calu",
                    "gT": float(np.mean(gts)),
                    "tau_min": float(np.min(tmins)),
                    "tau_ave": float(np.mean(taves)),
                    "n_two_thirds": float(n) ** (2.0 / 3.0),
                }
            )
        if include_gepp:
            gts = []
            for s in range(samples):
                A = randn(n, seed=seed + 1000 * s + n)
                row = stability_row_gepp(A)
                gts.append(row.growth)
            rows.append(
                {
                    "n": n,
                    "P": 1,
                    "b": n,
                    "method": "gepp",
                    "gT": float(np.mean(gts)),
                    "tau_min": 1.0,
                    "tau_ave": 1.0,
                    "n_two_thirds": float(n) ** (2.0 / 3.0),
                }
            )
    return rows
