"""Figure 2: growth factor and minimum threshold versus matrix size.

The paper plots, for standard-normal matrices of order 2^10..2^13 and several
(P, b) combinations, the average Trefethen-Schreiber growth factor ``g_T`` of
ca-pivoting (left plot — it tracks ``c · n^(2/3)`` with c ≈ 1.5, like partial
pivoting) and the minimum pivot threshold (right plot — always above 0.33).

``run`` regenerates both series.  Default sizes are reduced (2^8..2^10) so
the experiment completes in seconds in pure Python; pass ``sizes=(1024, 2048,
4096, 8192)`` to match the paper exactly (minutes of runtime).  Thin
registered spec over
:func:`repro.experiments.runners.growth_threshold_series` (``figure2``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..harness import ExperimentSpec, register
from .runners import growth_threshold_series

#: (P, b) combinations of the paper's Figure 2, scaled for small default sizes.
DEFAULT_CONFIGS: Sequence[Tuple[int, int]] = ((4, 16), (4, 32), (8, 16), (8, 32), (16, 16))

#: Default matrix orders (scaled down from the paper's 2^10..2^13).
DEFAULT_SIZES: Sequence[int] = (256, 512, 1024)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    configs: Sequence[Tuple[int, int]] = DEFAULT_CONFIGS,
    samples: int = 2,
    include_gepp: bool = True,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Compute growth-factor and threshold series for randn matrices.

    Parameters
    ----------
    sizes:
        Matrix orders ``n``.
    configs:
        ``(P, b)`` pairs for ca-pivoting.
    samples:
        Number of random samples averaged per point (the paper uses two for
        the largest sizes).
    include_gepp:
        Also compute the partial-pivoting reference curve.
    seed:
        Base random seed.

    Returns
    -------
    list of dict
        One row per (n, P, b) with averaged ``gT``, ``tau_min``, ``tau_ave``
        and the ``n^(2/3)`` reference.
    """
    return growth_threshold_series(sizes, configs, samples, include_gepp, seed=seed)


SPEC = register(
    ExperimentSpec(
        name="figure2",
        title="Growth factor g_T and pivot thresholds vs matrix size",
        runner=run,
        params={"sizes": DEFAULT_SIZES, "configs": DEFAULT_CONFIGS,
                "samples": 2, "include_gepp": True, "seed": 0},
        quick={"sizes": (64, 128), "configs": ((2, 8), (4, 8)), "samples": 1},
        columns=("n", "P", "b", "method", "gT", "n_two_thirds", "tau_min", "tau_ave"),
        paper_ref="Figure 2",
        sweepable=("samples", "seed"),
    )
)
