"""Shared experiment runners behind the registered specs.

Before the registry refactor every ``experiments/table*.py`` module carried
its own copy of the same three loops (stability sweep, panel-model sweep,
factorization-model sweep).  This module is the single home of that plumbing;
the table/figure modules are now thin declarative wrappers that bind a runner
to the paper's parameter grid and register the result as an
:class:`~repro.harness.spec.ExperimentSpec`.

Machine models are addressed by *name* here (``"ibm_power5"``, ``"cray_xt4"``,
``"unit"``) so that spec parameters stay JSON-serializable and hashable for
the content-addressed result store.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..machines.model import MachineModel, unit_machine
from ..machines.nersc import cray_xt4, ibm_power5
from ..models.compare import (
    PAPER_GRIDS,
    best_vs_best,
    compare_factorization,
    compare_panel,
)
from ..randmat.generators import randn
from ..stability.report import stability_row_calu, stability_row_gepp

Rows = List[Dict[str, object]]

#: Machine models addressable by name in spec parameters.
MACHINES = {
    "ibm_power5": ibm_power5,
    "cray_xt4": cray_xt4,
    "unit": unit_machine,
}


def resolve_machine(machine: Union[str, MachineModel]) -> MachineModel:
    """Resolve a machine name (or pass a model through)."""
    if isinstance(machine, MachineModel):
        return machine
    try:
        return MACHINES[machine]()
    except KeyError:
        raise KeyError(
            f"unknown machine {machine!r}; available: {sorted(MACHINES)}"
        ) from None


# ------------------------------------------------------------ stability sweeps
def calu_stability_sweep(
    sweep: Sequence[Tuple[int, Sequence[Tuple[int, int]]]], seed: int = 0
) -> Rows:
    """CALU stability rows over an (n -> [(P, b), ...]) sweep (Table 1)."""
    rows: Rows = []
    for n, configs in sweep:
        A = randn(n, seed=seed + n)
        for P, b in configs:
            if b >= n or P * b > n:
                continue
            row = stability_row_calu(A, P=P, b=b)
            d = row.as_dict()
            d["hpl_passed"] = row.residuals.passed
            rows.append(d)
    return rows


def gepp_stability_rows(sizes: Sequence[int], samples: int, seed: int = 0) -> Rows:
    """Averaged GEPP stability rows, one per matrix order (Table 2)."""
    rows: Rows = []
    for n in sizes:
        collected = []
        for s in range(samples):
            A = randn(n, seed=seed + 7919 * s + n)
            collected.append(stability_row_gepp(A))
        rows.append(
            {
                "n": n,
                "S": samples,
                "method": "gepp",
                "gT": float(np.mean([r.growth for r in collected])),
                "wb": float(np.mean([r.wb for r in collected])),
                "HPL1": float(np.mean([r.residuals.hpl1 for r in collected])),
                "HPL2": float(np.mean([r.residuals.hpl2 for r in collected])),
                "HPL3": float(np.mean([r.residuals.hpl3 for r in collected])),
                "hpl_passed": all(r.residuals.passed for r in collected),
            }
        )
    return rows


def growth_threshold_series(
    sizes: Sequence[int],
    configs: Sequence[Tuple[int, int]],
    samples: int,
    include_gepp: bool,
    seed: int = 0,
) -> Rows:
    """Growth-factor / threshold series for randn matrices (Figure 2)."""
    rows: Rows = []
    for n in sizes:
        for P, b in configs:
            if b >= n or P * b > n:
                continue
            gts, tmins, taves = [], [], []
            for s in range(samples):
                A = randn(n, seed=seed + 1000 * s + n)
                row = stability_row_calu(A, P=P, b=b)
                gts.append(row.growth)
                tmins.append(row.tau_min)
                taves.append(row.tau_ave)
            rows.append(
                {
                    "n": n,
                    "P": P,
                    "b": b,
                    "method": "calu",
                    "gT": float(np.mean(gts)),
                    "tau_min": float(np.min(tmins)),
                    "tau_ave": float(np.mean(taves)),
                    "n_two_thirds": float(n) ** (2.0 / 3.0),
                }
            )
        if include_gepp:
            gts = []
            for s in range(samples):
                A = randn(n, seed=seed + 1000 * s + n)
                row = stability_row_gepp(A)
                gts.append(row.growth)
            rows.append(
                {
                    "n": n,
                    "P": 1,
                    "b": n,
                    "method": "gepp",
                    "gT": float(np.mean(gts)),
                    "tau_min": 1.0,
                    "tau_ave": 1.0,
                    "n_two_thirds": float(n) ** (2.0 / 3.0),
                }
            )
    return rows


def stability_point(
    n: int, P: int, b: int, seed: int = 0, method: str = "calu",
    pivoting: str = "ca",
) -> Rows:
    """One stability row at a single (n, P, b) point — the sweepable scenario.

    ``method="calu"`` runs ca-pivoting, ``"gepp"`` the partial-pivoting
    reference (for which P and b are ignored beyond bookkeeping).
    ``pivoting`` selects the panel strategy of the ``"calu"`` method
    (``"pp"``, ``"ca"``, ``"ca_prrp"`` — see :mod:`repro.core.strategies`).
    """
    A = randn(n, seed=seed + n)
    if method == "calu":
        if b >= n or P * b > n:
            return []
        row = stability_row_calu(A, P=P, b=b, pivoting=pivoting)
    elif method == "gepp":
        row = stability_row_gepp(A)
    else:
        raise ValueError(f"unknown method {method!r}; use 'calu' or 'gepp'")
    d = row.as_dict()
    d["hpl_passed"] = row.residuals.passed
    d["seed"] = seed
    return [d]


def pivoting_comparison(
    n: int, P: int, b: int, seed: int = 0, samples: int = 1
) -> Rows:
    """Three-way growth/threshold comparison at one (n, P, b) grid point.

    Runs ``calu`` with every registered pivoting strategy (``pp``, ``ca``,
    ``ca_prrp``) on the same random matrices and reports the sample-averaged
    growth factor, threshold statistics and factorization error side by side
    — the CALU vs CALU_PRRP comparison of Khabou et al. (arXiv:1208.2451) as
    a sweepable scenario.  One row per strategy.
    """
    from ..core.calu import calu, factorization_error
    from ..core.strategies import available_strategies
    from ..stability.growth import trefethen_schreiber_growth
    from ..stability.threshold import threshold_stats

    if b >= n or P * b > n:
        return []
    rows: Rows = []
    for strat in available_strategies():
        gts, tmins, taves, errs = [], [], [], []
        for s in range(samples):
            A = randn(n, seed=seed + 1000 * s + n)
            res = calu(
                A,
                block_size=b,
                nblocks=P,
                pivoting=strat,
                track_growth=True,
                compute_thresholds=True,
            )
            gts.append(trefethen_schreiber_growth(A, res.growth_history))
            stats = threshold_stats(res.threshold_history)
            tmins.append(stats.minimum)
            taves.append(stats.average)
            errs.append(factorization_error(A, res))
        rows.append(
            {
                "n": n,
                "P": P,
                "b": b,
                "pivoting": strat,
                "S": samples,
                "gT": float(np.mean(gts)),
                "tau_min": float(np.min(tmins)),
                "tau_ave": float(np.mean(taves)),
                "max_error": float(np.max(errs)),
                "seed": seed,
            }
        )
    return rows


# ------------------------------------------------------------- model sweeps
def panel_ratio_sweep(
    machine: Union[str, MachineModel],
    heights: Sequence[int],
    widths: Sequence[int],
    procs: Sequence[int],
) -> Rows:
    """PDGETF2/TSLU ratio sweep for one machine (Tables 3-4)."""
    model = resolve_machine(machine)
    rows: Rows = []
    for m in heights:
        for b in widths:
            for P in procs:
                if m < P * b:
                    continue
                rows.append(panel_point_row(m, b, P, model))
    return rows


def panel_point_row(
    m: int, b: int, P: int, machine: Union[str, MachineModel]
) -> Dict[str, object]:
    """One PDGETF2/TSLU comparison row (both local kernels)."""
    model = resolve_machine(machine)
    rec = compare_panel(m, b, P, model, local_kernel="rgetf2")
    cla = compare_panel(m, b, P, model, local_kernel="getf2")
    return {
        "m": m,
        "n=b": b,
        "P": P,
        "ratio_rec": rec.ratio,
        "ratio_cl": cla.ratio,
        "tslu_gflops_rec": rec.tslu_gflops,
        "t_tslu_rec": rec.t_tslu,
        "t_pdgetf2": rec.t_pdgetf2,
    }


def panel_point(
    m: int, b: int, P: int, machine: str = "ibm_power5"
) -> Rows:
    """Sweepable single-point version of the panel-ratio comparison."""
    if m < P * b:
        return []
    return [panel_point_row(m, b, P, machine)]


def factorization_sweep(
    machine: Union[str, MachineModel],
    orders: Sequence[int],
    blocks: Sequence[int],
    proc_counts: Sequence[int],
) -> Rows:
    """PDGETRF/CALU sweep for one machine (Tables 5-6)."""
    model = resolve_machine(machine)
    rows: Rows = []
    for m in orders:
        for b in blocks:
            for P in proc_counts:
                Pr, Pc = PAPER_GRIDS[P]
                if m < Pr * b or m < Pc * b:
                    # The paper leaves these entries blank (matrix too small).
                    continue
                rows.append(factorization_point_row(m, b, Pr, Pc, model))
    return rows


def factorization_point_row(
    m: int, b: int, Pr: int, Pc: int, machine: Union[str, MachineModel]
) -> Dict[str, object]:
    """One PDGETRF/CALU comparison row on a ``Pr x Pc`` grid."""
    model = resolve_machine(machine)
    cmp_ = compare_factorization(m, b, Pr, Pc, model)
    return {
        "m": m,
        "b": b,
        "P": Pr * Pc,
        "grid": f"{Pr}x{Pc}",
        "improvement": cmp_.ratio,
        "calu_gflops": cmp_.calu_gflops,
        "percent_peak": cmp_.percent_of_peak(model),
        "t_calu": cmp_.t_calu,
        "t_pdgetrf": cmp_.t_pdgetrf,
    }


def factorization_point(
    m: int, b: int, P: int, machine: str = "ibm_power5"
) -> Rows:
    """Sweepable single-point version of the PDGETRF/CALU comparison."""
    Pr, Pc = PAPER_GRIDS[P]
    if m < Pr * b or m < Pc * b:
        return []
    return [factorization_point_row(m, b, Pr, Pc, machine)]


def best_vs_best_sweep(
    machines: Union[Sequence[str], Dict[str, MachineModel]],
    orders: Sequence[int],
    proc_counts: Sequence[int],
    blocks: Sequence[int],
) -> Rows:
    """Best-CALU vs best-PDGETRF speedups per machine and order (Table 7).

    ``machines`` is a sequence of machine names, or (for API compatibility
    with the pre-registry ``run_table7``) a mapping of name to model.
    """
    grids: List[Tuple[int, int]] = [PAPER_GRIDS[p] for p in proc_counts]
    if isinstance(machines, dict):
        items = list(machines.items())
    else:
        items = [(name, resolve_machine(name)) for name in machines]
    rows: Rows = []
    for name, model in items:
        for m in orders:
            entry = best_vs_best(m, model, grids, blocks)
            entry["machine"] = name
            rows.append(entry)
    return rows
