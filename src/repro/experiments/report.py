"""Plain-text table formatting for the experiment harness.

Every experiment module returns a list of row dictionaries; these helpers
render them in the same layout as the paper's tables so the reproduction can
be compared to the original side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    floatfmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), max(len(row[i]) for row in table)) for i, c in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render row dicts as CSV (for saving experiment outputs)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for r in rows:
        lines.append(",".join(str(r.get(c, "")) for c in columns))
    return "\n".join(lines)
