"""Row-set rendering and serialization for the experiment harness.

Every experiment runner returns a list of row dictionaries; these helpers
render them in the same layout as the paper's tables (plain text aligned for
terminals, GitHub-flavoured markdown for docs) and serialize full row sets —
with run metadata — to CSV and JSON for the result store and the CLI.

Numeric columns are right-aligned so magnitudes line up the way they do in
the paper's tables; everything else is left-aligned.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def _is_number(value: object) -> bool:
    """True for real numbers (bool is *not* numeric for alignment purposes)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _resolve_columns(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]]
) -> List[str]:
    if columns is not None:
        return list(columns)
    resolved: List[str] = []
    for row in rows:
        for key in row:
            if key not in resolved:
                resolved.append(key)
    return resolved


def _numeric_columns(
    rows: Sequence[Dict[str, object]], columns: Sequence[str]
) -> List[bool]:
    """Per column: does every present value look like a number?"""
    flags = []
    for c in columns:
        values = [r[c] for r in rows if c in r and r[c] != ""]
        flags.append(bool(values) and all(_is_number(v) for v in values))
    return flags


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    floatfmt: str = "{:.4g}",
    title: str | None = None,
    markdown: bool = False,
) -> str:
    """Render a list of row dicts as an aligned plain-text or markdown table.

    Numeric columns (every present value an int/float) are right-aligned;
    ``markdown=True`` emits a GitHub-flavoured pipe table with matching
    alignment markers, so CLI output pastes cleanly into docs.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = _resolve_columns(rows, columns)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        text = str(value)
        return text.replace("|", "\\|") if markdown else text

    table = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    numeric = _numeric_columns(rows, columns)
    widths = [
        max(len(str(c)), max(len(row[i]) for row in table)) for i, c in enumerate(columns)
    ]

    def align(cell: str, width: int, right: bool) -> str:
        return cell.rjust(width) if right else cell.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(("**" + title + "**\n") if markdown else title)
    if markdown:
        lines.append(
            "| " + " | ".join(align(str(c), w, n) for c, w, n in zip(columns, widths, numeric)) + " |"
        )
        lines.append(
            "| " + " | ".join(("-" * max(w - 1, 2)) + ":" if n else "-" * max(w, 3)
                              for w, n in zip(widths, numeric)) + " |"
        )
        for row in table:
            lines.append(
                "| " + " | ".join(align(cell, w, n)
                                  for cell, w, n in zip(row, widths, numeric)) + " |"
            )
    else:
        lines.append("  ".join(align(str(c), w, n) for c, w, n in zip(columns, widths, numeric)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table:
            lines.append("  ".join(align(cell, w, n) for cell, w, n in zip(row, widths, numeric)))
    return "\n".join(lines)


def rows_to_csv(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    metadata: Optional[Mapping[str, object]] = None,
) -> str:
    """Render row dicts as CSV, optionally preceded by ``# key: value`` metadata.

    Cells are quoted by the :mod:`csv` module, so commas and nested lists in
    values survive a round-trip through standard CSV readers.
    """
    rows = list(rows)
    if not rows:
        return ""
    columns = _resolve_columns(rows, columns)
    buffer = io.StringIO()
    if metadata:
        for key, value in metadata.items():
            buffer.write(f"# {key}: {value}\n")
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for r in rows:
        writer.writerow([r.get(c, "") for c in columns])
    return buffer.getvalue().rstrip("\n")


def rows_to_json(
    rows: Sequence[Dict[str, object]],
    metadata: Optional[Mapping[str, object]] = None,
    indent: Optional[int] = 1,
) -> str:
    """Serialize a full row set (plus metadata) as a JSON document.

    The document shape is ``{"metadata": {...}, "rows": [...]}`` — the same
    orientation the result store's artifacts use.  Python floats round-trip
    bit-for-bit through :mod:`json` (shortest repr), so deserialized rows are
    exactly the rows that were serialized.
    """
    document = {"metadata": dict(metadata or {}), "rows": list(rows)}
    return json.dumps(document, indent=indent)


def rows_from_json(text: str) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Inverse of :func:`rows_to_json`; also accepts a bare JSON row list."""
    document = json.loads(text)
    if isinstance(document, list):
        return document, {}
    return list(document.get("rows", [])), dict(document.get("metadata", {}))
