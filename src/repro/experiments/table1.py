"""Table 1: HPL accuracy tests for the ca-pivoting strategy.

For standard-normal matrices of order 2^10..2^13 and a sweep of (P, b), the
paper reports the growth factor ``g_T``, the average and minimum thresholds,
the componentwise backward error ``w_b`` before refinement, and the three HPL
residuals — all of which must pass the HPL criterion (< 16).

Default sizes are reduced to 2^8..2^10 so the sweep runs in seconds; the
original sizes can be requested explicitly.  The module is a thin registered
spec over :func:`repro.experiments.runners.calu_stability_sweep`; address it
as ``table1`` through the registry / ``python -m repro run table1``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..harness import ExperimentSpec, register
from .runners import calu_stability_sweep

#: Default (n, P, b) sweep — a scaled version of the paper's Table 1 grid.
DEFAULT_SWEEP: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = (
    (256, ((8, 16), (4, 16), (4, 32))),
    (512, ((16, 16), (8, 32), (8, 16), (4, 32))),
    (1024, ((16, 32), (16, 16), (8, 32))),
)

#: The paper's own sweep (matrix order -> (P, b) combinations).
PAPER_SWEEP: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = (
    (8192, ((256, 32), (256, 16), (128, 64), (128, 32), (128, 16), (64, 128), (64, 64), (64, 32), (64, 16))),
    (4096, ((256, 16), (128, 32), (128, 16), (64, 64), (64, 32), (64, 16))),
    (2048, ((128, 16), (64, 32), (64, 16))),
    (1024, ((64, 16),)),
)

#: Tiny sweep used by ``--quick`` smoke runs.
QUICK_SWEEP: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = (
    (64, ((2, 8), (4, 8))),
    (128, ((4, 16),)),
)


def run(
    sweep: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = DEFAULT_SWEEP,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run the CALU stability sweep; returns one dict per (n, P, b) row."""
    return calu_stability_sweep(sweep, seed=seed)


SPEC = register(
    ExperimentSpec(
        name="table1",
        title="HPL accuracy tests for ca-pivoting (CALU)",
        runner=run,
        params={"sweep": DEFAULT_SWEEP, "seed": 0},
        quick={"sweep": QUICK_SWEEP},
        columns=("n", "P", "b", "gT", "tau_ave", "tau_min", "wb",
                 "HPL1", "HPL2", "HPL3", "hpl_passed"),
        paper_ref="Table 1",
        sweepable=("seed",),
    )
)
