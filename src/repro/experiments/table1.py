"""Table 1: HPL accuracy tests for the ca-pivoting strategy.

For standard-normal matrices of order 2^10..2^13 and a sweep of (P, b), the
paper reports the growth factor ``g_T``, the average and minimum thresholds,
the componentwise backward error ``w_b`` before refinement, and the three HPL
residuals — all of which must pass the HPL criterion (< 16).

Default sizes are reduced to 2^8..2^10 so the sweep runs in seconds; the
original sizes can be requested explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..randmat.generators import randn
from ..stability.report import stability_row_calu

#: Default (n, P, b) sweep — a scaled version of the paper's Table 1 grid.
DEFAULT_SWEEP: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = (
    (256, ((8, 16), (4, 16), (4, 32))),
    (512, ((16, 16), (8, 32), (8, 16), (4, 32))),
    (1024, ((16, 32), (16, 16), (8, 32))),
)

#: The paper's own sweep (matrix order -> (P, b) combinations).
PAPER_SWEEP: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = (
    (8192, ((256, 32), (256, 16), (128, 64), (128, 32), (128, 16), (64, 128), (64, 64), (64, 32), (64, 16))),
    (4096, ((256, 16), (128, 32), (128, 16), (64, 64), (64, 32), (64, 16))),
    (2048, ((128, 16), (64, 32), (64, 16))),
    (1024, ((64, 16),)),
)


def run(
    sweep: Sequence[Tuple[int, Sequence[Tuple[int, int]]]] = DEFAULT_SWEEP,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run the CALU stability sweep; returns one dict per (n, P, b) row."""
    rows: List[Dict[str, object]] = []
    for n, configs in sweep:
        A = randn(n, seed=seed + n)
        for P, b in configs:
            if b >= n or P * b > n:
                continue
            row = stability_row_calu(A, P=P, b=b)
            d = row.as_dict()
            d["hpl_passed"] = row.residuals.passed
            rows.append(d)
    return rows
