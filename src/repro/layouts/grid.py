"""Two-dimensional process grids.

ScaLAPACK and CALU both distribute an ``m x n`` matrix block-cyclically over a
``Pr x Pc`` grid of processes.  :class:`ProcessGrid` maps between the linear
rank used by the message-passing layer and the ``(row, col)`` coordinates used
by the algorithms, and enumerates the ranks sharing a grid row or column
(the communicators along which panel factorization and broadcasts happen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class ProcessGrid:
    """A ``Pr x Pc`` logical grid of ``P = Pr * Pc`` processes.

    Ranks are laid out column-major (as in ScaLAPACK's default): rank
    ``r`` sits at grid row ``r % Pr`` and grid column ``r // Pr``.

    Attributes
    ----------
    nprow:
        Number of process rows ``Pr``.
    npcol:
        Number of process columns ``Pc``.
    """

    nprow: int
    npcol: int

    def __post_init__(self) -> None:
        if self.nprow < 1 or self.npcol < 1:
            raise ValueError("process grid dimensions must be positive")

    @property
    def size(self) -> int:
        """Total number of processes ``P = Pr * Pc``."""
        return self.nprow * self.npcol

    def coords(self, rank: int) -> Tuple[int, int]:
        """Return the ``(grid_row, grid_col)`` of a linear rank."""
        self._check_rank(rank)
        return rank % self.nprow, rank // self.nprow

    def rank(self, grid_row: int, grid_col: int) -> int:
        """Return the linear rank at ``(grid_row, grid_col)``."""
        if not (0 <= grid_row < self.nprow and 0 <= grid_col < self.npcol):
            raise ValueError(
                f"grid coordinates ({grid_row}, {grid_col}) outside "
                f"{self.nprow} x {self.npcol} grid"
            )
        return grid_col * self.nprow + grid_row

    def column_ranks(self, grid_col: int) -> Sequence[int]:
        """Ranks of all processes in grid column ``grid_col`` (ordered by grid row).

        Returned as a ``range``: grid rows and columns are arithmetic rank
        progressions, and collective groups hash / position-index their
        members per participant — O(1) on a range versus O(group size) on a
        materialized list.
        """
        self.rank(0, grid_col)  # validate the column index
        return range(grid_col * self.nprow, (grid_col + 1) * self.nprow)

    def row_ranks(self, grid_row: int) -> Sequence[int]:
        """Ranks of all processes in grid row ``grid_row`` (ordered by grid column)."""
        self.rank(grid_row, 0)  # validate the row index
        return range(grid_row, self.size, self.nprow)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of size {self.size}")

    @staticmethod
    def from_shape(nprow: int, npcol: int) -> "ProcessGrid":
        """Explicit-shape constructor (mirrors ScaLAPACK's BLACS gridinit)."""
        return ProcessGrid(nprow, npcol)

    @staticmethod
    def default_for(p: int) -> "ProcessGrid":
        """Pick a near-square ``Pr x Pc`` grid for ``p`` processes with ``Pr <= Pc``.

        This reproduces the grid shapes used in the paper's experiments
        (2x2, 2x4, 4x4, 4x8, 8x8 for P = 4, 8, 16, 32, 64).
        """
        if p < 1:
            raise ValueError("need at least one process")
        pr = int(p**0.5)
        while pr > 1 and p % pr != 0:
            pr -= 1
        return ProcessGrid(pr, p // pr)
