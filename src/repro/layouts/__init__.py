"""Data distributions: process grids, 1-D panel layouts, 2-D block-cyclic layout."""

from .block1d import Block1D, BlockCyclic1D
from .block_cyclic import BlockCyclic2D
from .grid import ProcessGrid

__all__ = ["ProcessGrid", "Block1D", "BlockCyclic1D", "BlockCyclic2D"]
