"""Two-dimensional block-cyclic matrix distribution (ScaLAPACK layout).

An ``m x n`` matrix is tiled in ``b x b`` blocks; block ``(I, J)`` is owned by
the process at grid position ``(I mod Pr, J mod Pc)``.  This is the layout
used by ScaLAPACK's PDGETRF, by HPL, and by CALU (Section 4 of the paper).

:class:`BlockCyclic2D` provides ownership queries, local/global index maps,
and scatter/gather helpers that convert between a global numpy array and the
per-process local arrays.  The distributed drivers in :mod:`repro.parallel`
and :mod:`repro.scalapack` store their data exclusively in the local arrays
and use these maps — the global matrix only appears when scattering inputs
and gathering results for verification, exactly as a real MPI code would do
through file I/O or redistribution routines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .grid import ProcessGrid


@dataclass(frozen=True)
class BlockCyclic2D:
    """2-D block-cyclic distribution of an ``m x n`` matrix with ``b x b`` blocks.

    Attributes
    ----------
    m, n:
        Global matrix dimensions.
    block:
        Square block size ``b``.
    grid:
        The :class:`~repro.layouts.grid.ProcessGrid` the matrix is mapped to.
    """

    m: int
    n: int
    block: int
    grid: ProcessGrid

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0 or self.block < 1:
            raise ValueError("invalid BlockCyclic2D parameters")

    # ----------------------------------------------------------------- owners
    def owner_of_block(self, brow: int, bcol: int) -> Tuple[int, int]:
        """Grid coordinates of the owner of block ``(brow, bcol)``."""
        return brow % self.grid.nprow, bcol % self.grid.npcol

    def owner_of_entry(self, i: int, j: int) -> Tuple[int, int]:
        """Grid coordinates of the owner of matrix entry ``(i, j)``."""
        self._check_entry(i, j)
        return self.owner_of_block(i // self.block, j // self.block)

    def owner_rank(self, i: int, j: int) -> int:
        """Linear rank of the owner of entry ``(i, j)``."""
        pr, pc = self.owner_of_entry(i, j)
        return self.grid.rank(pr, pc)

    # ----------------------------------------------------- local shapes/index
    def local_rows(self, grid_row: int) -> np.ndarray:
        """Global row indices stored by processes in grid row ``grid_row``."""
        rows = np.arange(self.m, dtype=np.int64)
        return rows[(rows // self.block) % self.grid.nprow == grid_row]

    def local_cols(self, grid_col: int) -> np.ndarray:
        """Global column indices stored by processes in grid column ``grid_col``."""
        cols = np.arange(self.n, dtype=np.int64)
        return cols[(cols // self.block) % self.grid.npcol == grid_col]

    def local_shape(self, rank: int) -> Tuple[int, int]:
        """Shape of the local array stored by ``rank``."""
        pr, pc = self.grid.coords(rank)
        return self.local_rows(pr).shape[0], self.local_cols(pc).shape[0]

    def global_to_local_row(self, i: int) -> int:
        """Local row index of global row ``i`` on its owning grid row."""
        blk = i // self.block
        return int((blk // self.grid.nprow) * self.block + i % self.block)

    def global_to_local_col(self, j: int) -> int:
        """Local column index of global column ``j`` on its owning grid column."""
        blk = j // self.block
        return int((blk // self.grid.npcol) * self.block + j % self.block)

    def local_to_global_row(self, grid_row: int, li: int) -> int:
        """Global row index of local row ``li`` on grid row ``grid_row``."""
        blk = li // self.block
        g = (blk * self.grid.nprow + grid_row) * self.block + li % self.block
        if g >= self.m:
            raise ValueError("local row index out of range")
        return int(g)

    def local_to_global_col(self, grid_col: int, lj: int) -> int:
        """Global column index of local column ``lj`` on grid column ``grid_col``."""
        blk = lj // self.block
        g = (blk * self.grid.npcol + grid_col) * self.block + lj % self.block
        if g >= self.n:
            raise ValueError("local column index out of range")
        return int(g)

    # -------------------------------------------------------- scatter/gather
    def scatter(self, A: np.ndarray) -> Dict[int, np.ndarray]:
        """Split a global matrix into the per-rank local arrays.

        Returns a dict mapping linear rank to its local 2-D array (a copy).
        """
        A = np.asarray(A)
        if A.shape != (self.m, self.n):
            raise ValueError(f"expected a {self.m} x {self.n} matrix, got {A.shape}")
        locals_: Dict[int, np.ndarray] = {}
        for rank in range(self.grid.size):
            pr, pc = self.grid.coords(rank)
            rows = self.local_rows(pr)
            cols = self.local_cols(pc)
            locals_[rank] = np.ascontiguousarray(A[np.ix_(rows, cols)])
        return locals_

    def gather(self, locals_: Dict[int, np.ndarray], dtype=np.float64) -> np.ndarray:
        """Reassemble the global matrix from per-rank local arrays."""
        A = np.zeros((self.m, self.n), dtype=dtype)
        for rank in range(self.grid.size):
            pr, pc = self.grid.coords(rank)
            rows = self.local_rows(pr)
            cols = self.local_cols(pc)
            local = locals_[rank]
            if local.shape != (rows.shape[0], cols.shape[0]):
                raise ValueError(
                    f"rank {rank} local array has shape {local.shape}, "
                    f"expected {(rows.shape[0], cols.shape[0])}"
                )
            A[np.ix_(rows, cols)] = local
        return A

    # -------------------------------------------------------------- utilities
    def num_block_rows(self) -> int:
        """Number of block rows ``ceil(m / b)``."""
        return -(-self.m // self.block)

    def num_block_cols(self) -> int:
        """Number of block columns ``ceil(n / b)``."""
        return -(-self.n // self.block)

    def _check_entry(self, i: int, j: int) -> None:
        if not (0 <= i < self.m and 0 <= j < self.n):
            raise ValueError(f"entry ({i}, {j}) outside {self.m} x {self.n} matrix")
