"""One-dimensional row distributions for tall-skinny panels.

TSLU (Section 3 of the paper) views the panel as an ``m x b`` matrix whose
rows are spread over ``P`` processes in a 1-D layout.  Two layouts are
supported:

* :class:`Block1D` — contiguous blocks of ``ceil(m / P)`` rows per process,
  the layout used in the paper's description of the preprocessing step;
* :class:`BlockCyclic1D` — block-cyclic rows with block size ``b`` (the layout
  of the panel inside a 2-D block-cyclic matrix, and the one used by the
  worked example of Figure 1 where rows 1, 2, 9, 10 live on process 0).

Both expose the same interface: which global rows a process owns, the owner of
a global row, and local/global index conversions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Block1D:
    """Contiguous block distribution of ``m`` rows over ``nprocs`` processes.

    Process ``i`` owns rows ``i*base .. (i+1)*base - 1`` where ``base`` is
    ``ceil(m / nprocs)`` for the first processes and the remainder goes to the
    last; when ``nprocs`` divides ``m`` every process owns exactly
    ``m / nprocs`` rows, matching the paper's simplifying assumption.
    """

    m: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.m < 0 or self.nprocs < 1:
            raise ValueError("invalid Block1D parameters")

    def owner(self, i: int) -> int:
        """Process owning global row ``i``."""
        self._check_row(i)
        base = -(-self.m // self.nprocs)  # ceil division
        return min(i // base, self.nprocs - 1)

    def rows_of(self, p: int) -> np.ndarray:
        """Global row indices owned by process ``p`` (sorted ascending)."""
        self._check_proc(p)
        base = -(-self.m // self.nprocs)
        lo = min(p * base, self.m)
        hi = min((p + 1) * base, self.m)
        return np.arange(lo, hi, dtype=np.int64)

    def local_count(self, p: int) -> int:
        """Number of rows owned by process ``p``."""
        return int(self.rows_of(p).shape[0])

    def to_local(self, i: int) -> int:
        """Local index (within the owner's block) of global row ``i``."""
        p = self.owner(i)
        return int(i - self.rows_of(p)[0])

    def to_global(self, p: int, li: int) -> int:
        """Global index of local row ``li`` on process ``p``."""
        rows = self.rows_of(p)
        if not (0 <= li < rows.shape[0]):
            raise ValueError(f"local index {li} out of range on process {p}")
        return int(rows[li])

    def _check_row(self, i: int) -> None:
        if not (0 <= i < self.m):
            raise ValueError(f"row {i} outside 0..{self.m - 1}")

    def _check_proc(self, p: int) -> None:
        if not (0 <= p < self.nprocs):
            raise ValueError(f"process {p} outside 0..{self.nprocs - 1}")


@dataclass(frozen=True)
class BlockCyclic1D:
    """Block-cyclic distribution of ``m`` rows with block size ``block``.

    Row block ``k`` (rows ``k*block .. (k+1)*block - 1``) is owned by process
    ``k mod nprocs``.  This is the row distribution induced on a single
    block-column of a 2-D block-cyclic matrix, and the distribution of the
    worked example in Figure 1 of the paper.
    """

    m: int
    block: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.m < 0 or self.block < 1 or self.nprocs < 1:
            raise ValueError("invalid BlockCyclic1D parameters")

    def owner(self, i: int) -> int:
        """Process owning global row ``i``."""
        self._check_row(i)
        return (i // self.block) % self.nprocs

    def rows_of(self, p: int) -> np.ndarray:
        """Global row indices owned by process ``p`` (sorted ascending)."""
        self._check_proc(p)
        rows = np.arange(self.m, dtype=np.int64)
        return rows[(rows // self.block) % self.nprocs == p]

    def local_count(self, p: int) -> int:
        """Number of rows owned by process ``p``."""
        return int(self.rows_of(p).shape[0])

    def to_local(self, i: int) -> int:
        """Local index of global row ``i`` on its owner process."""
        self._check_row(i)
        blk = i // self.block
        local_blk = blk // self.nprocs
        return int(local_blk * self.block + i % self.block)

    def to_global(self, p: int, li: int) -> int:
        """Global index of local row ``li`` on process ``p``."""
        self._check_proc(p)
        local_blk = li // self.block
        global_blk = local_blk * self.nprocs + p
        g = global_blk * self.block + li % self.block
        if g >= self.m:
            raise ValueError(f"local index {li} out of range on process {p}")
        return int(g)

    def _check_row(self, i: int) -> None:
        if not (0 <= i < self.m):
            raise ValueError(f"row {i} outside 0..{self.m - 1}")

    def _check_proc(self, p: int) -> None:
        if not (0 <= p < self.nprocs):
            raise ValueError(f"process {p} outside 0..{self.nprocs - 1}")
