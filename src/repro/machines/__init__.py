"""Machine performance models (latency, bandwidth, flop rates)."""

from .model import MachineModel, generic_cluster, unit_machine
from .nersc import MACHINES, cray_xt4, ibm_power5

__all__ = [
    "MachineModel",
    "unit_machine",
    "generic_cluster",
    "ibm_power5",
    "cray_xt4",
    "MACHINES",
]
