"""Machine performance models (the α, β, γ of the paper's cost model).

The paper estimates runtimes with a classic latency/bandwidth/flop model
(Section 3): sending ``w`` words costs ``α + w·β`` seconds, a multiply/add
costs ``γ``, a division costs ``γ_d``, and collectives over ``P`` processes
take ``log2(P)`` identical steps.  Section 4 additionally allows different
latency/bandwidth along process-grid columns (``α_c, β_c``) and rows
(``α_r, β_r``) to model hierarchical machines.

:class:`MachineModel` carries those parameters.  The same object is consumed
by the virtual-MPI simulator (to advance per-rank clocks) and by the analytic
models of :mod:`repro.models` (to evaluate Equations (1)-(3)).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the α-β-γ machine model.

    Attributes
    ----------
    name:
        Human-readable machine name.
    gamma:
        Seconds per multiply/add floating point operation (effective, i.e.
        already including the fraction of peak a tuned BLAS reaches).
    gamma_d:
        Seconds per division.
    gamma_cmp:
        Seconds per comparison (pivot searches).  ``None`` (the default)
        means comparisons cost the same as a multiply/add (``γ``), matching
        the convention that a pivot search runs at the machine's scalar
        flop rate.
    alpha:
        Point-to-point message latency in seconds (default channel).
    beta:
        Seconds per 8-byte word transferred (inverse bandwidth, default
        channel).
    alpha_row / beta_row:
        Latency / inverse bandwidth for messages between processes in the
        same grid *row* (different nodes in a hierarchical machine).  Default
        to ``alpha`` / ``beta``.
    alpha_col / beta_col:
        Latency / inverse bandwidth for messages within a grid *column*.
        Default to ``alpha`` / ``beta``.
    peak_flops_per_proc:
        Theoretical peak of one processor in flop/s — used only to report
        "percent of peak" columns, never to compute times.
    """

    name: str
    gamma: float
    gamma_d: float
    alpha: float
    beta: float
    alpha_row: Optional[float] = None
    beta_row: Optional[float] = None
    alpha_col: Optional[float] = None
    beta_col: Optional[float] = None
    gamma_cmp: Optional[float] = None
    peak_flops_per_proc: float = 0.0
    notes: str = ""

    def __post_init__(self) -> None:
        if min(self.gamma, self.gamma_d, self.alpha, self.beta) < 0:
            raise ValueError("machine parameters must be non-negative")
        # The optional per-channel overrides of a hierarchical machine must be
        # validated too, or a mistyped alpha_row/beta_col produces negative
        # simulated times instead of an error at construction.
        for name in ("alpha_row", "beta_row", "alpha_col", "beta_col", "gamma_cmp"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"machine parameter {name} must be non-negative")

    # Channel-resolved accessors -------------------------------------------------
    def latency(self, channel: str = "any") -> float:
        """Message latency for a channel ("row", "col" or "any")."""
        if channel == "row" and self.alpha_row is not None:
            return self.alpha_row
        if channel == "col" and self.alpha_col is not None:
            return self.alpha_col
        return self.alpha

    def inv_bandwidth(self, channel: str = "any") -> float:
        """Per-word transfer time for a channel ("row", "col" or "any")."""
        if channel == "row" and self.beta_row is not None:
            return self.beta_row
        if channel == "col" and self.beta_col is not None:
            return self.beta_col
        return self.beta

    def message_time(self, words: float, channel: str = "any") -> float:
        """Time to send a message of ``words`` 8-byte words: ``α + w·β``."""
        return self.latency(channel) + words * self.inv_bandwidth(channel)

    def comparison_time(self) -> float:
        """Seconds per comparison: ``γ_cmp``, defaulting to ``γ``."""
        return self.gamma if self.gamma_cmp is None else self.gamma_cmp

    def compute_time(
        self, muladds: float, divides: float = 0.0, comparisons: float = 0.0
    ) -> float:
        """Time for ``muladds·γ + divides·γ_d + comparisons·γ_cmp``."""
        t = muladds * self.gamma + divides * self.gamma_d
        if comparisons:
            t += comparisons * self.comparison_time()
        return t

    def flops_to_gflops(self, flops: float, seconds: float) -> float:
        """Convert a (flops, time) pair into GFLOP/s (0 if time is 0)."""
        if seconds <= 0.0:
            return 0.0
        return flops / seconds / 1.0e9

    def percent_of_peak(self, flops: float, seconds: float, nprocs: int) -> float:
        """Percent of aggregate theoretical peak achieved by ``flops`` in ``seconds``."""
        if seconds <= 0.0 or self.peak_flops_per_proc <= 0.0 or nprocs <= 0:
            return 0.0
        achieved = flops / seconds
        return 100.0 * achieved / (self.peak_flops_per_proc * nprocs)

    def with_overrides(self, **kwargs) -> "MachineModel":
        """Return a copy of this model with some parameters replaced."""
        return replace(self, **kwargs)


def unit_machine() -> MachineModel:
    """A machine where a message costs 1 and arithmetic/bandwidth are free.

    With this model the simulated critical-path time equals the number of
    message steps on the critical path, which is convenient in unit tests of
    the communication structure.
    """
    return MachineModel(
        name="unit-latency",
        gamma=0.0,
        gamma_d=0.0,
        alpha=1.0,
        beta=0.0,
        notes="alpha=1, everything else free; for counting message steps",
    )


def generic_cluster(
    flop_rate: float = 5.0e9,
    efficiency: float = 0.5,
    latency: float = 5.0e-6,
    bandwidth: float = 2.0e9,
) -> MachineModel:
    """A generic commodity-cluster model used in examples and defaults.

    Parameters
    ----------
    flop_rate:
        Peak flop/s per process.
    efficiency:
        Fraction of peak a tuned BLAS sustains; ``γ = 1 / (flop_rate * efficiency)``.
    latency:
        MPI point-to-point latency in seconds.
    bandwidth:
        Link bandwidth in bytes/s.
    """
    gamma = 1.0 / (flop_rate * efficiency)
    return MachineModel(
        name="generic-cluster",
        gamma=gamma,
        gamma_d=10.0 * gamma,
        alpha=latency,
        beta=8.0 / bandwidth,
        peak_flops_per_proc=flop_rate,
        notes="generic cluster for examples",
    )
