"""Calibrated models of the two NERSC systems used in the paper's evaluation.

The paper (Section 6) reports for each system:

* **IBM p575 POWER5** ("Bassi"): 888 processors in 111 8-way nodes, 1.9 GHz,
  7.6 GFLOP/s theoretical peak per processor, 3100 MB/s peak internode
  bandwidth, 4.5 µs MPI point-to-point internode latency.
* **Cray XT4** ("Franklin"): 9660 nodes, each with a 2.6 GHz dual-core AMD
  Opteron, 5.2 GFLOP/s theoretical peak per (dual-core) node.  The paper does
  not print the XT4's latency/bandwidth; we use the published SeaStar2
  figures for the machine in that era (~7 µs MPI latency, ~1.6 GB/s sustained
  MPI bandwidth per node).

Effective flop rates: the paper's own measurements reach 40 % of peak on the
POWER5 and 23 % of peak on the XT4 for the largest problems (Table 7), and
TSLU reaches 44 % / 36 % of peak.  The machine models therefore use an
*efficiency* factor (fraction of peak sustained by DGEMM-dominated code) of
0.55 for the POWER5/ESSL and 0.45 for the XT4/LibSci+Goto, which puts the
model-predicted "percent of peak" columns in the same range the paper
reports.  The per-division cost γ_d is taken as ~20 flop times, a standard
figure for these cores.

These numbers shape the *ratios* between algorithms (which is what the tables
report); the absolute GFLOP/s values are only indicative.
"""

from __future__ import annotations

from .model import MachineModel


def ibm_power5(efficiency: float = 0.55) -> MachineModel:
    """Machine model of the NERSC IBM p575 POWER5 system ("Bassi")."""
    peak = 7.6e9  # flop/s per processor (paper, Section 6)
    gamma = 1.0 / (peak * efficiency)
    bandwidth = 3100.0e6  # bytes/s (paper, Section 6)
    return MachineModel(
        name="IBM POWER5 (NERSC Bassi)",
        gamma=gamma,
        gamma_d=20.0 * gamma,
        alpha=4.5e-6,  # MPI point-to-point internode latency (paper)
        beta=8.0 / bandwidth,
        peak_flops_per_proc=peak,
        notes=(
            "888 processors, 111 nodes x 8; ESSL BLAS; parameters from the "
            "paper's Section 6, efficiency factor calibrated to its Table 7"
        ),
    )


def cray_xt4(efficiency: float = 0.45) -> MachineModel:
    """Machine model of the NERSC Cray XT4 system ("Franklin")."""
    peak = 5.2e9  # flop/s per dual-core node (paper, Section 6)
    gamma = 1.0 / (peak * efficiency)
    bandwidth = 1.6e9  # bytes/s sustained MPI bandwidth (SeaStar2, public figure)
    return MachineModel(
        name="Cray XT4 (NERSC Franklin)",
        gamma=gamma,
        gamma_d=20.0 * gamma,
        alpha=7.0e-6,  # MPI latency on SeaStar2 (public figure; not in the paper)
        beta=8.0 / bandwidth,
        peak_flops_per_proc=peak,
        notes=(
            "9660 dual-core Opteron nodes; LibSci + threaded Goto BLAS; peak "
            "per node from the paper, network parameters from public SeaStar2 "
            "figures, efficiency calibrated to the paper's Table 7"
        ),
    )


#: Mapping used by the experiment harness to select a machine by name.
MACHINES = {
    "ibm_power5": ibm_power5,
    "cray_xt4": cray_xt4,
}
