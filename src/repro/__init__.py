"""repro — reproduction of "Communication Avoiding Gaussian Elimination".

The package reimplements CALU (communication-avoiding LU with ca-pivoting /
tournament pivoting), its panel factorization TSLU, the ScaLAPACK-style
baselines it is compared against, the paper's analytic performance models,
and the stability and performance experiments of its evaluation section.

Quick start::

    import numpy as np
    from repro import calu, calu_solve

    A = np.random.default_rng(0).standard_normal((512, 512))
    result = calu(A, block_size=32, nblocks=4)
    assert np.allclose(A[result.perm, :], result.L @ result.U, atol=1e-8)

Subpackages
-----------
``repro.core``
    ca-pivoting, TSLU, CALU and a linear solver (the paper's contribution).
``repro.parallel``
    SPMD versions of TSLU and CALU running on the virtual-MPI simulator.
``repro.scalapack``
    Simulated ScaLAPACK baselines (PDGETF2, PDGETRF, PDLASWP, PDTRSM, PDGEMM).
``repro.kernels``
    Sequential dense kernels (DGETF2, recursive RGETF2, blocked DGETRF, ...).
``repro.distsim`` / ``repro.machines`` / ``repro.costs``
    Virtual MPI runtime, machine models (α, β, γ), cost ledgers.
``repro.models``
    The paper's analytic runtime formulas (Equations 1-3) and comparisons.
``repro.stability``
    Growth factors, pivot thresholds, HPL residual tests.
``repro.experiments``
    One module per table/figure of the paper's evaluation.
"""

from .core import (
    CALUResult,
    SolveResult,
    TSLUResult,
    calu,
    calu_solve,
    factorization_error,
    lu_solve,
    reconstruct,
    solve_with_refinement,
    tournament_pivoting,
    tslu,
)
from .kernels import FlopCounter, getf2, getrf_blocked, getrf_partial_pivoting, rgetf2
from .layouts import Block1D, BlockCyclic1D, BlockCyclic2D, ProcessGrid
from .machines import MachineModel, cray_xt4, generic_cluster, ibm_power5, unit_machine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "calu",
    "CALUResult",
    "tslu",
    "TSLUResult",
    "tournament_pivoting",
    "calu_solve",
    "lu_solve",
    "solve_with_refinement",
    "SolveResult",
    "reconstruct",
    "factorization_error",
    "FlopCounter",
    "getf2",
    "rgetf2",
    "getrf_blocked",
    "getrf_partial_pivoting",
    "ProcessGrid",
    "Block1D",
    "BlockCyclic1D",
    "BlockCyclic2D",
    "MachineModel",
    "ibm_power5",
    "cray_xt4",
    "unit_machine",
    "generic_cluster",
]
