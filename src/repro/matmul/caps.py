"""CAPS: communication-optimal parallel Strassen (Ballard et al., arXiv:1202.3173).

The classical distributed matmul (SUMMA, :mod:`repro.matmul.summa`) moves
``Θ(n²/√P)`` words per processor — optimal for algorithms doing ``Θ(n³)``
arithmetic, but not for Strassen.  CAPS runs Strassen's recursion *in
parallel* over the processor pool and attains the Strassen-specific lower
bound ``Θ(n²/P^{2/ω})`` words with ``ω = log2 7 ≈ 2.807``: asymptotically
less bandwidth than any classical algorithm.

Traversal, following the paper:

``BFS`` step (enough processors: group size divisible by 7)
    All seven Strassen products are computed *simultaneously*: the group
    splits into 7 subgroups, each taking one product ``M_i = T_i @ S_i``
    at half the matrix dimensions.  One data redistribution down, one up.

``DFS`` step (few processors / non-divisible group)
    The seven products are computed *sequentially* by the whole group at
    half the dimensions; needs only a constant factor more memory and no
    processor split.

``bcast`` leaf (odd dimensions or tiny blocks)
    The remaining ``k x n`` operand ``B`` is broadcast and each rank
    multiplies its rows of ``A`` locally — the base case that also absorbs
    ragged (odd) dimensions.

``local`` leaf (group of one)
    A sequential Strassen multiply (:func:`strassen_multiply`).

Data layout invariant: at a node over group ``g`` the rank at group position
``pos`` owns the rows :func:`owned_intervals(m, g, pos) <owned_intervals>` of
the ``m x k`` operand ``A`` (and of the output ``C``) and the rows
``owned_intervals(k, g, pos)`` of ``B`` — full column widths.  For even row
counts the intervals pair a chunk of the top half with the same chunk of the
bottom half, so every Strassen quadrant combination ``T_i``/``S_i`` is a
purely local slice computation; redistributions then move only the interval
intersections between the parent and child layouts.

Message/word accounting is exact and replayed (without data) by
:func:`caps_count_ledger`; the runtime and the ledger share the single-pair
move helpers below, so measured traces match the model *by construction* —
the property asserted by ``validate_matmul``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..distsim.collectives import broadcast
from ..distsim.engine import ExecutionEngine
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.flops import FlopCounter, FlopFormulas
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from .base import MatmulBackend, PdgemmResult

#: Exponent of Strassen's recursion, ``log2 7``.
OMEGA = float(np.log2(7.0))

#: Sequential Strassen switches to classical GEMM at or below this dimension.
STRASSEN_CUTOFF = 8

#: Distributed DFS steps stop splitting below this dimension (the remaining
#: product is finished by the broadcast leaf).
DFS_MIN = 8

Interval = Tuple[int, int]

# --------------------------------------------------------------------------
# Strassen tables.  M_i = T_i @ S_i with the canonical seven products:
#   M1=(A11+A22)(B11+B22)  M2=(A21+A22)B11      M3=A11(B12-B22)
#   M4=A22(B21-B11)        M5=(A11+A12)B22      M6=(A21-A11)(B11+B12)
#   M7=(A12-A22)(B21+B22)
# and C11=M1+M4-M5+M7, C12=M3+M5, C21=M2+M4, C22=M1-M2+M3+M6.
# Each T/S entry lists (quadrant, sign) terms; quadrants are (row, col).
_TA = (
    (((1, 1), 1), ((2, 2), 1)),
    (((2, 1), 1), ((2, 2), 1)),
    (((1, 1), 1),),
    (((2, 2), 1),),
    (((1, 1), 1), ((1, 2), 1)),
    (((2, 1), 1), ((1, 1), -1)),
    (((1, 2), 1), ((2, 2), -1)),
)
_SB = (
    (((1, 1), 1), ((2, 2), 1)),
    (((1, 1), 1),),
    (((1, 2), 1), ((2, 2), -1)),
    (((2, 1), 1), ((1, 1), -1)),
    (((2, 2), 1),),
    (((1, 1), 1), ((1, 2), 1)),
    (((2, 1), 1), ((2, 2), 1)),
)
_CM: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {
    (1, 1): ((0, 1), (3, 1), (4, -1), (6, 1)),
    (1, 2): ((2, 1), (4, 1)),
    (2, 1): ((1, 1), (3, 1)),
    (2, 2): ((0, 1), (1, -1), (2, 1), (5, 1)),
}


def strassen_multiply(
    A: np.ndarray, B: np.ndarray, flops: Optional[FlopCounter] = None
) -> np.ndarray:
    """Sequential Strassen multiply ``A @ B`` with exact flop accounting.

    Recurses while all three dimensions are even and above
    :data:`STRASSEN_CUTOFF`; the base case charges classical ``2 m n k``
    multiply/adds, each recursion level charges its quadrant additions.
    Also usable as the ``local_multiply`` hook of the trailing update.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    m, k = A.shape
    n = B.shape[1]
    if m % 2 or k % 2 or n % 2 or min(m, k, n) <= STRASSEN_CUTOFF:
        if flops is not None:
            flops.add_muladds(FlopFormulas.gemm(m, n, k))
        return A @ B
    m2, k2, n2 = m // 2, k // 2, n // 2
    quadA = {
        (1, 1): A[:m2, :k2], (1, 2): A[:m2, k2:],
        (2, 1): A[m2:, :k2], (2, 2): A[m2:, k2:],
    }
    quadB = {
        (1, 1): B[:k2, :n2], (1, 2): B[:k2, n2:],
        (2, 1): B[k2:, :n2], (2, 2): B[k2:, n2:],
    }
    M = []
    for i in range(7):
        Ti = _combine(quadA, _TA[i], flops)
        Si = _combine(quadB, _SB[i], flops)
        M.append(strassen_multiply(Ti, Si, flops))
    C = np.empty((m, n))
    C[:m2, :n2] = _accumulate(M, _CM[(1, 1)], flops)
    C[:m2, n2:] = _accumulate(M, _CM[(1, 2)], flops)
    C[m2:, :n2] = _accumulate(M, _CM[(2, 1)], flops)
    C[m2:, n2:] = _accumulate(M, _CM[(2, 2)], flops)
    return C


def _combine(quads, terms, flops):
    """Signed sum of operand quadrants per one Strassen T/S table row."""
    (q0, s0) = terms[0]
    out = quads[q0] if s0 == 1 else -quads[q0]
    if len(terms) == 1:
        return np.array(out) if out is quads[q0] else out
    out = np.array(out)
    for (q, s) in terms[1:]:
        if s == 1:
            out += quads[q]
        else:
            out -= quads[q]
        if flops is not None:
            out_adds = out.size
            flops.add_muladds(out_adds)
    return out


def _accumulate(M, terms, flops):
    """Signed sum of Strassen products per one C-quadrant table row."""
    (i0, s0) = terms[0]
    out = np.array(M[i0]) if s0 == 1 else -M[i0]
    for (i, s) in terms[1:]:
        if s == 1:
            out += M[i]
        else:
            out -= M[i]
        if flops is not None:
            flops.add_muladds(out.size)
    return out


# --------------------------------------------------------------------------
# Row-interval layout helpers (shared by the runtime and the count ledger).

def _chunk(r: int, g: int, pos: int) -> Interval:
    """Rows ``[start, stop)`` of an ``r``-row slab assigned to position ``pos``
    of ``g`` (balanced contiguous split, first ``r % g`` chunks one larger)."""
    base, extra = divmod(r, g)
    start = pos * base + min(pos, extra)
    return (start, start + base + (1 if pos < extra else 0))


def owned_intervals(r: int, g: int, pos: int) -> List[Interval]:
    """Global row intervals of an ``r``-row operand owned by group position
    ``pos`` of ``g`` under the CAPS layout.

    For even ``r`` the position owns *paired halves* — the same chunk of the
    top half and of the bottom half — so all four quadrants of the operand
    are contiguous local slices and Strassen's ``T_i``/``S_i`` combinations
    need no communication.  Odd ``r`` (only reachable at ``bcast`` leaves)
    degrades to a single balanced chunk; a group of one owns everything.
    """
    if g == 1:
        return [(0, r)] if r else []
    if r % 2 == 0:
        s, e = _chunk(r // 2, g, pos)
        if e <= s:
            return []
        h = r // 2
        return [(s, e), (h + s, h + e)]
    s, e = _chunk(r, g, pos)
    return [(s, e)] if e > s else []


def _total(ivals: Sequence[Interval]) -> int:
    return sum(e - s for s, e in ivals)


def _intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Sorted pairwise intersection of two interval lists."""
    out = []
    for (s1, e1) in a:
        for (s2, e2) in b:
            s, e = max(s1, s2), min(e1, e2)
            if s < e:
                out.append((s, e))
    out.sort()
    return out


def _local_slice(base: Sequence[Interval], s: int, e: int) -> Tuple[int, int]:
    """Local row range of global rows ``[s, e)`` in an array whose rows are
    the concatenation of ``base`` (the interval must lie inside one piece)."""
    off = 0
    for (bs, be) in base:
        if bs <= s and e <= be:
            return off + (s - bs), off + (e - bs)
        off += be - bs
    raise AssertionError(f"rows [{s}, {e}) not contained in layout {list(base)}")


# Single-pair move predicates: given one (sender, receiver) pair, which row
# intervals travel.  The runtime sends/receives exactly these intervals and
# the ledger counts exactly these intervals, so measured == modelled.

def _bfs_dn_move(g, gc, m2, k2, p, d):
    q = d % gc
    ivT = _intersect([_chunk(m2, g, p)], owned_intervals(m2, gc, q))
    ivS = _intersect([_chunk(k2, g, p)], owned_intervals(k2, gc, q))
    return ivT, ivS


def _bfs_up_move(g, gc, m2, d, p):
    return _intersect(owned_intervals(m2, gc, d % gc), [_chunk(m2, g, p)])


def _dfs_dn_move(g, m2, k2, p, q):
    ivT = _intersect([_chunk(m2, g, p)], owned_intervals(m2, g, q))
    ivS = _intersect([_chunk(k2, g, p)], owned_intervals(k2, g, q))
    return ivT, ivS


def _dfs_up_move(g, m2, q, p):
    return _intersect(owned_intervals(m2, g, q), [_chunk(m2, g, p)])


def node_kind(g: int, m: int, k: int, n: int) -> str:
    """Traversal step taken at a node: ``local``/``bfs``/``dfs``/``bcast``."""
    if g == 1:
        return "local"
    even = m % 2 == 0 and k % 2 == 0 and n % 2 == 0
    if even and g % 7 == 0:
        return "bfs"
    if even and min(m, k, n) >= DFS_MIN:
        return "dfs"
    return "bcast"


# --------------------------------------------------------------------------
# The SPMD recursion.

def _caps_rank(comm, group, path, m, k, n, Aloc, Bloc):
    """One rank's share of ``C = A @ B`` at one recursion node.

    ``Aloc`` holds rows ``owned_intervals(m, g, pos)`` of ``A`` (full width
    ``k``), ``Bloc`` rows ``owned_intervals(k, g, pos)`` of ``B`` (full width
    ``n``); the returned local ``C`` holds rows ``owned_intervals(m, g, pos)``
    (full width ``n``) — the output inherits ``A``'s layout at every level.
    """
    g = len(group)
    pos = group.index(comm.rank)
    kind = node_kind(g, m, k, n)
    scratch = FlopCounter()

    if kind == "local":
        C = strassen_multiply(Aloc, Bloc, flops=scratch)
        comm.charge_counter(scratch)
        return C

    if kind == "bcast":
        # Gather all of B via per-owner broadcasts, multiply my rows of A.
        Bfull = np.zeros((k, n))
        for q in range(g):
            ivals = owned_intervals(k, g, q)
            if not _total(ivals):
                continue
            val = yield from broadcast.co(
                comm,
                Bloc if q == pos else None,
                root=group[q],
                group=group,
                tag=("caps", path, "B", q),
                channel="any",
            )
            off = 0
            for (s, e) in ivals:
                Bfull[s:e] = val[off:off + (e - s)]
                off += e - s
        C = strassen_multiply(Aloc, Bfull, flops=scratch)
        comm.charge_counter(scratch)
        return C

    m2, k2, n2 = m // 2, k // 2, n // 2
    ts, te = _chunk(m2, g, pos)
    ks, ke = _chunk(k2, g, pos)
    h, hb = te - ts, ke - ks

    # Paired-halves layout: quadrants are local slices.
    quadA = {
        (1, 1): Aloc[:h, :k2], (1, 2): Aloc[:h, k2:],
        (2, 1): Aloc[h:, :k2], (2, 2): Aloc[h:, k2:],
    }
    quadB = {
        (1, 1): Bloc[:hb, :n2], (1, 2): Bloc[:hb, n2:],
        (2, 1): Bloc[hb:, :n2], (2, 2): Bloc[hb:, n2:],
    }

    if kind == "bfs":
        gc = g // 7
        myi, myq = divmod(pos, gc)

        # My shares of all seven T_i (rows [ts, te)) and S_i (rows [ks, ke)).
        Tsh = [_combine(quadA, _TA[i], scratch) for i in range(7)]
        Ssh = [_combine(quadB, _SB[i], scratch) for i in range(7)]
        comm.charge_counter(scratch)

        # ---- down: redistribute T_i/S_i to subgroup i's child layout.
        stash = None
        for d in range(g):
            i = d // gc
            ivT, ivS = _bfs_dn_move(g, gc, m2, k2, pos, d)
            if not ivT and not ivS:
                continue
            parts = tuple(
                [Tsh[i][s - ts:e - ts] for (s, e) in ivT]
                + [Ssh[i][s - ks:e - ks] for (s, e) in ivS]
            )
            if d == pos:
                stash = parts
            else:
                comm.send(group[d], parts,
                          tag=("caps", path, "dn", pos), channel="any")
        del Tsh, Ssh

        myT = owned_intervals(m2, gc, myq)
        myS = owned_intervals(k2, gc, myq)
        Tmine = np.zeros((_total(myT), k2))
        Smine = np.zeros((_total(myS), n2))
        for p in range(g):
            ivT, ivS = _bfs_dn_move(g, gc, m2, k2, p, pos)
            if not ivT and not ivS:
                continue
            if p == pos:
                parts = stash
            else:
                parts = yield from comm.co_recv(
                    group[p], tag=("caps", path, "dn", p))
            idx = 0
            for (s, e) in ivT:
                ls, le = _local_slice(myT, s, e)
                Tmine[ls:le] = parts[idx]
                idx += 1
            for (s, e) in ivS:
                ls, le = _local_slice(myS, s, e)
                Smine[ls:le] = parts[idx]
                idx += 1

        # ---- recurse: subgroup myi computes M_myi at half dimensions.
        sub = group[myi * gc:(myi + 1) * gc]
        Mi = yield from _caps_rank(
            comm, sub, path + (myi,), m2, k2, n2, Tmine, Smine)

        # ---- up: redistribute every M_i back to the parent chunk layout.
        upstash = None
        for p in range(g):
            iv = _bfs_up_move(g, gc, m2, pos, p)
            if not iv:
                continue
            parts = []
            for (s, e) in iv:
                ls, le = _local_slice(myT, s, e)
                parts.append(Mi[ls:le])
            parts = tuple(parts)
            if p == pos:
                upstash = parts
            else:
                comm.send(group[p], parts,
                          tag=("caps", path, "up", pos), channel="any")

        Ms = [np.zeros((h, n2)) for _ in range(7)]
        for d in range(g):
            i = d // gc
            iv = _bfs_up_move(g, gc, m2, d, pos)
            if not iv:
                continue
            if d == pos:
                parts = upstash
            else:
                parts = yield from comm.co_recv(
                    group[d], tag=("caps", path, "up", d))
            for j, (s, e) in enumerate(iv):
                Ms[i][s - ts:e - ts] = parts[j]

    else:  # kind == "dfs": seven sequential products over the whole group.
        Ms = [np.zeros((h, n2)) for _ in range(7)]
        myT = owned_intervals(m2, g, pos)
        myS = owned_intervals(k2, g, pos)
        for i in range(7):
            sub_path = path + (("d", i),)
            Ti = _combine(quadA, _TA[i], scratch)
            Si = _combine(quadB, _SB[i], scratch)
            comm.charge_counter(scratch)

            stash = None
            for q in range(g):
                ivT, ivS = _dfs_dn_move(g, m2, k2, pos, q)
                if not ivT and not ivS:
                    continue
                parts = tuple(
                    [Ti[s - ts:e - ts] for (s, e) in ivT]
                    + [Si[s - ks:e - ks] for (s, e) in ivS]
                )
                if q == pos:
                    stash = parts
                else:
                    comm.send(group[q], parts,
                              tag=("caps", sub_path, "dn", pos), channel="any")

            Tmine = np.zeros((_total(myT), k2))
            Smine = np.zeros((_total(myS), n2))
            for p in range(g):
                ivT, ivS = _dfs_dn_move(g, m2, k2, p, pos)
                if not ivT and not ivS:
                    continue
                if p == pos:
                    parts = stash
                else:
                    parts = yield from comm.co_recv(
                        group[p], tag=("caps", sub_path, "dn", p))
                idx = 0
                for (s, e) in ivT:
                    ls, le = _local_slice(myT, s, e)
                    Tmine[ls:le] = parts[idx]
                    idx += 1
                for (s, e) in ivS:
                    ls, le = _local_slice(myS, s, e)
                    Smine[ls:le] = parts[idx]
                    idx += 1

            Mi = yield from _caps_rank(
                comm, group, sub_path, m2, k2, n2, Tmine, Smine)

            upstash = None
            for p in range(g):
                iv = _dfs_up_move(g, m2, pos, p)
                if not iv:
                    continue
                parts = []
                for (s, e) in iv:
                    ls, le = _local_slice(myT, s, e)
                    parts.append(Mi[ls:le])
                parts = tuple(parts)
                if p == pos:
                    upstash = parts
                else:
                    comm.send(group[p], parts,
                              tag=("caps", sub_path, "up", pos), channel="any")

            for q in range(g):
                iv = _dfs_up_move(g, m2, q, pos)
                if not iv:
                    continue
                if q == pos:
                    parts = upstash
                else:
                    parts = yield from comm.co_recv(
                        group[q], tag=("caps", sub_path, "up", q))
                for j, (s, e) in enumerate(iv):
                    Ms[i][s - ts:e - ts] = parts[j]

    # Combine the seven products into my paired-halves rows of C.
    C = np.empty((2 * h, n))
    C[:h, :n2] = _accumulate(Ms, _CM[(1, 1)], scratch)
    C[:h, n2:] = _accumulate(Ms, _CM[(1, 2)], scratch)
    C[h:, :n2] = _accumulate(Ms, _CM[(2, 1)], scratch)
    C[h:, n2:] = _accumulate(Ms, _CM[(2, 2)], scratch)
    comm.charge_counter(scratch)
    return C


# --------------------------------------------------------------------------
# Exact message/word ledger (replays the recursion over index ranges only).

@lru_cache(maxsize=None)
def _subtree_counts(g: int, m: int, k: int, n: int) -> Tuple[int, float]:
    """(messages, words) of the whole CAPS subtree at one node, all ranks."""
    kind = node_kind(g, m, k, n)
    if kind == "local":
        return 0, 0.0
    if kind == "bcast":
        msgs, words = 0, 0.0
        for q in range(g):
            rows = _total(owned_intervals(k, g, q))
            if rows:
                msgs += g - 1
                words += float(g - 1) * rows * n
        return msgs, words
    m2, k2, n2 = m // 2, k // 2, n // 2
    if kind == "bfs":
        gc = g // 7
        msgs, words = 0, 0.0
        for p in range(g):
            for d in range(g):
                if d == p:
                    continue
                ivT, ivS = _bfs_dn_move(g, gc, m2, k2, p, d)
                if ivT or ivS:
                    msgs += 1
                    words += float(_total(ivT)) * k2 + float(_total(ivS)) * n2
                iv = _bfs_up_move(g, gc, m2, d, p)
                if iv:
                    msgs += 1
                    words += float(_total(iv)) * n2
        cm, cw = _subtree_counts(gc, m2, k2, n2)
        return msgs + 7 * cm, words + 7 * cw
    # dfs: identical redistribution for each of the seven products.
    msgs, words = 0, 0.0
    for p in range(g):
        for q in range(g):
            if q == p:
                continue
            ivT, ivS = _dfs_dn_move(g, m2, k2, p, q)
            if ivT or ivS:
                msgs += 1
                words += float(_total(ivT)) * k2 + float(_total(ivS)) * n2
            iv = _dfs_up_move(g, m2, q, p)
            if iv:
                msgs += 1
                words += float(_total(iv)) * n2
    cm, cw = _subtree_counts(g, m2, k2, n2)
    return 7 * (msgs + cm), 7.0 * (words + cw)


def caps_count_ledger(m: int, k: int, n: int, P: int) -> Dict[str, float]:
    """Exact per-channel message/word counts of a CAPS ``pdgemm`` run.

    All CAPS traffic travels on the ``any`` channel (its rank groups are not
    grid rows/columns).  Returns the same 8-key dict shape as
    :func:`repro.models.solve_model.solve_message_counts`.
    """
    msgs, words = _subtree_counts(int(P), int(m), int(k), int(n))
    return {
        "messages_col": 0,
        "messages_row": 0,
        "messages_any": int(msgs),
        "total_messages": int(msgs),
        "words_col": 0.0,
        "words_row": 0.0,
        "words_any": float(words),
        "total_words": float(words),
    }


# --------------------------------------------------------------------------
# Backend object.

class CapsBackend(MatmulBackend):
    """Strassen backend: CAPS standalone, Strassen local trailing update.

    Inside the LU driver the trailing update keeps the seed's broadcast
    skeleton (its channel attribution is part of the paper's CALU ledger) and
    swaps the local Schur product for :func:`strassen_multiply`; the full
    BFS/DFS CAPS recursion is exercised by the standalone :meth:`pdgemm`.
    """

    name = "caps"
    local_multiply = staticmethod(strassen_multiply)

    def pdgemm(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: Optional[np.ndarray] = None,
        grid: Optional[ProcessGrid] = None,
        block_size: int = 16,
        machine: Optional[MachineModel] = None,
        engine: Union[None, str, ExecutionEngine] = None,
    ) -> PdgemmResult:
        """Compute ``C += A @ B`` with the CAPS Strassen recursion.

        ``grid`` supplies only the processor count ``P = grid.size`` — CAPS
        distributes operands by row intervals, not block-cyclically, and
        ``block_size`` plays no role (accepted for interface symmetry).
        """
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        m, k = A.shape
        kb, n = B.shape
        if kb != k:
            raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
        P = 1 if grid is None else grid.size

        A_sh = {}
        B_sh = {}
        for r in range(P):
            ra = owned_intervals(m, P, r)
            rb = owned_intervals(k, P, r)
            A_sh[r] = np.concatenate([A[s:e] for (s, e) in ra], axis=0) \
                if ra else np.zeros((0, k))
            B_sh[r] = np.concatenate([B[s:e] for (s, e) in rb], axis=0) \
                if rb else np.zeros((0, n))

        def rank_fn(comm: Communicator):
            return (
                yield from _caps_rank(
                    comm, range(P), (), m, k, n,
                    A_sh[comm.rank], B_sh[comm.rank],
                )
            )

        trace = run_spmd(P, rank_fn, machine=machine, engine=engine)

        Cout = np.zeros((m, n)) if C is None else np.array(C, dtype=np.float64)
        if Cout.shape != (m, n):
            raise ValueError(f"C has shape {Cout.shape}, expected {(m, n)}")
        for r in range(P):
            off = 0
            local = trace.results[r]
            for (s, e) in owned_intervals(m, P, r):
                Cout[s:e] += local[off:off + (e - s)]
                off += e - s
        return PdgemmResult(C=Cout, trace=trace)
