"""Common interface of the pluggable distributed-matmul backends.

The block right-looking LU driver (:mod:`repro.parallel.driver`) historically
inlined three communication/computation steps that are really the business of
a distributed matrix multiply:

* the row broadcast of the packed panel factors (``L21`` and the swap list);
* the column broadcast of the computed ``U12`` block row;
* the local Schur-complement update ``A22 -= L21 @ U12``.

This module factors those steps behind a backend object so the multiply
algorithm becomes a knob (``matmul=``), exactly like ``pivoting=``,
``kernel_tier=`` and ``engine=``.  A backend owns two things:

1. the *trailing-update adapter* used inside ``pcalu``/``pdgetrf``
   (:meth:`MatmulBackend.share_panel` + :meth:`MatmulBackend.update_trailing`);
2. a *standalone* distributed ``pdgemm`` entry point
   (:meth:`MatmulBackend.pdgemm`) computing ``C += A @ B`` from scratch.

The default ``summa`` backend reproduces the historical driver steps
bit-for-bit — same tags, same groups, same channels, same arithmetic — so
traces and results are identical to the pre-refactor code.  The ``caps``
backend replaces the local product with Strassen's recursion and provides a
communication-optimal BFS/DFS Strassen ``pdgemm``
(:mod:`repro.matmul.caps`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..distsim.collectives import broadcast
from ..distsim.tracing import RunTrace
from ..distsim.vmpi import Communicator
from ..layouts.block_cyclic import BlockCyclic2D
from ..scalapack.pdgemm import pdgemm_trailing_update
from ..scalapack.pdtrsm import pdtrsm_block_row


@dataclass
class PdgemmResult:
    """Result of a standalone distributed multiply.

    Attributes
    ----------
    C:
        The gathered global product (``C_in + A @ B``).
    trace:
        Per-rank communication/computation trace of the run.
    """

    C: np.ndarray
    trace: RunTrace


class MatmulBackend:
    """Base class of distributed-matmul backends.

    Subclasses set :attr:`name` and :attr:`local_multiply` (``None`` keeps the
    classical in-place GEMM update, preserving bit-identical results) and
    implement :meth:`pdgemm`.  The two trailing-update hooks below reproduce
    the historical driver steps; they are shared because the *communication*
    of the trailing update (panel row broadcast, U12 column broadcast) is the
    same for both backends — only the local product differs.
    """

    #: Registry key of the backend.
    name: str = "base"

    #: Local multiply kernel for the trailing update: ``None`` means the
    #: classical ``gemm_update`` fast path (bit-identical to the seed);
    #: otherwise a callable ``multiply(A, B, flops=...) -> A @ B``.
    local_multiply = None

    # ------------------------------------------------- trailing-update adapter
    def share_panel(self, comm: Communicator, grid, myrow: int, pcol_owner: int,
                    payload, j0: int):
        """Broadcast the packed panel (swaps + L blocks) along the process row.

        Returns the resumable generator of the broadcast (drive it with
        ``payload = yield from backend.share_panel(...)``).  Tag, group and
        channel are exactly the historical driver step 2.
        """
        return broadcast.co(
            comm,
            payload,
            root=grid.rank(myrow, pcol_owner),
            group=grid.row_ranks(myrow),
            tag=("Lbcast", j0),
            channel="row",
        )

    def update_trailing(
        self,
        comm: Communicator,
        dist: BlockCyclic2D,
        Aloc: np.ndarray,
        L11: Optional[np.ndarray],
        L21_local: np.ndarray,
        j0: int,
        jb: int,
        trail_lrows: np.ndarray,
        trail_lcols: np.ndarray,
    ):
        """Driver steps 4-6: U12 solve, U12 column broadcast, local update.

        Generator (drive with ``yield from``).  The communication — one
        column broadcast per panel with tag ``("Ubcast", j0)`` — is identical
        for every backend; the Schur update dispatches to
        :attr:`local_multiply`.
        """
        grid = dist.grid
        myrow, mycol = grid.coords(comm.rank)
        prow_owner = (j0 // dist.block) % grid.nprow

        # ------------------------------ U12 block-row (grid row prow_owner)
        u12_local = None
        if myrow == prow_owner and trail_lcols.size:
            diag_lrows = np.asarray(
                [dist.global_to_local_row(g) for g in range(j0, j0 + jb)],
                dtype=np.int64,
            )
            u12_local = pdtrsm_block_row(comm, L11, Aloc, diag_lrows, trail_lcols)

        # --------------------------------- broadcast U12 down grid columns
        u12_local = yield from broadcast.co(
            comm,
            u12_local,
            root=grid.rank(prow_owner, mycol),
            group=grid.column_ranks(mycol),
            tag=("Ubcast", j0),
            channel="col",
        )

        # -------------------------------------------- trailing matrix update
        if trail_lrows.size and trail_lcols.size and u12_local is not None:
            pdgemm_trailing_update(
                comm,
                Aloc,
                L21_local,
                u12_local,
                trail_lrows,
                trail_lcols,
                multiply=self.local_multiply,
            )

    # ------------------------------------------------------ standalone pdgemm
    def pdgemm(self, A, B, C=None, grid=None, block_size=16,
               machine=None, engine=None) -> PdgemmResult:
        """Distributed ``C += A @ B`` from scratch (scatter, run, gather)."""
        raise NotImplementedError
