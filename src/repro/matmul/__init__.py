"""Pluggable distributed matmul: SUMMA (classical) vs CAPS (Strassen).

The Schur-complement update of CALU/PDGETRF — and the general distributed
product ``C += A @ B`` — is served by a registry-addressed backend, making
the multiply algorithm a first-class knob exactly like ``pivoting=``
(:mod:`repro.core.strategies`), ``kernel_tier=`` (:mod:`repro.kernels.tiers`)
and ``engine=`` (:mod:`repro.distsim.engine`):

``"summa"`` (the default)
    The classical broadcast-then-local-GEMM algorithm — bit-identical
    traces and results to the seed driver.  Bandwidth ``Θ(n²/√P)``.

``"caps"``
    Communication-optimal parallel Strassen (Ballard-Demmel-Holtz-Schwartz,
    arXiv:1202.3173): BFS/DFS traversal over rank groups, bandwidth
    ``Θ(n²/P^{2/ω})`` with ``ω = log2 7`` — asymptotically below every
    classical algorithm.  Inside the LU driver it keeps the seed broadcast
    skeleton and swaps in a Strassen local product; the full recursion runs
    in the standalone :func:`pdgemm`.

Selection, in order of precedence (mirroring the other knobs):

1. per call: ``pcalu(A, ..., matmul="caps")`` (also on ``pdgetrf``,
   ``pcalu_factor``, ``pdgesv`` and :func:`pdgemm`);
2. process-wide: :func:`set_matmul` / the :func:`matmul` context manager;
3. environment: ``REPRO_MATMUL``;
4. default: ``"summa"``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..core.options import Option, UnknownOptionError, register_option
from .base import MatmulBackend, PdgemmResult
from .caps import CapsBackend, caps_count_ledger, strassen_multiply
from .summa import SummaBackend

#: Registered backends (singletons — backends are stateless).
BACKENDS: Dict[str, MatmulBackend] = {
    "summa": SummaBackend(),
    "caps": CapsBackend(),
}

#: Backend used when neither a per-call argument, a process-wide override,
#: nor the environment variable is given — the seed-identical algorithm.
DEFAULT_BACKEND = "summa"

#: Environment variable consulted by :func:`get_matmul` (consistent with
#: ``REPRO_PIVOTING`` / ``REPRO_KERNEL_TIER`` / ``REPRO_VMPI_ENGINE``).
ENV_VAR = "REPRO_MATMUL"


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise UnknownOptionError("matmul backend", name, available_backends())
    return name


#: The matmul knob, registered into the shared configuration subsystem
#: (:mod:`repro.core.options`): the functions below are thin delegations to
#: its precedence machinery (explicit > ambient > ``REPRO_MATMUL`` > "summa").
OPTION = register_option(
    Option(
        name="matmul",
        kind="matmul backend",
        env_var=ENV_VAR,
        default=DEFAULT_BACKEND,
        validate=_validate,
    )
)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def get_backend(name: str) -> MatmulBackend:
    """Look up one backend object by name."""
    return BACKENDS[_validate(name)]


def get_matmul() -> str:
    """The process-wide backend (override > ``REPRO_MATMUL`` > ``"summa"``)."""
    return OPTION.get()


def set_matmul(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    OPTION.set(name)


@contextmanager
def matmul(name: str) -> Iterator[None]:
    """Context manager scoping a process-wide backend override."""
    with OPTION.context(name):
        yield


def resolve_matmul(name: Optional[str] = None) -> str:
    """Resolve a per-call ``matmul=`` argument to a validated backend name."""
    return OPTION.resolve(name)


def pdgemm(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    grid=None,
    block_size: int = 16,
    matmul: Optional[str] = None,
    machine=None,
    engine=None,
) -> PdgemmResult:
    """Distributed ``C += A @ B`` through the selected backend.

    Dispatches on the ``matmul`` knob (per-call > process override >
    ``REPRO_MATMUL`` > ``"summa"``) and returns a
    :class:`~repro.matmul.base.PdgemmResult` with the gathered product and
    the run trace.
    """
    backend = get_backend(resolve_matmul(matmul))
    return backend.pdgemm(
        A, B, C=C, grid=grid, block_size=block_size,
        machine=machine, engine=engine,
    )


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "MatmulBackend",
    "PdgemmResult",
    "SummaBackend",
    "CapsBackend",
    "available_backends",
    "caps_count_ledger",
    "get_backend",
    "get_matmul",
    "matmul",
    "pdgemm",
    "resolve_matmul",
    "set_matmul",
    "strassen_multiply",
]
