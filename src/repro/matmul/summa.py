"""SUMMA distributed matmul backend (the classical, bandwidth-``Θ(n²/√P)`` one).

SUMMA (van de Geijn-Watts) multiplies 2-D block-cyclic operands by marching
over the inner dimension in panels of width ``b``: at step ``j`` the grid
column owning block-column ``j`` of ``A`` broadcasts its panel along process
rows, the grid row owning block-row ``j`` of ``B`` broadcasts its panel along
process columns, and every process accumulates the local outer product.  This
is exactly the communication skeleton of the trailing update inside the block
right-looking LU driver — which is why the ``summa`` backend's trailing-update
adapter (inherited from :class:`~repro.matmul.base.MatmulBackend` with
``local_multiply=None``) reproduces the seed driver bit-for-bit.

Per-channel message/word counts of the standalone ``pdgemm`` are closed-form
(see :func:`repro.models.matmul_model.summa_message_counts`): with
``s = ceil(k/b)`` steps on a ``Pr x Pc`` grid,

* row channel: ``s * Pr * (Pc - 1)`` messages carrying ``(Pc - 1) * m * k``
  words in total;
* col channel: ``s * Pc * (Pr - 1)`` messages carrying ``(Pr - 1) * k * n``
  words in total.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..distsim.collectives import broadcast
from ..distsim.engine import ExecutionEngine
from ..distsim.engine.base import spmd_program
from ..distsim.vmpi import Communicator, run_spmd
from ..kernels.flops import FlopCounter
from ..kernels.gemm import gemm_update
from ..layouts.block_cyclic import BlockCyclic2D
from ..layouts.grid import ProcessGrid
from ..machines.model import MachineModel
from .base import MatmulBackend, PdgemmResult


@spmd_program
def summa_rank(
    comm: Communicator,
    dA: BlockCyclic2D,
    dB: BlockCyclic2D,
    Aloc: np.ndarray,
    Bloc: np.ndarray,
    Cloc: np.ndarray,
):
    """SPMD body of SUMMA on one rank: accumulate ``Cloc += (A @ B)_loc``."""
    grid = dA.grid
    myrow, mycol = grid.coords(comm.rank)
    b = dA.block
    k = dA.n  # inner dimension
    scratch = FlopCounter()

    for j0 in range(0, k, b):
        jb = min(b, k - j0)
        owner_col = (j0 // b) % grid.npcol  # grid column owning A's block-col
        owner_row = (j0 // b) % grid.nprow  # grid row owning B's block-row

        # ---------------------- broadcast the A panel along process rows
        if mycol == owner_col:
            lcols = np.asarray(
                [dA.global_to_local_col(g) for g in range(j0, j0 + jb)],
                dtype=np.int64,
            )
            Apanel = np.ascontiguousarray(Aloc[:, lcols])
        else:
            Apanel = None
        Apanel = yield from broadcast.co(
            comm,
            Apanel,
            root=grid.rank(myrow, owner_col),
            group=grid.row_ranks(myrow),
            tag=("summaA", j0),
            channel="row",
        )

        # ------------------- broadcast the B panel down process columns
        if myrow == owner_row:
            lrows = np.asarray(
                [dB.global_to_local_row(g) for g in range(j0, j0 + jb)],
                dtype=np.int64,
            )
            Bpanel = np.ascontiguousarray(Bloc[lrows, :])
        else:
            Bpanel = None
        Bpanel = yield from broadcast.co(
            comm,
            Bpanel,
            root=grid.rank(owner_row, mycol),
            group=grid.column_ranks(mycol),
            tag=("summaB", j0),
            channel="col",
        )

        # -------------------------------------- local rank-jb accumulation
        if Cloc.size:
            gemm_update(Cloc, Apanel, Bpanel, alpha=1.0, flops=scratch)
            comm.charge_counter(scratch)

    return Cloc


class SummaBackend(MatmulBackend):
    """The default backend: SUMMA standalone, classical local trailing update."""

    name = "summa"
    local_multiply = None  # seed-identical gemm_update path

    def pdgemm(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: Optional[np.ndarray] = None,
        grid: Optional[ProcessGrid] = None,
        block_size: int = 16,
        machine: Optional[MachineModel] = None,
        engine: Union[None, str, ExecutionEngine] = None,
    ) -> PdgemmResult:
        """Compute ``C += A @ B`` with SUMMA over a 2-D block-cyclic layout."""
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        m, k = A.shape
        kb, n = B.shape
        if kb != k:
            raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
        if grid is None:
            grid = ProcessGrid(1, 1)
        C = np.zeros((m, n)) if C is None else np.array(C, dtype=np.float64)
        if C.shape != (m, n):
            raise ValueError(f"C has shape {C.shape}, expected {(m, n)}")

        dA = BlockCyclic2D(m, k, block_size, grid)
        dB = BlockCyclic2D(k, n, block_size, grid)
        dC = BlockCyclic2D(m, n, block_size, grid)
        A_loc = dA.scatter(A)
        B_loc = dB.scatter(B)
        C_loc = dC.scatter(C)

        def rank_fn(comm: Communicator):
            return (
                yield from summa_rank.co(
                    comm, dA, dB, A_loc[comm.rank], B_loc[comm.rank],
                    C_loc[comm.rank],
                )
            )

        trace = run_spmd(grid.size, rank_fn, machine=machine, engine=engine)
        Cout = dC.gather({r: res for r, res in enumerate(trace.results)})
        return PdgemmResult(C=Cout, trace=trace)
