"""Analytic runtime model of ScaLAPACK's PDGETRF (Equation (3) of the paper).

::

    T_PDGETRF = [ (m n^2 - n^3/3)/P + b (m n - n^2/2)/Pr + n^2 b / (2 Pc) ] γ
              + n γ_d
              + [ 2 n (1 + 2/b) log2 Pr + n ] α_c
              + (n b / 2 + 3 n^2 / (2 Pc)) log2 Pr β_c
              + log2 Pc [ (3n/b) α_r + ( (m n - n^2/2)/Pr ) β_r ]

The dominant latency term ``2 n log2 Pr`` comes from the panel factorization
(PDGETF2: two message rounds per column) — the bottleneck CALU removes.
"""

from __future__ import annotations

from ..costs.accounting import CostLedger
from .tslu_model import _log2


def pdgetrf_cost(m: float, n: float, b: float, Pr: float, Pc: float) -> CostLedger:
    """Critical-path cost of PDGETRF on an ``m x n`` matrix (Equation 3)."""
    if min(m, n, b, Pr, Pc) <= 0:
        raise ValueError("all parameters must be positive")
    P = Pr * Pc
    lgr = _log2(Pr)
    lgc = _log2(Pc)

    muladds = (
        (m * n * n - n**3 / 3.0) / P
        + b * (m * n - n * n / 2.0) / Pr
        + n * n * b / (2.0 * Pc)
    )
    divides = n

    col_messages = 2.0 * n * (1.0 + 2.0 / b) * lgr + n
    col_words = (n * b / 2.0 + 3.0 * n * n / (2.0 * Pc)) * lgr
    row_messages = (3.0 * n / b) * lgc
    row_words = ((m * n - n * n / 2.0) / Pr) * lgc

    return CostLedger(
        muladds=muladds,
        divides=divides,
        messages_col=col_messages,
        words_col=col_words,
        messages_row=row_messages,
        words_row=row_words,
        label=f"PDGETRF(m={m:g}, n={n:g}, b={b:g}, Pr={Pr:g}, Pc={Pc:g})",
    )
