"""Analytic runtime model of TSLU and of ScaLAPACK's PDGETF2 panel.

Equation (1) of the paper gives the TSLU runtime on an ``m x b`` panel over
``P`` processes::

    T_TSLU(m, b, P) = [ 2 m b^2 / P + (2 b^3 / 3)(log2 P - 1) ] γ
                      + b (log2 P + 1) γ_d
                      + log2 P · α + b^2 log2 P · β

The PDGETF2 panel model is derived from the same cost conventions (and from
the PDGETRF model of Equation (3), restricted to one panel): the column-by-
column factorization performs ``m b^2 / P`` flops (one elimination pass), one
pivot all-reduce and one pivot-row broadcast per column (``2 b log2 P``
messages of at most ``b`` words), and ``b`` divisions per column on the
critical path.

Both functions return a :class:`~repro.costs.accounting.CostLedger` so they
can be priced on any machine and broken down into latency/bandwidth/flops
contributions.
"""

from __future__ import annotations

import math

from ..costs.accounting import CostLedger


def _log2(p: float) -> float:
    """log2 with the convention log2(1) = 0 (used throughout the paper)."""
    return math.log2(p) if p > 1 else 0.0


def tslu_cost(
    m: float,
    b: float,
    P: float,
    local_kernel: str = "getf2",
    local_speedup: float = 1.0,
) -> CostLedger:
    """Critical-path cost of TSLU on an ``m x b`` panel over ``P`` processes (Eq. 1).

    Parameters
    ----------
    m, b, P:
        Panel height, panel width, number of processes (1-D layout).
    local_kernel:
        ``"getf2"`` or ``"rgetf2"`` — which sequential kernel performs the
        local factorization.  The flop count is the same; the recursive kernel
        executes them faster on real machines because it is BLAS-3 rich,
        which the model expresses through ``local_speedup``.
    local_speedup:
        Factor by which the *local* factorization flops are effectively
        accelerated (≥ 1).  The paper's Tables 3-4 observe ~1.5-2.5x for the
        recursive kernel on large panels; 1.0 reproduces the classic kernel.
    """
    if min(m, b, P) <= 0:
        raise ValueError("m, b and P must be positive")
    lg = _log2(P)
    local_flops = 2.0 * m * b * b / P
    tournament_flops = (2.0 * b**3 / 3.0) * max(lg - 1.0, 0.0) + (2.0 * b**3 / 3.0)
    # The second 2b^3/3 term is the root/no-pivot factorization; the paper
    # folds it into the (log2 P - 1) factor's constant — keeping it explicit
    # changes nothing at leading order but keeps P = 1 sensible.
    # Pivot-search comparisons (charged by the simulator, priced with γ_cmp):
    # the local factorization scans m/P rows per column (m b / P total at
    # leading order) and every tournament merge factors a 2b x b block
    # (3 b^2 / 2 comparisons each, log2 P merges on the critical path).
    comparisons = m * b / P + 1.5 * b * b * lg
    return CostLedger(
        muladds=local_flops / max(local_speedup, 1.0) + tournament_flops,
        divides=b * (lg + 1.0),
        comparisons=comparisons,
        messages_col=lg,
        words_col=b * b * lg,
        label=f"TSLU(m={m:g}, b={b:g}, P={P:g}, {local_kernel})",
    )


def pdgetf2_cost(m: float, b: float, P: float) -> CostLedger:
    """Critical-path cost of ScaLAPACK's PDGETF2 on an ``m x b`` panel over ``P`` processes.

    Column-by-column partial pivoting: per column, a pivot all-reduce and a
    pivot-row broadcast (``2 log2 P`` messages, ``O(b)`` words), plus the
    local share of the elimination flops.
    """
    if min(m, b, P) <= 0:
        raise ValueError("m, b and P must be positive")
    lg = _log2(P)
    flops = m * b * b / P  # (m b^2 - b^3/3) / P at leading order
    return CostLedger(
        muladds=flops,
        divides=b,
        # One local pivot search of ~m/P rows per column.
        comparisons=m * b / P,
        messages_col=2.0 * b * lg,
        words_col=(b * b / 2.0 + b) * lg,
        label=f"PDGETF2(m={m:g}, b={b:g}, P={P:g})",
    )
