"""Analytic runtime model of CALU (Equation (2) of the paper).

For an ``m x n`` matrix on a ``Pr x Pc`` grid with block size ``b``::

    T_CALU = [ (m n^2 - n^3/3)/P + 2b (m n - n^2/2)/Pr + n^2 b / (2 Pc)
               + (2 n b^2 / 3)(log2 Pr - 1) ] γ
           + n (log2 Pr + 1) γ_d
           + log2 Pr [ (3n/b) α_c + (n b / 2 + 3 n^2 / (2 Pc)) β_c ]
           + log2 Pc [ (3n/b) α_r + ( (m n - n^2/2) / Pr ) β_r ]

The ``2b (mn - n^2/2)/Pr`` flop term is the redundant panel work TSLU pays
for fewer messages; the latency term along columns is smaller than
PDGETRF's by a factor ``~b``.
"""

from __future__ import annotations

from ..costs.accounting import CostLedger
from .tslu_model import _log2


def calu_cost(
    m: float,
    n: float,
    b: float,
    Pr: float,
    Pc: float,
    local_speedup: float = 1.0,
    swap_scheme: str = "reduce_broadcast",
) -> CostLedger:
    """Critical-path cost of CALU on an ``m x n`` matrix (Equation 2).

    Parameters
    ----------
    m, n:
        Matrix dimensions (``m >= n``).
    b:
        Block size of the 2-D block-cyclic distribution.
    Pr, Pc:
        Process grid dimensions.
    local_speedup:
        Effective speedup of the panel's local factorization flops when the
        recursive kernel is used (see :func:`repro.models.tslu_model.tslu_cost`).
    swap_scheme:
        ``"reduce_broadcast"`` — the improved row-swap scheme assumed by
        Equation (2) (``(2n/b) log2 Pr`` messages, included in the ``3n/b``
        factor); ``"pdlaswp"`` — the PDLASWP-style scheme the paper's actual
        implementation used (``n log2 Pr`` messages), provided for the
        ablation study.
    """
    if min(m, n, b, Pr, Pc) <= 0:
        raise ValueError("all parameters must be positive")
    P = Pr * Pc
    lgr = _log2(Pr)
    lgc = _log2(Pc)

    muladds = (
        (m * n * n - n**3 / 3.0) / P
        + 2.0 * b * (m * n - n * n / 2.0) / Pr / max(local_speedup, 1.0)
        + n * n * b / (2.0 * Pc)
        + (2.0 * n * b * b / 3.0) * max(lgr - 1.0, 0.0)
    )
    divides = n * (lgr + 1.0)

    if swap_scheme == "reduce_broadcast":
        col_messages = (3.0 * n / b) * lgr
    elif swap_scheme == "pdlaswp":
        # panel TSLU (n/b) + U12 broadcast (n/b) + one message per row swap (n).
        col_messages = (2.0 * n / b + n) * lgr
    else:
        raise ValueError(f"unknown swap scheme {swap_scheme!r}")
    col_words = (n * b / 2.0 + 3.0 * n * n / (2.0 * Pc)) * lgr

    row_messages = (3.0 * n / b) * lgc
    row_words = ((m * n - n * n / 2.0) / Pr) * lgc

    return CostLedger(
        muladds=muladds,
        divides=divides,
        messages_col=col_messages,
        words_col=col_words,
        messages_row=row_messages,
        words_row=row_words,
        label=f"CALU(m={m:g}, n={n:g}, b={b:g}, Pr={Pr:g}, Pc={Pc:g})",
    )


def calu_flops(m: float, n: float) -> float:
    """Total useful arithmetic of an LU factorization (used for GFLOP/s columns)."""
    return m * n * n - n**3 / 3.0
