"""Analytic cost model of the distributed solve phase (``PDGESV``'s solve).

The factorization models (:mod:`repro.models.calu_model`,
:mod:`repro.models.pdgetrf_model`) price ``P A = L U``; this module prices
what comes after — the two blocked triangular solves plus iterative
refinement of :func:`repro.parallel.psolve.pdgesv` — with the same
conventions, so the full ``A x = b`` pipeline can be priced and validated
end to end.

Two views are provided:

* :func:`solve_message_counts` — *exact* total message/word counts per
  channel for one solve (``1 + refinements`` triangular-solve pairs and
  residual checks), derived from the collective trees the implementation
  uses: a binomial broadcast/reduction over ``g`` ranks sends ``g - 1``
  messages; the stats all-reduce over ``P`` ranks sends
  ``2 (P - 2^floor(log2 P)) + 2^floor(log2 P) log2(2^floor(log2 P))``
  messages (recursive doubling with fold).  The ``solve`` experiment spec
  asserts the simulator reproduces these numbers exactly.
* :func:`solve_cost` — a :class:`~repro.costs.accounting.CostLedger` of the
  *critical path* (tree depths instead of totals, per-rank arithmetic at
  leading order), to be priced under a machine model next to Equations
  (1)-(3).
"""

from __future__ import annotations

import math
from typing import Dict

from ..costs.accounting import CostLedger
from .tslu_model import _log2


def tree_messages(p: float) -> float:
    """Total messages of a binomial-tree broadcast/reduce over ``p`` ranks."""
    return max(p - 1.0, 0.0)


def tree_depth(p: float) -> float:
    """Critical-path steps of a binomial tree over ``p`` ranks."""
    return math.ceil(_log2(p))


def butterfly_messages(p: int) -> float:
    """Total messages of the recursive-doubling all-reduce over ``p`` ranks.

    Non-powers of two fold the ``rem = p - 2^k`` excess ranks onto partners
    first and unfold afterwards (2 messages each), as
    :func:`repro.distsim.collectives.allreduce` does.
    """
    if p <= 1:
        return 0.0
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    rem = p - pow2
    return 2.0 * rem + pow2 * _log2(pow2)


def _num_blocks(n: int, b: int) -> int:
    return -(-n // b)


def solve_message_counts(
    n: int,
    b: int,
    Pr: int,
    Pc: int,
    nrhs: int = 1,
    refinements: int = 0,
) -> Dict[str, float]:
    """Exact total message/word counts of one ``pdgesv`` solve phase.

    Parameters
    ----------
    n, b:
        Matrix order and block size of the 2-D block-cyclic layout.
    Pr, Pc:
        Process grid shape.
    nrhs:
        Number of right-hand sides (messages are independent of it; only the
        words grow — the multi-RHS solves are batched).
    refinements:
        Refinement steps actually performed (each adds one triangular-solve
        pair and one residual check).  The implementation stops early when
        the backward error converges, so pass the *measured* iteration count
        when validating a run.

    Returns
    -------
    dict
        ``messages_col`` / ``messages_row`` / ``messages_any`` /
        ``total_messages`` and the matching ``words_*`` totals.

    Notes
    -----
    Per triangular solve over ``nb = ceil(n/b)`` blocks the implementation
    performs ``nb`` solved-block broadcasts down process columns
    (``Pr - 1`` messages each) and ``nb - 1`` partial-sum reductions across
    process rows (``Pc - 1`` each; the first forward / last backward block
    has nothing to reduce).  Each residual check adds ``nb`` row reductions
    of (residual, denominator) block pairs plus one global all-reduce of the
    per-RHS statistics.  The permutation of ``b`` is folded into the
    redistribution (see :func:`repro.parallel.psolve.pdgesv`) and costs no
    messages.
    """
    nb = _num_blocks(n, b)
    first = min(n, b)  # rows of block 0
    last = n - (nb - 1) * b  # rows of the (possibly ragged) final block
    P = Pr * Pc
    solves = 1.0 + refinements  # forward+backward substitution pairs
    checks = 1.0 + refinements  # residual + stats evaluations

    messages_col = solves * 2.0 * nb * tree_messages(Pr)
    messages_row = (
        solves * 2.0 * (nb - 1) * tree_messages(Pc)
        + checks * nb * tree_messages(Pc)
    )
    messages_any = checks * butterfly_messages(P)

    # Words: broadcasts ship every solved block once per tree edge
    # (sum_k kb*nrhs = n*nrhs); the substitution reductions skip the first
    # forward / last backward block; residual reductions carry the
    # (residual, denominator) pair; the stats all-reduce carries the per-RHS
    # maxima plus the scalar backward error.
    words_col = solves * 2.0 * n * nrhs * tree_messages(Pr)
    words_row = (
        solves * (2.0 * n - first - last) * nrhs * tree_messages(Pc)
        + checks * 2.0 * n * nrhs * tree_messages(Pc)
    )
    words_any = checks * butterfly_messages(P) * (nrhs + 1.0)

    return {
        "messages_col": messages_col,
        "messages_row": messages_row,
        "messages_any": messages_any,
        "total_messages": messages_col + messages_row + messages_any,
        "words_col": words_col,
        "words_row": words_row,
        "words_any": words_any,
        "total_words": words_col + words_row + words_any,
    }


def pdtrsv_cost(
    n: int, b: int, Pr: int, Pc: int, nrhs: int = 1, upper: bool = False
) -> CostLedger:
    """Critical-path cost of one blocked distributed triangular solve.

    The substitution sweep serialises over the ``nb`` blocks: each step pays
    a tree-depth reduction across the process row, the local ``b x b``
    triangular solve, and a tree-depth broadcast down the process column.
    The accumulated GEMM work per step is split over the ``Pc`` processes of
    the owning grid row (``n^2 nrhs / Pc`` over the sweep).
    """
    if min(n, b, Pr, Pc) <= 0:
        raise ValueError("all parameters must be positive")
    nb = _num_blocks(n, b)
    dr = tree_depth(Pr)
    dc = tree_depth(Pc)
    muladds = (
        n * n * nrhs / Pc  # off-diagonal accumulation, split over the row
        + (nb - 1) * dc * b * nrhs  # reduction-tree additions
        + n * b * nrhs  # diagonal-block triangular solves
        + n * nrhs  # right-hand-side subtraction
    )
    return CostLedger(
        muladds=muladds,
        divides=n * nrhs if upper else 0.0,
        messages_row=(nb - 1) * dc,
        words_row=(nb - 1) * dc * b * nrhs,
        messages_col=nb * dr,
        words_col=n * nrhs * dr,
        label=f"PDTRSV(n={n:g}, b={b:g}, Pr={Pr:g}, Pc={Pc:g}, nrhs={nrhs:g})",
    )


def residual_cost(n: int, b: int, Pr: int, Pc: int, nrhs: int = 1) -> CostLedger:
    """Critical-path cost of one distributed residual + backward-error check.

    Each rank multiplies its ``(n/Pr) x (n/Pc)`` local piece by its solution
    columns (twice: once for ``P A x``, once for ``|P A| |x|``), joins one
    reduction per block row its grid row owns, and the per-RHS statistics
    are agreed on by one all-reduce over all ``P`` ranks.
    """
    if min(n, b, Pr, Pc) <= 0:
        raise ValueError("all parameters must be positive")
    nb = _num_blocks(n, b)
    P = Pr * Pc
    dc = tree_depth(Pc)
    dp = tree_depth(P)
    rows_per_grid_row = nb / Pr
    return CostLedger(
        muladds=(
            4.0 * n * n * nrhs / P  # local A@x and |A|@|x|
            + rows_per_grid_row * dc * 2.0 * b * nrhs  # reduction additions
            + 2.0 * n * nrhs / Pr  # residual subtraction + denominator
        ),
        divides=n * nrhs / Pr,  # componentwise ratios
        comparisons=2.0 * n * nrhs / Pr + dp * (nrhs + 1.0),
        messages_row=rows_per_grid_row * dc,
        words_row=rows_per_grid_row * dc * 2.0 * b * nrhs,
        messages_any=dp,
        words_any=dp * (nrhs + 1.0),
        label=f"residual(n={n:g}, b={b:g}, Pr={Pr:g}, Pc={Pc:g}, nrhs={nrhs:g})",
    )


def solve_cost(
    n: int,
    b: int,
    Pr: int,
    Pc: int,
    nrhs: int = 1,
    refinements: int = 0,
) -> CostLedger:
    """Critical-path cost of the full ``pdgesv`` solve phase.

    ``1 + refinements`` forward/backward substitution pairs plus
    ``1 + refinements`` residual checks (the initial accuracy check and one
    per refinement step).  Price it under a machine model with
    ``solve_cost(...).time(machine)`` and compare against the measured
    ``trace.critical_path_time`` of :func:`repro.parallel.psolve.pdgesv`;
    the message *totals* are validated exactly via
    :func:`solve_message_counts`.
    """
    solves = 1 + refinements
    checks = 1 + refinements
    ledger = CostLedger(label=(
        f"PDGESV-solve(n={n:g}, b={b:g}, Pr={Pr:g}, Pc={Pc:g}, "
        f"nrhs={nrhs:g}, refinements={refinements:g})"
    ))
    fwd = pdtrsv_cost(n, b, Pr, Pc, nrhs, upper=False)
    bwd = pdtrsv_cost(n, b, Pr, Pc, nrhs, upper=True)
    check = residual_cost(n, b, Pr, Pc, nrhs)
    # x += dx update on every refinement (per-rank local columns).
    update = CostLedger(muladds=refinements * n * nrhs / Pc)
    return ledger + (fwd + bwd).scaled(solves) + check.scaled(checks) + update
