"""The paper's analytic performance models (Equations 1-3) and comparisons."""

from .calu_model import calu_cost, calu_flops
from .compare import (
    PAPER_GRIDS,
    FactorizationComparison,
    MatmulValidation,
    PanelComparison,
    SolveValidation,
    best_vs_best,
    compare_factorization,
    compare_panel,
    recursive_speedup,
    validate_matmul,
    validate_solve,
)
from .matmul_model import (
    caps_message_counts,
    classical_lower_bound_words,
    strassen_lower_bound_words,
    summa_message_counts,
)
from .pdgetrf_model import pdgetrf_cost
from .solve_model import pdtrsv_cost, residual_cost, solve_cost, solve_message_counts
from .tslu_model import pdgetf2_cost, tslu_cost

__all__ = [
    "tslu_cost",
    "pdgetf2_cost",
    "calu_cost",
    "calu_flops",
    "pdgetrf_cost",
    "pdtrsv_cost",
    "residual_cost",
    "solve_cost",
    "solve_message_counts",
    "validate_solve",
    "SolveValidation",
    "validate_matmul",
    "MatmulValidation",
    "summa_message_counts",
    "caps_message_counts",
    "strassen_lower_bound_words",
    "classical_lower_bound_words",
    "compare_panel",
    "compare_factorization",
    "best_vs_best",
    "recursive_speedup",
    "PanelComparison",
    "FactorizationComparison",
    "PAPER_GRIDS",
]
