"""The paper's analytic performance models (Equations 1-3) and comparisons."""

from .calu_model import calu_cost, calu_flops
from .compare import (
    PAPER_GRIDS,
    FactorizationComparison,
    PanelComparison,
    best_vs_best,
    compare_factorization,
    compare_panel,
    recursive_speedup,
)
from .pdgetrf_model import pdgetrf_cost
from .tslu_model import pdgetf2_cost, tslu_cost

__all__ = [
    "tslu_cost",
    "pdgetf2_cost",
    "calu_cost",
    "calu_flops",
    "pdgetrf_cost",
    "compare_panel",
    "compare_factorization",
    "best_vs_best",
    "recursive_speedup",
    "PanelComparison",
    "FactorizationComparison",
    "PAPER_GRIDS",
]
