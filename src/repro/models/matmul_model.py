"""Analytic communication models for the distributed matmul backends.

Two exact per-channel ledgers and two bandwidth lower bounds:

* :func:`summa_message_counts` — closed form for the blocked SUMMA of
  :mod:`repro.matmul.summa`: per step the grid column owning the current
  ``k``-panel broadcasts its ``A`` panel along every process row and the
  owning grid row broadcasts its ``B`` panel down every process column,
  each with a binomial broadcast (``p - 1`` messages carrying the full
  payload).
* :func:`caps_message_counts` — exact replay of the CAPS (Strassen) BFS/DFS
  schedule of :mod:`repro.matmul.caps`; the runtime and the ledger share
  the same move predicates, so measured equals modelled by construction.
* :func:`strassen_lower_bound_words` / :func:`classical_lower_bound_words` —
  the per-processor communication lower bounds
  ``Omega((m k n)^{2/3} / P^{2/omega_0})`` with ``omega_0 = log2 7`` for
  Strassen-like algorithms (Ballard et al., CAPS, arXiv:1202.3173) and
  ``omega_0 = 3`` classically (Irony-Toledo-Tiskin).  CAPS attains the
  Strassen bound to within a constant factor, which is asymptotically
  *below* what any classical schedule (SUMMA included) can achieve.

All count dictionaries use the 8-key schema of
:func:`repro.models.solve_model.solve_message_counts` — per-channel message
and word totals plus grand totals — so :func:`repro.models.compare.validate_matmul`
can assert exact equality against a measured trace.
"""

from __future__ import annotations

from typing import Dict

from ..matmul.caps import OMEGA, caps_count_ledger


def summa_message_counts(
    m: int,
    k: int,
    n: int,
    nprow: int,
    npcol: int,
    block_size: int,
) -> Dict[str, float]:
    """Exact per-channel message/word totals of one blocked SUMMA ``C += A B``.

    Per ``k``-step (``ceil(k / b)`` of them) every process row runs one
    binomial broadcast of the owner's local ``A`` panel (channel ``row``)
    and every process column one broadcast of the owner's local ``B`` panel
    (channel ``col``).  A binomial broadcast over ``p`` ranks sends ``p - 1``
    messages, each carrying the full payload; across a whole process row the
    broadcast payloads tile the global panel, so each step moves
    ``(npcol - 1) * m * jb`` words on the row channel and
    ``(nprow - 1) * jb * n`` on the column channel.  Summed over steps the
    ``jb`` factors telescope to ``k`` even when ``b`` does not divide ``k``.
    """
    steps = -(-k // block_size)  # ceil
    messages_row = float(steps * nprow * (npcol - 1))
    messages_col = float(steps * npcol * (nprow - 1))
    words_row = float((npcol - 1) * m * k)
    words_col = float((nprow - 1) * k * n)
    return {
        "messages_col": messages_col,
        "messages_row": messages_row,
        "messages_any": 0.0,
        "total_messages": messages_col + messages_row,
        "words_col": words_col,
        "words_row": words_row,
        "words_any": 0.0,
        "total_words": words_col + words_row,
    }


def caps_message_counts(m: int, k: int, n: int, P: int) -> Dict[str, float]:
    """Exact per-channel totals of one CAPS ``C += A B`` over ``P`` ranks.

    Thin wrapper over :func:`repro.matmul.caps.caps_count_ledger`, which
    replays the backend's own BFS/DFS schedule (shared move predicates, so
    the ledger cannot drift from the runtime).  All CAPS traffic is
    point-to-point or group-wide over the full rank set, hence on the
    ``any`` channel.
    """
    return caps_count_ledger(m, k, n, P)


def strassen_lower_bound_words(m: int, k: int, n: int, P: int) -> float:
    """Per-processor bandwidth lower bound for Strassen-like algorithms.

    ``Omega((m k n)^{2/3} / P^{2/omega_0})`` with ``omega_0 = log2 7``
    (Ballard-Demmel-Holtz-Schwartz; the bound CAPS attains).  Returned
    without the constant factor — a valid *floor* for any schedule's
    words-per-processor, which the test suite asserts against the measured
    CAPS traffic.
    """
    return float((float(m) * float(k) * float(n)) ** (2.0 / 3.0) / P ** (2.0 / OMEGA))


def classical_lower_bound_words(m: int, k: int, n: int, P: int) -> float:
    """Per-processor bandwidth lower bound for classical (non-Strassen) matmul.

    ``Omega((m k n)^{2/3} / P^{2/3})`` (Irony-Toledo-Tiskin).  Strictly above
    :func:`strassen_lower_bound_words` for ``P > 1`` — the asymptotic gap
    CAPS exists to exploit.
    """
    return float((float(m) * float(k) * float(n)) ** (2.0 / 3.0) / P ** (2.0 / 3.0))
