"""Model-based comparisons between CALU/TSLU and the ScaLAPACK baselines.

These helpers evaluate the analytic cost ledgers under a machine model and
produce exactly the quantities the paper's tables report: time ratios
(PDGETF2/TSLU, PDGETRF/CALU), CALU GFLOP/s, percent of peak, and the
"best vs best" speedups of Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..machines.model import MachineModel
from .calu_model import calu_cost, calu_flops
from .pdgetrf_model import pdgetrf_cost
from .solve_model import solve_cost, solve_message_counts
from .tslu_model import pdgetf2_cost, tslu_cost

#: Effective local-factorization speedup attributed to the recursive kernel
#: (RGETF2) relative to the classic kernel as a function of panel height.
#: Calibrated to the trend of the paper's Tables 3-4: negligible for small
#: panels, roughly 2-4x for panels of 1e5-1e6 rows where the classic,
#: column-by-column kernel becomes memory-bound.
RECURSIVE_SPEEDUP_BY_HEIGHT: Sequence[Tuple[float, float]] = (
    (1.0e3, 1.0),
    (5.0e3, 1.1),
    (1.0e4, 1.3),
    (1.0e5, 2.0),
    (1.0e6, 3.0),
)


def recursive_speedup(m: float) -> float:
    """Interpolated effective speedup of the recursive local kernel for height ``m``."""
    pts = list(RECURSIVE_SPEEDUP_BY_HEIGHT)
    if m <= pts[0][0]:
        return pts[0][1]
    for (m0, s0), (m1, s1) in zip(pts, pts[1:]):
        if m <= m1:
            # log-linear interpolation in m.
            import math

            t = (math.log10(m) - math.log10(m0)) / (math.log10(m1) - math.log10(m0))
            return s0 + t * (s1 - s0)
    return pts[-1][1]


@dataclass
class PanelComparison:
    """PDGETF2 vs TSLU on one panel configuration."""

    m: int
    b: int
    P: int
    local_kernel: str
    t_pdgetf2: float
    t_tslu: float

    @property
    def ratio(self) -> float:
        """Time ratio PDGETF2 / TSLU (the paper's Tables 3-4 entries)."""
        return self.t_pdgetf2 / self.t_tslu if self.t_tslu > 0 else float("inf")

    @property
    def tslu_gflops(self) -> float:
        """TSLU performance counting its total flops (as the paper does)."""
        flops = 2.0 * self.m * self.b * self.b  # factorization done twice
        return flops / self.t_tslu / 1.0e9 if self.t_tslu > 0 else 0.0


def compare_panel(
    m: int,
    b: int,
    P: int,
    machine: MachineModel,
    local_kernel: str = "rgetf2",
) -> PanelComparison:
    """Model-predicted PDGETF2 / TSLU comparison for one (m, b, P) point."""
    speedup = recursive_speedup(m) if local_kernel == "rgetf2" else 1.0
    t_tslu = tslu_cost(m, b, P, local_kernel=local_kernel, local_speedup=speedup).time(machine)
    t_ref = pdgetf2_cost(m, b, P).time(machine)
    return PanelComparison(
        m=m, b=b, P=P, local_kernel=local_kernel, t_pdgetf2=t_ref, t_tslu=t_tslu
    )


@dataclass
class FactorizationComparison:
    """PDGETRF vs CALU on one full-factorization configuration."""

    m: int
    b: int
    Pr: int
    Pc: int
    t_pdgetrf: float
    t_calu: float

    @property
    def P(self) -> int:
        """Total number of processes."""
        return self.Pr * self.Pc

    @property
    def ratio(self) -> float:
        """Time ratio PDGETRF / CALU (the "Impvt" columns of Tables 5-6)."""
        return self.t_pdgetrf / self.t_calu if self.t_calu > 0 else float("inf")

    @property
    def calu_gflops(self) -> float:
        """CALU performance in GFLOP/s counting the useful LU flops."""
        return calu_flops(self.m, self.m) / self.t_calu / 1.0e9 if self.t_calu > 0 else 0.0

    def percent_of_peak(self, machine: MachineModel) -> float:
        """CALU's percent of the aggregate theoretical peak."""
        return machine.percent_of_peak(calu_flops(self.m, self.m), self.t_calu, self.P)


def compare_factorization(
    m: int,
    b: int,
    Pr: int,
    Pc: int,
    machine: MachineModel,
    local_kernel: str = "rgetf2",
    swap_scheme: str = "reduce_broadcast",
) -> FactorizationComparison:
    """Model-predicted PDGETRF / CALU comparison for a square matrix of order ``m``."""
    speedup = recursive_speedup(m) if local_kernel == "rgetf2" else 1.0
    t_calu = calu_cost(
        m, m, b, Pr, Pc, local_speedup=speedup, swap_scheme=swap_scheme
    ).time(machine)
    t_ref = pdgetrf_cost(m, m, b, Pr, Pc).time(machine)
    return FactorizationComparison(m=m, b=b, Pr=Pr, Pc=Pc, t_pdgetrf=t_ref, t_calu=t_calu)


def best_vs_best(
    m: int,
    machine: MachineModel,
    grids: Sequence[Tuple[int, int]],
    block_sizes: Sequence[int],
    local_kernel: str = "rgetf2",
) -> Dict[str, object]:
    """Best-CALU vs best-PDGETRF speedup over a sweep of grids and block sizes (Table 7).

    Returns a dict with the speedup, and for each algorithm the best time,
    GFLOP/s, block size and process count at which it was achieved.
    """
    best_calu: Optional[FactorizationComparison] = None
    best_ref: Optional[Tuple[float, int, int]] = None  # (time, P, b)
    for Pr, Pc in grids:
        for b in block_sizes:
            cmp_ = compare_factorization(m, b, Pr, Pc, machine, local_kernel=local_kernel)
            if best_calu is None or cmp_.t_calu < best_calu.t_calu:
                best_calu = cmp_
            if best_ref is None or cmp_.t_pdgetrf < best_ref[0]:
                best_ref = (cmp_.t_pdgetrf, Pr * Pc, b)
    assert best_calu is not None and best_ref is not None
    flops = calu_flops(m, m)
    return {
        "m": m,
        "speedup": best_ref[0] / best_calu.t_calu,
        "calu_gflops": best_calu.calu_gflops,
        "calu_P": best_calu.P,
        "calu_b": best_calu.b,
        "calu_percent_peak": best_calu.percent_of_peak(machine),
        "pdgetrf_gflops": flops / best_ref[0] / 1.0e9,
        "pdgetrf_P": best_ref[1],
        "pdgetrf_b": best_ref[2],
    }


@dataclass
class SolveValidation:
    """Simulated-vs-analytic comparison of one ``pdgesv`` solve phase.

    ``predicted`` comes from :func:`repro.models.solve_model.solve_message_counts`
    (exact totals), ``measured`` from the solve trace; ``t_analytic`` prices
    :func:`repro.models.solve_model.solve_cost` under the machine model and
    ``t_simulated`` is the trace's critical-path time.
    """

    n: int
    b: int
    Pr: int
    Pc: int
    nrhs: int
    refinements: int
    predicted: Dict[str, float]
    measured: Dict[str, float]
    t_analytic: float
    t_simulated: float

    @property
    def messages_match(self) -> bool:
        """True when every per-channel message total matches exactly."""
        keys = ("messages_col", "messages_row", "messages_any", "total_messages")
        return all(self.measured[k] == self.predicted[k] for k in keys)

    @property
    def time_ratio(self) -> float:
        """Simulated / analytic solve time (1.0 = the model is exact)."""
        if self.t_analytic <= 0.0:
            return float("inf") if self.t_simulated > 0.0 else 1.0
        return self.t_simulated / self.t_analytic


def validate_solve(
    trace,
    n: int,
    b: int,
    Pr: int,
    Pc: int,
    machine: MachineModel,
    nrhs: int = 1,
    refinements: int = 0,
) -> SolveValidation:
    """Check a measured solve trace against the analytic solve model.

    ``trace`` is the solve-phase :class:`~repro.distsim.tracing.RunTrace` of
    :func:`repro.parallel.psolve.pdgesv` (``result.trace``); ``refinements``
    must be the iteration count the run actually performed
    (``result.iterations``) since refinement stops early on convergence.
    """
    predicted = solve_message_counts(n, b, Pr, Pc, nrhs=nrhs, refinements=refinements)
    measured = {
        "messages_col": float(trace.messages_by_channel("col")),
        "messages_row": float(trace.messages_by_channel("row")),
        "messages_any": float(trace.messages_by_channel("any")),
        "total_messages": float(trace.total_messages),
        "words_col": float(trace.words_by_channel("col")),
        "words_row": float(trace.words_by_channel("row")),
        "words_any": float(trace.words_by_channel("any")),
        "total_words": float(trace.total_words),
    }
    t_analytic = solve_cost(n, b, Pr, Pc, nrhs=nrhs, refinements=refinements).time(
        machine
    )
    return SolveValidation(
        n=n,
        b=b,
        Pr=Pr,
        Pc=Pc,
        nrhs=nrhs,
        refinements=refinements,
        predicted=predicted,
        measured=measured,
        t_analytic=t_analytic,
        t_simulated=trace.critical_path_time,
    )


@dataclass
class MatmulValidation:
    """Simulated-vs-analytic comparison of one distributed ``pdgemm``.

    ``predicted`` comes from the backend's analytic ledger
    (:func:`repro.models.matmul_model.summa_message_counts` or
    :func:`repro.models.matmul_model.caps_message_counts`), ``measured``
    from the run trace.  Unlike :class:`SolveValidation` the *word* totals
    are asserted too: both ledgers are exact, not just message-exact.
    """

    backend: str
    m: int
    k: int
    n: int
    P: int
    predicted: Dict[str, float]
    measured: Dict[str, float]
    lower_bound_words_per_proc: float

    @property
    def messages_match(self) -> bool:
        """True when every per-channel message total matches exactly."""
        keys = ("messages_col", "messages_row", "messages_any", "total_messages")
        return all(self.measured[k] == self.predicted[k] for k in keys)

    @property
    def words_match(self) -> bool:
        """True when every per-channel word total matches exactly."""
        keys = ("words_col", "words_row", "words_any", "total_words")
        return all(self.measured[k] == self.predicted[k] for k in keys)

    @property
    def above_lower_bound(self) -> bool:
        """True when measured words/processor respects the bandwidth floor."""
        return (
            self.measured["total_words"] / self.P >= self.lower_bound_words_per_proc
            or self.measured["total_words"] == 0.0
        )


def validate_matmul(
    trace,
    backend: str,
    m: int,
    k: int,
    n: int,
    grid,
    block_size: int = 16,
) -> MatmulValidation:
    """Check a measured ``pdgemm`` trace against the backend's exact ledger.

    ``trace`` is the :class:`~repro.distsim.tracing.RunTrace` of
    :func:`repro.matmul.pdgemm` (``result.trace``); ``grid`` the
    :class:`~repro.layouts.grid.ProcessGrid` the product ran on.  The lower
    bound attached is the one the backend is held to: Strassen's
    ``(mkn)^{2/3} / P^{2/log2(7)}`` for ``caps``, the classical
    ``(mkn)^{2/3} / P^{2/3}`` otherwise.
    """
    from .matmul_model import (
        caps_message_counts,
        classical_lower_bound_words,
        strassen_lower_bound_words,
        summa_message_counts,
    )

    P = grid.size
    if backend == "caps":
        predicted = caps_message_counts(m, k, n, P)
        bound = strassen_lower_bound_words(m, k, n, P)
    else:
        predicted = summa_message_counts(
            m, k, n, grid.nprow, grid.npcol, block_size
        )
        bound = classical_lower_bound_words(m, k, n, P)
    measured = {
        "messages_col": float(trace.messages_by_channel("col")),
        "messages_row": float(trace.messages_by_channel("row")),
        "messages_any": float(trace.messages_by_channel("any")),
        "total_messages": float(trace.total_messages),
        "words_col": float(trace.words_by_channel("col")),
        "words_row": float(trace.words_by_channel("row")),
        "words_any": float(trace.words_by_channel("any")),
        "total_words": float(trace.total_words),
    }
    return MatmulValidation(
        backend=backend,
        m=m,
        k=k,
        n=n,
        P=P,
        predicted=predicted,
        measured=measured,
        lower_bound_words_per_proc=bound,
    )


#: The process grids the paper uses for P = 4 .. 64.
PAPER_GRIDS: Dict[int, Tuple[int, int]] = {
    4: (2, 2),
    8: (2, 4),
    16: (4, 4),
    32: (4, 8),
    64: (8, 8),
}
