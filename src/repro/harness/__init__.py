"""Declarative experiment harness: registry, result store, sweeps, CLI.

The harness is the platform layer the experiments plug into:

* :mod:`repro.harness.spec` — :class:`ExperimentSpec` and the global
  registry.  Experiment modules register themselves at import time; call
  :func:`load_builtin_specs` (implicit in :func:`get_spec`/:func:`all_specs`)
  to make sure the built-ins are present.
* :mod:`repro.harness.store` — content-addressed :class:`ResultStore`
  (``results/`` or ``REPRO_RESULTS_DIR``): the SHA-256 of spec + resolved
  params + kernel tier + engine addresses a JSON artifact, so repeated runs
  are cache hits with bit-identical rows.
* :mod:`repro.harness.sweep` — parameter-grid expansion and the concurrent
  sweep executor.
* :mod:`repro.harness.cli` — the ``python -m repro`` / ``repro`` command.
"""

from .spec import (
    ExperimentSpec,
    Rows,
    all_specs,
    get_spec,
    jsonify,
    jsonify_rows,
    load_builtin_specs,
    register,
    spec_names,
)
from .factor_cache import FactorCache, FactorFetch, factor_key, generate_matrix
from .serving import ServiceStats, SolveOutcome, SolveService
from .store import FetchResult, ResultStore, context_key, key_lock, resolved_engine
from .sweep import SweepJob, SweepResult, expand_grid, run_sweep

__all__ = [
    "ExperimentSpec",
    "Rows",
    "all_specs",
    "get_spec",
    "jsonify",
    "jsonify_rows",
    "load_builtin_specs",
    "register",
    "spec_names",
    "FetchResult",
    "ResultStore",
    "context_key",
    "key_lock",
    "resolved_engine",
    "FactorCache",
    "FactorFetch",
    "factor_key",
    "generate_matrix",
    "SolveService",
    "SolveOutcome",
    "ServiceStats",
    "SweepJob",
    "SweepResult",
    "expand_grid",
    "run_sweep",
]
