"""Declarative experiment specs and the global registry.

Every table/figure of the paper — and every scenario beyond the paper's grid —
is described by one :class:`ExperimentSpec`: a name, a runner callable, the
runner's default parameters (the axes a sweep may override), scaled-down
``quick`` overrides, the preferred report columns, and the paper reference the
spec reproduces.  Specs register themselves into a process-global registry at
import time; the CLI (``python -m repro``), the sweep executor, the result
store, the benchmarks and the tests all address experiments exclusively
through that registry, so a new scenario is one ``register(ExperimentSpec(...))``
call away from the whole tooling.

Runners return a list of row dicts (the same rows the pre-registry
``experiments/<module>.run()`` functions returned — bit-identical, which the
test suite enforces).  Rows are normalized to plain JSON-serializable Python
types on the way out so artifacts round-trip exactly through the store.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: A runner's output: one dict per row of the reproduced table/figure.
Rows = List[Dict[str, object]]


def jsonify(value: object) -> object:
    """Convert a runner value to plain JSON-serializable Python types.

    numpy scalars/arrays become Python scalars/lists, tuples become lists;
    floats are passed through unchanged (``json`` round-trips Python floats
    bit-for-bit via shortest-repr), so cached rows stay bit-identical.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if value is None or isinstance(value, str):
        return value
    return str(value)


def jsonify_rows(rows: Sequence[Mapping[str, object]]) -> Rows:
    """Normalize a runner's row list for storage/reporting."""
    return [{str(k): jsonify(v) for k, v in row.items()} for row in rows]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproducible experiment.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"table1"`` — what the CLI addresses.
    title:
        One-line human description shown by ``repro list``.
    runner:
        Callable accepting exactly the keys of ``params`` as keyword
        arguments and returning a list of row dicts.
    params:
        Default parameter values.  These are the only overridable axes; an
        unknown override raises, so typos fail loudly.
    quick:
        Overrides applied by ``--quick`` (scaled-down sizes for smoke runs).
    columns:
        Preferred column order for reports (None = natural row order).
    paper_ref:
        Which table/figure of the paper this spec reproduces ("" for
        scenarios beyond the paper).
    sweepable:
        Parameter names that make sense as sweep axes (purely advisory,
        shown by ``repro list``; any param may be swept).
    ambient_invariant:
        Names of ambient context knobs (currently ``"pivoting"``) whose
        process-wide setting provably does not change this spec's rows —
        e.g. a runner that sets the knob explicitly for every value it
        compares.  The store then keys and records the knob's *default*
        instead of the ambient value, so flipping the environment neither
        mislabels the artifact nor causes a spurious cache miss.
    """

    name: str
    title: str
    runner: Callable[..., Rows]
    params: Mapping[str, object] = field(default_factory=dict)
    quick: Mapping[str, object] = field(default_factory=dict)
    columns: Optional[Tuple[str, ...]] = None
    paper_ref: str = ""
    sweepable: Tuple[str, ...] = ()
    ambient_invariant: Tuple[str, ...] = ()

    def resolve_params(
        self, overrides: Optional[Mapping[str, object]] = None, quick: bool = False
    ) -> Dict[str, object]:
        """Merge defaults, ``quick`` overrides and explicit overrides."""
        resolved = dict(self.params)
        if quick:
            resolved.update(self.quick)
        for key, value in (overrides or {}).items():
            if key not in self.params:
                raise KeyError(
                    f"spec {self.name!r} has no parameter {key!r}; "
                    f"available: {sorted(self.params)}"
                )
            resolved[key] = value
        return resolved

    def run(
        self, overrides: Optional[Mapping[str, object]] = None, quick: bool = False
    ) -> Rows:
        """Run the spec and return normalized rows."""
        params = self.resolve_params(overrides, quick=quick)
        return jsonify_rows(self.runner(**params))


_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOAD_LOCK = threading.Lock()
_BUILTINS_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` under its name (idempotent on re-import)."""
    _REGISTRY[spec.name] = spec
    return spec


def load_builtin_specs() -> None:
    """Import the modules that register all built-in specs.

    Lazy (and idempotent) so that ``repro.harness`` itself never imports the
    experiment modules at import time — the experiments import the harness to
    register themselves, not the other way around.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _LOAD_LOCK:
        if _BUILTINS_LOADED:
            return
        import repro.experiments  # noqa: F401  (import side effect: registration)
        import repro.harness.tuning  # noqa: F401  (registers the "tune" spec)

        _BUILTINS_LOADED = True


def get_spec(name: str) -> ExperimentSpec:
    """Look up a registered spec by name (loads the built-ins on first use)."""
    load_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment spec named {name!r}; available: {spec_names()}"
        ) from None


def spec_names() -> List[str]:
    """Sorted names of all registered specs."""
    load_builtin_specs()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    """All registered specs, sorted by name."""
    load_builtin_specs()
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]
