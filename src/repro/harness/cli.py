"""``python -m repro`` — the command-line front end of the experiment registry.

Subcommands
-----------
``repro list``
    Show every registered spec: name, paper reference, parameters, cached
    artifact count.
``repro run SPEC [SPEC ...]``
    Run specs through the content-addressed cache (``--force`` recomputes,
    ``--no-cache`` bypasses the store) and print the rows.
``repro sweep SPEC --param P=4,16,64 --param b=8,32``
    Expand a parameter grid and run the combinations concurrently.
``repro report [SPEC ...]``
    Render cached artifacts without re-running anything.
``repro tune``
    Search the :class:`~repro.core.options.SolveConfig` space for one
    workload: rank candidates by the analytic models' predicted time,
    simulate the best few to confirm, store the winner (and the
    predicted-vs-simulated gap) as a content-addressed tune artifact.
``repro serve``
    Start a :class:`~repro.harness.serving.SolveService` on a (cached)
    factorization, fire concurrent solve requests at it, and report
    per-request latency/residuals plus throughput.  ``--tuned`` loads a
    stored tune artifact's winning configuration as the defaults.
``repro bench-serve``
    Measure serving throughput (requests/sec, p50/p95 latency) across
    batching windows against the one-``pdgesv``-per-request baseline.
``repro cache``
    List or purge the content-addressed stores (experiment results and
    cached factorizations): artifact counts, bytes, per-spec breakdown.

Global knobs: ``--engine`` (virtual-MPI engine), ``--tier`` (kernel tier),
``--results-dir`` (artifact store root, also ``REPRO_RESULTS_DIR``),
``--factor-cache-dir`` (factor cache root, also ``REPRO_FACTOR_CACHE_DIR``),
``--format text|csv|json|markdown``, ``--quick`` (scaled-down sizes).
"""

from __future__ import annotations

import argparse
import ast
import sys
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from ..core.options import SolveConfig, UnknownOptionError, option_overrides
from ..experiments.report import format_table, rows_to_csv, rows_to_json
from .spec import ExperimentSpec, all_specs, get_spec
from .store import FetchResult, ResultStore
from .sweep import SweepJob, run_sweep

FORMATS = ("text", "csv", "json", "markdown")


def _parse_value(text: str) -> object:
    """Parse a CLI parameter value: Python literal when possible, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_set(items: Optional[Sequence[str]]) -> Dict[str, object]:
    """Parse repeated ``--set key=value`` overrides."""
    overrides: Dict[str, object] = {}
    for item in items or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --set expects key=value, got {item!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(items: Optional[Sequence[str]]) -> Dict[str, List[object]]:
    """Parse repeated ``--param key=v1,v2,...`` sweep axes."""
    grid: Dict[str, List[object]] = {}
    for item in items or ():
        key, sep, values = item.partition("=")
        if not sep or not key or not values:
            raise SystemExit(f"error: --param expects key=v1,v2,..., got {item!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


@contextmanager
def ambient_config(args: argparse.Namespace) -> Iterator[None]:
    """Scope --engine / --tier / --pivoting / --matmul as ambient overrides.

    The flags used to be threaded by mutating ``os.environ`` (engine) and
    the per-module ``set_*`` globals process-wide; routing them through the
    shared ambient context (:func:`repro.core.options.option_overrides`)
    keeps one command's knobs from leaking into the process environment —
    and restores everything when the command finishes.
    """
    try:
        with option_overrides(
            engine=getattr(args, "engine", None),
            kernel_tier=getattr(args, "tier", None),
            pivoting=getattr(args, "pivoting", None),
            matmul=getattr(args, "matmul", None),
        ):
            yield
    except UnknownOptionError as exc:
        raise SystemExit(f"error: {exc}") from None


def config_from_args(args: argparse.Namespace) -> SolveConfig:
    """Build the fully resolved :class:`SolveConfig` one command runs under.

    Reads whatever configuration flags the verb defines (``--engine`` /
    ``--tier`` / ``--pivoting`` / ``--matmul`` from :func:`add_config_args`,
    plus ``--P`` / ``--b`` / ``--requests`` / ``--machine`` where present);
    unset knobs resolve through the shared precedence rule.  Invalid values
    exit with the offender named.
    """
    try:
        return SolveConfig.resolve(
            pivoting=getattr(args, "pivoting", None),
            engine=getattr(args, "engine", None),
            kernel_tier=getattr(args, "tier", None),
            matmul=getattr(args, "matmul", None),
            grid=getattr(args, "P", None),
            b=getattr(args, "b", None),
            nrhs=getattr(args, "requests", None),
            machine=getattr(args, "machine", None),
        )
    except UnknownOptionError as exc:
        raise SystemExit(f"error: {exc}") from None


def _with_engine(
    spec: ExperimentSpec,
    overrides: Dict[str, object],
    args: argparse.Namespace,
    exclude: Sequence[str] = (),
) -> Dict[str, object]:
    """Inject --engine / --pivoting / --matmul into specs taking them as params.

    Such runners use their parameter, not the ambient ``REPRO_VMPI_ENGINE`` /
    ``REPRO_PIVOTING`` / ``REPRO_MATMUL``, so the flags must flow in as
    overrides to take precedence (an explicit ``--set engine=...`` /
    ``--set pivoting=...`` still wins).  ``exclude`` names parameters that
    must not be injected (sweep axes already spanning that knob).
    """
    for flag in ("engine", "pivoting", "matmul"):
        value = getattr(args, flag, None)
        if value and flag in spec.params and flag not in overrides and flag not in exclude:
            overrides = {**overrides, flag: value}
    return overrides


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(root=getattr(args, "results_dir", None))


def _emit(
    rows: List[Dict[str, object]],
    args: argparse.Namespace,
    columns: Optional[Sequence[str]] = None,
    metadata: Optional[Dict[str, object]] = None,
    title: Optional[str] = None,
) -> None:
    fmt = getattr(args, "format", "text")
    if fmt == "json":
        print(rows_to_json(rows, metadata=metadata))
    elif fmt == "csv":
        print(rows_to_csv(rows, columns=columns, metadata=metadata))
    else:
        print(
            format_table(rows, columns=columns, title=title, markdown=(fmt == "markdown"))
        )


def _status_line(fetch: FetchResult, spec: ExperimentSpec) -> str:
    source = "cache hit" if fetch.cached else f"ran in {fetch.artifact['elapsed_s']:.2f}s"
    ref = f" [{spec.paper_ref}]" if spec.paper_ref else ""
    return (
        f"{spec.name}{ref}: {fetch.artifact['n_rows']} rows ({source}; "
        f"tier={fetch.artifact['kernel_tier']}, engine={fetch.artifact['engine']}, "
        f"pivoting={fetch.artifact.get('pivoting', 'ca')}, "
        f"matmul={fetch.artifact.get('matmul', 'summa')}, "
        f"key={fetch.artifact['key'][:12]})"
    )


def _artifact_metadata(artifact: Dict[str, object]) -> Dict[str, object]:
    return {k: artifact[k] for k in artifact if k != "rows"}


# ------------------------------------------------------------------- commands
def cmd_list(args: argparse.Namespace) -> int:
    store = _store(args)
    rows = []
    for spec in all_specs():
        rows.append(
            {
                "name": spec.name,
                "paper": spec.paper_ref or "-",
                "params": " ".join(sorted(spec.params)) or "-",
                "sweep axes": " ".join(spec.sweepable) or "-",
                "cached": store.count(spec.name),
                "title": spec.title,
            }
        )
    _emit(rows, args, title=None)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    store = _store(args)
    overrides = _parse_set(args.set)
    failures = 0
    for name in args.specs:
        try:
            spec = get_spec(name)
            fetch = store.fetch_or_run(
                spec,
                _with_engine(spec, overrides, args) or None,
                quick=args.quick,
                force=args.force,
                use_cache=not args.no_cache,
            )
        except Exception as exc:  # keep going: report per-spec failures at exit
            print(f"{name}: FAILED ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(_status_line(fetch, spec), file=sys.stderr)
        _emit(
            fetch.rows,
            args,
            columns=spec.columns,
            metadata=_artifact_metadata(fetch.artifact),
            title=spec.title,
        )
    return 1 if failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    store = _store(args)
    spec = get_spec(args.spec)
    grid = _parse_grid(args.param)
    if not grid:
        raise SystemExit("error: sweep requires at least one --param axis")
    base = _parse_set(args.set)
    base = _with_engine(spec, base, args, exclude=list(grid))

    def progress(job: SweepJob) -> None:
        state = "cached" if job.cached else (
            f"failed: {job.error}" if job.error else f"ran in {job.elapsed_s:.2f}s"
        )
        detail = " ".join(f"{k}={v}" for k, v in job.overrides.items())
        print(f"[{job.index + 1}/{job.total}] {spec.name} {detail}: {state}",
              file=sys.stderr)

    result = run_sweep(
        spec,
        grid,
        base=base or None,
        store=store,
        jobs=args.jobs,
        quick=args.quick,
        force=args.force,
        use_cache=not args.no_cache,
        progress=progress,
    )
    print(
        f"sweep {spec.name}: {len(result.jobs)} jobs, {result.hits} cache hits, "
        f"{result.misses} computed, peak parallelism {result.max_in_flight}, "
        f"{result.elapsed_s:.2f}s",
        file=sys.stderr,
    )
    for job in result.errors:
        print(f"  failed {job.overrides}: {job.error}", file=sys.stderr)
    _emit(
        result.rows(),
        args,
        metadata={"spec": spec.name, "grid": grid, "base": base},
        title=f"sweep: {spec.title}",
    )
    return 1 if result.errors else 0


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list (q in [0, 100])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _serve_requests(service, rhs_list, slo):
    """Fire one thread per request at a running service; return outcomes."""
    import threading

    outcomes: List[object] = [None] * len(rhs_list)
    barrier = threading.Barrier(len(rhs_list))

    def fire(i: int) -> None:
        barrier.wait()
        outcomes[i] = service.submit(rhs_list[i], slo=slo).result(timeout=300)

    threads = [
        threading.Thread(target=fire, args=(i,)) for i in range(len(rhs_list))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def _request_rhs(factor, kind: str, seed: int, count: int) -> List[object]:
    """Deterministic per-request right-hand sides for the serving commands."""
    import numpy as np

    from .factor_cache import generate_matrix

    A = generate_matrix(kind, factor.n, seed=seed)
    rng = np.random.default_rng(seed + 104729)
    return [A @ rng.standard_normal(factor.n) for _ in range(count)]


def _serving_config(args: argparse.Namespace) -> SolveConfig:
    """Resolve a serving verb's configuration, honoring ``--tuned``.

    Precedence per field: explicit flag > tuned artifact (when ``--tuned``
    is given) > ambient context / ``REPRO_*`` env > built-in default
    (``P=4``, ``b=16``).
    """
    tuned: Optional[SolveConfig] = None
    ref = getattr(args, "tuned", None)
    if ref:
        from .tuning import load_tuned_config

        try:
            tuned = load_tuned_config(ref, store=_store(args))
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        print(
            f"tuned defaults: b={tuned.b} grid={tuned.nprow}x{tuned.npcol} "
            f"pivoting={tuned.pivoting} tier={tuned.kernel_tier} "
            f"matmul={tuned.matmul} (from {ref})",
            file=sys.stderr,
        )
    try:
        return SolveConfig.resolve(
            pivoting=getattr(args, "pivoting", None)
            or (tuned.pivoting if tuned else None),
            engine=getattr(args, "engine", None),
            kernel_tier=getattr(args, "tier", None)
            or (tuned.kernel_tier if tuned else None),
            matmul=getattr(args, "matmul", None)
            or (tuned.matmul if tuned else None),
            grid=args.P if args.P is not None else (tuned.grid if tuned else 4),
            b=args.b if args.b is not None else (tuned.b if tuned else 16),
            nrhs=getattr(args, "requests", None),
            machine=getattr(args, "machine", None),
        )
    except UnknownOptionError as exc:
        raise SystemExit(f"error: {exc}") from None


def cmd_tune(args: argparse.Namespace) -> int:
    store = _store(args)
    spec = get_spec("tune")
    overrides = _parse_set(args.set)
    for name in ("kind", "n", "nrhs", "P", "machine", "seed", "top_k",
                 "refine", "workload"):
        value = getattr(args, name, None)
        if value is not None and name not in overrides:
            overrides[name] = value
    overrides = _with_engine(spec, overrides, args)
    try:
        fetch = store.fetch_or_run(
            spec,
            overrides or None,
            quick=args.quick,
            force=args.force,
            use_cache=not args.no_cache,
        )
    except Exception as exc:
        print(f"tune: FAILED ({exc})", file=sys.stderr)
        return 1
    print(_status_line(fetch, spec), file=sys.stderr)
    winner = next((r for r in fetch.rows if r.get("chosen")), None)
    if winner is None:
        print("tune: artifact has no chosen row", file=sys.stderr)
        return 1
    print(
        f"tune winner: b={winner['b']} grid={winner['grid']} "
        f"pivoting={winner['pivoting']} tier={winner['kernel_tier']} "
        f"matmul={winner['matmul']} predicted={winner['predicted_s']:.4g}s "
        f"simulated={winner['simulated_s']:.4g}s gap={winner['gap']:.1%} "
        f"({winner['enumerated']} candidates enumerated)",
        file=sys.stderr,
    )
    print(
        f"tune artifact: {fetch.path} (key={fetch.artifact['key'][:12]})",
        file=sys.stderr,
    )
    _emit(
        fetch.rows,
        args,
        columns=spec.columns,
        metadata=_artifact_metadata(fetch.artifact),
        title=spec.title,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .factor_cache import FactorCache
    from .serving import SolveService

    config = _serving_config(args)
    cache = FactorCache(root=args.factor_cache_dir)
    fetch = cache.fetch_or_factor(
        kind=args.kind,
        n=args.n,
        seed=args.seed,
        config=config,
        use_cache=not args.no_cache,
        force=args.force,
    )
    factor = fetch.factor
    print(
        f"factor cache {'hit' if fetch.cached else 'miss'} "
        f"(key={fetch.key[:12]}, kind={args.kind}, n={factor.n}, "
        f"grid={factor.nprow}x{factor.npcol}, b={factor.block_size}, "
        f"pivoting={factor.pivoting}, tier={factor.kernel_tier}, "
        f"engine={factor.engine}, matmul={factor.matmul})",
        file=sys.stderr,
    )

    rhs_list = _request_rhs(factor, args.kind, args.seed, args.requests)
    start = time.perf_counter()
    with SolveService(
        factor,
        window=args.window,
        linger_s=args.linger,
        refine=args.refine,
        default_slo=args.slo,
        config=config,
    ) as service:
        outcomes = _serve_requests(service, rhs_list, slo=args.slo)
    elapsed = time.perf_counter() - start

    rows = [
        {
            "request": i,
            "latency_ms": o.latency_s * 1e3,
            "residual": o.residual,
            "iterations": o.iterations,
            "met_slo": o.met_slo,
            "batch": o.batch_id,
            "batch_size": o.batch_size,
        }
        for i, o in enumerate(outcomes)
    ]
    latencies = [o.latency_s * 1e3 for o in outcomes]
    stats = service.stats
    print(
        f"served {stats.requests} requests in {stats.batches} batches "
        f"({stats.sweeps} pdtrsv sweeps) in {elapsed:.3f}s: "
        f"{stats.requests / elapsed:.1f} req/s, "
        f"p50 {_percentile(latencies, 50):.1f} ms, "
        f"p95 {_percentile(latencies, 95):.1f} ms, "
        f"slo_misses={stats.slo_misses}",
        file=sys.stderr,
    )
    _emit(
        rows,
        args,
        columns=("request", "latency_ms", "residual", "iterations", "met_slo",
                 "batch", "batch_size"),
        metadata={
            "kind": args.kind,
            "n": factor.n,
            "grid": f"{factor.nprow}x{factor.npcol}",
            "b": factor.block_size,
            "window": args.window,
            "factor_cached": fetch.cached,
            "factor_key": fetch.key,
            **stats.snapshot(),
        },
        title=f"solve service: {args.kind} n={factor.n} window={args.window}",
    )
    return 1 if stats.slo_misses else 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from ..layouts.grid import ProcessGrid
    from ..parallel.psolve import pdgesv
    from .factor_cache import FactorCache, generate_matrix
    from .serving import SolveService

    config = _serving_config(args)
    windows = [int(w) for w in str(args.windows).split(",")]
    cache = FactorCache(root=args.factor_cache_dir)
    fetch = cache.fetch_or_factor(
        kind=args.kind,
        n=args.n,
        seed=args.seed,
        config=config,
        use_cache=not args.no_cache,
        force=args.force,
    )
    factor = fetch.factor
    grid = ProcessGrid(factor.nprow, factor.npcol)
    rhs_list = _request_rhs(factor, args.kind, args.seed, args.requests)
    A = generate_matrix(args.kind, factor.n, seed=args.seed)

    rows: List[Dict[str, object]] = []
    # Baseline: one cold pdgesv (factor + solve) per request, serially.
    n_base = min(args.requests, args.baseline_requests)
    start = time.perf_counter()
    for b in rhs_list[:n_base]:
        pdgesv(
            A, b, grid, block_size=factor.block_size,
            engine=getattr(args, "engine", None) or factor.engine,
            pivoting=factor.pivoting,
        )
    base_elapsed = time.perf_counter() - start
    base_rps = n_base / base_elapsed
    base_ms = base_elapsed / n_base * 1e3
    rows.append(
        {
            "mode": "pdgesv-per-request",
            "window": 1,
            "requests": n_base,
            "batches": n_base,
            "rps": base_rps,
            "p50_ms": base_ms,
            "p95_ms": base_ms,
            "speedup_vs_pdgesv": 1.0,
        }
    )
    print(
        f"baseline: {n_base} cold pdgesv calls, {base_rps:.2f} req/s",
        file=sys.stderr,
    )

    for window in windows:
        start = time.perf_counter()
        with SolveService(
            factor,
            window=window,
            linger_s=args.linger,
            default_slo=args.slo,
            config=config,
        ) as service:
            outcomes = _serve_requests(service, rhs_list, slo=args.slo)
        elapsed = time.perf_counter() - start
        latencies = [o.latency_s * 1e3 for o in outcomes]
        rps = args.requests / elapsed
        rows.append(
            {
                "mode": "service",
                "window": window,
                "requests": args.requests,
                "batches": service.stats.batches,
                "rps": rps,
                "p50_ms": _percentile(latencies, 50),
                "p95_ms": _percentile(latencies, 95),
                "speedup_vs_pdgesv": rps / base_rps,
            }
        )
        print(
            f"window={window}: {rps:.2f} req/s "
            f"({service.stats.batches} batches, "
            f"speedup {rps / base_rps:.2f}x vs cold pdgesv)",
            file=sys.stderr,
        )
        assert all(np.isfinite(o.residual) for o in outcomes)

    _emit(
        rows,
        args,
        columns=("mode", "window", "requests", "batches", "rps",
                 "p50_ms", "p95_ms", "speedup_vs_pdgesv"),
        metadata={
            "kind": args.kind,
            "n": factor.n,
            "grid": f"{factor.nprow}x{factor.npcol}",
            "b": factor.block_size,
            "slo": args.slo,
            "factor_key": fetch.key,
        },
        title=(
            f"serving throughput: {args.kind} n={factor.n} "
            f"P={factor.nprow * factor.npcol}"
        ),
    )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .factor_cache import FactorCache

    store = _store(args)
    factors = FactorCache(root=args.factor_cache_dir)

    if args.action == "purge":
        removed_results = 0
        removed_bytes = 0
        if store.root.is_dir():
            for spec_dir in sorted(p for p in store.root.iterdir() if p.is_dir()):
                for path in sorted(spec_dir.glob("*.json")):
                    try:
                        removed_bytes += path.stat().st_size
                        path.unlink()
                        removed_results += 1
                    except OSError:
                        pass
        factor_bytes = factors.total_bytes()
        removed_factors = factors.purge()
        print(
            f"purged {removed_results} result artifacts ({removed_bytes} bytes) "
            f"and {removed_factors} cached factors ({factor_bytes} bytes)",
            file=sys.stderr,
        )
        return 0

    rows: List[Dict[str, object]] = []
    total_count = 0
    total_bytes = 0
    if store.root.is_dir():
        for spec_dir in sorted(p for p in store.root.iterdir() if p.is_dir()):
            paths = sorted(spec_dir.glob("*.json"))
            if not paths:
                continue
            size = 0
            for path in paths:
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
            rows.append(
                {
                    "store": "results",
                    "entry": spec_dir.name,
                    "artifacts": len(paths),
                    "bytes": size,
                }
            )
            total_count += len(paths)
            total_bytes += size
    for entry in factors.entries():
        rows.append(
            {
                "store": "factors",
                "entry": (
                    f"{entry.get('kind', '?')} n={entry['n']} "
                    f"{entry['nprow']}x{entry['npcol']} b={entry['block_size']} "
                    f"{entry['pivoting']}/{entry['kernel_tier']}/{entry['engine']}"
                    f"/{entry.get('matmul', 'summa')}"
                ),
                "artifacts": 1,
                "bytes": entry["bytes"],
            }
        )
        total_count += 1
        total_bytes += int(entry["bytes"])
    print(
        f"results store: {store.root} — factor cache: {factors.root} — "
        f"{total_count} artifacts, {total_bytes} bytes total",
        file=sys.stderr,
    )
    _emit(
        rows,
        args,
        columns=("store", "entry", "artifacts", "bytes"),
        metadata={
            "results_root": str(store.root),
            "factor_cache_root": str(factors.root),
            "total_artifacts": total_count,
            "total_bytes": total_bytes,
        },
        title="content-addressed caches",
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = _store(args)
    names = args.specs or [None]
    artifacts: List[Dict[str, object]] = []
    for name in names:
        artifacts.extend(store.artifacts(name))
    if not artifacts:
        print("no cached artifacts found; run `repro run <spec>` first",
              file=sys.stderr)
        return 1
    if args.format == "json":
        print(rows_to_json(
            [_artifact_metadata(a) | {"rows": a["rows"]} for a in artifacts],
            metadata={"store": str(store.root), "artifacts": len(artifacts)},
        ))
        return 0
    for artifact in artifacts:
        columns = artifact.get("columns")
        title = (
            f"{artifact['spec']} ({artifact.get('paper_ref') or 'scenario'}; "
            f"tier={artifact['kernel_tier']}, engine={artifact['engine']}, "
            f"pivoting={artifact.get('pivoting', 'ca')}, "
            f"matmul={artifact.get('matmul', 'summa')}, "
            f"key={artifact['key'][:12]}, {artifact['created_at']})"
        )
        _emit(artifact["rows"], args, columns=columns, title=title)
        print()
    return 0


# --------------------------------------------------------------------- parser
def add_config_args(p: argparse.ArgumentParser) -> None:
    """Add the shared :class:`SolveConfig` knob flags to one verb's parser.

    Every verb that runs anything gets the same four flags from this one
    definition; :func:`config_from_args` is the matching reader.  The flag
    values become scoped ambient overrides (see :func:`ambient_config`) —
    they never touch ``os.environ``.
    """
    p.add_argument("--engine", default=None,
                   help="virtual-MPI engine (coroutine|event|threaded)")
    p.add_argument("--tier", default=None,
                   help="kernel tier (auto|reference|lapack)")
    p.add_argument("--pivoting", default=None,
                   help="pivoting strategy (pp|ca|ca_prrp)")
    p.add_argument("--matmul", default=None,
                   help="distributed matmul backend (summa|caps)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Registry-driven reproduction of the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, cache: bool = True) -> None:
        p.add_argument("--format", choices=FORMATS, default="text",
                       help="output format (default: text)")
        p.add_argument("--results-dir", default=None,
                       help="artifact store root (default: $REPRO_RESULTS_DIR or results/)")
        if cache:
            add_config_args(p)
            p.add_argument("--quick", action="store_true",
                           help="scaled-down sizes for smoke runs")
            p.add_argument("--force", action="store_true",
                           help="recompute even on a cache hit")
            p.add_argument("--no-cache", action="store_true",
                           help="bypass the result store entirely")
            p.add_argument("--set", action="append", metavar="KEY=VALUE",
                           help="override one spec parameter (repeatable)")

    p_list = sub.add_parser("list", help="show registered experiment specs")
    add_common(p_list, cache=False)
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run one or more specs (cached)")
    p_run.add_argument("specs", nargs="+", metavar="SPEC")
    add_common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a parameter grid concurrently")
    p_sweep.add_argument("spec", metavar="SPEC")
    p_sweep.add_argument("--param", action="append", metavar="KEY=V1,V2,...",
                         help="sweep axis (repeatable; cartesian product)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker threads (default: min(4, #jobs))")
    add_common(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_report = sub.add_parser("report", help="render cached artifacts")
    p_report.add_argument("specs", nargs="*", metavar="SPEC")
    add_common(p_report, cache=False)
    p_report.set_defaults(fn=cmd_report)

    def add_serving_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kind", default="randn",
                       help="matrix family (randn|uniform|toeplitz|diagonally_dominant)")
        p.add_argument("--n", type=int, default=96, help="matrix dimension")
        p.add_argument("--seed", type=int, default=0, help="matrix seed")
        p.add_argument("--P", type=int, default=None,
                       help="process count (near-square grid; default: 4)")
        p.add_argument("--b", type=int, default=None,
                       help="block size (default: 16)")
        p.add_argument("--tuned", nargs="?", const="latest", default=None,
                       metavar="PATH|KEY",
                       help="load defaults from a `repro tune` artifact "
                            "(path, key prefix, or 'latest' when bare)")
        p.add_argument("--requests", type=int, default=16,
                       help="number of solve requests to fire")
        p.add_argument("--slo", type=float, default=None,
                       help="per-request max-abs residual SLO")
        p.add_argument("--linger", type=float, default=0.02,
                       help="batching window linger in seconds")
        p.add_argument("--factor-cache-dir", default=None,
                       help="factor cache root (default: $REPRO_FACTOR_CACHE_DIR "
                            "or factors/)")

    p_tune = sub.add_parser(
        "tune",
        help="search the SolveConfig space by model prediction + simulation",
    )
    p_tune.add_argument("--kind", default=None,
                        help="matrix family (default: randn)")
    p_tune.add_argument("--n", type=int, default=None,
                        help="matrix dimension (default: 96)")
    p_tune.add_argument("--nrhs", type=int, default=None,
                        help="right-hand sides (default: 2)")
    p_tune.add_argument("--P", type=int, default=None,
                        help="process count (default: 4)")
    p_tune.add_argument("--machine", default=None,
                        help="machine model (ibm_power5|cray_xt4; "
                             "default: ibm_power5)")
    p_tune.add_argument("--seed", type=int, default=None,
                        help="matrix seed (default: 0)")
    p_tune.add_argument("--top-k", dest="top_k", type=int, default=None,
                        help="best-predicted candidates to simulate "
                             "(default: 3)")
    p_tune.add_argument("--refine", type=int, default=None,
                        help="refinement budget (default: 2)")
    p_tune.add_argument("--workload", choices=("solve", "matmul"), default=None,
                        help="workload to tune for (default: solve)")
    add_common(p_tune)
    p_tune.set_defaults(fn=cmd_tune)

    p_serve = sub.add_parser(
        "serve", help="serve concurrent solves from a cached factorization"
    )
    add_serving_common(p_serve)
    p_serve.add_argument("--window", type=int, default=8,
                         help="max RHS columns coalesced into one sweep")
    p_serve.add_argument("--refine", type=int, default=2,
                         help="refinement budget per batch")
    add_common(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_bserve = sub.add_parser(
        "bench-serve",
        help="serving throughput/latency across batching windows vs cold pdgesv",
    )
    add_serving_common(p_bserve)
    p_bserve.add_argument("--windows", default="1,2,4,8",
                          help="comma-separated batching windows to measure")
    p_bserve.add_argument("--baseline-requests", type=int, default=4,
                          help="cold pdgesv calls timed for the baseline row")
    add_common(p_bserve)
    p_bserve.set_defaults(fn=cmd_bench_serve)

    p_cache = sub.add_parser(
        "cache", help="list or purge the result store and the factor cache"
    )
    p_cache.add_argument("action", nargs="?", choices=("list", "purge"),
                         default="list")
    p_cache.add_argument("--factor-cache-dir", default=None,
                         help="factor cache root (default: $REPRO_FACTOR_CACHE_DIR "
                              "or factors/)")
    add_common(p_cache, cache=False)
    p_cache.set_defaults(fn=cmd_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with ambient_config(args):
        return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
