"""``python -m repro`` — the command-line front end of the experiment registry.

Subcommands
-----------
``repro list``
    Show every registered spec: name, paper reference, parameters, cached
    artifact count.
``repro run SPEC [SPEC ...]``
    Run specs through the content-addressed cache (``--force`` recomputes,
    ``--no-cache`` bypasses the store) and print the rows.
``repro sweep SPEC --param P=4,16,64 --param b=8,32``
    Expand a parameter grid and run the combinations concurrently.
``repro report [SPEC ...]``
    Render cached artifacts without re-running anything.

Global knobs: ``--engine`` (virtual-MPI engine), ``--tier`` (kernel tier),
``--results-dir`` (artifact store root, also ``REPRO_RESULTS_DIR``),
``--format text|csv|json|markdown``, ``--quick`` (scaled-down sizes).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, List, Optional, Sequence

from ..experiments.report import format_table, rows_to_csv, rows_to_json
from .spec import ExperimentSpec, all_specs, get_spec
from .store import FetchResult, ResultStore
from .sweep import SweepJob, run_sweep

FORMATS = ("text", "csv", "json", "markdown")


def _parse_value(text: str) -> object:
    """Parse a CLI parameter value: Python literal when possible, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_set(items: Optional[Sequence[str]]) -> Dict[str, object]:
    """Parse repeated ``--set key=value`` overrides."""
    overrides: Dict[str, object] = {}
    for item in items or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --set expects key=value, got {item!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(items: Optional[Sequence[str]]) -> Dict[str, List[object]]:
    """Parse repeated ``--param key=v1,v2,...`` sweep axes."""
    grid: Dict[str, List[object]] = {}
    for item in items or ():
        key, sep, values = item.partition("=")
        if not sep or not key or not values:
            raise SystemExit(f"error: --param expects key=v1,v2,..., got {item!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


def _apply_context(args: argparse.Namespace) -> None:
    """Apply --engine / --tier / --pivoting process-wide so every runner sees them."""
    if getattr(args, "engine", None):
        os.environ["REPRO_VMPI_ENGINE"] = args.engine
    if getattr(args, "tier", None):
        from ..kernels.tiers import set_kernel_tier

        set_kernel_tier(args.tier)
    if getattr(args, "pivoting", None):
        from ..core.strategies import set_pivoting

        try:
            set_pivoting(args.pivoting)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")


def _with_engine(
    spec: ExperimentSpec,
    overrides: Dict[str, object],
    args: argparse.Namespace,
    exclude: Sequence[str] = (),
) -> Dict[str, object]:
    """Inject --engine / --pivoting into specs that take them as parameters.

    Such runners use their parameter, not the ambient ``REPRO_VMPI_ENGINE`` /
    ``REPRO_PIVOTING``, so the flags must flow in as overrides to take
    precedence (an explicit ``--set engine=...`` / ``--set pivoting=...``
    still wins).  ``exclude`` names parameters that must not be injected
    (sweep axes already spanning that knob).
    """
    for flag in ("engine", "pivoting"):
        value = getattr(args, flag, None)
        if value and flag in spec.params and flag not in overrides and flag not in exclude:
            overrides = {**overrides, flag: value}
    return overrides


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(root=getattr(args, "results_dir", None))


def _emit(
    rows: List[Dict[str, object]],
    args: argparse.Namespace,
    columns: Optional[Sequence[str]] = None,
    metadata: Optional[Dict[str, object]] = None,
    title: Optional[str] = None,
) -> None:
    fmt = getattr(args, "format", "text")
    if fmt == "json":
        print(rows_to_json(rows, metadata=metadata))
    elif fmt == "csv":
        print(rows_to_csv(rows, columns=columns, metadata=metadata))
    else:
        print(
            format_table(rows, columns=columns, title=title, markdown=(fmt == "markdown"))
        )


def _status_line(fetch: FetchResult, spec: ExperimentSpec) -> str:
    source = "cache hit" if fetch.cached else f"ran in {fetch.artifact['elapsed_s']:.2f}s"
    ref = f" [{spec.paper_ref}]" if spec.paper_ref else ""
    return (
        f"{spec.name}{ref}: {fetch.artifact['n_rows']} rows ({source}; "
        f"tier={fetch.artifact['kernel_tier']}, engine={fetch.artifact['engine']}, "
        f"pivoting={fetch.artifact.get('pivoting', 'ca')}, "
        f"key={fetch.artifact['key'][:12]})"
    )


def _artifact_metadata(artifact: Dict[str, object]) -> Dict[str, object]:
    return {k: artifact[k] for k in artifact if k != "rows"}


# ------------------------------------------------------------------- commands
def cmd_list(args: argparse.Namespace) -> int:
    store = _store(args)
    rows = []
    for spec in all_specs():
        rows.append(
            {
                "name": spec.name,
                "paper": spec.paper_ref or "-",
                "params": " ".join(sorted(spec.params)) or "-",
                "sweep axes": " ".join(spec.sweepable) or "-",
                "cached": store.count(spec.name),
                "title": spec.title,
            }
        )
    _emit(rows, args, title=None)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    _apply_context(args)
    store = _store(args)
    overrides = _parse_set(args.set)
    failures = 0
    for name in args.specs:
        try:
            spec = get_spec(name)
            fetch = store.fetch_or_run(
                spec,
                _with_engine(spec, overrides, args) or None,
                quick=args.quick,
                force=args.force,
                use_cache=not args.no_cache,
            )
        except Exception as exc:  # keep going: report per-spec failures at exit
            print(f"{name}: FAILED ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(_status_line(fetch, spec), file=sys.stderr)
        _emit(
            fetch.rows,
            args,
            columns=spec.columns,
            metadata=_artifact_metadata(fetch.artifact),
            title=spec.title,
        )
    return 1 if failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    _apply_context(args)
    store = _store(args)
    spec = get_spec(args.spec)
    grid = _parse_grid(args.param)
    if not grid:
        raise SystemExit("error: sweep requires at least one --param axis")
    base = _parse_set(args.set)
    base = _with_engine(spec, base, args, exclude=list(grid))

    def progress(job: SweepJob) -> None:
        state = "cached" if job.cached else (
            f"failed: {job.error}" if job.error else f"ran in {job.elapsed_s:.2f}s"
        )
        detail = " ".join(f"{k}={v}" for k, v in job.overrides.items())
        print(f"[{job.index + 1}/{job.total}] {spec.name} {detail}: {state}",
              file=sys.stderr)

    result = run_sweep(
        spec,
        grid,
        base=base or None,
        store=store,
        jobs=args.jobs,
        quick=args.quick,
        force=args.force,
        use_cache=not args.no_cache,
        progress=progress,
    )
    print(
        f"sweep {spec.name}: {len(result.jobs)} jobs, {result.hits} cache hits, "
        f"{result.misses} computed, peak parallelism {result.max_in_flight}, "
        f"{result.elapsed_s:.2f}s",
        file=sys.stderr,
    )
    for job in result.errors:
        print(f"  failed {job.overrides}: {job.error}", file=sys.stderr)
    _emit(
        result.rows(),
        args,
        metadata={"spec": spec.name, "grid": grid, "base": base},
        title=f"sweep: {spec.title}",
    )
    return 1 if result.errors else 0


def cmd_report(args: argparse.Namespace) -> int:
    store = _store(args)
    names = args.specs or [None]
    artifacts: List[Dict[str, object]] = []
    for name in names:
        artifacts.extend(store.artifacts(name))
    if not artifacts:
        print("no cached artifacts found; run `repro run <spec>` first",
              file=sys.stderr)
        return 1
    if args.format == "json":
        print(rows_to_json(
            [_artifact_metadata(a) | {"rows": a["rows"]} for a in artifacts],
            metadata={"store": str(store.root), "artifacts": len(artifacts)},
        ))
        return 0
    for artifact in artifacts:
        columns = artifact.get("columns")
        title = (
            f"{artifact['spec']} ({artifact.get('paper_ref') or 'scenario'}; "
            f"tier={artifact['kernel_tier']}, engine={artifact['engine']}, "
            f"pivoting={artifact.get('pivoting', 'ca')}, "
            f"key={artifact['key'][:12]}, {artifact['created_at']})"
        )
        _emit(artifact["rows"], args, columns=columns, title=title)
        print()
    return 0


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Registry-driven reproduction of the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, cache: bool = True) -> None:
        p.add_argument("--format", choices=FORMATS, default="text",
                       help="output format (default: text)")
        p.add_argument("--results-dir", default=None,
                       help="artifact store root (default: $REPRO_RESULTS_DIR or results/)")
        if cache:
            p.add_argument("--engine", default=None,
                           help="virtual-MPI engine (coroutine|event|threaded)")
            p.add_argument("--tier", default=None,
                           help="kernel tier (auto|reference|lapack)")
            p.add_argument("--pivoting", default=None,
                           help="pivoting strategy (pp|ca|ca_prrp)")
            p.add_argument("--quick", action="store_true",
                           help="scaled-down sizes for smoke runs")
            p.add_argument("--force", action="store_true",
                           help="recompute even on a cache hit")
            p.add_argument("--no-cache", action="store_true",
                           help="bypass the result store entirely")
            p.add_argument("--set", action="append", metavar="KEY=VALUE",
                           help="override one spec parameter (repeatable)")

    p_list = sub.add_parser("list", help="show registered experiment specs")
    add_common(p_list, cache=False)
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run one or more specs (cached)")
    p_run.add_argument("specs", nargs="+", metavar="SPEC")
    add_common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a parameter grid concurrently")
    p_sweep.add_argument("spec", metavar="SPEC")
    p_sweep.add_argument("--param", action="append", metavar="KEY=V1,V2,...",
                         help="sweep axis (repeatable; cartesian product)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker threads (default: min(4, #jobs))")
    add_common(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_report = sub.add_parser("report", help="render cached artifacts")
    p_report.add_argument("specs", nargs="*", metavar="SPEC")
    add_common(p_report, cache=False)
    p_report.set_defaults(fn=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
