"""Solve-as-a-service: async request batching over a cached factor.

The production story of communication-avoiding LU: the ``O(n^3)``
factorization is paid once (and cached — :mod:`repro.harness.factor_cache`),
after which every ``A x = b`` request is an ``O(n^2)`` pair of triangular
sweeps.  Because :mod:`repro.scalapack.pdtrsv` is batched over right-hand
sides — the message count is independent of ``nrhs`` — the cheapest way to
serve many concurrent requests is to *coalesce* them: stack their right-hand
sides into one ``n x nrhs`` block and run a single multi-RHS
:func:`repro.parallel.psolve.pdgesv_solve` sweep, amortizing the
``(n/b)(log2 Pr + log2 Pc)`` message steps over the whole batch.

:class:`SolveService` implements that dispatcher:

* :meth:`~SolveService.submit` enqueues a request and returns a ticket
  immediately (a future); :meth:`~SolveService.solve` is submit-and-wait.
* A dispatcher thread collects requests into batches of up to ``window``
  (waiting at most ``linger_s`` after the first request of a batch for more
  to arrive), stacks their right-hand sides, and runs one coalesced
  ``pdgesv_solve``.
* Per-request residual SLOs ride the existing iterative-refinement loop:
  the batch refines (within ``refine`` steps) until every member's max-abs
  residual meets its target (``rhs_slo`` of
  :func:`~repro.parallel.psolve.pdgesv_solve`), so one impatient request
  cannot starve and one demanding request drives extra refinement for the
  whole sweep — the classic batching trade, surfaced per request in the
  outcome.
* Every outcome reports its wall-clock latency, its batch, and whether its
  SLO was met; :attr:`SolveService.stats` counts requests, batches and
  triangular sweeps so tests can assert the coalescing really happened.

For deterministic tests the service can be created with ``start=False`` and
driven synchronously with :meth:`~SolveService.drain`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..core.options import SolveConfig
from ..distsim.engine import ExecutionEngine
from ..machines.model import MachineModel
from ..parallel.factor import FactoredMatrix
from ..parallel.psolve import pdgesv_solve

#: Default maximum number of requests coalesced into one sweep.
DEFAULT_WINDOW = 8

#: Default time (seconds) the dispatcher lingers after a batch's first
#: request, waiting for more requests to coalesce.
DEFAULT_LINGER_S = 0.02


@dataclass
class SolveOutcome:
    """Result of one served request.

    Attributes
    ----------
    x:
        Solution column(s) for this request (same shape as the submitted
        right-hand side).
    residual:
        Final max-abs residual of this request's right-hand side(s).
    residual_history:
        This request's max-abs residual after the initial solve and each
        refinement step of its batch.
    iterations:
        Refinement steps the batch performed.
    slo:
        The residual target this request asked for (``None`` = none).
    met_slo:
        Whether ``residual <= slo`` (``True`` when no SLO was given).
    latency_s:
        Wall-clock submit-to-completion latency.
    batch_id:
        Sequential id of the coalesced batch that served this request.
    batch_size:
        Number of right-hand-side columns in that batch's sweep.
    """

    x: np.ndarray
    residual: float
    residual_history: List[float]
    iterations: int
    slo: Optional[float]
    met_slo: bool
    latency_s: float
    batch_id: int
    batch_size: int


@dataclass
class ServiceStats:
    """Counters of one service's lifetime (updated under the service lock)."""

    requests: int = 0
    batches: int = 0
    batched_rhs: int = 0
    sweeps: int = 0
    refinements: int = 0
    max_batch: int = 0
    slo_misses: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Pending:
    """One enqueued request."""

    B: np.ndarray  # always n x k (k >= 1 columns)
    one_d: bool
    slo: Optional[float]
    submitted_at: float
    future: Future = field(default_factory=Future)


class SolveService:
    """Async dispatcher coalescing solve requests against one factor.

    Parameters
    ----------
    factor:
        The :class:`~repro.parallel.factor.FactoredMatrix` every request is
        solved against (typically a
        :meth:`~repro.harness.factor_cache.FactorCache.fetch_or_factor` hit).
    window:
        Maximum right-hand-side columns coalesced into one sweep.
    linger_s:
        How long the dispatcher waits after a batch's first request for
        more requests before dispatching a partial batch.
    machine, engine:
        Machine model / execution engine for the solve sweeps.
    refine:
        Refinement budget per batch (the SLO loop runs within it).
    default_slo:
        Residual target applied to requests that do not carry their own.
    start:
        Start the dispatcher thread immediately.  With ``start=False`` the
        service is driven synchronously via :meth:`drain` (deterministic
        batching for tests: exactly ``ceil(pending / window)`` batches).
    config:
        Optional :class:`~repro.core.options.SolveConfig` supplying the
        sweep ``machine``/``engine`` defaults when the explicit arguments
        are unset — e.g. a tuned config loaded by ``repro serve --tuned``.
    tuned:
        Load ``config`` from a stored ``repro tune`` artifact instead of
        passing one: an artifact path, a context-key prefix, or
        ``"latest"`` (see :func:`repro.harness.tuning.load_tuned_config`).
        Ignored when an explicit ``config`` is given.
    """

    def __init__(
        self,
        factor: FactoredMatrix,
        window: int = DEFAULT_WINDOW,
        linger_s: float = DEFAULT_LINGER_S,
        machine: Optional[MachineModel] = None,
        engine: Union[None, str, ExecutionEngine] = None,
        refine: int = 2,
        tolerance: float = 1.0e-16,
        default_slo: Optional[float] = None,
        start: bool = True,
        config: Optional[SolveConfig] = None,
        tuned: Optional[str] = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if config is None and tuned is not None:
            from .tuning import load_tuned_config

            config = load_tuned_config(tuned)
        if config is not None:
            if machine is None:
                machine = config.machine_model()
            if engine is None:
                engine = config.engine
        self.factor = factor
        self.window = int(window)
        self.linger_s = float(linger_s)
        self.machine = machine
        self.engine = engine
        self.refine = int(refine)
        self.tolerance = float(tolerance)
        self.default_slo = default_slo
        self.stats = ServiceStats()
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        # A request popped from the queue that did not fit the current
        # batch; consumed first by the next batch.  Only the dispatcher
        # (thread or drain caller) touches it.
        self._carry: Optional[_Pending] = None
        self._lock = threading.Lock()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if start:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="solve-service", daemon=True
            )
            self._thread.start()

    # ---------------------------------------------------------------- clients
    def submit(self, b: np.ndarray, slo: Optional[float] = None) -> Future:
        """Enqueue one solve request; returns a future of :class:`SolveOutcome`.

        ``b`` is an ``n``-vector or an ``n x k`` block of right-hand sides
        (the whole request is served by one batch).  ``slo`` is the
        per-request max-abs residual target, defaulting to the service's
        ``default_slo``.
        """
        if self._closed:
            raise RuntimeError("SolveService is closed")
        b = np.asarray(b, dtype=np.float64)
        one_d = b.ndim == 1
        B = b[:, None] if one_d else b
        if B.ndim != 2 or B.shape[0] != self.factor.n:
            raise ValueError(
                f"right-hand side has shape {b.shape}, expected "
                f"({self.factor.n},) or ({self.factor.n}, k)"
            )
        pending = _Pending(
            B=B,
            one_d=one_d,
            slo=self.default_slo if slo is None else float(slo),
            submitted_at=time.perf_counter(),
        )
        if B.shape[1] == 0:
            # A degenerate (zero-column) request never joins a sweep: it is
            # fulfilled immediately with an empty solution.
            pending.future.set_result(
                SolveOutcome(
                    x=np.zeros((self.factor.n, 0)),
                    residual=0.0,
                    residual_history=[],
                    iterations=0,
                    slo=pending.slo,
                    met_slo=True,
                    latency_s=0.0,
                    batch_id=0,
                    batch_size=0,
                )
            )
            return pending.future
        self._queue.put(pending)
        return pending.future

    def solve(
        self, b: np.ndarray, slo: Optional[float] = None, timeout: Optional[float] = None
    ) -> SolveOutcome:
        """Submit one request and wait for its outcome."""
        return self.submit(b, slo=slo).result(timeout=timeout)

    # ------------------------------------------------------------- lifecycle
    def drain(self) -> int:
        """Synchronously serve everything queued; returns batches dispatched.

        Only meaningful when the dispatcher thread is not running
        (``start=False``): batching is then deterministic — requests are
        served in submission order in batches of exactly ``window``.
        """
        if self._thread is not None:
            raise RuntimeError("drain() requires a service created with start=False")
        batches = 0
        while True:
            batch = self._collect(block=False)
            if not batch:
                return batches
            self._serve(batch)
            batches += 1

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting requests, serve what is queued, stop the thread."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=timeout)
        else:
            while self._collect_and_serve(block=False):
                pass

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect(block=True)
            if batch is None:
                return
            if batch:
                self._serve(batch)

    def _collect(self, block: bool) -> Optional[List[_Pending]]:
        """Gather up to ``window`` RHS columns into one batch.

        Returns ``None`` when the sentinel (close) was consumed in blocking
        mode, else the (possibly empty) batch.  The batch is bounded by
        *columns*, not requests, so a multi-column request counts its width.
        """
        batch: List[_Pending] = []
        cols = 0
        deadline: Optional[float] = None
        while cols < self.window:
            if self._carry is not None:
                item: Optional[_Pending] = self._carry
                self._carry = None
            else:
                timeout: Optional[float] = None
                if batch:
                    timeout = deadline - time.monotonic()
                    if timeout <= 0:
                        break
                try:
                    if block:
                        item = self._queue.get(timeout=timeout)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
            if item is None:
                # Close sentinel: serve what we have, then signal shutdown.
                if batch:
                    self._serve(batch)
                return None if block else []
            if batch and cols + item.B.shape[1] > self.window:
                # Doesn't fit this sweep; it opens the next batch instead.
                self._carry = item
                break
            batch.append(item)
            cols += item.B.shape[1]
            if deadline is None:
                deadline = time.monotonic() + self.linger_s
        return batch

    def _collect_and_serve(self, block: bool) -> bool:
        batch = self._collect(block=block)
        if batch:
            self._serve(batch)
        return bool(batch)

    def _serve(self, batch: List[_Pending]) -> None:
        """Run one coalesced multi-RHS sweep and fulfill the batch's futures."""
        try:
            widths = [p.B.shape[1] for p in batch]
            B = np.concatenate([p.B for p in batch], axis=1)
            nrhs = B.shape[1]
            slo_vec = np.full(nrhs, np.inf)
            col = 0
            for p, w in zip(batch, widths):
                if p.slo is not None:
                    slo_vec[col : col + w] = p.slo
                col += w
            has_slo = bool(np.any(np.isfinite(slo_vec)))
            res = pdgesv_solve(
                self.factor,
                B,
                machine=self.machine,
                engine=self.engine,
                refine=self.refine,
                tolerance=self.tolerance,
                rhs_slo=slo_vec if has_slo else None,
            )
        except BaseException as exc:
            for p in batch:
                p.future.set_exception(exc)
            return

        with self._lock:
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.batched_rhs += nrhs
            # One forward + one backward pdtrsv per initial solve and per
            # refinement step, regardless of nrhs — the coalescing win.
            self.stats.sweeps += 2 * (1 + res.iterations)
            self.stats.refinements += res.iterations
            self.stats.max_batch = max(self.stats.max_batch, nrhs)
            batch_id = self.stats.batches

        done = time.perf_counter()
        per_rhs = np.asarray(res.per_rhs_residuals)  # (steps, nrhs)
        col = 0
        for p, w in zip(batch, widths):
            cols = slice(col, col + w)
            history = [float(np.max(step[cols])) for step in per_rhs]
            residual = history[-1] if history else 0.0
            met = p.slo is None or residual <= p.slo
            if not met:
                with self._lock:
                    self.stats.slo_misses += 1
            x = res.x[:, cols]
            outcome = SolveOutcome(
                x=x[:, 0] if p.one_d else x,
                residual=residual,
                residual_history=history,
                iterations=res.iterations,
                slo=p.slo,
                met_slo=met,
                latency_s=done - p.submitted_at,
                batch_id=batch_id,
                batch_size=nrhs,
            )
            p.future.set_result(outcome)
            col += w
