"""Content-addressed result store for experiment artifacts.

Each run of a registered spec is identified by the SHA-256 of its *context*:
the spec name, the fully resolved parameters, the resolved kernel tier, the
virtual-MPI engine, the resolved pivoting strategy and the resolved
distributed-matmul backend.  The artifact — rows
plus metadata — is written as JSON under ``results/<spec>/<spec>-<key12>.json``
(relocatable via the ``REPRO_RESULTS_DIR`` environment variable or an
explicit root), so a re-run with the same context is a cache hit that loads
bit-identical rows, and ``--force`` recomputes in place.

JSON round-trips Python floats exactly (shortest-repr), so cached rows are
bit-for-bit the rows the runner produced; the test suite enforces this.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..kernels.tiers import resolve_tier
from .spec import ExperimentSpec, Rows, jsonify

#: Environment variable relocating the artifact store (consistent with
#: ``REPRO_KERNEL_TIER`` and ``REPRO_VMPI_ENGINE``).
ENV_VAR = "REPRO_RESULTS_DIR"

#: Default artifact directory when neither an explicit root nor the
#: environment variable is given.
DEFAULT_ROOT = "results"

#: Artifact schema version (bumped on incompatible layout changes).
SCHEMA_VERSION = 1

#: Process-wide per-key locks making cached runs single-flight: two
#: concurrent fetches of the same context key compute once — the second
#: waits and is then served the artifact the first one stored.  Keyed by
#: (store root, context key) so distinct stores never contend.
_KEY_LOCKS: Dict[object, threading.Lock] = {}
_KEY_LOCKS_GUARD = threading.Lock()


def key_lock(key: object) -> threading.Lock:
    """The process-wide lock serializing computation of one cache key."""
    with _KEY_LOCKS_GUARD:
        lock = _KEY_LOCKS.get(key)
        if lock is None:
            lock = _KEY_LOCKS[key] = threading.Lock()
        return lock


def resolved_engine(engine: Optional[str] = None) -> str:
    """The virtual-MPI engine name that would be used by a run right now.

    Delegates to the shared resolver
    (:func:`repro.distsim.engine.resolve_engine_name`), so store keying and
    execution follow one precedence rule (explicit > ambient context >
    ``REPRO_VMPI_ENGINE`` > default) and can never disagree on the resolved
    engine.
    """
    from ..distsim.engine import resolve_engine_name

    return resolve_engine_name(engine or None)


def context_key(
    spec_name: str,
    params: Mapping[str, object],
    kernel_tier: str,
    engine: str,
    pivoting: str = "ca",
    matmul: str = "summa",
) -> str:
    """SHA-256 content address of one run context (hex digest).

    ``pivoting`` and ``matmul`` are part of the context because the
    process-wide knobs (``REPRO_PIVOTING`` / ``--pivoting``,
    ``REPRO_MATMUL`` / ``--matmul``) change what every CALU-driven runner
    computes — two runs that differ only in pivoting or in the
    distributed-matmul backend must never share an artifact.
    """
    canonical = json.dumps(
        {
            "spec": spec_name,
            "params": jsonify(dict(params)),
            "kernel_tier": kernel_tier,
            "engine": engine,
            "pivoting": pivoting,
            "matmul": matmul,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class FetchResult:
    """Outcome of :meth:`ResultStore.fetch_or_run`."""

    artifact: Dict[str, object]
    cached: bool
    path: Path

    @property
    def rows(self) -> Rows:
        return self.artifact["rows"]


class ResultStore:
    """Content-addressed JSON artifact store under a ``results/`` root."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root or os.environ.get(ENV_VAR) or DEFAULT_ROOT)

    # ------------------------------------------------------------- addressing
    def path_for(self, spec_name: str, key: str) -> Path:
        return self.root / spec_name / f"{spec_name}-{key[:12]}.json"

    def run_config(
        self,
        spec: ExperimentSpec,
        overrides: Optional[Mapping[str, object]] = None,
        quick: bool = False,
        engine: Optional[str] = None,
    ) -> Tuple[Dict[str, object], "SolveConfig", str]:
        """Resolve one run to ``(params, SolveConfig, context key)``.

        Specs with an explicit ``engine`` (or ``pivoting`` / ``matmul``)
        parameter pass it straight to their runner, so that value — not the
        ambient ``REPRO_VMPI_ENGINE`` / ``REPRO_PIVOTING`` / ``REPRO_MATMUL``
        resolution — is what the run actually uses and what gets keyed and
        recorded.  The config's ``kernel_tier`` is the fully degraded tier
        (``auto`` resolved to ``lapack``/``reference``), matching what the
        key has always recorded.
        """
        from ..core.options import SolveConfig
        from ..core.strategies import DEFAULT_STRATEGY, resolve_pivoting
        from ..matmul import DEFAULT_BACKEND, resolve_matmul

        params = spec.resolve_params(overrides, quick=quick)
        tier = resolve_tier()
        if "engine" in params:
            eng = str(params["engine"])
        else:
            eng = resolved_engine(engine)
        if "pivoting" in params:
            piv = str(params["pivoting"])
        elif "pivoting" in spec.ambient_invariant:
            # The runner provably ignores the ambient strategy (it sets the
            # knob explicitly for everything it computes), so key and record
            # the default rather than mislabeling the artifact and missing
            # the cache whenever the environment changes.
            piv = DEFAULT_STRATEGY
        else:
            piv = resolve_pivoting()
        if "matmul" in params:
            mm = str(params["matmul"])
        elif "matmul" in spec.ambient_invariant:
            mm = DEFAULT_BACKEND
        else:
            mm = resolve_matmul()
        config = SolveConfig(
            pivoting=piv, engine=eng, kernel_tier=tier, matmul=mm
        )
        return params, config, context_key(
            spec.name, params, tier, eng, piv, mm
        )

    def run_context(
        self,
        spec: ExperimentSpec,
        overrides: Optional[Mapping[str, object]] = None,
        quick: bool = False,
        engine: Optional[str] = None,
    ) -> Tuple[Dict[str, object], str, str, str, str, str]:
        """Resolve (params, kernel_tier, engine, pivoting, matmul, key).

        Historical tuple view of :meth:`run_config`; the key bytes are
        unchanged.
        """
        params, config, key = self.run_config(
            spec, overrides, quick=quick, engine=engine
        )
        return (
            params,
            config.kernel_tier,
            config.engine,
            config.pivoting,
            config.matmul,
            key,
        )

    # -------------------------------------------------------------- load/save
    def load(self, path: Path) -> Optional[Dict[str, object]]:
        """Load an artifact, or None when absent/unreadable."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                artifact = json.load(fh)
        except (OSError, ValueError):
            return None
        if artifact.get("schema") != SCHEMA_VERSION:
            return None
        return artifact

    def save(self, artifact: Dict[str, object]) -> Path:
        """Atomically write an artifact to its content address."""
        path = self.path_for(artifact["spec"], artifact["key"])
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique per writer: two sweep threads may race on the same key.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------- runs
    def fetch_or_run(
        self,
        spec: ExperimentSpec,
        overrides: Optional[Mapping[str, object]] = None,
        quick: bool = False,
        force: bool = False,
        use_cache: bool = True,
        engine: Optional[str] = None,
    ) -> FetchResult:
        """Serve a run from the cache, or execute it and store the artifact.

        ``force`` recomputes and overwrites; ``use_cache=False`` bypasses the
        store entirely (nothing read, nothing written).

        Cached runs are single-flight: two concurrent calls with the same
        context key take a per-key lock, so one computes and stores the
        artifact and the other waits, then loads it as a cache hit instead
        of recomputing.
        """
        params, tier, eng, piv, mm, key = self.run_context(
            spec, overrides, quick=quick, engine=engine
        )
        path = self.path_for(spec.name, key)
        if use_cache and not force:
            artifact = self.load(path)
            if artifact is not None:
                return FetchResult(artifact=artifact, cached=True, path=path)

        if use_cache:
            lock = key_lock((str(self.root), key))
            lock.acquire()
        try:
            if use_cache and not force:
                # Another thread may have computed and stored the artifact
                # while this one waited on the key lock.
                artifact = self.load(path)
                if artifact is not None:
                    return FetchResult(artifact=artifact, cached=True, path=path)
            return self._run_and_store(
                spec, overrides, quick, use_cache, params, tier, eng, piv, mm,
                key, path,
            )
        finally:
            if use_cache:
                lock.release()

    def _run_and_store(
        self, spec, overrides, quick, use_cache, params, tier, eng, piv, mm,
        key, path,
    ) -> FetchResult:
        start = time.perf_counter()
        rows = spec.run(overrides, quick=quick)
        elapsed = time.perf_counter() - start
        artifact = {
            "schema": SCHEMA_VERSION,
            "spec": spec.name,
            "paper_ref": spec.paper_ref,
            "title": spec.title,
            "key": key,
            "params": jsonify(params),
            "kernel_tier": tier,
            "engine": eng,
            "pivoting": piv,
            "matmul": mm,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "elapsed_s": elapsed,
            "n_rows": len(rows),
            "columns": list(spec.columns) if spec.columns else None,
            "rows": rows,
        }
        if use_cache:
            self.save(artifact)
        return FetchResult(artifact=artifact, cached=False, path=path)

    # -------------------------------------------------------------- reporting
    def artifacts(self, spec_name: Optional[str] = None) -> List[Dict[str, object]]:
        """All stored artifacts (optionally for one spec), newest first."""
        roots: Iterable[Path]
        if spec_name is not None:
            roots = [self.root / spec_name]
        elif self.root.is_dir():
            roots = sorted(p for p in self.root.iterdir() if p.is_dir())
        else:
            roots = []
        found: List[Tuple[float, Dict[str, object]]] = []
        for directory in roots:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                artifact = self.load(path)
                if artifact is None:
                    continue
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    # The artifact vanished between load and stat (another
                    # process pruned the store mid-listing) — skip it rather
                    # than crash the `repro report` listing.
                    continue
                found.append((mtime, artifact))
        found.sort(key=lambda item: item[0], reverse=True)
        return [artifact for _, artifact in found]

    def count(self, spec_name: str) -> int:
        """Number of cached artifacts for one spec."""
        directory = self.root / spec_name
        return len(list(directory.glob("*.json"))) if directory.is_dir() else 0
