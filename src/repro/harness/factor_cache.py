"""Content-addressed cache of distributed factorizations (``FactorCache``).

The result store (:mod:`repro.harness.store`) caches experiment *rows*; this
module applies the same content-addressing discipline to the expensive part
of the solve pipeline itself: the ``O(n^3)`` distributed factorization.  A
factor's identity is the SHA-256 of everything that determines its bits —

* the matrix spec: generator ``kind`` (a :mod:`repro.randmat` family), size
  ``n`` and ``seed``;
* the run configuration: grid shape ``Pr x Pc``, block size ``b``, and the
  resolved ``pivoting`` strategy, ``kernel_tier``, ``engine`` and ``matmul``
  backend (all keyed exactly like the result store keys them: a factor
  produced by CALU_PRRP — or by the Strassen trailing update — must never be
  served to a plain CALU request).

Artifacts are ``.npz`` files (packed factors + permuted matrix + pivot
sequence + a JSON metadata record) under ``factors/`` — relocatable via
``REPRO_FACTOR_CACHE_DIR`` — with an LRU size cap
(``REPRO_FACTOR_CACHE_MAX_BYTES`` or the ``max_bytes`` argument): cache hits
refresh an artifact's recency, and writes evict the least-recently-used
artifacts once the cap is exceeded.

:meth:`FactorCache.fetch_or_factor` is single-flight per key, like
:meth:`repro.harness.store.ResultStore.fetch_or_run`: concurrent requests
for the same factor compute it once.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..layouts.grid import ProcessGrid
from ..parallel.factor import FactoredMatrix, pcalu_factor
from .store import ENV_VAR as RESULTS_ENV_VAR  # noqa: F401  (doc cross-ref)
from .store import key_lock, resolved_engine

#: Environment variable relocating the factor cache (consistent with
#: ``REPRO_RESULTS_DIR`` for the result store).
ENV_VAR = "REPRO_FACTOR_CACHE_DIR"

#: Environment variable capping the cache size in bytes (LRU eviction).
ENV_MAX_BYTES = "REPRO_FACTOR_CACHE_MAX_BYTES"

#: Default artifact directory when neither an explicit root nor the
#: environment variable is given.
DEFAULT_ROOT = "factors"

#: Artifact schema version (bumped on incompatible layout changes).
SCHEMA_VERSION = 1

#: Matrix generator families a factor key may name (the square families of
#: :func:`repro.randmat.generators.linear_system`).
MATRIX_KINDS = ("randn", "uniform", "toeplitz", "diagonally_dominant")


def generate_matrix(kind: str, n: int, seed: int = 0) -> np.ndarray:
    """Instantiate the matrix a factor key describes."""
    from ..randmat import generators

    if kind not in MATRIX_KINDS:
        raise ValueError(
            f"unknown matrix kind {kind!r}; choose from {sorted(MATRIX_KINDS)}"
        )
    fn = getattr(generators, "toeplitz_random" if kind == "toeplitz" else kind)
    return np.asarray(fn(n, seed=seed), dtype=np.float64)


def factor_key(
    kind: str,
    n: int,
    seed: int,
    nprow: int,
    npcol: int,
    block_size: int,
    pivoting: str,
    kernel_tier: str,
    engine: str,
    matmul: str = "summa",
) -> str:
    """SHA-256 content address of one factorization (hex digest)."""
    canonical = json.dumps(
        {
            "kind": kind,
            "n": int(n),
            "seed": int(seed),
            "nprow": int(nprow),
            "npcol": int(npcol),
            "block_size": int(block_size),
            "pivoting": pivoting,
            "kernel_tier": kernel_tier,
            "engine": engine,
            "matmul": matmul,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class FactorFetch:
    """Outcome of :meth:`FactorCache.fetch_or_factor`."""

    factor: FactoredMatrix
    cached: bool
    path: Path

    @property
    def key(self) -> str:
        return self.factor.key or ""


class FactorCache:
    """LRU-capped, content-addressed store of :class:`FactoredMatrix` artifacts."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = Path(root or os.environ.get(ENV_VAR) or DEFAULT_ROOT)
        if max_bytes is None:
            env = os.environ.get(ENV_MAX_BYTES)
            max_bytes = int(env) if env else None
        self.max_bytes = max_bytes

    # ------------------------------------------------------------- addressing
    def path_for(self, key: str) -> Path:
        return self.root / f"factor-{key[:16]}.npz"

    # -------------------------------------------------------------- load/save
    def load(self, key: str) -> Optional[FactoredMatrix]:
        """Load a cached factor by key, or ``None`` when absent/unreadable.

        A hit refreshes the artifact's mtime, which is what the LRU
        eviction orders by.
        """
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("schema") != SCHEMA_VERSION or meta.get("key") != key:
                    return None
                factor = FactoredMatrix(
                    n=int(meta["n"]),
                    block_size=int(meta["block_size"]),
                    nprow=int(meta["nprow"]),
                    npcol=int(meta["npcol"]),
                    pivoting=str(meta["pivoting"]),
                    kernel_tier=str(meta["kernel_tier"]),
                    engine=str(meta["engine"]),
                    packed=np.asarray(data["packed"], dtype=np.float64),
                    permuted=np.asarray(data["permuted"], dtype=np.float64),
                    perm=np.asarray(data["perm"], dtype=np.int64),
                    matmul=str(meta.get("matmul", "summa")),
                    key=key,
                )
        except (OSError, KeyError, ValueError):
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        return factor

    def save(
        self,
        factor: FactoredMatrix,
        key: str,
        kind: str = "explicit",
        seed: Optional[int] = None,
    ) -> Path:
        """Atomically persist a factor under its content address."""
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "seed": seed,
            "n": factor.n,
            "block_size": factor.block_size,
            "nprow": factor.nprow,
            "npcol": factor.npcol,
            "pivoting": factor.pivoting,
            "kernel_tier": factor.kernel_tier,
            "engine": factor.engine,
            "matmul": factor.matmul,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique per writer: concurrent processes may race on the same key.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}.npz")
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                meta=np.array(json.dumps(meta)),
                packed=factor.packed,
                permuted=factor.permuted,
                perm=factor.perm,
            )
        os.replace(tmp, path)
        factor.key = key
        self._enforce_cap(keep=path)
        return path

    # ------------------------------------------------------------------- runs
    def fetch_or_factor(
        self,
        kind: str = "randn",
        n: int = 96,
        seed: int = 0,
        grid: Union[None, int, ProcessGrid] = None,
        block_size: Optional[int] = None,
        pivoting: Optional[str] = None,
        kernel_tier: Optional[str] = None,
        engine: Optional[str] = None,
        matmul: Optional[str] = None,
        machine=None,
        local_kernel: str = "getf2",
        use_cache: bool = True,
        force: bool = False,
        config=None,
    ) -> FactorFetch:
        """Serve a factorization from the cache, or compute and store it.

        ``grid`` is a :class:`ProcessGrid`, a process count ``P`` (mapped to
        the paper's near-square grid via :meth:`ProcessGrid.default_for`),
        or ``None`` for ``P = 4``.  Single-flight per key: two concurrent
        calls with the same key factor once.

        ``config`` is an optional :class:`~repro.core.options.SolveConfig`
        supplying defaults for the unset run-configuration arguments (grid,
        block size, machine and the four knobs); explicit arguments win, and
        the content key is computed from the merged, fully resolved values —
        identical to the key the spelled-out call would produce.
        """
        from ..core.strategies import resolve_pivoting
        from ..kernels.tiers import resolve_tier
        from ..matmul import resolve_matmul
        from ..parallel.pcalu import _merge_config

        grid, block_size, machine, engine, kernel_tier, pivoting, matmul = (
            _merge_config(
                config, grid, block_size, machine, engine, kernel_tier,
                pivoting, matmul,
            )
        )
        if block_size is None:
            block_size = 16
        if grid is None:
            grid = ProcessGrid.default_for(4)
        elif isinstance(grid, int):
            grid = ProcessGrid.default_for(grid)
        piv = resolve_pivoting(pivoting)
        tier = resolve_tier(kernel_tier)
        eng = resolved_engine(engine)
        mm = resolve_matmul(matmul)
        key = factor_key(
            kind, n, seed, grid.nprow, grid.npcol, block_size, piv, tier, eng,
            matmul=mm,
        )
        path = self.path_for(key)

        with key_lock(("factor", str(self.root), key)):
            if use_cache and not force:
                factor = self.load(key)
                if factor is not None:
                    return FactorFetch(factor=factor, cached=True, path=path)
            A = generate_matrix(kind, n, seed=seed)
            factor = pcalu_factor(
                A,
                grid,
                block_size,
                local_kernel=local_kernel,
                machine=machine,
                engine=eng,
                kernel_tier=tier,
                pivoting=piv,
                matmul=mm,
            )
            factor.key = key
            if use_cache:
                self.save(factor, key, kind=kind, seed=seed)
            return FactorFetch(factor=factor, cached=False, path=path)

    # -------------------------------------------------------------- reporting
    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every cached factor, most recently used first."""
        if not self.root.is_dir():
            return []
        found = []
        for path in sorted(self.root.glob("factor-*.npz")):
            try:
                stat = path.stat()
                with np.load(path, allow_pickle=False) as data:
                    meta = json.loads(str(data["meta"]))
            except (OSError, KeyError, ValueError):
                continue
            if meta.get("schema") != SCHEMA_VERSION:
                continue
            meta["bytes"] = stat.st_size
            meta["mtime"] = stat.st_mtime
            meta["path"] = str(path)
            found.append(meta)
        found.sort(key=lambda m: m["mtime"], reverse=True)
        return found

    def count(self) -> int:
        return len(self.entries())

    def total_bytes(self) -> int:
        return sum(int(e["bytes"]) for e in self.entries())

    def purge(self) -> int:
        """Delete every cached factor; returns the number removed."""
        removed = 0
        for entry in self.entries():
            try:
                os.unlink(entry["path"])
                removed += 1
            except OSError:
                pass
        return removed

    # --------------------------------------------------------------- eviction
    def _enforce_cap(self, keep: Optional[Path] = None) -> None:
        """Evict least-recently-used artifacts until under ``max_bytes``.

        The just-written artifact (``keep``) is never evicted, so a single
        oversized factor still caches (the cap then holds for everything
        else).
        """
        if self.max_bytes is None:
            return
        entries = self.entries()  # most recently used first
        total = sum(int(e["bytes"]) for e in entries)
        for entry in reversed(entries):  # least recently used first
            if total <= self.max_bytes:
                break
            if keep is not None and Path(entry["path"]) == keep:
                continue
            try:
                os.unlink(entry["path"])
                total -= int(entry["bytes"])
            except OSError:
                pass
