"""Model-driven configuration search (``repro tune``).

Layer 2 of the configuration subsystem built on
:class:`~repro.core.options.SolveConfig`: given a workload — matrix family
``kind``, size ``n``, right-hand-side count ``nrhs``, target ``machine`` and
process count ``P`` — enumerate the reachable slice of the configuration
space (block size ``b``, grid shape ``Pr x Pc``, pivoting strategy, kernel
tier, distributed-matmul backend), rank every candidate by *predicted* time
under the paper's analytic models priced on the machine model, then
*simulate* the top-k candidates (plus the built-in default configuration)
on the virtual-MPI engine to confirm the ranking.  The winner is the
candidate with the smallest simulated time — the default is always in the
simulated pool, so the tuned configuration can never lose to it — and every
simulated row records the predicted-vs-simulated ``gap``
(``|predicted - simulated| / simulated``) so the artifact is honest about
how far the closed-form model is from the schedule the simulator actually
executed.

The search runs as a registered :class:`~repro.harness.spec.ExperimentSpec`
(``tune``), so a tuning run is one content-addressed artifact in the result
store: re-running with the same workload is a cache hit, and
``repro serve --tuned`` loads the chosen row of such an artifact as its
default configuration (:func:`load_tuned_config`).

Model notes
-----------
* ``pivoting="pp"`` candidates are priced with Equation (3)
  (:func:`~repro.models.pdgetrf_model.pdgetrf_cost`); ``ca``/``ca_prrp``
  with Equation (2) (:func:`~repro.models.calu_model.calu_cost`) — the
  models do not distinguish CALU from CALU_PRRP (same counts, different
  panel pivoting), so those two tie on predicted time and the simulation
  breaks the tie.
* ``matmul="caps"`` candidates rescale the trailing-update term
  ``(m n^2 - n^3/3)/P`` of Equation (2) by the Strassen/classical flop
  ratio of the representative local update
  (:func:`caps_flop_ratio`), mirroring the exact flop accounting of
  :mod:`repro.matmul.caps` (:func:`strassen_flop_count`).
* The analytic models are *tier-blind*: the kernel tier changes which local
  kernel computes the panel, not the counts the simulator charges, so every
  tier ties on predicted (and simulated) time.  Tiers are still enumerated,
  but candidates identical up to the tier are simulated once and the tie
  breaks toward ``"auto"`` (the enumeration order).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.options import SolveConfig
from ..core.strategies import DEFAULT_STRATEGY, STRATEGIES
from ..costs.accounting import CostLedger
from .spec import ExperimentSpec, register

#: Engine the tune spec defaults to — the single-threaded deterministic
#: engine, matching ``repro.experiments.validation.DEFAULT_ENGINE``.
DEFAULT_ENGINE = "coroutine"

#: Block sizes the search tries (filtered per candidate for feasibility).
BLOCK_SIZES = (4, 8, 16, 32, 64)

#: Workloads the tuner can price and simulate.
WORKLOADS = ("solve", "matmul")


# ----------------------------------------------------------------- enumeration
def grid_shapes(P: int) -> List[Tuple[int, int]]:
    """All ordered factorizations ``Pr x Pc = P`` (both orientations).

    The models are not symmetric in ``(Pr, Pc)`` — column traffic scales
    with ``log2 Pr``, row traffic with ``log2 Pc`` — so ``2x8`` and ``8x2``
    are distinct candidates.
    """
    if P <= 0:
        raise ValueError("P must be positive")
    shapes = []
    for d in range(1, P + 1):
        if P % d == 0:
            shapes.append((d, P // d))
    return shapes


def feasible(n: int, b: int, Pr: int, Pc: int) -> bool:
    """Whether a (n, b, grid) triple is worth simulating.

    Requires ``b < n`` and at least one block row/column per grid
    row/column, so no rank is left without work in the block-cyclic layout.
    """
    if b >= n:
        return False
    nblocks = -(-n // b)
    return nblocks >= Pr and nblocks >= Pc


def searchable_tiers() -> Tuple[str, ...]:
    """Kernel tiers the search enumerates, preference order first.

    ``auto`` leads so it wins the (exact) predicted-time tie; ``lapack`` is
    only offered when scipy is importable.
    """
    from ..kernels.tiers import HAVE_LAPACK

    return ("auto", "lapack", "reference") if HAVE_LAPACK else ("auto", "reference")


def enumerate_candidates(
    n: int,
    P: int,
    workload: str = "solve",
    machine: Optional[str] = None,
    nrhs: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
    block_sizes: Sequence[int] = BLOCK_SIZES,
    pivotings: Optional[Sequence[str]] = None,
    matmuls: Sequence[str] = ("summa", "caps"),
    tiers: Optional[Sequence[str]] = None,
) -> List[SolveConfig]:
    """Every feasible :class:`SolveConfig` candidate, in preference order.

    The order matters: the predicted-time sort is stable, so exact ties
    (e.g. ``ca`` vs ``ca_prrp``, or any two kernel tiers) resolve to the
    earlier candidate here.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; choose from {WORKLOADS}")
    if pivotings is None:
        # The matmul workload never pivots; pin the default strategy so the
        # axis does not triple the candidate count for nothing.
        pivotings = tuple(sorted(STRATEGIES)) if workload == "solve" else (
            DEFAULT_STRATEGY,
        )
    if tiers is None:
        tiers = searchable_tiers()
    out: List[SolveConfig] = []
    for Pr, Pc in grid_shapes(P):
        for b in block_sizes:
            if not feasible(n, b, Pr, Pc):
                continue
            for pivoting in pivotings:
                for matmul in matmuls:
                    for tier in tiers:
                        out.append(
                            SolveConfig(
                                pivoting=pivoting,
                                engine=engine,
                                kernel_tier=tier,
                                matmul=matmul,
                                grid=(Pr, Pc),
                                b=b,
                                nrhs=nrhs,
                                machine=machine,
                            )
                        )
    return out


def default_config(
    n: int,
    P: int,
    machine: Optional[str] = None,
    nrhs: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> SolveConfig:
    """The configuration an untuned run would use (the baseline to beat).

    Built-in defaults everywhere: ``b = 16`` (degraded to the largest
    feasible block size on small problems), the near-square
    :meth:`~repro.layouts.grid.ProcessGrid.default_for` grid, default
    pivoting, ``auto`` tier, SUMMA trailing update.
    """
    from ..layouts.grid import ProcessGrid
    from ..matmul import DEFAULT_BACKEND

    grid = ProcessGrid.default_for(P)
    b = 16
    if not feasible(n, b, grid.nprow, grid.npcol):
        for candidate in sorted(set(BLOCK_SIZES), reverse=True):
            if feasible(n, candidate, grid.nprow, grid.npcol):
                b = candidate
                break
        else:
            raise ValueError(
                f"no feasible block size for n={n} on a "
                f"{grid.nprow}x{grid.npcol} grid"
            )
    return SolveConfig(
        pivoting=DEFAULT_STRATEGY,
        engine=engine,
        kernel_tier="auto",
        matmul=DEFAULT_BACKEND,
        grid=(grid.nprow, grid.npcol),
        b=b,
        nrhs=nrhs,
        machine=machine,
    )


# ------------------------------------------------------------------ prediction
def strassen_flop_count(m: int, k: int, n: int) -> float:
    """Exact flops :func:`repro.matmul.caps.strassen_multiply` charges.

    Closed-form mirror of the sequential Strassen kernel's accounting: the
    base case (any odd dimension, or the smallest dimension at or below
    ``STRASSEN_CUTOFF``) is a classical ``2 m n k`` GEMM; one recursion
    level pays seven half-size products plus the quadrant additions of the
    ``T``/``S`` operand combinations and the ``C`` reconstruction.
    """
    from ..matmul.caps import _CM, _SB, _TA, STRASSEN_CUTOFF

    if m % 2 or k % 2 or n % 2 or min(m, k, n) <= STRASSEN_CUTOFF:
        return 2.0 * m * n * k
    m2, k2, n2 = m // 2, k // 2, n // 2
    adds = (
        sum(len(terms) - 1 for terms in _TA) * m2 * k2
        + sum(len(terms) - 1 for terms in _SB) * k2 * n2
        + sum(len(terms) - 1 for terms in _CM.values()) * m2 * n2
    )
    return 7.0 * strassen_flop_count(m2, k2, n2) + adds


def caps_flop_ratio(n: int, b: int, Pr: int, Pc: int) -> float:
    """Strassen/classical flop ratio of the representative trailing update.

    The trailing update at each step of the factorization is a local
    ``mloc x b`` by ``b x nloc`` product per rank; with ``k = b`` small the
    Strassen recursion rarely fires, so the ratio is usually exactly 1 —
    the honest statement that CAPS buys bandwidth, not flops, at these
    block sizes.
    """
    mloc = max(n // Pr, 1)
    nloc = max(n // Pc, 1)
    classical = 2.0 * mloc * b * nloc
    return strassen_flop_count(mloc, b, nloc) / classical


def predicted_ledger(
    config: SolveConfig,
    n: int,
    nrhs: int = 1,
    refine: int = 2,
    workload: str = "solve",
) -> CostLedger:
    """Analytic critical-path ledger of one workload under ``config``.

    ``solve``: factorization (Equation 2 or 3 by pivoting strategy, with
    the CAPS trailing-update flop adjustment) plus the full ``pdgesv``
    solve phase.  ``matmul``: the backend's exact message/word totals and
    flops, averaged per processor — a balanced-schedule lower bound on the
    simulated critical path (the reported gap absorbs the imbalance).
    """
    from ..models.calu_model import calu_cost
    from ..models.matmul_model import caps_message_counts, summa_message_counts
    from ..models.pdgetrf_model import pdgetrf_cost
    from ..models.solve_model import solve_cost

    Pr, Pc = config.nprow, config.npcol
    b = config.b
    if b is None or Pr is None:
        raise ValueError("config must pin grid and block size to be priced")
    P = Pr * Pc

    if workload == "matmul":
        if config.matmul == "caps":
            counts = caps_message_counts(n, n, n, P)
            flops = strassen_flop_count(n, n, n)
        else:
            counts = summa_message_counts(n, n, n, Pr, Pc, b)
            flops = 2.0 * float(n) ** 3
        return CostLedger(
            muladds=flops / P,
            messages_col=counts["messages_col"] / P,
            words_col=counts["words_col"] / P,
            messages_row=counts["messages_row"] / P,
            words_row=counts["words_row"] / P,
            messages_any=counts["messages_any"] / P,
            words_any=counts["words_any"] / P,
            label=f"{config.matmul}(n={n}, P={P}, b={b}) per-proc",
        )

    if config.pivoting == "pp":
        ledger = pdgetrf_cost(n, n, b, Pr, Pc)
    else:
        ledger = calu_cost(n, n, b, Pr, Pc)
    if config.matmul == "caps":
        trailing = (float(n) ** 3 - float(n) ** 3 / 3.0) / P
        ratio = caps_flop_ratio(n, b, Pr, Pc)
        ledger = ledger + CostLedger(
            muladds=trailing * (ratio - 1.0),
            label="strassen trailing-update adjustment",
        )
    return ledger + solve_cost(n, b, Pr, Pc, nrhs=nrhs, refinements=refine)


def predicted_time(
    config: SolveConfig,
    n: int,
    nrhs: int = 1,
    refine: int = 2,
    workload: str = "solve",
) -> float:
    """Predicted seconds of one workload on ``config``'s machine model."""
    machine = config.machine_model()
    if machine is None:
        from ..machines.model import unit_machine

        machine = unit_machine()
    return predicted_ledger(
        config, n, nrhs=nrhs, refine=refine, workload=workload
    ).time(machine)


# ------------------------------------------------------------------ simulation
def simulate_config(
    config: SolveConfig,
    kind: str = "randn",
    n: int = 96,
    nrhs: int = 1,
    seed: int = 0,
    refine: int = 2,
    workload: str = "solve",
) -> float:
    """Simulated seconds of one workload under ``config`` (critical path).

    ``solve`` runs a full :func:`~repro.parallel.psolve.pdgesv` (the
    factorization trace plus the solve trace); ``matmul`` runs one
    standalone :func:`~repro.matmul.pdgemm`.  Deterministic in
    ``(config, kind, n, nrhs, seed)``.
    """
    from ..randmat.generators import randn

    machine = config.machine_model()
    if machine is None:
        from ..machines.model import unit_machine

        machine = unit_machine()
    grid = config.process_grid()

    if workload == "matmul":
        from ..matmul import pdgemm

        A = randn(n, seed=seed + n)
        B = randn(n, seed=seed + n + 104729)
        result = pdgemm(
            A, B, grid=grid, block_size=config.b, matmul=config.matmul,
            machine=machine, engine=config.engine,
        )
        return float(result.trace.critical_path_time)

    from ..parallel.psolve import pdgesv
    from .factor_cache import generate_matrix

    A = generate_matrix(kind, n, seed=seed)
    x_true = randn(n, nrhs, seed=seed + 7919)
    rhs = A @ x_true
    res = pdgesv(A, rhs, machine=machine, refine=refine, config=config)
    elapsed = float(res.trace.critical_path_time)
    if res.factorization is not None:
        elapsed += float(res.factorization.trace.critical_path_time)
    return elapsed


# ----------------------------------------------------------------- the search
def tune_point(
    kind: str = "randn",
    n: int = 96,
    nrhs: int = 2,
    P: int = 4,
    machine: str = "ibm_power5",
    seed: int = 0,
    top_k: int = 3,
    refine: int = 2,
    workload: str = "solve",
    engine: str = DEFAULT_ENGINE,
) -> List[Dict[str, object]]:
    """Search the configuration space for one workload (one row per sim).

    Enumerates every feasible candidate, ranks by predicted time, simulates
    the ``top_k`` best-predicted candidates plus the built-in default, and
    marks the smallest simulated time ``chosen``.  Candidates identical up
    to the kernel tier share one simulation (the models and the simulator
    are tier-blind); the default row is always present, so the chosen
    configuration's simulated time is ≤ the default's by construction.
    """
    candidates = enumerate_candidates(
        n, P, workload=workload, machine=machine, nrhs=nrhs, engine=engine
    )
    if not candidates:
        raise ValueError(f"no feasible configuration for n={n}, P={P}")
    predictions = [
        predicted_time(c, n, nrhs=nrhs, refine=refine, workload=workload)
        for c in candidates
    ]
    ranked = sorted(zip(predictions, range(len(candidates))))

    baseline = default_config(n, P, machine=machine, nrhs=nrhs, engine=engine)

    def sim_signature(config: SolveConfig) -> Tuple[object, ...]:
        # The kernel tier changes which local kernel runs, not the counts
        # the simulator charges — tier-twin candidates share a simulation.
        return (config.b, config.grid, config.pivoting, config.matmul)

    selected: List[Tuple[float, SolveConfig]] = []
    seen = set()
    for prediction, index in ranked:
        signature = sim_signature(candidates[index])
        if signature in seen:
            continue
        seen.add(signature)
        selected.append((prediction, candidates[index]))
        if len(selected) >= max(int(top_k), 1):
            break

    simulations: Dict[Tuple[object, ...], float] = {}

    def simulated(config: SolveConfig) -> float:
        signature = sim_signature(config)
        if signature not in simulations:
            simulations[signature] = simulate_config(
                config, kind=kind, n=n, nrhs=nrhs, seed=seed, refine=refine,
                workload=workload,
            )
        return simulations[signature]

    entries = [
        (
            "default",
            baseline,
            predicted_time(
                baseline, n, nrhs=nrhs, refine=refine, workload=workload
            ),
            simulated(baseline),
        )
    ]
    for rank, (prediction, config) in enumerate(selected, start=1):
        entries.append((f"top{rank}", config, prediction, simulated(config)))

    best = min(range(len(entries)), key=lambda i: (entries[i][3], entries[i][2]))
    rows: List[Dict[str, object]] = []
    for i, (label, config, prediction, sim) in enumerate(entries):
        rows.append(
            {
                "candidate": label,
                "workload": workload,
                "kind": kind,
                "n": n,
                "P": P,
                "nrhs": nrhs,
                "machine": machine,
                "b": config.b,
                "grid": f"{config.nprow}x{config.npcol}",
                "pivoting": config.pivoting,
                "kernel_tier": config.kernel_tier,
                "matmul": config.matmul,
                "predicted_s": prediction,
                "simulated_s": sim,
                "gap": abs(prediction - sim) / sim if sim > 0 else 0.0,
                "chosen": i == best,
                "enumerated": len(candidates),
                "seed": seed,
            }
        )
    return rows


SPEC_TUNE = register(
    ExperimentSpec(
        name="tune",
        title="Config search: rank by model prediction, confirm by simulation",
        runner=tune_point,
        params={"kind": "randn", "n": 96, "nrhs": 2, "P": 4,
                "machine": "ibm_power5", "seed": 0, "top_k": 3, "refine": 2,
                "workload": "solve", "engine": DEFAULT_ENGINE},
        quick={"n": 48, "nrhs": 1, "top_k": 2},
        columns=("candidate", "workload", "n", "P", "nrhs", "b", "grid",
                 "pivoting", "kernel_tier", "matmul", "predicted_s",
                 "simulated_s", "gap", "chosen", "enumerated", "seed"),
        paper_ref="Section 6 (machine models) + Equations (2)/(3)",
        sweepable=("kind", "n", "nrhs", "P", "machine", "seed", "workload",
                   "engine"),
        # Every candidate pins pivoting and matmul explicitly, so the
        # ambient REPRO_PIVOTING / REPRO_MATMUL knobs cannot change the rows.
        ambient_invariant=("pivoting", "matmul"),
    )
)


# ------------------------------------------------------------- tuned defaults
def load_tune_artifact(
    ref: str = "latest", store=None
) -> Dict[str, object]:
    """Load one stored tune artifact by path, key prefix, or ``"latest"``."""
    from .store import ResultStore

    if ref != "latest":
        path = Path(ref)
        if path.is_file():
            with open(path, "r", encoding="utf-8") as fh:
                artifact = json.load(fh)
            if artifact.get("spec") != "tune":
                raise ValueError(f"{ref} is not a tune artifact")
            return artifact
    if store is None:
        store = ResultStore()
    artifacts = store.artifacts("tune")
    if not artifacts:
        raise ValueError(
            f"no tune artifacts under {store.root}; run `repro tune` first"
        )
    if ref == "latest":
        return artifacts[0]
    matches = [a for a in artifacts if str(a.get("key", "")).startswith(ref)]
    if not matches:
        raise ValueError(f"no tune artifact matching key prefix {ref!r}")
    return matches[0]


def tuned_config(artifact: Dict[str, object]) -> SolveConfig:
    """The chosen :class:`SolveConfig` recorded in a tune artifact."""
    rows: Iterable[Dict[str, object]] = artifact.get("rows") or ()
    row = next((r for r in rows if r.get("chosen")), None)
    if row is None:
        raise ValueError("tune artifact has no chosen row")
    nprow, _, npcol = str(row["grid"]).partition("x")
    return SolveConfig(
        pivoting=str(row["pivoting"]),
        engine=str(artifact.get("engine", DEFAULT_ENGINE)),
        kernel_tier=str(row["kernel_tier"]),
        matmul=str(row["matmul"]),
        grid=(int(nprow), int(npcol)),
        b=int(row["b"]),
        nrhs=int(row["nrhs"]) if row.get("nrhs") is not None else None,
        machine=str(row["machine"]) if row.get("machine") else None,
    )


def load_tuned_config(ref: str = "latest", store=None) -> SolveConfig:
    """Convenience: :func:`load_tune_artifact` + :func:`tuned_config`."""
    return tuned_config(load_tune_artifact(ref, store=store))
